"""Figure 18: MTTDL_sys vs P_bit under correlated sector failures
(b1 = 0.98, alpha = 1.79, the "D-2" drive model).

Reproduced claims (§7.2.2):

* all codes now show a power-law decrease in reliability with P_bit, but
  STAIR and SD remain more reliable than Reed-Solomon;
* a STAIR code with e = (e_0, ..., e_{m'-1}) has almost the same
  reliability as the SD code with s = e_{m'-1} (bursts hit one chunk);
* among configurations with the same s, e = (s) is the most reliable and
  matches the SD code with the same s.

The figure is driven through the committed sweep spec
``benchmarks/specs/fig18.toml``; :func:`repro.bench.figures.figure18_rows`
stays as the cross-check reference -- the two must agree bitwise.
"""

from pathlib import Path

import pytest

from repro.bench.figures import figure18_rows
from repro.bench.reporting import print_table
from repro.scenario.sweep import run_sweep_file

SWEEP_SPEC = Path(__file__).resolve().parent / "specs" / "fig18.toml"


def _sweep_rows():
    result = run_sweep_file(SWEEP_SPEC)
    return [{"p_bit": cell.spec.sector.p_bit,
             "code": cell.result["code_label"],
             "mttdl_hours": cell.result["analytic_system_mttdl_hours"]}
            for cell in result.cells]


@pytest.fixture(scope="module")
def rows():
    return _sweep_rows()


def _mttdl(rows, code, p_bit):
    return next(row["mttdl_hours"] for row in rows
                if row["code"] == code and row["p_bit"] == p_bit)


def test_fig18_mttdl_correlated(rows, benchmark):
    benchmark.pedantic(_sweep_rows, rounds=1, iterations=1)
    print_table(
        ["P_bit", "code", "MTTDL_sys (hours)"],
        [[f"{row['p_bit']:.0e}", row["code"], row["mttdl_hours"]]
         for row in rows],
        title="Figure 18: MTTDL_sys, correlated sector failures (b1=0.98, α=1.79)",
        float_format="{:.3g}",
    )

    # The committed sweep spec and the in-code figure generator describe
    # the same figure.
    assert rows == figure18_rows()

    for p_bit in (1e-14, 1e-12):
        rs = _mttdl(rows, "RS", p_bit)
        # STAIR/SD beat RS.
        assert _mttdl(rows, "STAIR e=(1,)", p_bit) > rs

        # STAIR e=(1,2) ~ SD s=2 and STAIR e=(3) ~ SD s=3 (within 10%).
        assert _mttdl(rows, "STAIR e=(1, 2)", p_bit) == pytest.approx(
            _mttdl(rows, "SD s=2", p_bit), rel=0.10)
        assert _mttdl(rows, "STAIR e=(3,)", p_bit) == pytest.approx(
            _mttdl(rows, "SD s=3", p_bit), rel=0.10)

        # Among s=3 configurations, e=(3) is the most reliable under bursts.
        assert _mttdl(rows, "STAIR e=(3,)", p_bit) >= _mttdl(
            rows, "STAIR e=(1, 2)", p_bit)
        assert _mttdl(rows, "STAIR e=(3,)", p_bit) >= _mttdl(
            rows, "STAIR e=(1, 1, 1)", p_bit)

    # Power-law decrease with P_bit for every code family.
    for code in ("RS", "STAIR e=(3,)", "SD s=3"):
        assert _mttdl(rows, code, 1e-14) > _mttdl(rows, code, 1e-12) > _mttdl(
            rows, code, 1e-10)
