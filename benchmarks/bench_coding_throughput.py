"""Throughput of the bulk stripe-planar coding kernels.

The coding layer routes every encode/decode through the 2-D byte-plane
kernels of :mod:`repro.gf.regions` (one table-row gather per coefficient
plus ``np.bitwise_xor.reduce``).  The retained scalar path
(:class:`~repro.gf.regions.ReferenceRegionOps`, element-at-a-time
``GField.mul``) is the ground truth of the differential fuzz harness and
the baseline these floors are committed against:

* RS-encode a 1 MiB stripe (8 data symbols x 128 KiB, m = 2) at
  >= 12.5 MB/s on the bulk path;
* decode the same stripe after a double device failure at >= 10 MB/s;
* STAIR-encode (n=8, r=6, m=2, e=(2,1)) at >= 5 MB/s;
* the bulk path is >= 100x faster than the scalar reference path on
  the 1 MiB stripe (measured ~123x at floor-setting time), with
  bit-identical output and identical ``OperationCounter`` totals.

pytest-benchmark provides the statistical timing; the hard assertions
use wall-clock directly so they hold even without the plugin's
comparison machinery.
"""

import time

import numpy as np

from repro.codes import ReedSolomonStripeCode
from repro.core.stair import StairCode
from repro.gf.regions import ReferenceRegionOps

#: The 1 MiB benchmark stripe: one row of 8 data symbols x 128 KiB.
RS_N, RS_M = 10, 2
SYMBOL_BYTES = 128 * 1024
DATA_SYMBOLS = RS_N - RS_M
STRIPE_MB = DATA_SYMBOLS * SYMBOL_BYTES / 1e6

#: Committed floors (measured ~100 MB/s encode, ~84 MB/s decode,
#: ~41 MB/s STAIR encode on the floor-setting machine; ~8x headroom).
ENCODE_FLOOR_MBPS = 12.5
DECODE_FLOOR_MBPS = 10.0
STAIR_FLOOR_MBPS = 5.0
SPEEDUP_FLOOR = 100.0

STAIR_SYMBOL_BYTES = 16 * 1024


def _rs_code():
    return ReedSolomonStripeCode(n=RS_N, r=1, m=RS_M)


def _stripe_data(seed=0):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, 256, SYMBOL_BYTES, dtype=np.uint8)
            for _ in range(DATA_SYMBOLS)]


def _damage(grid):
    damaged = [list(grid[0])]
    damaged[0][0] = None
    damaged[0][1] = None
    return damaged


def _best_of(fn, runs=3):
    """Best wall-clock of ``runs`` executions (noise-resistant floor)."""
    best = float("inf")
    result = None
    for _ in range(runs):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_bulk_encode_meets_mbps_floor():
    code = _rs_code()
    data = _stripe_data()
    code.encode(data)  # warm numpy caches outside the timed window
    elapsed, _ = _best_of(lambda: code.encode(data))
    rate = STRIPE_MB / elapsed
    assert rate >= ENCODE_FLOOR_MBPS, (
        f"bulk RS encode ran at {rate:.1f} MB/s "
        f"(floor: {ENCODE_FLOOR_MBPS} MB/s)")


def test_bulk_decode_meets_mbps_floor():
    code = _rs_code()
    damaged = _damage(code.encode(_stripe_data()))
    code.decode(damaged)  # warm
    elapsed, repaired = _best_of(lambda: code.decode(damaged))
    assert all(cell is not None for cell in repaired[0])
    rate = STRIPE_MB / elapsed
    assert rate >= DECODE_FLOOR_MBPS, (
        f"bulk RS decode ran at {rate:.1f} MB/s "
        f"(floor: {DECODE_FLOOR_MBPS} MB/s)")


def test_stair_encode_meets_mbps_floor():
    code = StairCode.from_params(n=8, r=6, m=2, e=(2, 1))
    rng = np.random.default_rng(1)
    data = [rng.integers(0, 256, STAIR_SYMBOL_BYTES, dtype=np.uint8)
            for _ in range(code.config.num_data_symbols)]
    mb = len(data) * STAIR_SYMBOL_BYTES / 1e6
    code.encode(data)  # warm (also derives/caches the encoding method)
    elapsed, _ = _best_of(lambda: code.encode(data))
    rate = mb / elapsed
    assert rate >= STAIR_FLOOR_MBPS, (
        f"bulk STAIR encode ran at {rate:.1f} MB/s "
        f"(floor: {STAIR_FLOOR_MBPS} MB/s)")


def test_bulk_beats_scalar_reference_100x():
    """The acceptance criterion of the stripe-planar rewrite: >= 100x
    over the per-symbol scalar path on a 1 MiB stripe, with identical
    output symbols and identical operation counts."""
    bulk_code = _rs_code()
    ref_code = _rs_code()
    ref_code.ops_class = ReferenceRegionOps
    data = _stripe_data(seed=2)

    bulk_code.encode(data)  # warm
    bulk_elapsed, bulk_grid = _best_of(lambda: bulk_code.encode(data))

    ref_code.counter.reset()
    start = time.perf_counter()
    ref_grid = ref_code.encode(data)
    ref_elapsed = time.perf_counter() - start

    for cell_b, cell_r in zip(bulk_grid[0], ref_grid[0]):
        assert np.array_equal(cell_b, cell_r)
    bulk_code.counter.reset()
    bulk_code.encode(data)
    assert bulk_code.counter.snapshot() == ref_code.counter.snapshot()

    speedup = ref_elapsed / bulk_elapsed
    assert speedup >= SPEEDUP_FLOOR, (
        f"bulk path only {speedup:.0f}x faster than the scalar reference "
        f"({STRIPE_MB / bulk_elapsed:.1f} vs {STRIPE_MB / ref_elapsed:.3f} "
        f"MB/s; floor: {SPEEDUP_FLOOR:.0f}x)")


def test_bench_rs_bulk_encode(benchmark):
    code = _rs_code()
    data = _stripe_data()
    grid = benchmark(lambda: code.encode(data))
    assert len(grid[0]) == RS_N


def test_bench_rs_bulk_decode(benchmark):
    code = _rs_code()
    damaged = _damage(code.encode(_stripe_data()))
    repaired = benchmark(lambda: code.decode(damaged))
    assert all(cell is not None for cell in repaired[0])


def test_bench_stair_bulk_encode(benchmark):
    code = StairCode.from_params(n=8, r=6, m=2, e=(2, 1))
    rng = np.random.default_rng(1)
    data = [rng.integers(0, 256, STAIR_SYMBOL_BYTES, dtype=np.uint8)
            for _ in range(code.config.num_data_symbols)]
    stripe = benchmark(lambda: code.encode(data))
    assert stripe.symbols[0][0] is not None


def test_throughput_summary(capsys):
    """Report MB/s for the committed floor configurations."""
    code = _rs_code()
    data = _stripe_data()
    code.encode(data)
    enc, _ = _best_of(lambda: code.encode(data))
    damaged = _damage(code.encode(data))
    code.decode(damaged)
    dec, _ = _best_of(lambda: code.decode(damaged))
    with capsys.disabled():
        print(f"\n[bench_coding_throughput] 1 MiB stripe: encode "
              f"{STRIPE_MB / enc:.1f} MB/s, double-failure decode "
              f"{STRIPE_MB / dec:.1f} MB/s")
    assert STRIPE_MB / enc >= ENCODE_FLOOR_MBPS
    assert STRIPE_MB / dec >= DECODE_FLOOR_MBPS
