"""Throughput floors of the object-store serving layer.

The store's hot paths are thin wrappers over the bulk coding kernels
(:mod:`repro.gf.regions`): a put encodes one or more stripes and fans
chunks out to the nodes, a healthy get slices data columns without
decoding, a degraded get pays one ``code.decode`` per stripe, and a
repair pass rebuilds whole columns.  These floors pin the wrapper
overhead so an accidental per-operation slowdown (extra copies, lock
contention, per-chunk churn) fails CI rather than landing silently:

* >= 300 puts/s of 4 KiB objects through ``rs(n=6,r=4,m=2)``;
* >= 2000 healthy gets/s (no decode on the fast path);
* >= 500 degraded gets/s with one data column lost;
* >= 350 stripe repairs/s in a single repair pass;
* >= 60 puts/s through the subprocess backend (RPC framing + pipes);
* >= 20000 sharded metadata lookups/s at a 100k-key population.

Measured at floor-setting time: ~2700 puts/s, ~18000 gets/s, ~4400
degraded gets/s, ~3100 repairs/s (so every floor carries ~8x
headroom).  The hard assertions use wall-clock directly, same as
``bench_coding_throughput.py``.
"""

import asyncio
import time

import numpy as np

from repro.codes.registry import parse_code_spec
from repro.store import StoreCluster

OBJECTS = 200
OBJECT_BYTES = 4096
SYMBOL_BYTES = 256

PUT_FLOOR_OPS = 300.0
GET_FLOOR_OPS = 2000.0
DEGRADED_GET_FLOOR_OPS = 500.0
REPAIR_FLOOR_STRIPES = 350.0


def _loaded_cluster() -> StoreCluster:
    cluster = StoreCluster(parse_code_spec("rs(n=6,r=4,m=2)"),
                           symbol_bytes=SYMBOL_BYTES)
    rng = np.random.default_rng(0)
    payloads = [rng.bytes(OBJECT_BYTES) for _ in range(OBJECTS)]

    async def load():
        for i, payload in enumerate(payloads):
            await cluster.put(f"obj-{i}", payload)

    asyncio.run(load())
    return cluster


def _best_of(coro_factory, runs=3):
    """Best wall-clock of ``runs`` fresh event-loop executions."""
    best = float("inf")
    for _ in range(runs):
        start = time.perf_counter()
        asyncio.run(coro_factory())
        best = min(best, time.perf_counter() - start)
    return best


def test_put_throughput_meets_floor():
    cluster = StoreCluster(parse_code_spec("rs(n=6,r=4,m=2)"),
                           symbol_bytes=SYMBOL_BYTES)
    rng = np.random.default_rng(1)
    payloads = [rng.bytes(OBJECT_BYTES) for _ in range(OBJECTS)]

    async def puts():
        for i, payload in enumerate(payloads):
            await cluster.put(f"obj-{i}", payload)

    elapsed = _best_of(puts)
    rate = OBJECTS / elapsed
    assert rate >= PUT_FLOOR_OPS, (
        f"puts: {rate:.0f} ops/s < floor {PUT_FLOOR_OPS} "
        f"({OBJECTS} x {OBJECT_BYTES} B objects)")


def test_healthy_get_throughput_meets_floor():
    cluster = _loaded_cluster()

    async def gets():
        for i in range(OBJECTS):
            await cluster.get(f"obj-{i}")

    elapsed = _best_of(gets)
    rate = OBJECTS / elapsed
    assert rate >= GET_FLOOR_OPS, (
        f"healthy gets: {rate:.0f} ops/s < floor {GET_FLOOR_OPS}")
    assert cluster.report.degraded_reads == 0


def test_degraded_get_throughput_meets_floor():
    cluster = _loaded_cluster()
    cluster.crash_node(0)  # column 0 carries data for rs(6,4,2)

    async def gets():
        for i in range(OBJECTS):
            await cluster.get(f"obj-{i}")

    elapsed = _best_of(gets)
    rate = OBJECTS / elapsed
    assert cluster.report.degraded_reads >= OBJECTS  # decode path taken
    assert rate >= DEGRADED_GET_FLOOR_OPS, (
        f"degraded gets: {rate:.0f} ops/s < floor "
        f"{DEGRADED_GET_FLOOR_OPS}")


def test_repair_throughput_meets_floor():
    stripes = None
    best = float("inf")
    for _ in range(3):
        cluster = _loaded_cluster()
        cluster.crash_node(0)

        async def pass_once():
            return await cluster.repair_once()

        start = time.perf_counter()
        stripes = asyncio.run(pass_once())
        best = min(best, time.perf_counter() - start)
    assert stripes and stripes >= OBJECTS  # every object one stripe min
    rate = stripes / best
    assert rate >= REPAIR_FLOOR_STRIPES, (
        f"repair: {rate:.0f} stripes/s < floor {REPAIR_FLOOR_STRIPES}")


# --------------------------------------------------------------------------- #
# PR 10 floors: the subprocess backend and sharded-metadata scaling
# --------------------------------------------------------------------------- #
# Measured at floor-setting time: ~315 process-backend puts/s (pipe
# frames + acks dominate) and ~220k sharded metadata lookups/s, so the
# floors below carry ~5x and ~11x headroom respectively.
PROCESS_PUT_FLOOR_OPS = 60.0
SHARDED_KEYS = 100_000
SHARDED_LOOKUPS = 20_000
SHARDED_GET_FLOOR_OPS = 20_000.0


def test_process_backend_put_throughput_meets_floor():
    """Puts through one subprocess per node: the RPC framing, the
    pipelined client and the pipe transport are all on this path, so a
    per-frame regression (extra drain, lost pipelining) lands here."""
    from repro.store import ProcessTransport
    from repro.store.node import StoreNode

    rng = np.random.default_rng(2)
    payloads = [rng.bytes(OBJECT_BYTES) for _ in range(OBJECTS)]
    code = parse_code_spec("rs(n=6,r=4,m=2)")

    async def run_once() -> float:
        transports = await asyncio.gather(*[
            ProcessTransport.spawn() for _ in range(code.n)])
        nodes = [StoreNode(j, transport=transports[j])
                 for j in range(code.n)]
        async with StoreCluster(code, symbol_bytes=SYMBOL_BYTES,
                                nodes=nodes) as cluster:
            start = time.perf_counter()
            for i, payload in enumerate(payloads):
                await cluster.put(f"obj-{i}", payload)
            await cluster.flush()  # every byte physically delivered
            elapsed = time.perf_counter() - start
            assert not cluster.dataplane_errors()
            return elapsed

    best = min(asyncio.run(run_once()) for _ in range(2))
    rate = OBJECTS / best
    assert rate >= PROCESS_PUT_FLOOR_OPS, (
        f"process-backend puts: {rate:.0f} ops/s < floor "
        f"{PROCESS_PUT_FLOOR_OPS} ({OBJECTS} x {OBJECT_BYTES} B objects)")


def test_sharded_metadata_get_scaling_meets_floor():
    """The metadata half of a get (shard lookup + per-key lock round
    trip) at a 100k-key population: sharding must keep this O(1)-ish --
    a lock table that stops reclaiming or a shard map that degenerates
    to a scan fails this floor long before it fails a workload test."""
    from repro.store import KeyShards
    from repro.store.cluster import ObjectMeta

    shards = KeyShards(16)
    for i in range(SHARDED_KEYS):
        shards.set_meta(f"obj-{i:06d}", ObjectMeta(size=64, stripes=1))
    picks = np.random.default_rng(3).integers(0, SHARDED_KEYS,
                                              size=SHARDED_LOOKUPS)
    keys = [f"obj-{int(k):06d}" for k in picks]

    async def lookups():
        for key in keys:
            async with shards.lock(key):
                assert shards.meta(key).size == 64

    elapsed = _best_of(lookups)
    rate = SHARDED_LOOKUPS / elapsed
    assert shards.live_locks == 0  # the tables reclaimed everything
    assert rate >= SHARDED_GET_FLOOR_OPS, (
        f"sharded metadata gets: {rate:.0f} ops/s < floor "
        f"{SHARDED_GET_FLOOR_OPS} at {SHARDED_KEYS} keys")
