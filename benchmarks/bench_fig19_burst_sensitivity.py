"""Figure 19: sensitivity of STAIR codes to the burst-length distribution.

(a) burst-length CDFs for several (b1, alpha) pairs; (b) MTTDL_sys of
STAIR codes with e = (s) vs e = (1, s-1) for s = 1..12 under those pairs.

Reproduced claims (§7.2.2):

* smaller (b1, alpha) means burstier failures (heavier CDF tail);
* under bursty failures (b1 = 0.9, alpha = 1) the concentrated coverage
  e = (s) is far more reliable than e = (1, s-1) and its reliability grows
  rapidly with s -- the value of supporting a wide range of s, beyond the
  s <= 3 limit of SD codes;
* under nearly-independent failures (b1 = 0.9999, alpha = 4) the advantage
  shrinks and can even reverse.
"""

import pytest

from repro.bench.figures import figure19a_rows, figure19b_rows
from repro.bench.reporting import print_table


@pytest.fixture(scope="module")
def cdf_rows():
    return figure19a_rows()


@pytest.fixture(scope="module")
def mttdl_rows():
    return figure19b_rows()


def test_fig19a_burst_length_cdfs(cdf_rows, benchmark):
    benchmark.pedantic(lambda: figure19a_rows(pairs=((0.9, 1.0),)),
                       rounds=1, iterations=1)
    shown = [row for row in cdf_rows if row["length"] <= 8]
    print_table(
        ["b1", "alpha", "length", "CDF"],
        [[row["b1"], row["alpha"], row["length"], row["cdf"]] for row in shown],
        title="Figure 19(a): burst-length CDFs",
        float_format="{:.4f}",
    )
    # Burstier parameter pairs have lower CDF values at every length
    # (heavier tails).
    for length in (1, 2, 4, 8):
        series = [(row["b1"], row["cdf"]) for row in cdf_rows
                  if row["length"] == length]
        series.sort()
        cdfs = [cdf for _, cdf in series]
        assert cdfs == sorted(cdfs)


def _mttdl(rows, e_label, s, p_bit, b1):
    return next(row["mttdl_hours"] for row in rows
                if row["e"] == e_label and row["s"] == s
                and row["p_bit"] == p_bit and row["b1"] == b1)


def test_fig19b_concentrated_vs_split_coverage(mttdl_rows, benchmark):
    benchmark.pedantic(
        lambda: figure19b_rows(s_values=(2, 4), p_bits=(1e-12,),
                               pairs=((0.9, 1.0),)),
        rounds=1, iterations=1)
    sample = [row for row in mttdl_rows
              if row["p_bit"] == 1e-12 and row["s"] in (2, 4, 8, 12)]
    print_table(
        ["b1", "alpha", "s", "e", "MTTDL_sys (hours)"],
        [[row["b1"], row["alpha"], row["s"], row["e"], row["mttdl_hours"]]
         for row in sample],
        title="Figure 19(b) (excerpt): e=(s) vs e=(1,s-1), P_bit=1e-12",
        float_format="{:.3g}",
    )

    # Bursty failures: e=(s) dominates e=(1, s-1) and improves with s.
    for p_bit in (1e-14, 1e-12):
        for s in (4, 8, 12):
            assert _mttdl(mttdl_rows, f"({s})", s, p_bit, 0.9) > _mttdl(
                mttdl_rows, f"(1,{s - 1})", s, p_bit, 0.9)
        series = [_mttdl(mttdl_rows, f"({s})", s, p_bit, 0.9)
                  for s in (2, 4, 8, 12)]
        assert series == sorted(series)

    # Nearly independent failures: the advantage of e=(s) disappears
    # (it is no better than ~equal to e=(1, s-1) at high P_bit).
    high = _mttdl(mttdl_rows, "(4)", 4, 1e-10, 0.9999)
    split = _mttdl(mttdl_rows, "(1,3)", 4, 1e-10, 0.9999)
    assert high <= split * 1.5
