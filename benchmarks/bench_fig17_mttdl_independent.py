"""Figure 17: MTTDL_sys vs P_bit under independent sector failures.

Paper setting: 10 PB of user data, 300 GB devices, 512-byte sectors,
1/λ = 500,000 h, 1/μ = 17.8 h, n = 8, r = 16, m = 1.  Reproduced claims
(§7.2.1):

* STAIR and SD codes with s = 1 are orders of magnitude more reliable
  than Reed-Solomon codes at P_bit = 1e-14;
* Reed-Solomon reliability decays with P_bit while s >= 1 codes stay flat
  until P_bit gets large;
* among the s = 3 STAIR configurations, e = (1, 2) is the most reliable
  (better than e = (3) and e = (1, 1, 1)).
"""

import pytest

from repro.bench.figures import figure17_rows
from repro.bench.reporting import print_table


@pytest.fixture(scope="module")
def rows():
    return figure17_rows()


def _mttdl(rows, code, p_bit):
    return next(row["mttdl_hours"] for row in rows
                if row["code"] == code and row["p_bit"] == p_bit)


def test_fig17_mttdl_independent(rows, benchmark):
    benchmark.pedantic(lambda: figure17_rows(p_bits=(1e-12,)),
                       rounds=1, iterations=1)
    print_table(
        ["P_bit", "code", "MTTDL_sys (hours)"],
        [[f"{row['p_bit']:.0e}", row["code"], row["mttdl_hours"]]
         for row in rows],
        title="Figure 17: MTTDL_sys, independent sector failures",
        float_format="{:.3g}",
    )

    # s=1 codes beat RS by more than two orders of magnitude at 1e-14.
    assert _mttdl(rows, "STAIR e=(1,)", 1e-14) > 100 * _mttdl(rows, "RS", 1e-14)

    # RS reliability decreases with P_bit.
    assert _mttdl(rows, "RS", 1e-14) > _mttdl(rows, "RS", 1e-12) >= _mttdl(
        rows, "RS", 1e-10)

    # e=(1,2) is the best s=3 configuration at high P_bit (Figure 17(b)).
    best = _mttdl(rows, "STAIR e=(1, 2)", 1e-10)
    assert best > _mttdl(rows, "STAIR e=(3,)", 1e-10)
    assert best > _mttdl(rows, "STAIR e=(1, 1, 1)", 1e-10)

    # SD s=2 stays roughly flat across the sweep (§7.2.1).
    assert _mttdl(rows, "SD s=2", 1e-10) > 0.5 * _mttdl(rows, "SD s=2", 1e-14)
