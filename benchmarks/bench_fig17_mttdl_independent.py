"""Figure 17: MTTDL_sys vs P_bit under independent sector failures.

Paper setting: 10 PB of user data, 300 GB devices, 512-byte sectors,
1/λ = 500,000 h, 1/μ = 17.8 h, n = 8, r = 16, m = 1.  Reproduced claims
(§7.2.1):

* STAIR and SD codes with s = 1 are orders of magnitude more reliable
  than Reed-Solomon codes at P_bit = 1e-14;
* Reed-Solomon reliability decays with P_bit while s >= 1 codes stay flat
  until P_bit gets large;
* among the s = 3 STAIR configurations, e = (1, 2) is the most reliable
  (better than e = (3) and e = (1, 1, 1)).

The figure is driven through the committed sweep spec
``benchmarks/specs/fig17.toml`` (analytic-mode scenario cells expanded
by :mod:`repro.scenario.sweep`); :func:`repro.bench.figures.figure17_rows`
stays as the cross-check reference -- the two must agree bitwise.
"""

from pathlib import Path

import pytest

from repro.bench.figures import figure17_rows
from repro.bench.reporting import print_table
from repro.scenario.sweep import run_sweep_file

SWEEP_SPEC = Path(__file__).resolve().parent / "specs" / "fig17.toml"


def _sweep_rows():
    result = run_sweep_file(SWEEP_SPEC)
    return [{"p_bit": cell.spec.sector.p_bit,
             "code": cell.result["code_label"],
             "mttdl_hours": cell.result["analytic_system_mttdl_hours"]}
            for cell in result.cells]


@pytest.fixture(scope="module")
def rows():
    return _sweep_rows()


def _mttdl(rows, code, p_bit):
    return next(row["mttdl_hours"] for row in rows
                if row["code"] == code and row["p_bit"] == p_bit)


def test_fig17_mttdl_independent(rows, benchmark):
    benchmark.pedantic(_sweep_rows, rounds=1, iterations=1)
    print_table(
        ["P_bit", "code", "MTTDL_sys (hours)"],
        [[f"{row['p_bit']:.0e}", row["code"], row["mttdl_hours"]]
         for row in rows],
        title="Figure 17: MTTDL_sys, independent sector failures",
        float_format="{:.3g}",
    )

    # The committed sweep spec and the in-code figure generator describe
    # the same figure.
    assert rows == figure17_rows()

    # s=1 codes beat RS by more than two orders of magnitude at 1e-14.
    assert _mttdl(rows, "STAIR e=(1,)", 1e-14) > 100 * _mttdl(rows, "RS", 1e-14)

    # RS reliability decreases with P_bit.
    assert _mttdl(rows, "RS", 1e-14) > _mttdl(rows, "RS", 1e-12) >= _mttdl(
        rows, "RS", 1e-10)

    # e=(1,2) is the best s=3 configuration at high P_bit (Figure 17(b)).
    best = _mttdl(rows, "STAIR e=(1, 2)", 1e-10)
    assert best > _mttdl(rows, "STAIR e=(3,)", 1e-10)
    assert best > _mttdl(rows, "STAIR e=(1, 1, 1)", 1e-10)

    # SD s=2 stays roughly flat across the sweep (§7.2.1).
    assert _mttdl(rows, "SD s=2", 1e-10) > 0.5 * _mttdl(rows, "SD s=2", 1e-14)
