"""Figure 9: Mult_XOR counts of standard / upstairs / downstairs encoding.

Paper setting: n = 8, m = 2, s = 4, r in {8, 16, 24, 32}, e ranging over
every partition of s.  Reproduced claims:

* upstairs and downstairs encoding need far fewer Mult_XORs than standard
  encoding in most configurations (parity reuse);
* for small m' downstairs wins, for large m' upstairs wins.
"""

import pytest

from repro.bench.figures import figure9_rows
from repro.bench.reporting import print_table


@pytest.fixture(scope="module")
def rows():
    return figure9_rows(n=8, m=2, s=4, r_values=(8, 16, 24, 32))


def test_fig09_encoding_complexity(rows, benchmark):
    benchmark.pedantic(lambda: figure9_rows(n=8, m=2, s=4, r_values=(16,)),
                       rounds=1, iterations=1)
    print_table(
        ["r", "e", "standard", "upstairs", "downstairs", "best"],
        [[row["r"], str(row["e"]), row["standard"], row["upstairs"],
          row["downstairs"], row["best"]] for row in rows],
        title="Figure 9: Mult_XORs per stripe (n=8, m=2, s=4)",
    )

    # Parity reuse beats standard encoding for the large-r configurations.
    for row in rows:
        if row["r"] >= 16:
            assert min(row["upstairs"], row["downstairs"]) < row["standard"]

    # m' determines the winner: e=(4) has m'=1 (downstairs wins),
    # e=(1,1,1,1) has m'=4 (upstairs wins) -- §5.3.
    for r in (8, 16, 24, 32):
        single = next(x for x in rows if x["r"] == r and x["e"] == (4,))
        spread = next(x for x in rows if x["r"] == r and x["e"] == (1, 1, 1, 1))
        assert single["downstairs"] < single["upstairs"]
        assert spread["upstairs"] < spread["downstairs"]
