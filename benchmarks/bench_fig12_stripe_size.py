"""Figure 12: encoding speed vs stripe size (n = 16, r = 16).

The paper sweeps 128 KB to 512 MB stripes and finds that the speed first
rises and then falls with stripe size (SIMD/cache effects) while STAIR's
advantage over SD persists at every size.  This reproduction sweeps
128 KB to 8 MB; the reproduced claim is that the STAIR-vs-SD ordering is
unchanged across stripe sizes.
"""

import pytest

from repro.bench.figures import figure12_rows
from repro.bench.reporting import print_table

STRIPE_SIZES = (128 << 10, 512 << 10, 2 << 20, 8 << 20)


@pytest.fixture(scope="module")
def rows():
    return figure12_rows(n=16, r=16, m_values=(1, 2, 3),
                         stair_s_values=(1, 2, 3, 4), sd_s_values=(1, 2, 3),
                         stripe_sizes=STRIPE_SIZES, repeats=1)


def test_fig12_stripe_size_sweep(rows, benchmark):
    benchmark.pedantic(
        lambda: figure12_rows(m_values=(2,), stair_s_values=(2,),
                              sd_s_values=(2,), stripe_sizes=(128 << 10,),
                              repeats=1),
        rounds=1, iterations=1)
    print_table(
        ["stripe", "family", "m", "s", "MB/s"],
        [[f"{row['stripe_bytes'] >> 10}KB", row["family"], row["m"], row["s"],
          row["mb_per_second"]] for row in rows],
        title="Figure 12: encoding speed vs stripe size (n=16, r=16)",
        float_format="{:.1f}",
    )

    # STAIR remains at least as fast as SD for the same (m, s) at every
    # stripe size (the paper: "the encoding speed advantage of STAIR codes
    # over SD codes remains unchanged").
    wins = 0
    comparisons = 0
    for stripe in STRIPE_SIZES:
        for m in (1, 2, 3):
            for s in (1, 2, 3):
                stair = [row["mb_per_second"] for row in rows
                         if row["family"] == "STAIR" and row["m"] == m
                         and row["s"] == s and row["stripe_bytes"] == stripe]
                sd = [row["mb_per_second"] for row in rows
                      if row["family"] == "SD" and row["m"] == m
                      and row["s"] == s and row["stripe_bytes"] == stripe]
                if stair and sd:
                    comparisons += 1
                    if stair[0] > sd[0]:
                        wins += 1
    assert comparisons > 0
    assert wins / comparisons >= 0.8
