"""Figure 11: encoding speed of STAIR vs SD codes.

Paper setting: (a) n in {4..32} with r = 16 and (b) r in {4..32} with
n = 16, for m in {1, 2, 3}, STAIR s <= 4 (worst-case e per s) and SD
s <= 3, on 32 MB stripes.  This reproduction sweeps a representative
subset of n and r on 1 MB stripes (absolute MB/s are far lower in pure
Python; the orderings are what is being reproduced).

Reproduced claims (§6.2.1):

* STAIR encodes faster than SD for the same (n, r, m, s) -- on the paper's
  testbed by ~106% on average -- thanks to parity reuse;
* encoding speed increases with n and with r (the parity fraction shrinks).
"""

import pytest

from repro.bench.figures import encoding_speed_rows, stair_vs_sd_summary
from repro.bench.reporting import print_table

N_SWEEP = (8, 16, 24, 32)
R_SWEEP = (8, 16, 24, 32)
STRIPE_BYTES = 1 << 20


@pytest.fixture(scope="module")
def rows_vary_n():
    return encoding_speed_rows(n_values=N_SWEEP, r_values=(16,),
                               repeats=2)


@pytest.fixture(scope="module")
def rows_vary_r():
    return encoding_speed_rows(n_values=(16,), r_values=R_SWEEP,
                               repeats=2)


def _print(rows, title):
    print_table(
        ["family", "n", "r", "m", "s", "MB/s"],
        [[row["family"], row["n"], row["r"], row["m"], row["s"],
          row["mb_per_second"]] for row in rows],
        title=title, float_format="{:.1f}",
    )


def _median_speed(rows, family, **filters):
    speeds = [row["mb_per_second"] for row in rows
              if row["family"] == family
              and all(row[k] == v for k, v in filters.items())]
    speeds.sort()
    return speeds[len(speeds) // 2] if speeds else 0.0


def test_fig11a_encoding_speed_vs_n(rows_vary_n, benchmark):
    benchmark.pedantic(
        lambda: encoding_speed_rows(n_values=(16,), r_values=(16,),
                                    m_values=(2,), stair_s_values=(2,),
                                    sd_s_values=(2,), repeats=1),
        rounds=1, iterations=1)
    _print(rows_vary_n, "Figure 11(a): encoding speed, r=16, varying n")
    summary = stair_vs_sd_summary(rows_vary_n)
    print(f"\nSTAIR vs SD encoding speed: +{summary['average_pct']:.1f}% average "
          f"({summary['min_pct']:.1f}% .. {summary['max_pct']:.1f}%, "
          f"{summary['points']} comparable points)")

    # STAIR beats SD on average across the grid.
    assert summary["average_pct"] > 20.0

    # The paper reports speed *increasing* with n, an effect dominated by its
    # testbed's cache behaviour (regions shrink into L2 as n grows).  A pure
    # Python reproduction cannot show that hardware effect; the reproduced
    # claim is that STAIR throughput does not degrade appreciably as the
    # array widens, while SD (whose per-parity work grows with the stripe)
    # falls behind -- see EXPERIMENTS.md.
    s_cap = 3
    stair_low = _median_speed(rows_vary_n, "STAIR", n=N_SWEEP[0], m=1, s=s_cap)
    stair_high = _median_speed(rows_vary_n, "STAIR", n=N_SWEEP[-1], m=1, s=s_cap)
    # Loose sanity floor: single-shot MB/s numbers on a shared container are
    # noisy, so only catastrophic degradation (>3x) fails the bench.
    assert stair_high > 0.3 * stair_low
    sd_low = _median_speed(rows_vary_n, "SD", n=N_SWEEP[0], m=1, s=s_cap)
    sd_high = _median_speed(rows_vary_n, "SD", n=N_SWEEP[-1], m=1, s=s_cap)
    assert stair_high / sd_high >= stair_low / sd_low


def test_fig11b_encoding_speed_vs_r(rows_vary_r, benchmark):
    benchmark.pedantic(
        lambda: encoding_speed_rows(n_values=(16,), r_values=(8,),
                                    m_values=(2,), stair_s_values=(2,),
                                    sd_s_values=(2,), repeats=1),
        rounds=1, iterations=1)
    _print(rows_vary_r, "Figure 11(b): encoding speed, n=16, varying r")
    summary = stair_vs_sd_summary(rows_vary_r)
    print(f"\nSTAIR vs SD encoding speed: +{summary['average_pct']:.1f}% average")
    assert summary["average_pct"] > 20.0

    # STAIR throughput holds up as chunks get taller (the paper additionally
    # sees an increase, driven by its testbed's cache behaviour).
    low = _median_speed(rows_vary_r, "STAIR", r=R_SWEEP[0], m=1, s=1)
    high = _median_speed(rows_vary_r, "STAIR", r=R_SWEEP[-1], m=1, s=1)
    # Same loose sanity floor as the n-sweep (measurement noise tolerance).
    assert high > 0.3 * low
