"""Figure 13: worst-case decoding speed of STAIR vs SD codes.

Worst case (§6.2.2): the m leftmost chunks plus s additional sectors in
the following chunks are all lost.  Reproduced claims:

* STAIR decodes faster than SD for the same (n, r, m, s) -- on the paper's
  testbed by ~103% on average;
* decoding speed increases with n and r;
* when only device failures occur (s = 0 pattern), decoding reduces to
  Reed-Solomon decoding and is significantly faster than the worst case.
"""

import pytest

from repro.bench.figures import _stair_code, decoding_speed_rows, stair_vs_sd_summary
from repro.bench.reporting import print_table
from repro.bench.speed import device_only_losses, measure_decoding_speed

N_SWEEP = (8, 16, 24, 32)
R_SWEEP = (8, 16, 24, 32)
STRIPE_BYTES = 1 << 20


@pytest.fixture(scope="module")
def rows_vary_n():
    return decoding_speed_rows(n_values=N_SWEEP, r_values=(16,),
                               repeats=1)


@pytest.fixture(scope="module")
def rows_vary_r():
    return decoding_speed_rows(n_values=(16,), r_values=R_SWEEP,
                               repeats=1)


def _print(rows, title):
    print_table(
        ["family", "n", "r", "m", "s", "MB/s"],
        [[row["family"], row["n"], row["r"], row["m"], row["s"],
          row["mb_per_second"]] for row in rows],
        title=title, float_format="{:.1f}",
    )


def test_fig13a_decoding_speed_vs_n(rows_vary_n, benchmark):
    benchmark.pedantic(
        lambda: decoding_speed_rows(n_values=(16,), r_values=(16,),
                                    m_values=(2,), stair_s_values=(2,),
                                    sd_s_values=(2,), repeats=1),
        rounds=1, iterations=1)
    _print(rows_vary_n, "Figure 13(a): worst-case decoding speed, r=16, varying n")
    summary = stair_vs_sd_summary(rows_vary_n)
    print(f"\nSTAIR vs SD decoding speed: +{summary['average_pct']:.1f}% average "
          f"({summary['min_pct']:.1f}% .. {summary['max_pct']:.1f}%)")
    assert summary["average_pct"] > 0.0


def test_fig13b_decoding_speed_vs_r(rows_vary_r, benchmark):
    benchmark.pedantic(
        lambda: decoding_speed_rows(n_values=(16,), r_values=(8,),
                                    m_values=(2,), stair_s_values=(2,),
                                    sd_s_values=(2,), repeats=1),
        rounds=1, iterations=1)
    _print(rows_vary_r, "Figure 13(b): worst-case decoding speed, n=16, varying r")
    summary = stair_vs_sd_summary(rows_vary_r)
    print(f"\nSTAIR vs SD decoding speed: +{summary['average_pct']:.1f}% average")
    assert summary["average_pct"] > 0.0


def test_fig13_device_only_decoding_is_faster(benchmark):
    """§6.2.2: with s = 0 failures the decode is plain RS and much faster."""
    code = _stair_code(16, 16, 2, 1)
    losses_worst = [(i, j) for j in range(2) for i in range(16)]
    losses_worst += [(15, 2)]
    worst = measure_decoding_speed(code, losses_worst, STRIPE_BYTES, repeats=1)
    device_only = benchmark.pedantic(
        lambda: measure_decoding_speed(code, device_only_losses(16, 2),
                                       STRIPE_BYTES, repeats=1),
        rounds=1, iterations=1)
    print(f"\nworst-case: {worst.mb_per_second:.1f} MB/s, "
          f"device-only: {device_only.mb_per_second:.1f} MB/s")
    assert device_only.mb_per_second > worst.mb_per_second
