"""Micro-benchmarks of the core encode/decode primitives.

Unlike the per-figure harnesses (which sweep configurations once and
assert trends), these use pytest-benchmark's statistical timing on the
paper's running example and on the n=16, r=16 configuration so that
regressions in the hot paths show up as timing changes.
"""

import numpy as np
import pytest

from repro.codes.sd import SDCode
from repro.core import StairCode, StairConfig
from repro.bench.speed import worst_case_losses_stair

SYMBOL = 4096


def _data(code: StairCode, seed: int = 0):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, 256, SYMBOL, dtype=np.uint8)
            for _ in range(code.config.num_data_symbols)]


@pytest.fixture(scope="module")
def example_code():
    return StairCode(StairConfig(n=8, r=4, m=2, e=(1, 1, 2)))


@pytest.fixture(scope="module")
def large_code():
    return StairCode(StairConfig(n=16, r=16, m=2, e=(1, 3)))


def test_bench_stair_encode_example(example_code, benchmark):
    data = _data(example_code)
    benchmark(lambda: example_code.encode(data))


def test_bench_stair_encode_upstairs(large_code, benchmark):
    data = _data(large_code)
    benchmark(lambda: large_code.encode(data, method="upstairs"))


def test_bench_stair_encode_downstairs(large_code, benchmark):
    data = _data(large_code)
    benchmark(lambda: large_code.encode(data, method="downstairs"))


def test_bench_stair_decode_worst_case(large_code, benchmark):
    data = _data(large_code)
    stripe = large_code.encode(data)
    losses = worst_case_losses_stair(16, 16, 2, (1, 3))
    damaged = stripe.erase(losses)
    benchmark(lambda: large_code.decode(damaged))


def test_bench_sd_encode(benchmark):
    sd = SDCode(n=16, r=16, m=2, s=3)
    rng = np.random.default_rng(0)
    data = [rng.integers(0, 256, SYMBOL, dtype=np.uint8)
            for _ in range(sd.num_data_symbols)]
    sd.encode(data)  # build the encoding matrix outside the timed region
    benchmark(lambda: sd.encode(data))
