"""Throughput of the Monte Carlo reliability simulator.

The benchmark discipline here mirrors the speed benchmarks of §6: the
vectorized batch runner must not be a naive per-event Python loop.
Asserted floors (also acceptance criteria of the subsystem):

* 1,000 independent m = 1 cluster lifetimes for a ~100-device cluster
  in under 60 s, bit-for-bit reproducible from a seed;
* >= 1,000 lifetimes/s for an m = 2 SD cluster on the vectorized path
  (no event-engine fallback);
* >= 20,000 regeneration cycles/s for the rare-event estimator at the
  paper's 1/λ = 500,000 h m = 2 operating point (where direct
  simulation cannot converge at all);
* >= 25,000 snapshot rows/s for the failure-trace path end to end
  (parse the drive-stats CSV, reduce to censored lifespans, fit the
  piecewise-exponential hazard model);
* the sweep orchestrator (repro.scenario.sweep) is pure overhead on
  top of the engines: a parallel 4-cell fan-out stays within a lenient
  budget of the serial run (pool spawn included), and an all-hits
  cached replay serves >= 200 cells/s without touching any engine.

pytest-benchmark provides the statistical timing; the hard assertions
use wall-clock directly so they hold even without the plugin's
comparison machinery.
"""

import io
import os
import time

import numpy as np
import pytest

from repro.codes.registry import parse_code_spec
from repro.scenario import ScenarioSpec
from repro.scenario.sweep import SweepSpec, run_sweep
from repro.sim.domains import FailureDomains
from repro.sim.events import ClusterSimulation, Scenario
from repro.sim.lifetimes import ExponentialLifetime, ExponentialRepair
from repro.sim.montecarlo import (
    simulate_array_lifetimes,
    simulate_cluster_lifetimes,
)
from repro.sim.rare import estimate_rare_mttdl
from repro.sim.traces import (
    EmpiricalLifetime,
    generate_trace,
    load_drive_stats_csv,
    write_drive_stats_csv,
)

#: 13 arrays x 8 devices = 104 devices, the "100-device cluster" floor.
CLUSTER_ARRAYS = 13
CLUSTER_N = 8
CLUSTER_TRIALS = 1000

#: Rare-event floor: regeneration cycles at the paper's m = 2 operating
#: point (P_arr from the SD s=2 row of the validation table).
RARE_CYCLES = 100_000
RARE_P_ARR = 4.366e-09


def _run_rare_paper_m2(seed: int = 0):
    """The paper's §7 m = 2 operating point (1/λ = 500,000 h,
    1/μ = 17.8 h, MTTDL ~ 1e12 h): unreachable for direct Monte Carlo,
    a fixed budget of biased regeneration cycles for the rare-event
    estimator."""
    return estimate_rare_mttdl(
        CLUSTER_N, RARE_P_ARR, m=2, seed=seed,
        lifetime=ExponentialLifetime(500_000.0),
        repair=ExponentialRepair(17.8),
        target_rel_se=1e-9,  # never met: always runs the full budget
        max_cycles=RARE_CYCLES, batch_cycles=50_000)


def _run_cluster(seed: int = 0):
    return simulate_cluster_lifetimes(
        CLUSTER_N, CLUSTER_ARRAYS, p_arr=1e-4, trials=CLUSTER_TRIALS,
        seed=seed, lifetime=ExponentialLifetime(500_000.0),
        repair=ExponentialRepair(17.8))


def _run_m2_sd_cluster(seed: int = 0):
    """An SD(n=8, m=2) cluster in an accelerated-failure regime: short
    device lifetimes and long rebuilds make critical mode (and the
    P_arr sector trip) reachable within a tractable number of
    failure/repair cycles per lifetime."""
    return simulate_cluster_lifetimes(
        CLUSTER_N, CLUSTER_ARRAYS, p_arr=0.05, trials=CLUSTER_TRIALS,
        seed=seed, lifetime=ExponentialLifetime(50_000.0),
        repair=ExponentialRepair(100.0), m=2)


def _run_correlated_cluster(seed: int = 0):
    """The correlated-failure scenario of the validation bench: rack
    shocks under domain-spread placement (single-device groups), which
    adds a per-lane compound-Poisson term to every round."""
    return simulate_cluster_lifetimes(
        CLUSTER_N, CLUSTER_ARRAYS, p_arr=0.0, trials=CLUSTER_TRIALS,
        seed=seed, lifetime=ExponentialLifetime(500_000.0),
        repair=ExponentialRepair(17.8),
        domains=FailureDomains(racks=CLUSTER_N,
                               rack_shock_rate_per_hour=1e-4))


def test_cluster_lifetimes_under_60s():
    start = time.perf_counter()
    result = _run_cluster()
    elapsed = time.perf_counter() - start
    assert result.trials == CLUSTER_TRIALS
    assert result.losses == CLUSTER_TRIALS
    assert elapsed < 60.0, f"vectorized runner took {elapsed:.1f}s"


def test_cluster_lifetimes_reproducible():
    first = _run_cluster(seed=42)
    second = _run_cluster(seed=42)
    assert np.array_equal(first.times, second.times)
    third = _run_cluster(seed=43)
    assert not np.array_equal(first.times, third.times)


def test_m2_sd_cluster_sustains_1000_lifetimes_per_second():
    """Acceptance criterion: the vectorized m >= 2 path (not the
    ~100x slower event engine) simulates an m = 2 SD cluster at
    >= 1,000 lifetimes/s."""
    _run_m2_sd_cluster()  # warm numpy caches outside the timed window
    start = time.perf_counter()
    result = _run_m2_sd_cluster(seed=1)
    elapsed = time.perf_counter() - start
    assert result.trials == CLUSTER_TRIALS
    assert result.losses == CLUSTER_TRIALS
    assert result.metadata["m"] == 2
    rate = CLUSTER_TRIALS / elapsed
    assert rate >= 1000.0, (
        f"m=2 SD vectorized path ran at {rate:,.0f} lifetimes/s "
        f"(floor: 1,000/s)")


def test_m2_sd_cluster_reproducible():
    first = _run_m2_sd_cluster(seed=42)
    second = _run_m2_sd_cluster(seed=42)
    assert np.array_equal(first.times, second.times)


def test_correlated_cluster_sustains_500_lifetimes_per_second():
    """The failure-domain shock term must not demote the vectorized
    runner to event-engine speeds: >= 500 lifetimes/s with rack shocks
    active on every lane."""
    _run_correlated_cluster()  # warm numpy caches outside the timed window
    start = time.perf_counter()
    result = _run_correlated_cluster(seed=1)
    elapsed = time.perf_counter() - start
    assert result.trials == CLUSTER_TRIALS
    assert result.losses == CLUSTER_TRIALS
    rate = CLUSTER_TRIALS / elapsed
    assert rate >= 500.0, (
        f"correlated vectorized path ran at {rate:,.0f} lifetimes/s "
        f"(floor: 500/s)")


def test_correlated_cluster_reproducible():
    first = _run_correlated_cluster(seed=42)
    second = _run_correlated_cluster(seed=42)
    assert np.array_equal(first.times, second.times)


def test_rare_event_sustains_20000_cycles_per_second():
    """Acceptance criterion: the rare-event estimator simulates biased
    regeneration cycles at >= 20,000/s at the paper's true m = 2
    parameters, where direct Monte Carlo cannot converge at all."""
    _run_rare_paper_m2()  # warm numpy caches outside the timed window
    start = time.perf_counter()
    result = _run_rare_paper_m2(seed=1)
    elapsed = time.perf_counter() - start
    assert result.cycles == RARE_CYCLES
    assert result.loss_cycles > 0
    rate = result.cycles / elapsed
    assert rate >= 20_000.0, (
        f"rare-event estimator ran at {rate:,.0f} cycles/s "
        f"(floor: 20,000/s)")


def test_rare_event_reproducible():
    first = _run_rare_paper_m2(seed=42)
    second = _run_rare_paper_m2(seed=42)
    assert first.mttdl_hours == second.mttdl_hours
    assert first.loss_cycles == second.loss_cycles
    third = _run_rare_paper_m2(seed=43)
    assert first.mttdl_hours != third.mttdl_hours


#: Trace-path floor: snapshot rows parsed + fitted per second.
TRACE_ROWS_PER_SECOND = 25_000.0


def _snapshot_csv_text(num_devices: int = 1500, mttf_hours: float = 800.0,
                       observation_days: int = 120) -> tuple[str, int]:
    """A seeded in-memory drive-stats CSV and its snapshot row count."""
    trace = generate_trace(ExponentialLifetime(mttf_hours), num_devices,
                           observation_hours=observation_days * 24.0,
                           seed=9)
    buffer = io.StringIO()
    rows = write_drive_stats_csv(trace, buffer)
    return buffer.getvalue(), rows


def _parse_and_fit(text: str) -> EmpiricalLifetime:
    return EmpiricalLifetime.fit(load_drive_stats_csv(io.StringIO(text)))


def test_trace_fit_sustains_rows_per_second():
    """Acceptance criterion: the whole trace path -- CSV parse,
    censored-lifespan reduction, piecewise-exponential fit -- sustains
    >= 25,000 snapshot rows/s (a year of daily snapshots for a
    ~100-device fleet in under 1.5 s)."""
    text, rows = _snapshot_csv_text()
    _parse_and_fit(text)  # warm caches outside the timed window
    start = time.perf_counter()
    fitted = _parse_and_fit(text)
    elapsed = time.perf_counter() - start
    assert fitted.mean_hours > 0
    rate = rows / elapsed
    assert rate >= TRACE_ROWS_PER_SECOND, (
        f"trace parse+fit ran at {rate:,.0f} rows/s "
        f"(floor: {TRACE_ROWS_PER_SECOND:,.0f}/s)")


def test_trace_fit_reproducible():
    """Same CSV -> identical fitted hazards (no hidden state)."""
    text, _ = _snapshot_csv_text()
    first = _parse_and_fit(text)
    second = _parse_and_fit(text)
    assert np.array_equal(first.hazards, second.hazards)
    assert np.array_equal(first.breakpoints, second.breakpoints)


#: Sweep-orchestrator floors: a 4-cell MTTF grid over the vectorized
#: m = 1 runner, heavy enough (20,000 trials/cell) that per-cell
#: engine time dominates any honest orchestration cost.
SWEEP_TRIALS = 20_000
SWEEP_MTTF_GRID = [250_000.0, 500_000.0, 750_000.0, 1_000_000.0]
#: All-hits replay floor: cells served per second with zero engine work
#: (expand + hash + cache lookup only; measured ~3,000/s).
SWEEP_CACHED_CELLS_PER_SECOND = 200.0


def _sweep_4_cells() -> SweepSpec:
    base = ScenarioSpec.loads(f"""
version = 1
[code]
spec = "rs(n=8,r=16,m=1)"
[fleet]
arrays = {CLUSTER_ARRAYS}
[lifetime]
mttf_hours = 500000.0
[estimator]
trials = {SWEEP_TRIALS}
seed = 0
""")
    return SweepSpec(base=base, name="bench-4-cell",
                     grid={"lifetime.mttf_hours": list(SWEEP_MTTF_GRID)})


def test_sweep_parallel_fanout_within_serial_budget():
    """Acceptance criterion: fanning the 4-cell sweep over a
    multiprocessing pool returns bitwise-identical results and costs no
    more than the serial run divided by a lenient 0.85 efficiency
    factor, plus a fixed pool-spawn allowance -- the orchestrator may
    not add hidden per-cell work on either path.  (On a single-core
    runner the pool size clamps to 1 and the budget still holds.)"""
    sweep = _sweep_4_cells()
    run_sweep(sweep)  # warm numpy caches outside the timed windows
    start = time.perf_counter()
    serial = run_sweep(sweep)
    serial_elapsed = time.perf_counter() - start
    processes = min(4, os.cpu_count() or 1)
    start = time.perf_counter()
    parallel = run_sweep(sweep, processes=processes)
    parallel_elapsed = time.perf_counter() - start
    assert len(serial.cells) == len(SWEEP_MTTF_GRID)
    assert [c.result for c in parallel.cells] == [c.result
                                                  for c in serial.cells]
    budget = serial_elapsed / 0.85 + 1.5
    assert parallel_elapsed <= budget, (
        f"4-cell sweep with {processes} processes took "
        f"{parallel_elapsed:.2f}s (serial: {serial_elapsed:.2f}s, "
        f"budget: {budget:.2f}s)")


def test_sweep_cached_replay_is_pure_overhead(tmp_path):
    """Acceptance criterion: an all-hits replay of a cached sweep runs
    no engine at all -- >= 200 cells/s served straight from the
    content-addressed cache, bitwise identical to the computed run."""
    sweep = _sweep_4_cells()
    cache = tmp_path / "sweep-cache"
    first = run_sweep(sweep, cache_dir=cache)
    assert (first.hits, first.misses) == (0, len(SWEEP_MTTF_GRID))
    start = time.perf_counter()
    second = run_sweep(sweep, cache_dir=cache)
    elapsed = time.perf_counter() - start
    assert (second.hits, second.misses) == (len(SWEEP_MTTF_GRID), 0)
    assert [c.result for c in second.cells] == [c.result
                                                for c in first.cells]
    rate = len(second.cells) / elapsed
    assert rate >= SWEEP_CACHED_CELLS_PER_SECOND, (
        f"cached sweep replay served {rate:,.0f} cells/s "
        f"(floor: {SWEEP_CACHED_CELLS_PER_SECOND:,.0f}/s)")


def test_bench_sweep_cached_replay(benchmark, tmp_path):
    """Statistical timing of the pure-orchestration path (all hits)."""
    sweep = _sweep_4_cells()
    cache = tmp_path / "sweep-cache"
    run_sweep(sweep, cache_dir=cache)  # populate

    result = benchmark(lambda: run_sweep(sweep, cache_dir=cache))
    assert result.misses == 0


def test_bench_trace_parse_and_fit(benchmark):
    text, _ = _snapshot_csv_text()
    fitted = benchmark(lambda: _parse_and_fit(text))
    assert fitted.hazards.size >= 1


def test_bench_rare_event_paper_m2(benchmark):
    result = benchmark(_run_rare_paper_m2)
    assert result.loss_cycles > 0


def test_bench_vectorized_cluster(benchmark):
    result = benchmark(_run_cluster)
    assert result.losses == CLUSTER_TRIALS


def test_bench_vectorized_m2_sd_cluster(benchmark):
    result = benchmark(_run_m2_sd_cluster)
    assert result.losses == CLUSTER_TRIALS


def test_bench_vectorized_array_hard_regime(benchmark):
    """p_arr = 0: every loss needs the full second-failure race (~4000
    failure/rebuild cycles per lifetime), the runner's worst case."""
    result = benchmark(lambda: simulate_array_lifetimes(
        8, p_arr=0.0, trials=200, seed=0))
    assert result.losses == 200


def test_bench_event_engine_trajectory(benchmark):
    """One fully detailed trajectory (scrubs + sector errors + writes)."""
    code = parse_code_spec("rs(n=8,r=16,m=1)")
    scenario = Scenario(
        code=code, num_arrays=4, stripes_per_array=256,
        lifetime=ExponentialLifetime(50_000.0),
        repair=ExponentialRepair(17.8),
        scrub_interval_hours=168.0, write_rate_per_hour=0.1,
        horizon_hours=20_000.0)

    def run():
        return ClusterSimulation(scenario, np.random.default_rng(7)).run()

    result = benchmark(run)
    assert result.events_processed > 0


def test_throughput_summary(capsys):
    """Report lifetimes/second for the acceptance configurations."""
    start = time.perf_counter()
    _run_cluster()
    elapsed = time.perf_counter() - start
    rate = CLUSTER_TRIALS / elapsed
    start = time.perf_counter()
    _run_m2_sd_cluster()
    elapsed_m2 = time.perf_counter() - start
    rate_m2 = CLUSTER_TRIALS / elapsed_m2
    start = time.perf_counter()
    _run_rare_paper_m2()
    elapsed_rare = time.perf_counter() - start
    rate_rare = RARE_CYCLES / elapsed_rare
    with capsys.disabled():
        print(f"\n[bench_sim_throughput] {CLUSTER_TRIALS} lifetimes of a "
              f"{CLUSTER_ARRAYS * CLUSTER_N}-device cluster in "
              f"{elapsed:.2f}s ({rate:,.0f} lifetimes/s); m=2 SD in "
              f"{elapsed_m2:.2f}s ({rate_m2:,.0f} lifetimes/s); "
              f"rare-event paper m=2: {RARE_CYCLES} cycles in "
              f"{elapsed_rare:.2f}s ({rate_rare:,.0f} cycles/s)")
    assert rate > CLUSTER_TRIALS / 60.0
    assert rate_m2 > CLUSTER_TRIALS / 60.0
    assert rate_rare > 20_000.0
