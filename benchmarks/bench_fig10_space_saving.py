"""Figure 10: devices saved by STAIR codes over traditional erasure codes.

Reproduced claims (§6.1):

* the saving depends only on s, m' and r and equals m' - s/r devices;
* as r grows the saving approaches m', and it is maximised when m' = s;
* SD codes always save s - s/r devices (the STAIR maximum) but only exist
  for s <= 3, whereas STAIR codes can save more than three devices for
  larger s.
"""

import pytest

from repro.bench.figures import figure10_rows
from repro.bench.reporting import print_table


@pytest.fixture(scope="module")
def rows():
    return figure10_rows(s_values=(1, 2, 3, 4, 6), r_values=(4, 8, 16, 24, 32))


def test_fig10_space_saving(rows, benchmark):
    benchmark.pedantic(lambda: figure10_rows(), rounds=1, iterations=1)
    print_table(
        ["s", "m'", "r", "STAIR devices saved", "SD devices saved"],
        [[row["s"], row["m_prime"], row["r"], row["stair_devices_saved"],
          row["sd_devices_saved"]] for row in rows],
        title="Figure 10: devices saved vs traditional erasure codes",
    )

    # Saving increases with r and is maximal at m' = s, where it matches SD.
    for row in rows:
        if row["m_prime"] == row["s"]:
            assert row["stair_devices_saved"] == pytest.approx(
                row["sd_devices_saved"])
        assert row["stair_devices_saved"] <= row["sd_devices_saved"] + 1e-12

    by_r = [row["stair_devices_saved"] for row in rows
            if row["s"] == 4 and row["m_prime"] == 4]
    assert by_r == sorted(by_r), "saving must grow with r"

    # STAIR can save more than three devices for s > 3 (beyond SD's range).
    big = [row for row in rows if row["s"] == 6 and row["m_prime"] == 6
           and row["r"] == 32]
    assert big and big[0]["stair_devices_saved"] > 3
