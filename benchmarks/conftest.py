"""Shared fixtures/path setup for the benchmark suite.

Ensures the package is importable even when it has not been installed
(e.g. running ``pytest benchmarks/`` straight from a source checkout).
"""

import pathlib
import sys

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))
