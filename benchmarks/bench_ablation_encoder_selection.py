"""Ablation: automatic encoding-method selection (§5.3 implementation note).

The paper's implementation pre-computes the Mult_XOR counts of upstairs,
downstairs and standard encoding for the configured parameters and always
uses the cheapest.  This ablation quantifies what that choice buys:
across a grid of configurations it compares the cost of always using a
single method against the auto-selected one.
"""

import pytest

from repro.bench.reporting import print_table
from repro.core import StairConfig, encoding_costs, enumerate_e_vectors
from repro.core.stair import StairCode

GRID = [(n, r, m, e)
        for n in (8, 16)
        for r in (8, 16, 32)
        for m in (1, 2)
        for s in (2, 3, 4)
        for e in enumerate_e_vectors(s, e_max_cap=min(r, 4))]


@pytest.fixture(scope="module")
def cost_rows():
    rows = []
    for n, r, m, e in GRID:
        config = StairConfig(n=n, r=r, m=m, e=e)
        costs = encoding_costs(config)
        rows.append({
            "n": n, "r": r, "m": m, "e": e,
            "upstairs": costs.upstairs, "downstairs": costs.downstairs,
            "auto": min(costs.upstairs, costs.downstairs),
        })
    return rows


def test_ablation_encoder_selection(cost_rows, benchmark):
    benchmark.pedantic(
        lambda: encoding_costs(StairConfig(n=8, r=16, m=2, e=(1, 1, 2))),
        rounds=1, iterations=1)

    total_up = sum(row["upstairs"] for row in cost_rows)
    total_down = sum(row["downstairs"] for row in cost_rows)
    total_auto = sum(row["auto"] for row in cost_rows)
    print_table(
        ["policy", "total Mult_XORs", "overhead vs auto"],
        [["always upstairs", total_up, f"{total_up / total_auto - 1:.1%}"],
         ["always downstairs", total_down, f"{total_down / total_auto - 1:.1%}"],
         ["auto (paper)", total_auto, "0.0%"]],
        title=f"Encoder-selection ablation over {len(cost_rows)} configurations",
    )

    # Auto selection is never worse than either fixed policy and strictly
    # better than both overall (each fixed policy loses somewhere).
    assert total_auto <= total_up and total_auto <= total_down
    assert total_auto < max(total_up, total_down)
    assert any(row["upstairs"] < row["downstairs"] for row in cost_rows)
    assert any(row["downstairs"] < row["upstairs"] for row in cost_rows)


def test_ablation_selection_matches_runtime_choice(benchmark):
    """StairCode.select_encoding_method picks the analytic winner."""
    def check():
        for n, r, m, e in GRID[:12]:
            code = StairCode(StairConfig(n=n, r=r, m=m, e=e))
            costs = encoding_costs(code.config)
            expected = ("upstairs" if costs.upstairs <= costs.downstairs
                        else "downstairs")
            assert code.select_encoding_method() == expected
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)
