"""Figure 14: update penalty of STAIR codes vs the coverage vector e.

Paper setting: n = 16, s = 4, r in {8, 16, 24, 32}, m in {1, 2, 3}.
Reproduced claims (§6.3):

* the update penalty increases with m;
* for a fixed s it generally increases with e_max (a taller stair couples
  more rows of row parities to the global parities).
"""

import pytest

from repro.bench.figures import figure14_rows
from repro.bench.reporting import print_table

R_VALUES = (8, 16, 24, 32)


@pytest.fixture(scope="module")
def rows():
    return figure14_rows(n=16, s=4, m_values=(1, 2, 3), r_values=R_VALUES)


def test_fig14_update_penalty(rows, benchmark):
    benchmark.pedantic(lambda: figure14_rows(r_values=(8,), m_values=(1,)),
                       rounds=1, iterations=1)
    print_table(
        ["r", "e", "m", "update penalty"],
        [[row["r"], str(row["e"]), row["m"], row["update_penalty"]]
         for row in rows],
        title="Figure 14: STAIR update penalty (n=16, s=4)",
    )

    # Penalty increases with m for every (r, e).
    for r in R_VALUES:
        vectors = {row["e"] for row in rows if row["r"] == r}
        for e in vectors:
            per_m = {row["m"]: row["update_penalty"] for row in rows
                     if row["r"] == r and row["e"] == e}
            assert per_m[1] < per_m[2] < per_m[3]

    # For fixed s, the largest e_max configuration costs at least as much as
    # the all-ones configuration (e = (4) vs e = (1,1,1,1)).
    for r in R_VALUES:
        for m in (1, 2, 3):
            tall = next(row["update_penalty"] for row in rows
                        if row["r"] == r and row["m"] == m and row["e"] == (4,))
            flat = next(row["update_penalty"] for row in rows
                        if row["r"] == r and row["m"] == m
                        and row["e"] == (1, 1, 1, 1))
            assert tall >= flat
