"""Figure 15: update penalty of STAIR vs SD vs Reed-Solomon codes.

Paper setting: n = 16, r = 16, m in {1, 2, 3}; STAIR s <= 4 with min/avg/
max over every e; SD s <= 3; RS for reference.  Reproduced claims (§6.3):

* both STAIR and SD codes pay a higher update penalty than RS codes;
* for a given s, the min-max range of STAIR penalties (over e) covers the
  SD penalty, while the STAIR average can be somewhat higher;
* the penalty grows with s.
"""

import pytest

from repro.bench.figures import figure15_rows
from repro.bench.reporting import print_table


@pytest.fixture(scope="module")
def rows():
    return figure15_rows(n=16, r=16, m_values=(1, 2, 3))


def test_fig15_update_penalty_comparison(rows, benchmark):
    benchmark.pedantic(lambda: figure15_rows(m_values=(1,)),
                       rounds=1, iterations=1)
    print_table(
        ["m", "code", "s", "avg penalty", "min", "max"],
        [[row["m"], row["code"], row["s"], row["penalty"], row["min"],
          row["max"]] for row in rows],
        title="Figure 15: update penalty, RS vs SD vs STAIR (n=16, r=16)",
    )

    for m in (1, 2, 3):
        rs = next(row["penalty"] for row in rows
                  if row["m"] == m and row["code"] == "RS")
        # Every STAIR / SD configuration costs at least as much as RS.
        for row in rows:
            if row["m"] == m and row["code"] != "RS":
                assert row["penalty"] >= rs

        # The STAIR min/max band (over e) brackets the SD value for each s.
        for s in (1, 2, 3):
            sd = next(row["penalty"] for row in rows
                      if row["m"] == m and row["code"] == "SD" and row["s"] == s)
            stair = next(row for row in rows
                         if row["m"] == m and row["code"] == "STAIR"
                         and row["s"] == s)
            assert stair["min"] <= sd * 1.05
            assert stair["max"] >= sd * 0.95

        # Penalty grows with s for STAIR averages.
        averages = [row["penalty"] for row in rows
                    if row["m"] == m and row["code"] == "STAIR"]
        assert averages == sorted(averages)
