"""Intra-device redundancy (IDR) scheme [Dholakia et al., TOS '08].

Each data chunk reserves its bottom ``epsilon`` sectors for an
intra-chunk (r, r - epsilon) MDS code, protecting against up to
``epsilon`` sector failures *per chunk*; ``m`` whole devices additionally
hold row parities protecting against device failures.  The paper shows
(§2) that this is equivalent to a STAIR code with
``e = (epsilon, ..., epsilon)`` and ``m' = n - m``, and is therefore less
space-efficient than a general STAIR configuration.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.codes.base import Grid, StripeCode
from repro.core.exceptions import DecodingFailureError, EncodingInputError
from repro.gf.field import GField, get_field
from repro.gf.regions import OperationCounter, RegionOps
from repro.rs.cauchy import CauchyRSCode


class IDRScheme(StripeCode):
    """Intra-device redundancy plus device-level RS parity."""

    name = "IDR"

    def __init__(self, n: int, r: int, m: int, epsilon: int,
                 field: GField | None = None) -> None:
        if not (0 < m < n):
            raise EncodingInputError(f"require 0 < m < n, got m={m}, n={n}")
        if not (0 < epsilon < r):
            raise EncodingInputError(
                f"require 0 < epsilon < r, got epsilon={epsilon}, r={r}"
            )
        self._n, self._r, self.m, self.epsilon = n, r, m, epsilon
        self.field = field or get_field(8 if max(n, r) <= 256 else 16)
        self.row_code = CauchyRSCode(n, n - m, self.field)
        self.chunk_code = CauchyRSCode(r, r - epsilon, self.field)
        self.counter = OperationCounter()
        #: Region-operation backend; swap in ReferenceRegionOps to drive
        #: the scalar reference path (differential tests do this).
        self.ops_class: type[RegionOps] = RegionOps

    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        return self._n

    @property
    def r(self) -> int:
        return self._r

    @property
    def num_data_symbols(self) -> int:
        return (self._r - self.epsilon) * (self._n - self.m)

    def data_positions(self) -> list[tuple[int, int]]:
        return [(i, j) for i in range(self._r - self.epsilon)
                for j in range(self._n - self.m)]

    # ------------------------------------------------------------------ #
    def encode(self, data: Sequence[np.ndarray]) -> Grid:
        if len(data) != self.num_data_symbols:
            raise EncodingInputError(
                f"expected {self.num_data_symbols} data symbols, got {len(data)}"
            )
        ops = self.ops_class(self.field, self.counter)
        k_cols = self._n - self.m
        k_rows = self._r - self.epsilon
        grid: Grid = [[None] * self._n for _ in range(self._r)]
        for i in range(k_rows):
            for j in range(k_cols):
                grid[i][j] = np.asarray(data[i * k_cols + j])
        # Intra-chunk parities for every data chunk.
        for j in range(k_cols):
            column = [grid[i][j] for i in range(k_rows)]
            parities = self.chunk_code.encode(column, ops)
            for h, symbol in enumerate(parities):
                grid[k_rows + h][j] = symbol
        # Device-level row parities over all r rows (they protect the IDR
        # parities as well).
        for i in range(self._r):
            row_data = [grid[i][j] for j in range(k_cols)]
            parities = self.row_code.encode(row_data, ops)
            for k, symbol in enumerate(parities):
                grid[i][k_cols + k] = symbol
        return grid

    def decode(self, stripe: Grid) -> Grid:
        """Iterative row-wise / chunk-wise repair (product-code peeling)."""
        ops = self.ops_class(self.field, self.counter)
        grid: Grid = [[None if cell is None else np.asarray(cell) for cell in row]
                      for row in stripe]
        k_cols = self._n - self.m

        for _ in range(self._n + self._r):
            progress = False
            # Row repair via the device-level code.
            for i in range(self._r):
                missing = [j for j in range(self._n) if grid[i][j] is None]
                if missing and len(missing) <= self.m:
                    recovered = self.row_code.recover(list(grid[i]), ops,
                                                      wanted=missing)
                    for j, symbol in recovered.items():
                        grid[i][j] = symbol
                    progress = True
            # Chunk repair via the intra-device code (data chunks only).
            for j in range(k_cols):
                column = [grid[i][j] for i in range(self._r)]
                missing = [i for i in range(self._r) if column[i] is None]
                if missing and len(missing) <= self.epsilon:
                    recovered = self.chunk_code.recover(column, ops, wanted=missing)
                    for i, symbol in recovered.items():
                        grid[i][j] = symbol
                    progress = True
            lost = [(i, j) for i in range(self._r) for j in range(self._n)
                    if grid[i][j] is None]
            if not lost:
                return grid
            if not progress:
                break
        lost = [(i, j) for i in range(self._r) for j in range(self._n)
                if grid[i][j] is None]
        raise DecodingFailureError(
            "IDR repair stalled: failure pattern outside coverage", unrecovered=lost)

    def tolerates(self, lost_positions: Sequence[tuple[int, int]]) -> bool:
        try:
            per_chunk: dict[int, int] = {}
            for _, j in lost_positions:
                per_chunk[j] = per_chunk.get(j, 0) + 1
            failed_devices = sum(1 for c, k in per_chunk.items() if k > self.epsilon
                                 or c >= self._n - self.m and k > 0)
            return failed_devices <= self.m
        except Exception:  # pragma: no cover - defensive
            return False

    def redundant_sectors(self) -> int:
        """Redundant sectors per stripe (the §2 space comparison vs STAIR)."""
        return self.epsilon * (self._n - self.m) + self.m * self._r
