"""The generic stripe-code interface shared by STAIR and all baselines.

The storage-array simulator, the benchmark harness and the reliability
models are written against this interface so that every code family
(STAIR, plain Reed-Solomon, SD, IDR) is interchangeable.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence

import numpy as np

Grid = list[list[Optional[np.ndarray]]]


class StripeCode(abc.ABC):
    """An erasure code operating on an r x n stripe of equal-size symbols."""

    #: Human-readable code family name ("STAIR", "RS", "SD", "IDR").
    name: str = "abstract"

    @property
    @abc.abstractmethod
    def n(self) -> int:
        """Number of chunks (devices) per stripe."""

    @property
    @abc.abstractmethod
    def r(self) -> int:
        """Number of symbols (sectors) per chunk."""

    @property
    @abc.abstractmethod
    def num_data_symbols(self) -> int:
        """User-data symbols per stripe."""

    @property
    def num_parity_symbols(self) -> int:
        """Parity symbols per stripe."""
        return self.n * self.r - self.num_data_symbols

    @property
    def storage_efficiency(self) -> float:
        """Fraction of the stripe devoted to user data."""
        return self.num_data_symbols / (self.n * self.r)

    @abc.abstractmethod
    def encode(self, data: Sequence[np.ndarray]) -> Grid:
        """Encode ``num_data_symbols`` symbols into a full r x n grid."""

    @abc.abstractmethod
    def decode(self, stripe: Grid) -> Grid:
        """Recover lost (``None``) symbols of a damaged stripe.

        Implementations raise a code-specific error when the failure
        pattern is outside their coverage.
        """

    @abc.abstractmethod
    def data_positions(self) -> Sequence[tuple[int, int]]:
        """Stripe coordinates of the data symbols, in linear order."""

    # ------------------------------------------------------------------ #
    # Convenience defaults
    # ------------------------------------------------------------------ #
    def extract_data(self, stripe: Grid) -> list[np.ndarray]:
        """Pull the user data symbols (linear order) out of a full stripe."""
        out = []
        for row, col in self.data_positions():
            symbol = stripe[row][col]
            if symbol is None:
                raise ValueError(f"data symbol at ({row},{col}) is lost")
            out.append(symbol)
        return out

    def tolerates(self, lost_positions: Sequence[tuple[int, int]]) -> bool:
        """Best-effort coverage predicate; defaults to attempting a decode."""
        raise NotImplementedError

    def describe(self) -> str:
        """One-line description used in benchmark tables."""
        return (f"{self.name}(n={self.n}, r={self.r}, "
                f"data={self.num_data_symbols}/{self.n * self.r})")
