"""Sector-disk (SD) codes [Plank & Blaum, FAST '13 / TOS '14].

SD codes devote ``m`` entire devices plus ``s`` individual sectors of a
stripe to parity and tolerate the failure of any ``m`` devices plus any
``s`` sectors.  They are the paper's main point of comparison: more
space-efficient than device-level RS, but only known to exist for
``s <= 3`` and encoded (in the authors' released implementation) "in a
decoding manner without any parity reuse" -- which is why STAIR codes
out-run them.

This module reproduces that baseline:

* the stripe layout (``m`` parity devices; ``s`` parity sectors in the
  last row of the right-most data devices);
* a parity-check construction with per-row MDS equations plus ``s``
  Vandermonde-style global equations.  The published SD constructions
  rely on exhaustive coefficient searches; we provide
  :func:`SDCode.construct`, which searches a small family of coefficient
  bases and *verifies* the SD property exhaustively for small
  configurations.  For large benchmark configurations the default
  coefficients are used unverified -- exactly the situation of the
  original codes beyond their published parameter range -- because the
  performance comparison only exercises the encoding/decoding algorithm;
* a no-reuse encoder (every parity symbol is a dense combination of data
  symbols obtained by solving the parity-check system once) and a
  syndrome-based decoder.

The word size is chosen as the smallest of {8, 16} for which the stripe's
``r*n`` symbols have distinct Vandermonde coefficients, mirroring the
paper's observation that SD codes sometimes need ``w > 8`` while STAIR
codes always fit in GF(2^8).
"""

from __future__ import annotations

from itertools import combinations
from typing import Optional, Sequence

import numpy as np

from repro.codes.base import Grid, StripeCode
from repro.core.exceptions import DecodingFailureError, EncodingInputError
from repro.gf.field import GField, get_field
from repro.gf.matrix import GFMatrix, SingularMatrixError
from repro.gf.regions import OperationCounter, RegionOps
from repro.rs.cauchy import CauchyRSCode


class SDConstructionError(ValueError):
    """Raised when no verified SD construction is found by the search."""


class SDCode(StripeCode):
    """A sector-disk code with ``m`` parity devices and ``s`` parity sectors."""

    name = "SD"

    def __init__(self, n: int, r: int, m: int, s: int,
                 field: GField | None = None, global_base: int = 2,
                 global_rows: np.ndarray | None = None) -> None:
        if not (0 <= m < n):
            raise EncodingInputError(f"require 0 <= m < n, got m={m}, n={n}")
        if r < 1 or s < 0:
            raise EncodingInputError("require r >= 1 and s >= 0")
        if s > n - m:
            raise EncodingInputError(
                f"s={s} parity sectors cannot exceed the n-m={n - m} data devices "
                "in the last row"
            )
        self._n, self._r, self.m, self.s = n, r, m, s
        if field is None:
            # Need r*n distinct non-zero powers of the primitive element for
            # the global equations, hence the order must exceed r*n.
            field = get_field(8) if r * n < 256 else get_field(16)
        self.field = field
        self.global_base = global_base
        if global_rows is not None:
            global_rows = np.asarray(global_rows, dtype=np.int64)
            if global_rows.shape != (s, r * n):
                raise EncodingInputError(
                    f"global_rows must have shape ({s}, {r * n})"
                )
        self.global_rows = global_rows
        self.row_code = CauchyRSCode(n, n - m, self.field) if m else None
        self.counter = OperationCounter()
        #: Region-operation backend; swap in ReferenceRegionOps to drive
        #: the scalar reference path (differential tests do this).
        self.ops_class: type[RegionOps] = RegionOps

        self._parity_positions = self._build_parity_positions()
        self._parity_lookup = {pos: k for k, pos in enumerate(self._parity_positions)}
        self._data_positions = [
            (i, j) for i in range(r) for j in range(n)
            if (i, j) not in self._parity_lookup
        ]
        self._data_lookup = {pos: k for k, pos in enumerate(self._data_positions)}
        self._check_matrix = self._build_check_matrix()
        self._encoding_matrix: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # Layout
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        return self._n

    @property
    def r(self) -> int:
        return self._r

    @property
    def num_data_symbols(self) -> int:
        return self._r * self._n - len(self._parity_positions)

    def data_positions(self) -> list[tuple[int, int]]:
        return list(self._data_positions)

    def parity_positions(self) -> list[tuple[int, int]]:
        """Stripe coordinates of all parity symbols (row parities then globals)."""
        return list(self._parity_positions)

    def _build_parity_positions(self) -> list[tuple[int, int]]:
        positions = [(i, j) for i in range(self._r)
                     for j in range(self._n - self.m, self._n)]
        # Global parity sectors: the last row of the right-most data devices.
        for q in range(self.s):
            positions.append((self._r - 1, self._n - self.m - self.s + q))
        return positions

    # ------------------------------------------------------------------ #
    # Parity-check matrix
    # ------------------------------------------------------------------ #
    def _symbol_index(self, row: int, col: int) -> int:
        return row * self._n + col

    def _build_check_matrix(self) -> np.ndarray:
        """(m*r + s) x (r*n) parity-check matrix over the field."""
        f = self.field
        equations = self.m * self._r + self.s
        h = np.zeros((equations, self._r * self._n), dtype=np.int64)

        # Per-row MDS equations: parity k of row i equals the Cauchy
        # combination of that row's data symbols.
        if self.m:
            parity_block = self.row_code.parity_matrix().data  # (n-m) x m
            for i in range(self._r):
                for k in range(self.m):
                    eq = i * self.m + k
                    for j in range(self._n - self.m):
                        h[eq, self._symbol_index(i, j)] = parity_block[j, k]
                    h[eq, self._symbol_index(i, self._n - self.m + k)] = 1

        # Global equations: explicit coefficient rows if supplied, otherwise
        # Vandermonde rows over the chosen base.
        for q in range(self.s):
            eq = self.m * self._r + q
            if self.global_rows is not None:
                h[eq, :] = self.global_rows[q]
                continue
            for i in range(self._r):
                for j in range(self._n):
                    idx = self._symbol_index(i, j)
                    h[eq, idx] = f.pow(self.global_base, (q + 1) * idx)
        return h

    # ------------------------------------------------------------------ #
    # Encoding (no parity reuse: dense solve of the check system)
    # ------------------------------------------------------------------ #
    def encoding_matrix(self) -> np.ndarray:
        """(num_parities x num_data) dense matrix mapping data to parities.

        Obtained by solving the parity-check system with the parity
        positions treated as erasures; cached after the first call.
        """
        if self._encoding_matrix is not None:
            return self._encoding_matrix
        parity_idx = [self._symbol_index(*pos) for pos in self._parity_positions]
        data_idx = [self._symbol_index(*pos) for pos in self._data_positions]
        h_parity = GFMatrix(self._check_matrix[:, parity_idx], self.field)
        h_data = GFMatrix(self._check_matrix[:, data_idx], self.field)
        try:
            inv = h_parity.inverse()
        except SingularMatrixError as exc:
            raise SDConstructionError(
                "parity-position sub-matrix is singular; the SD coefficients "
                "do not form a valid code for this configuration"
            ) from exc
        self._encoding_matrix = inv.matmul(h_data).data
        return self._encoding_matrix

    def encode(self, data: Sequence[np.ndarray]) -> Grid:
        if len(data) != self.num_data_symbols:
            raise EncodingInputError(
                f"expected {self.num_data_symbols} data symbols, got {len(data)}"
            )
        ops = self.ops_class(self.field, self.counter)
        matrix = self.encoding_matrix()
        grid: Grid = [[None] * self._n for _ in range(self._r)]
        data_list = [np.asarray(d) for d in data]
        for pos, symbol in zip(self._data_positions, data_list):
            grid[pos[0]][pos[1]] = symbol
        # All parities (row parities and global sectors) in one bulk
        # matrix-times-plane kernel over the stacked data symbols.
        parities = ops.matrix_vector(matrix, data_list)
        for (row, col), symbol in zip(self._parity_positions, parities):
            grid[row][col] = symbol
        return grid

    # ------------------------------------------------------------------ #
    # Decoding (syndrome based)
    # ------------------------------------------------------------------ #
    def decode(self, stripe: Grid) -> Grid:
        ops = self.ops_class(self.field, self.counter)
        lost = [(i, j) for i in range(self._r) for j in range(self._n)
                if stripe[i][j] is None]
        if not lost:
            return [[np.asarray(cell) for cell in row] for row in stripe]
        if len(lost) > self.m * self._r + self.s:
            raise DecodingFailureError(
                f"{len(lost)} lost symbols exceed the {self.m * self._r + self.s} "
                "parity symbols of the SD code", unrecovered=lost)

        lost_idx = [self._symbol_index(i, j) for i, j in lost]
        h_lost = self._check_matrix[:, lost_idx]
        equation_rows = self._independent_rows(h_lost, len(lost))
        if equation_rows is None:
            raise DecodingFailureError(
                "failure pattern is not covered by this SD code", unrecovered=lost)

        # Syndromes of the selected equations over the surviving symbols:
        # stack the survivors into one plane and apply the corresponding
        # columns of the parity-check matrix with the bulk kernel.
        surviving = [(i, j) for i in range(self._r) for j in range(self._n)
                     if stripe[i][j] is not None]
        surviving_idx = [self._symbol_index(i, j) for i, j in surviving]
        survivors = [np.asarray(stripe[i][j]) for i, j in surviving]
        check_sub = self._check_matrix[np.ix_(equation_rows, surviving_idx)]
        syndromes = ops.matrix_vector(check_sub, survivors)

        solver = GFMatrix(h_lost[equation_rows, :], self.field).inverse()
        repaired = [[None if cell is None else np.asarray(cell) for cell in row]
                    for row in stripe]
        recovered = ops.matrix_vector(solver.data, syndromes)
        for (i, j), symbol in zip(lost, recovered):
            repaired[i][j] = symbol
        return repaired  # type: ignore[return-value]

    def _independent_rows(self, matrix: np.ndarray,
                          needed: int) -> list[int] | None:
        """Greedily pick ``needed`` equation rows with full column rank.

        A single incremental Gaussian elimination: each candidate row is
        reduced against the pivots collected so far and kept only if it
        contributes a new pivot column.
        """
        f = self.field
        selected: list[int] = []
        pivots: list[tuple[int, np.ndarray]] = []  # (pivot column, reduced row)
        for row_index in range(matrix.shape[0]):
            row = matrix[row_index].astype(np.int64).copy()
            for col, pivot_row in pivots:
                factor = int(row[col])
                if factor:
                    row ^= f.mul_vector(factor, pivot_row).astype(np.int64)
            nonzero = np.nonzero(row)[0]
            if nonzero.size == 0:
                continue
            col = int(nonzero[0])
            row = f.mul_vector(f.inv(int(row[col])), row).astype(np.int64)
            pivots.append((col, row))
            selected.append(row_index)
            if len(selected) == needed:
                return selected
        return None

    @staticmethod
    def _symbol_size(stripe: Grid) -> int:
        for row in stripe:
            for cell in row:
                if cell is not None:
                    return len(cell)
        raise DecodingFailureError("stripe contains no surviving symbols")

    # ------------------------------------------------------------------ #
    # SD-property verification and construction search
    # ------------------------------------------------------------------ #
    def tolerates(self, lost_positions: Sequence[tuple[int, int]]) -> bool:
        lost_idx = [self._symbol_index(i, j) for i, j in lost_positions]
        if len(lost_idx) > self.m * self._r + self.s:
            return False
        sub = GFMatrix(self._check_matrix[:, lost_idx], self.field)
        return sub.rank() == len(lost_idx)

    def verify_sd_property(self, max_patterns: int | None = 4000,
                           rng: np.random.Generator | None = None) -> bool:
        """Check that every m-device + s-sector failure pattern is decodable.

        Exhaustive for small stripes; falls back to ``max_patterns`` random
        patterns when the space is larger.
        """
        device_patterns = list(combinations(range(self._n), self.m))
        rng = rng or np.random.default_rng(7)
        for devices in device_patterns:
            device_cells = [(i, j) for j in devices for i in range(self._r)]
            surviving = [(i, j) for i in range(self._r) for j in range(self._n)
                         if j not in devices]
            sector_patterns = list(combinations(surviving, self.s))
            if max_patterns is not None and len(sector_patterns) > max_patterns:
                chosen = rng.choice(len(sector_patterns),
                                    size=max_patterns, replace=False)
                sector_patterns = [sector_patterns[int(c)] for c in chosen]
            for sectors in sector_patterns:
                if not self.tolerates(device_cells + list(sectors)):
                    return False
        return True

    @classmethod
    def construct(cls, n: int, r: int, m: int, s: int,
                  field: GField | None = None,
                  bases: Sequence[int] = (2, 3, 4, 5, 6, 7, 9, 11, 13, 19),
                  random_trials: int = 40, seed: int = 2014,
                  max_patterns: int | None = 2000) -> "SDCode":
        """Search for a verified SD construction.

        Mirrors the exhaustive-search flavour of the published SD
        constructions: Vandermonde-style global equations over a family of
        bases are tried first, then ``random_trials`` random global
        coefficient rows, until one candidate passes
        :meth:`verify_sd_property`.  Only intended for small
        configurations; the verification cost grows combinatorially.
        """
        candidates: list[SDCode] = []

        def try_candidate(**kwargs) -> SDCode | None:
            try:
                code = cls(n, r, m, s, field=field, **kwargs)
                code.encoding_matrix()
            except (SDConstructionError, SingularMatrixError, ValueError):
                return None
            candidates.append(code)
            if code.verify_sd_property(max_patterns=max_patterns):
                return code
            return None

        for base in bases:
            found = try_candidate(global_base=base)
            if found is not None:
                return found

        rng = np.random.default_rng(seed)
        if field is None:
            field_for_order = get_field(8) if r * n < 256 else get_field(16)
        else:
            field_for_order = field
        order = field_for_order.order
        for _ in range(random_trials):
            rows = rng.integers(1, order, size=(s, r * n), dtype=np.int64)
            found = try_candidate(global_rows=rows)
            if found is not None:
                return found

        if not candidates:
            raise SDConstructionError(
                f"no SD construction found for n={n}, r={r}, m={m}, s={s}"
            )
        raise SDConstructionError(
            f"no *verified* SD construction found for n={n}, r={r}, m={m}, s={s}; "
            "the unverified default may still be used for performance studies"
        )

    # ------------------------------------------------------------------ #
    # Analysis helpers
    # ------------------------------------------------------------------ #
    def update_penalty(self) -> float:
        """Average parity symbols touched per data-symbol update."""
        matrix = self.encoding_matrix()
        k = self.num_data_symbols
        return int(np.count_nonzero(matrix)) / k if k else 0.0

    def mult_xor_count(self) -> int:
        """Mult_XORs per encoded stripe (no parity reuse)."""
        return int(np.count_nonzero(self.encoding_matrix()))
