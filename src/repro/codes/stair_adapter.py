"""Adapter exposing :class:`~repro.core.stair.StairCode` as a
:class:`~repro.codes.base.StripeCode`.

This lets the storage-array simulator, failure-injection tests and the
benchmark harness treat STAIR codes and the baseline codes uniformly.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.codes.base import Grid, StripeCode
from repro.core.config import StairConfig
from repro.core.stair import StairCode


class StairStripeCode(StripeCode):
    """A STAIR code behind the generic stripe-code interface."""

    name = "STAIR"

    def __init__(self, config: StairConfig | None = None, *,
                 n: int | None = None, r: int | None = None,
                 m: int | None = None, e: Sequence[int] | None = None,
                 method: str = "auto") -> None:
        if config is None:
            if None in (n, r, m) or e is None:
                raise ValueError("provide either a StairConfig or n, r, m and e")
            config = StairConfig(n=n, r=r, m=m, e=tuple(e))
        self.code = StairCode(config, method=method)
        self.config = config

    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        return self.config.n

    @property
    def r(self) -> int:
        return self.config.r

    @property
    def num_data_symbols(self) -> int:
        return self.config.num_data_symbols

    @property
    def counter(self):
        """The Mult_XOR counter of the underlying STAIR code."""
        return self.code.counter

    @property
    def field(self):
        """The Galois field the underlying STAIR code operates in."""
        return self.code.field

    def data_positions(self) -> Sequence[tuple[int, int]]:
        return self.code.layout.data_positions()

    # ------------------------------------------------------------------ #
    def encode(self, data: Sequence[np.ndarray]) -> Grid:
        return self.code.encode(data).symbols  # type: ignore[return-value]

    def decode(self, stripe: Grid) -> Grid:
        return self.code.decode(stripe).symbols  # type: ignore[return-value]

    def tolerates(self, lost_positions: Sequence[tuple[int, int]]) -> bool:
        return self.code.check_coverage(lost_positions)

    def update_penalty(self) -> float:
        return self.code.update_penalty()
