"""Erasure-code families: STAIR plus every baseline the paper compares against.

* :class:`~repro.codes.stair_adapter.StairStripeCode` -- STAIR codes behind
  the generic stripe-code interface.
* :class:`~repro.codes.reed_solomon.ReedSolomonStripeCode` -- traditional
  device-level Reed-Solomon coding (the space-overhead baseline).
* :class:`~repro.codes.sd.SDCode` -- sector-disk codes (the performance
  baseline).
* :class:`~repro.codes.idr.IDRScheme` -- intra-device redundancy.
* :class:`~repro.codes.raid.RAID5Code` / :class:`~repro.codes.raid.RAID6Code`
  -- industrial names for the RS baseline.
"""

from repro.codes.base import Grid, StripeCode
from repro.codes.idr import IDRScheme
from repro.codes.raid import RAID5Code, RAID6Code
from repro.codes.reed_solomon import ReedSolomonStripeCode
from repro.codes.registry import (
    available_codes,
    build_code,
    parse_code_spec,
    register_code,
)
from repro.codes.sd import SDCode, SDConstructionError
from repro.codes.stair_adapter import StairStripeCode

__all__ = [
    "Grid",
    "StripeCode",
    "StairStripeCode",
    "ReedSolomonStripeCode",
    "SDCode",
    "SDConstructionError",
    "IDRScheme",
    "RAID5Code",
    "RAID6Code",
    "build_code",
    "parse_code_spec",
    "available_codes",
    "register_code",
]
