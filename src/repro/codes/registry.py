"""A small registry mapping code-family names to factories.

Used by the benchmark harness and examples to build codes from textual
descriptions like ``stair(n=8, r=16, m=1, e=(1,2))``-style keyword sets.
"""

from __future__ import annotations

import ast
import re
from typing import Any, Callable

from repro.codes.base import StripeCode
from repro.codes.idr import IDRScheme
from repro.codes.raid import RAID5Code, RAID6Code
from repro.codes.reed_solomon import ReedSolomonStripeCode
from repro.codes.sd import SDCode
from repro.codes.stair_adapter import StairStripeCode

_FACTORIES: dict[str, Callable[..., StripeCode]] = {
    "stair": StairStripeCode,
    "rs": ReedSolomonStripeCode,
    "reed-solomon": ReedSolomonStripeCode,
    "sd": SDCode,
    "idr": IDRScheme,
    "raid5": RAID5Code,
    "raid6": RAID6Code,
}


def available_codes() -> list[str]:
    """Names of all registered code families."""
    return sorted(_FACTORIES)


def build_code(name: str, **params: Any) -> StripeCode:
    """Instantiate a stripe code by family name.

    >>> code = build_code("stair", n=8, r=4, m=2, e=(1, 1, 2))
    >>> code.name
    'STAIR'
    """
    try:
        factory = _FACTORIES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown code family {name!r}; available: {available_codes()}"
        ) from None
    return factory(**params)


def register_code(name: str, factory: Callable[..., StripeCode]) -> None:
    """Register a custom code family (used by downstream extensions/tests)."""
    _FACTORIES[name.lower()] = factory


_SPEC_RE = re.compile(r"^\s*([A-Za-z][\w-]*)\s*(?:\((.*)\))?\s*$", re.DOTALL)


def parse_code_spec(spec: str) -> StripeCode:
    """Build a stripe code from a textual spec like
    ``"stair(n=8,r=16,m=1,e=(1,2))"``.

    The spec is ``family(key=value, ...)`` where ``family`` is any name in
    :func:`available_codes` and the values are Python literals (ints,
    tuples, ...).  A bare family name (``"raid5"``) is allowed when the
    factory needs no arguments.  Used by the simulator CLI and the
    benchmark harness.

    >>> parse_code_spec("stair(n=8, r=4, m=2, e=(1, 1, 2))").name
    'STAIR'
    """
    match = _SPEC_RE.match(spec)
    if not match:
        raise ValueError(f"malformed code spec {spec!r}; "
                         "expected family(key=value, ...)")
    name, arg_text = match.groups()
    params: dict[str, Any] = {}
    if arg_text and arg_text.strip():
        try:
            call = ast.parse(f"_({arg_text})", mode="eval").body
        except SyntaxError as exc:
            raise ValueError(f"malformed arguments in code spec {spec!r}: "
                             f"{exc.msg}") from None
        if not isinstance(call, ast.Call) or call.args:
            raise ValueError(
                f"code spec {spec!r} must use keyword arguments only, "
                "e.g. rs(n=8, r=16, m=1)"
            )
        for keyword in call.keywords:
            if keyword.arg is None:
                raise ValueError(f"code spec {spec!r} may not use **kwargs")
            try:
                params[keyword.arg] = ast.literal_eval(keyword.value)
            except ValueError:
                raise ValueError(
                    f"argument {keyword.arg!r} in code spec {spec!r} is not "
                    "a literal"
                ) from None
    try:
        return build_code(name, **params)
    except TypeError as exc:
        # e.g. an unexpected keyword: surface it as a spec error.
        raise ValueError(
            f"invalid arguments for code family {name!r}: {exc}") from exc
