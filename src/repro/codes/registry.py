"""A small registry mapping code-family names to factories.

Used by the benchmark harness and examples to build codes from textual
descriptions like ``stair(n=8, r=16, m=1, e=(1,2))``-style keyword sets.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.codes.base import StripeCode
from repro.codes.idr import IDRScheme
from repro.codes.raid import RAID5Code, RAID6Code
from repro.codes.reed_solomon import ReedSolomonStripeCode
from repro.codes.sd import SDCode
from repro.codes.stair_adapter import StairStripeCode

_FACTORIES: dict[str, Callable[..., StripeCode]] = {
    "stair": StairStripeCode,
    "rs": ReedSolomonStripeCode,
    "reed-solomon": ReedSolomonStripeCode,
    "sd": SDCode,
    "idr": IDRScheme,
    "raid5": RAID5Code,
    "raid6": RAID6Code,
}


def available_codes() -> list[str]:
    """Names of all registered code families."""
    return sorted(_FACTORIES)


def build_code(name: str, **params: Any) -> StripeCode:
    """Instantiate a stripe code by family name.

    >>> code = build_code("stair", n=8, r=4, m=2, e=(1, 1, 2))
    >>> code.name
    'STAIR'
    """
    try:
        factory = _FACTORIES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown code family {name!r}; available: {available_codes()}"
        ) from None
    return factory(**params)


def register_code(name: str, factory: Callable[..., StripeCode]) -> None:
    """Register a custom code family (used by downstream extensions/tests)."""
    _FACTORIES[name.lower()] = factory
