"""RAID-5 / RAID-6 convenience wrappers.

These are the familiar industrial names for the device-level
Reed-Solomon baseline with one or two parity devices.  RAID-6 is the
paper's motivating example of using a whole extra parity device just to
survive one sector failure during a rebuild.
"""

from __future__ import annotations

from repro.codes.reed_solomon import ReedSolomonStripeCode
from repro.gf.field import GField


class RAID5Code(ReedSolomonStripeCode):
    """Single-parity device-level code (tolerates one device failure)."""

    name = "RAID-5"

    def __init__(self, n: int, r: int, field: GField | None = None) -> None:
        super().__init__(n=n, r=r, m=1, field=field)


class RAID6Code(ReedSolomonStripeCode):
    """Double-parity device-level code (tolerates two device failures)."""

    name = "RAID-6"

    def __init__(self, n: int, r: int, field: GField | None = None) -> None:
        super().__init__(n=n, r=r, m=2, field=field)
