"""Device-level Reed-Solomon stripe code (the traditional baseline).

Each of the r rows of the stripe is an independent codeword of a
systematic (n, n-m) MDS code: m entire devices are devoted to parity and
the code tolerates any m device failures.  Sector failures are only
covered as long as no row loses more than m symbols -- which is exactly
why the paper argues device-level redundancy is a wasteful way to handle
them (§1, §6.1, §7).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.codes.base import Grid, StripeCode
from repro.core.exceptions import DecodingFailureError, EncodingInputError
from repro.gf.field import GField, get_field
from repro.gf.regions import OperationCounter, RegionOps
from repro.rs.cauchy import CauchyRSCode


class ReedSolomonStripeCode(StripeCode):
    """Traditional erasure coding: m parity devices, row-by-row RS."""

    name = "RS"

    def __init__(self, n: int, r: int, m: int,
                 field: GField | None = None) -> None:
        if not (0 < m < n):
            raise EncodingInputError(f"require 0 < m < n, got m={m}, n={n}")
        if r < 1:
            raise EncodingInputError(f"require r >= 1, got r={r}")
        self._n, self._r, self.m = n, r, m
        self.field = field or get_field(8 if n <= 256 else 16)
        self.code = CauchyRSCode(n, n - m, self.field)
        self.counter = OperationCounter()
        #: Region-operation backend; swap in ReferenceRegionOps to drive
        #: the scalar reference path (differential tests do this).
        self.ops_class: type[RegionOps] = RegionOps

    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        return self._n

    @property
    def r(self) -> int:
        return self._r

    @property
    def num_data_symbols(self) -> int:
        return self._r * (self._n - self.m)

    def data_positions(self) -> list[tuple[int, int]]:
        return [(i, j) for i in range(self._r) for j in range(self._n - self.m)]

    # ------------------------------------------------------------------ #
    def encode(self, data: Sequence[np.ndarray]) -> Grid:
        if len(data) != self.num_data_symbols:
            raise EncodingInputError(
                f"expected {self.num_data_symbols} data symbols, got {len(data)}"
            )
        ops = self.ops_class(self.field, self.counter)
        k = self._n - self.m
        grid: Grid = []
        for i in range(self._r):
            row_data = [np.asarray(data[i * k + j]) for j in range(k)]
            parities = self.code.encode(row_data, ops)
            grid.append([np.copy(sym) for sym in row_data] + parities)
        return grid

    def decode(self, stripe: Grid) -> Grid:
        ops = self.ops_class(self.field, self.counter)
        rows = [list(row) for row in stripe]
        # Group damaged rows by erasure pattern: rows sharing a pattern
        # (the common case -- whole-device failures) are repaired with one
        # batched bulk-kernel call instead of one recovery per row.
        by_pattern: dict[tuple[int, ...], list[int]] = {}
        for i, row in enumerate(rows):
            missing = tuple(j for j in range(self._n) if row[j] is None)
            if len(missing) > self.m:
                raise DecodingFailureError(
                    f"row {i} has {len(missing)} lost symbols; "
                    f"RS with m={self.m} parity devices cannot recover it",
                    unrecovered=[(i, j) for j in missing],
                )
            if missing:
                by_pattern.setdefault(missing, []).append(i)
        for missing, row_indices in by_pattern.items():
            recovered = self.code.recover_many(
                [rows[i] for i in row_indices], ops, wanted=list(missing))
            for i, row_recovered in zip(row_indices, recovered):
                for j, symbol in row_recovered.items():
                    rows[i][j] = symbol
        return [[np.asarray(cell) for cell in row] for row in rows]

    def tolerates(self, lost_positions: Sequence[tuple[int, int]]) -> bool:
        per_row: dict[int, int] = {}
        for i, _ in lost_positions:
            per_row[i] = per_row.get(i, 0) + 1
        return all(count <= self.m for count in per_row.values())

    def update_penalty(self) -> float:
        """Every data symbol contributes to exactly m row parity symbols."""
        return float(self.m)
