"""Declarative scenario specs and the cached sweep orchestrator.

The configuration layer above the simulator:

* :mod:`repro.scenario.spec` -- :class:`ScenarioSpec`, the versioned,
  strictly-validating description of one simulated deployment (code,
  fleet, lifetimes, trace, failure domains, repair, sector model,
  estimator policy), with TOML/JSON load/dump and a content hash.
* :mod:`repro.scenario.runner` -- :func:`run_scenario`, the single
  dispatch entry point over the vectorized Monte Carlo runner, the
  event engine, the rare-event estimator (including the auto-switchover
  for ultra-reliable configurations) and the §7 analytic chain.
* :mod:`repro.scenario.sweep` -- grid/list expansion over spec fields,
  deterministic per-cell seed derivation, multiprocessing fan-out and
  content-addressed result caching
  (``python -m repro.scenario.sweep sweep.toml --cache-dir ...``).

``repro.sim.cli`` is a thin adapter over this package (flags -> spec ->
``run_scenario``); ``--dump-spec`` prints the spec any flag combination
builds.  Tutorial: ``docs/scenarios.md``.
"""

from repro.scenario.runner import ScenarioOutcome, run_scenario
from repro.scenario.spec import (
    CODE_VERSION_SALT,
    SPEC_VERSION,
    CodeSection,
    DomainsSection,
    EstimatorSection,
    FleetSection,
    LifetimeSection,
    RepairSection,
    ScenarioSpec,
    ScenarioSpecError,
    SectorSection,
    StoreSection,
    TraceSection,
    spec_hash,
)
# NOTE: repro.scenario.sweep is intentionally NOT imported here -- it
# is an executable module (``python -m repro.scenario.sweep``) and
# importing it from the package init would trigger the runpy
# double-import warning on every CLI run.  Import it explicitly:
# ``from repro.scenario.sweep import load_sweep, run_sweep``.

__all__ = [
    "CODE_VERSION_SALT",
    "SPEC_VERSION",
    "CodeSection",
    "DomainsSection",
    "EstimatorSection",
    "FleetSection",
    "LifetimeSection",
    "RepairSection",
    "ScenarioOutcome",
    "ScenarioSpec",
    "ScenarioSpecError",
    "SectorSection",
    "StoreSection",
    "TraceSection",
    "run_scenario",
    "spec_hash",
]
