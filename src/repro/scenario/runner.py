"""``run_scenario(spec)``: one dispatch entry point over every engine.

This module is the single place a :class:`~repro.scenario.spec.ScenarioSpec`
is turned into concrete simulator objects (code, lifetime model, failure
domains, sector model) and routed to an engine:

* ``estimator.mode = "montecarlo"`` -- the vectorized direct runner,
  including the auto-switchover that detects ultra-reliable
  configurations (projected direct rounds beyond the ``MAX_ROUNDS``
  safety valve) and reroutes them to the rare-event estimator;
* ``"rare"`` -- force the importance-sampled regenerative-cycle
  estimator;
* ``"events"`` -- full discrete-event trajectories;
* ``"analytic"`` -- no simulation: the §7 closed-form chain (the mode
  behind the paper-figure sweeps).

The CLI (``repro.sim.cli``) is a thin adapter over this function --
flags build a spec, ``run_scenario`` runs it, the CLI renders the
returned :class:`ScenarioOutcome`.  The sweep orchestrator
(:mod:`repro.scenario.sweep`) calls it per grid cell and caches
``outcome.summary()``.  Determinism: a spec plus its ``estimator.seed``
fully determine every random draw, so equal specs produce bitwise-equal
summaries (the property the content-addressed sweep cache rests on).

Usage::

    from repro.scenario import ScenarioSpec, run_scenario

    spec = ScenarioSpec.from_dict({
        "version": 1,
        "code": {"spec": "rs(n=8,r=16,m=1)"},
        "lifetime": {"mttf_hours": 20_000.0},
        "estimator": {"trials": 500, "seed": 0},
    })
    outcome = run_scenario(spec)
    outcome.engine            # "montecarlo"
    outcome.result.mttdl_hours
    outcome.summary()         # JSON-safe dict (what the sweep caches)
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.array.failures import BurstLengthDistribution
from repro.codes.registry import parse_code_spec
from repro.reliability.markov import mttdl_arr_m_parity
from repro.reliability.mttdl import (
    SystemParameters,
    mttdl_array_general,
    mttdl_system,
    p_array,
)
from repro.reliability.sector_models import (
    CorrelatedSectorModel,
    IndependentSectorModel,
)
from repro.scenario.spec import ScenarioSpec, ScenarioSpecError
from repro.sim.cluster import CoverageModel
from repro.sim.domains import FailureDomains
from repro.sim.events import ClusterSimulation, Scenario
from repro.sim.lifetimes import (
    BandwidthRepair,
    ExponentialLifetime,
    ExponentialRepair,
    SectorErrorProcess,
    WeibullLifetime,
)
from repro.sim.montecarlo import (
    code_reliability_from_code,
    simulate_cluster_lifetimes,
)
from repro.sim.rare import (
    direct_mc_is_tractable,
    projected_direct_rounds,
    rare_event_code_mttdl,
)
from repro.sim.traces import (
    EmpiricalLifetime,
    FailureTrace,
    KaplanMeierLifetime,
    TraceReplayLifetime,
    load_drive_stats_csv,
)

#: Default horizon of the event engine when the spec leaves
#: ``estimator.horizon_hours`` unset (ten years).
EVENTS_DEFAULT_HORIZON_HOURS = 87_600.0


@dataclass
class EventTrialRow:
    """One event-engine trajectory, as the CLI table prints it."""

    trial: int
    time_to_data_loss: float | None
    cause: str
    events_processed: int


@dataclass
class ScenarioOutcome:
    """Everything an engine run produced, plus the objects it ran with.

    ``result`` is the engine's native result object
    (:class:`~repro.sim.montecarlo.MonteCarloResult` for
    montecarlo-mode runs, :class:`~repro.sim.rare.RareEventResult` for
    rare-mode runs, ``None`` for events/analytic); ``summary()`` is the
    JSON-safe digest the sweep cache stores.
    """

    spec: ScenarioSpec
    #: The engine that actually ran ("montecarlo"|"rare"|"events"|
    #: "analytic") -- differs from ``spec.estimator.mode`` when the
    #: auto-switchover rerouted a montecarlo request.
    engine: str
    #: True when a montecarlo request was rerouted to the rare-event
    #: estimator by the tractability projection.
    auto_selected: bool
    code: Any
    m: int
    parr: float
    result: Any = None
    #: Analytic-layer label of the code (e.g. "STAIR e=(1, 2)"); set
    #: whenever a CodeReliability mapping exists (all modes but events).
    code_label: str | None = None
    #: §7 analytic MTTDL of the whole fleet (None when no closed form
    #: applies: Weibull or trace-fitted lifetimes).
    analytic: float | None = None
    #: Analytic system MTTDL over the paper's fleet size (Eq. 9;
    #: analytic mode only).
    analytic_system: float | None = None
    #: ``(reference_mttdl, mean_lifetime_hours)`` behind the
    #: auto-switchover projection (None when no projection applied).
    projection: tuple[float, float] | None = None
    domains: FailureDomains | None = None
    trace: FailureTrace | None = None
    lifetime: Any = None
    #: Quasi-renewal (and similar estimator) caveat messages captured
    #: from the rare-event run; the CLI prints them as table rows.
    caveats: list[str] = field(default_factory=list)
    #: Per-trial rows of an events-mode run.
    trial_rows: list[EventTrialRow] = field(default_factory=list)
    #: Data losses across an events-mode run.
    losses: int = 0
    #: Effective horizon of an events-mode run.
    horizon_hours: float | None = None

    @property
    def correlated(self) -> bool:
        return self.domains is not None and not self.domains.is_independent

    def summary(self) -> dict:
        """A JSON-serializable digest (deterministic for a fixed spec)."""
        out: dict[str, Any] = {
            "engine": self.engine,
            "auto_selected": self.auto_selected,
            "m": self.m,
            "p_arr": self.parr,
            "code": self.code.describe(),
        }
        if self.code_label is not None:
            out["code_label"] = self.code_label
        if self.analytic is not None:
            out["analytic_mttdl_hours"] = self.analytic
        if self.analytic_system is not None:
            out["analytic_system_mttdl_hours"] = self.analytic_system
        if self.caveats:
            out["caveats"] = list(self.caveats)
        if self.engine == "events":
            out["trials"] = len(self.trial_rows)
            out["losses"] = self.losses
            out["horizon_hours"] = self.horizon_hours
            out["trajectories"] = [
                {"trial": row.trial,
                 "time_to_data_loss": row.time_to_data_loss,
                 "cause": row.cause,
                 "events": row.events_processed}
                for row in self.trial_rows]
        elif self.result is not None:
            out["result"] = self.result.summary()
        return _jsonify(out)


def _jsonify(value: Any) -> Any:
    """Recursively convert numpy scalars/arrays to plain Python."""
    if isinstance(value, dict):
        return {key: _jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return [_jsonify(item) for item in value.tolist()]
    if isinstance(value, float) and math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return value


# --------------------------------------------------------------------------- #
# Spec -> simulator objects
# --------------------------------------------------------------------------- #
def sector_model_from_spec(spec: ScenarioSpec, r: int, sector_bytes: int):
    """The sector-failure model the spec describes, for chunk size r."""
    if spec.sector.model == "independent":
        return IndependentSectorModel.from_p_bit(spec.sector.p_bit, r,
                                                 sector_bytes)
    return CorrelatedSectorModel.from_p_bit(spec.sector.p_bit, r,
                                            sector_bytes,
                                            b1=spec.sector.b1,
                                            alpha=spec.sector.alpha)


def domains_from_spec(spec: ScenarioSpec) -> FailureDomains | None:
    """The failure-domain object, or None when every field is default
    (matching the CLI: all-default flags mean no domains at all)."""
    dom = spec.domains
    if (dom.racks == 1 and dom.rack_shock_rate_per_hour == 0.0
            and dom.rack_kill_probability == 1.0
            and dom.enclosures_per_rack == 1
            and dom.enclosure_shock_rate_per_hour == 0.0
            and dom.enclosure_kill_probability == 1.0
            and dom.batch_fraction == 0.0 and dom.batch_accel == 1.0
            and dom.placement == "spread"):
        return None
    return FailureDomains(
        racks=dom.racks,
        rack_shock_rate_per_hour=dom.rack_shock_rate_per_hour,
        rack_kill_probability=dom.rack_kill_probability,
        enclosures_per_rack=dom.enclosures_per_rack,
        enclosure_shock_rate_per_hour=dom.enclosure_shock_rate_per_hour,
        enclosure_kill_probability=dom.enclosure_kill_probability,
        batch_fraction=dom.batch_fraction,
        batch_accel=dom.batch_accel,
        placement=dom.placement,
    )


def load_trace_from_spec(spec: ScenarioSpec) -> FailureTrace | None:
    """Load the spec's failure trace (None when no [trace] section)."""
    if spec.trace is None:
        return None
    return load_drive_stats_csv(spec.trace.path)


def lifetime_from_spec(spec: ScenarioSpec,
                       trace: FailureTrace | None = None):
    """The device-lifetime model: trace-fitted when a trace is present,
    else the parametric [lifetime] section."""
    if spec.trace is not None and trace is None:
        trace = load_trace_from_spec(spec)
    if trace is not None:
        model = spec.trace.model
        if model == "replay":
            return TraceReplayLifetime(trace)
        if model == "km":
            return KaplanMeierLifetime.fit(trace)
        bins = spec.trace.bins if spec.trace.bins is not None else 8
        return EmpiricalLifetime.fit(trace, bins=bins)
    life = spec.lifetime
    if life.kind == "weibull":
        # Pick the scale so the Weibull mean equals the requested MTTF.
        scale = life.mttf_hours / math.gamma(1.0 + 1.0 / life.weibull_shape)
        return WeibullLifetime(scale, life.weibull_shape)
    return ExponentialLifetime(life.mttf_hours)


def repair_from_spec(spec: ScenarioSpec):
    """The repair model: bandwidth-derived when rebuild_rate_mbs is
    set (events mode), else exponential with the spec's 1/mu."""
    if spec.repair.rebuild_rate_mbs is not None:
        return BandwidthRepair(SystemParameters().device_capacity_bytes,
                               spec.repair.rebuild_rate_mbs)
    return ExponentialRepair(spec.repair.repair_hours)


# --------------------------------------------------------------------------- #
# Engines
# --------------------------------------------------------------------------- #
def run_scenario(spec: ScenarioSpec, *, check: bool = True
                 ) -> ScenarioOutcome:
    """Run one scenario through the engine its spec selects.

    ``check=True`` (default) runs :meth:`ScenarioSpec.validate` first,
    so contradictory specs fail before any engine starts.  Raises
    :class:`~repro.scenario.spec.ScenarioSpecError` (a ``ValueError``)
    on invalid specs and ``ValueError``/``RuntimeError`` on engine-level
    rejections, exactly as the underlying engines do.
    """
    if check:
        spec.validate()
    if spec.store is not None:
        # Store workloads have their own runner (an asyncio service
        # loop, not an MTTDL estimator) and their own report shape.
        raise ScenarioSpecError(
            "this spec carries a [store] section; run it through the "
            "object-store service instead: repro.store.run_store(spec) "
            "or python -m repro.store.cli --spec ...")
    mode = spec.estimator.mode
    if mode == "events":
        return _run_events(spec)
    if mode == "analytic":
        return _run_analytic(spec)
    return _run_montecarlo(spec)


def _run_montecarlo(spec: ScenarioSpec) -> ScenarioOutcome:
    est = spec.estimator
    code = parse_code_spec(spec.code.spec)
    m = CoverageModel.from_code(code).m
    params = SystemParameters(
        mean_time_to_failure_hours=spec.lifetime.mttf_hours,
        mean_time_to_rebuild_hours=spec.repair.repair_hours,
        n=code.n, r=code.r, m=m)
    model = sector_model_from_spec(spec, code.r, params.sector_bytes)
    reliability = code_reliability_from_code(code)
    parr = p_array(reliability, params, model)
    trace = load_trace_from_spec(spec)
    lifetime = lifetime_from_spec(spec, trace)
    exponential = spec.lifetime.kind == "exponential" and trace is None
    domains = domains_from_spec(spec)
    # With an active correlation the §7 chain is only the
    # independent-failure reference: printed for contrast, never
    # checked for 3-sigma agreement.
    analytic = (mttdl_array_general(reliability, params, model)
                / spec.fleet.arrays if exponential else None)

    # Ultra-reliable configurations would grind into the direct runner's
    # MAX_ROUNDS valve; route them to the rare-event estimator instead
    # of aborting (a horizon bounds the direct run, so it stays direct).
    # The projection uses the independent-failure MTTDL, an upper bound
    # under correlation -- correlated configs may switch early, which is
    # safe: the rare estimator handles domains natively.  A piecewise
    # trace fit projects through the chain at its fitted mean -- an
    # order-of-magnitude stand-in good enough to know direct MC is
    # hopeless (Kaplan-Meier resampling has no rare-event fallback, so
    # it never auto-switches).
    if exponential:
        projection_ref, projection_mean = analytic, spec.lifetime.mttf_hours
    elif isinstance(lifetime, EmpiricalLifetime):
        projection_mean = lifetime.mean_hours
        projection_ref = mttdl_arr_m_parity(
            code.n, 1.0 / projection_mean,
            1.0 / spec.repair.repair_hours, parr, m) / spec.fleet.arrays
    else:
        projection_ref = projection_mean = None
    use_rare, auto_selected = est.mode == "rare", False
    if (not use_rare and projection_ref is not None
            and est.horizon_hours is None
            and not direct_mc_is_tractable(projection_ref, code.n,
                                           projection_mean, est.trials)):
        use_rare, auto_selected = True, True
    if use_rare:
        if trace is not None and not isinstance(lifetime,
                                                EmpiricalLifetime):
            raise ValueError(
                "the rare-event estimator needs a lifetime density; the "
                "Kaplan-Meier resampler has none -- use the "
                "piecewise-exponential trace fit (--trace-model "
                "piecewise)"
            )
        if not exponential and trace is None:
            raise ValueError(
                "the rare-event estimator requires exponential lifetimes; "
                "drop --weibull-shape or use --horizon with direct "
                "Monte Carlo"
            )
        if est.horizon_hours is not None:
            raise ValueError(
                "the rare-event estimator computes the MTTDL directly; "
                "--horizon only applies to direct Monte Carlo"
            )
        projection = ((projection_ref, projection_mean)
                      if projection_ref is not None else None)
        return _run_rare(spec, code, m, params, model, parr, analytic,
                         auto_selected, domains,
                         lifetime=lifetime if trace is not None else None,
                         trace=trace, projection=projection)

    result = simulate_cluster_lifetimes(
        code.n, spec.fleet.arrays, parr, est.trials, seed=est.seed,
        lifetime=lifetime,
        repair=ExponentialRepair(spec.repair.repair_hours),
        horizon_hours=est.horizon_hours, m=m, domains=domains)
    return ScenarioOutcome(
        spec=spec, engine="montecarlo", auto_selected=False, code=code,
        m=m, parr=parr, result=result, code_label=reliability.label(),
        analytic=analytic, domains=domains, trace=trace,
        lifetime=lifetime)


def _run_rare(spec: ScenarioSpec, code, m: int, params: SystemParameters,
              model, parr: float, analytic: float | None,
              auto_selected: bool, domains: FailureDomains | None,
              lifetime=None, trace: FailureTrace | None = None,
              projection: tuple[float, float] | None = None
              ) -> ScenarioOutcome:
    est = spec.estimator
    # Estimator caveats (e.g. the quasi-renewal warning for bent
    # empirical hazards) belong in the outcome, not as raw Python
    # warnings on stderr.
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = rare_event_code_mttdl(
            code, model, params, seed=est.seed,
            num_arrays=spec.fleet.arrays, lifetime=lifetime,
            target_rel_se=est.rare_target_rel_se,
            max_cycles=est.rare_max_cycles, domains=domains)
    caveats = []
    for caveat in caught:
        if (issubclass(caveat.category, RuntimeWarning)
                and "quasi-renewal" in str(caveat.message)):
            caveats.append(str(caveat.message))
        else:
            # Not ours to swallow: unrelated warnings keep their
            # normal route to stderr.
            warnings.warn_explicit(caveat.message, caveat.category,
                                   caveat.filename, caveat.lineno)
    return ScenarioOutcome(
        spec=spec, engine="rare", auto_selected=auto_selected, code=code,
        m=m, parr=parr, result=result,
        code_label=code_reliability_from_code(code).label(),
        analytic=analytic, projection=projection, domains=domains,
        trace=trace, lifetime=lifetime, caveats=caveats)


def _run_events(spec: ScenarioSpec) -> ScenarioOutcome:
    est, fleet = spec.estimator, spec.fleet
    code = parse_code_spec(spec.code.spec)
    m = CoverageModel.from_code(code).m
    sector_bytes = SystemParameters().sector_bytes
    scrub = (fleet.scrub_interval_hours
             if fleet.scrub_interval_hours > 0 else None)
    sector_errors = None
    if spec.sector.p_bit > 0:
        if scrub is None:
            raise ValueError(
                "events mode calibrates the sector-error rate from the "
                "scrub interval; set --scrub-interval > 0 or disable "
                "sector errors with --p-bit 0"
            )
        sector_errors = SectorErrorProcess.from_p_bit(
            spec.sector.p_bit, fleet.stripes_per_array * code.r, scrub,
            sector_bytes)
    horizon = (est.horizon_hours if est.horizon_hours is not None
               else EVENTS_DEFAULT_HORIZON_HOURS)
    # Bursty arrivals only under the correlated model; the independent
    # model means single-sector errors (matching the P_sec calibration).
    bursts = (BurstLengthDistribution(max_length=code.r)
              if spec.sector.model == "correlated" else None)
    repair = repair_from_spec(spec)
    trace = load_trace_from_spec(spec)
    lifetime = lifetime_from_spec(spec, trace)
    domains = domains_from_spec(spec)
    scenario = Scenario(
        code=code,
        num_arrays=fleet.arrays,
        stripes_per_array=fleet.stripes_per_array,
        lifetime=lifetime,
        repair=repair,
        sector_errors=sector_errors,
        burst_lengths=bursts,
        scrub_interval_hours=scrub,
        write_rate_per_hour=fleet.write_rate_per_hour,
        rebuild_concurrency=spec.repair.rebuild_concurrency,
        repair_streams=spec.repair.rebuild_streams,
        domains=domains,
        horizon_hours=horizon,
    )
    root = np.random.default_rng(est.seed)
    rows: list[EventTrialRow] = []
    losses = 0
    for trial in range(est.trials):
        result = ClusterSimulation(
            scenario, np.random.default_rng(root.integers(2 ** 63))).run()
        losses += int(result.lost_data)
        rows.append(EventTrialRow(
            trial=trial,
            time_to_data_loss=(result.time_to_data_loss
                               if result.lost_data else None),
            cause=result.cause or "survived horizon",
            events_processed=result.events_processed))
    return ScenarioOutcome(
        spec=spec, engine="events", auto_selected=False, code=code, m=m,
        parr=float("nan"), domains=domains, trace=trace,
        lifetime=lifetime, trial_rows=rows, losses=losses,
        horizon_hours=horizon)


def _run_analytic(spec: ScenarioSpec) -> ScenarioOutcome:
    code = parse_code_spec(spec.code.spec)
    m = CoverageModel.from_code(code).m
    params = SystemParameters(
        mean_time_to_failure_hours=spec.lifetime.mttf_hours,
        mean_time_to_rebuild_hours=spec.repair.repair_hours,
        n=code.n, r=code.r, m=m)
    model = sector_model_from_spec(spec, code.r, params.sector_bytes)
    reliability = code_reliability_from_code(code)
    parr = p_array(reliability, params, model)
    analytic_array = mttdl_array_general(reliability, params, model)
    analytic_sys = mttdl_system(reliability, params, model)
    return ScenarioOutcome(
        spec=spec, engine="analytic", auto_selected=False, code=code,
        m=m, parr=parr, code_label=reliability.label(),
        analytic=analytic_array / spec.fleet.arrays,
        analytic_system=analytic_sys)
