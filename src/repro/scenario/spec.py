"""The versioned, declarative scenario spec behind every simulator run.

One :class:`ScenarioSpec` describes one simulated deployment end to
end -- the erasure code, the fleet shape, the lifetime model (parametric
or trace-fitted), correlated failure domains, the repair model, the
sector-failure model and the estimator policy -- in a form that can be
committed to a file, hashed, swept over and reproduced bit for bit.
It is the single source every layer builds from: ``repro.sim.cli`` is a
thin flags -> spec adapter, :func:`repro.scenario.runner.run_scenario`
dispatches a spec to the right engine, ``repro.bench.sim_validation``
rows and the figure benchmarks are committed spec files, and
:mod:`repro.scenario.sweep` expands grids of specs with
content-addressed result caching.

Specs serialize to TOML (the committed format) and JSON::

    version = 1

    [code]
    spec = "sd(n=8,r=16,m=2,s=2)"

    [lifetime]
    kind = "exponential"
    mttf_hours = 500000.0

    [estimator]
    mode = "rare"
    seed = 0

Loading is *strict*: an unknown section or key, a missing ``version``
(or one this library does not speak), a missing ``[code]`` section or a
bad enum value all raise :class:`ScenarioSpecError` -- a spec that
parses is a spec that runs.  :meth:`ScenarioSpec.validate` additionally
rejects contradictory combinations (a rack kill probability without a
shock process, rare-event tuning under the event engine, verbatim trace
replay outside events mode, ...), the same checks the CLI applies to
raw flags.

Every section has defaults matching the CLI's, so the minimal spec is
just a version plus a ``[code]`` section.  ``canonical_dict()`` /
:func:`spec_hash` give the normalized form and content address used by
the sweep cache.  Tutorial: ``docs/scenarios.md``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import math
import os
import tomllib
from dataclasses import dataclass, field
from typing import Any, Mapping

#: The spec-format version this library reads and writes.  Bump it when
#: a section/key changes meaning; loaders reject other versions rather
#: than silently reinterpreting old files.
SPEC_VERSION = 1


class ScenarioSpecError(ValueError):
    """A scenario spec failed to parse or validate."""


# --------------------------------------------------------------------------- #
# Sections
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class CodeSection:
    """The erasure code, as a registry code-spec string
    (grammar: ``docs/code-specs.md``)."""

    spec: str = "rs(n=8,r=16,m=1)"


@dataclass(frozen=True)
class FleetSection:
    """Cluster shape and (events-mode) workload."""

    arrays: int = 1
    stripes_per_array: int = 1024
    #: Hours between scrubs of each array; 0 disables scrubbing
    #: (events mode only).
    scrub_interval_hours: float = 168.0
    #: Poisson rate of full-stripe writes per array per hour (events
    #: mode only).
    write_rate_per_hour: float = 0.0


@dataclass(frozen=True)
class LifetimeSection:
    """Parametric device-lifetime model (a trace section overrides it)."""

    kind: str = "exponential"  # "exponential" | "weibull"
    mttf_hours: float = 500_000.0
    #: Weibull shape (kind == "weibull" only); the scale is chosen so
    #: the mean stays at ``mttf_hours``.
    weibull_shape: float | None = None


@dataclass(frozen=True)
class TraceSection:
    """Empirical lifetimes from a drive-stats-style failure trace.

    The whole section is optional; when present, ``path`` is required
    and the fitted/replayed model replaces the parametric lifetime.
    """

    path: str = ""
    model: str = "piecewise"  # "piecewise" | "km" | "replay"
    #: Hazard intervals for the piecewise fit (None = the fit default).
    bins: int | None = None


@dataclass(frozen=True)
class DomainsSection:
    """Correlated failure domains (racks, enclosures, bad batches).

    Field names mirror :class:`repro.sim.domains.FailureDomains`; the
    all-default section means independent failures (no domains object
    is built at all).
    """

    racks: int = 1
    rack_shock_rate_per_hour: float = 0.0
    rack_kill_probability: float = 1.0
    enclosures_per_rack: int = 1
    enclosure_shock_rate_per_hour: float = 0.0
    enclosure_kill_probability: float = 1.0
    batch_fraction: float = 0.0
    batch_accel: float = 1.0
    placement: str = "spread"  # "spread" | "contiguous"


@dataclass(frozen=True)
class RepairSection:
    """Rebuild-time model and (events-mode) repair contention."""

    repair_hours: float = 17.8
    #: Per-device rebuild rate in MB/s; derives the nominal rebuild
    #: time from device capacity instead of ``repair_hours`` (events
    #: mode only).
    rebuild_rate_mbs: float | None = None
    #: Hard cap on concurrent rebuilds (events mode; None = unlimited).
    rebuild_concurrency: int | None = None
    #: Shared cluster repair bandwidth in units of one device's rebuild
    #: rate (events mode; None disables bandwidth sharing).
    rebuild_streams: float | None = None


@dataclass(frozen=True)
class SectorSection:
    """Sector-failure model feeding ``P_arr`` (Eq. 10-11)."""

    model: str = "independent"  # "independent" | "correlated"
    p_bit: float = 1e-12
    #: Burst parameters of the correlated model (ignored when
    #: ``model == "independent"``).
    b1: float = 0.98
    alpha: float = 1.79


@dataclass(frozen=True)
class EstimatorSection:
    """Which engine answers the question, and with what budget.

    ``mode``:

    * ``"montecarlo"`` -- the vectorized direct runner, with automatic
      switchover to the rare-event estimator for configurations whose
      projected round count blows the direct runner's safety valve;
    * ``"events"`` -- full discrete-event trajectories;
    * ``"rare"`` -- force the importance-sampled regenerative-cycle
      estimator;
    * ``"analytic"`` -- no simulation at all: the closed-form §7 chain
      (used by the figure sweeps).
    """

    mode: str = "montecarlo"  # "montecarlo" | "events" | "rare" | "analytic"
    trials: int = 1000
    seed: int = 0
    #: Censor direct-MC trials (or stop event trajectories) at this
    #: many hours; None = run to data loss (events mode then uses its
    #: ten-year default horizon).
    horizon_hours: float | None = None
    rare_target_rel_se: float = 0.02
    rare_max_cycles: int = 4_000_000


@dataclass(frozen=True)
class StoreSection:
    """Object-store traffic served by :mod:`repro.store`.

    The whole section is optional; when present, the spec describes a
    closed-loop put/get workload against a STAIR/RS/SD-encoded object
    store (``python -m repro.store.cli --spec ...``) instead of a bare
    reliability simulation.  Failure injection reuses the surrounding
    sections: ``[lifetime]``/``[trace]`` sample device crash times and
    ``[domains]`` supplies rack/enclosure shocks, both mapped onto the
    workload through ``hours_per_op`` (simulated hours that pass per
    client operation); ``[repair].rebuild_streams`` budgets the repair
    loop; ``[estimator].seed`` seeds every random draw.
    """

    #: Number of distinct objects preloaded before the measured workload.
    objects: int = 64
    #: Object payload size in bytes (the maximum when
    #: ``min_object_bytes`` is set, else every object's exact size).
    object_bytes: int = 4096
    #: When set, object sizes draw uniformly from
    #: ``[min_object_bytes, object_bytes]`` per object.
    min_object_bytes: int | None = None
    #: Region length of one coded symbol, in bytes (chunks are
    #: ``r * symbol_bytes``).
    symbol_bytes: int = 512
    #: Closed-loop client operations after the preload.
    operations: int = 256
    #: Number of concurrent closed-loop clients.
    clients: int = 4
    #: Fraction of operations that are reads (the rest overwrite).
    read_fraction: float = 0.9
    #: Zipf exponent of key popularity (0 = uniform).
    zipf_alpha: float = 1.1
    #: Run the background repair loop during the workload.
    repair: bool = True
    #: Crash exactly this many distinct nodes mid-workload (the
    #: deterministic injection used by smoke tests).
    kill_nodes: int = 0
    #: When the deterministic kill lands, as a fraction of operations.
    kill_at_fraction: float = 0.5
    #: Simulated hours per operation; > 0 arms lifetime-sampled crashes
    #: and [domains] shocks over the workload's simulated span.
    hours_per_op: float = 0.0
    #: Where node chunk bytes live: ``"inprocess"`` (a dict in the
    #: cluster's event loop) or ``"process"`` (one ``python -m
    #: repro.store.rpc`` subprocess per node, chunk RPC over asyncio
    #: streams).  Both produce bit-identical deterministic digests.
    backend: str = "inprocess"
    #: Metadata / per-key-lock shard count of the cluster's key space.
    meta_shards: int = 16
    #: Physical latency model, applied per chunk operation at the node
    #: boundary: network round-trip base + exponential jitter plus disk
    #: service base + exponential jitter (milliseconds; all 0 = off).
    latency_net_rtt_ms: float = 0.0
    latency_net_jitter_ms: float = 0.0
    latency_disk_ms: float = 0.0
    latency_disk_jitter_ms: float = 0.0


_SECTION_TYPES: dict[str, type] = {
    "code": CodeSection,
    "fleet": FleetSection,
    "lifetime": LifetimeSection,
    "trace": TraceSection,
    "domains": DomainsSection,
    "repair": RepairSection,
    "sector": SectorSection,
    "estimator": EstimatorSection,
    "store": StoreSection,
}

#: Sections a spec file must carry explicitly (everything else
#: defaults).  ``code`` names the scenario; there is no safe default to
#: silently fall back to when it is missing from a committed file.
_REQUIRED_SECTIONS = ("code",)

_ENUMS: dict[tuple[str, str], tuple[str, ...]] = {
    ("lifetime", "kind"): ("exponential", "weibull"),
    ("trace", "model"): ("piecewise", "km", "replay"),
    ("domains", "placement"): ("spread", "contiguous"),
    ("sector", "model"): ("independent", "correlated"),
    ("estimator", "mode"): ("montecarlo", "events", "rare", "analytic"),
    ("store", "backend"): ("inprocess", "process"),
}


def _coerce(section: str, key: str, value: Any, target: Any) -> Any:
    """Coerce a loaded value to the field's type, strictly.

    TOML/JSON distinguish ints and floats; accept an int where a float
    is expected (``mttf_hours = 500000``) but nothing woollier.  Enum
    fields are checked against their allowed values.
    """
    if (section, key) in _ENUMS:
        allowed = _ENUMS[(section, key)]
        if value not in allowed:
            raise ScenarioSpecError(
                f"[{section}] {key} = {value!r} is not one of {allowed}")
        return value
    if value is None:
        return None
    kind = target.type if isinstance(target, dataclasses.Field) else None
    default = (target.default if isinstance(target, dataclasses.Field)
               else target)
    wants_bool = str(kind).startswith("bool") or isinstance(default, bool)
    wants_float = "float" in str(kind)
    wants_int = str(kind).startswith("int")
    wants_str = str(kind).startswith("str") or isinstance(default, str)
    if wants_bool:
        if not isinstance(value, bool):
            raise ScenarioSpecError(
                f"[{section}] {key} must be a bool (true/false), "
                f"got {value!r}")
        return value
    if isinstance(value, bool):
        raise ScenarioSpecError(
            f"[{section}] {key} must be a number or string, got a bool")
    if wants_float and isinstance(value, (int, float)):
        return float(value)
    if wants_int and isinstance(value, int):
        return int(value)
    if wants_str and isinstance(value, str):
        return value
    raise ScenarioSpecError(
        f"[{section}] {key} = {value!r} has the wrong type")


def _section_from_dict(name: str, data: Mapping[str, Any]):
    cls = _SECTION_TYPES[name]
    fields = {f.name: f for f in dataclasses.fields(cls)}
    unknown = sorted(set(data) - set(fields))
    if unknown:
        raise ScenarioSpecError(
            f"unknown key(s) {unknown} in [{name}] section; "
            f"known keys: {sorted(fields)}")
    kwargs = {key: _coerce(name, key, value, fields[key])
              for key, value in data.items()}
    return cls(**kwargs)


# --------------------------------------------------------------------------- #
# The spec
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ScenarioSpec:
    """One fully described simulation scenario.

    Usage::

        from repro.scenario import ScenarioSpec

        spec = ScenarioSpec.from_dict({
            "version": 1,
            "code": {"spec": "sd(n=8,r=16,m=2,s=2)"},
            "estimator": {"mode": "rare", "seed": 0},
        })
        spec.validate()
        text = spec.dumps_toml()          # committed form
        again = ScenarioSpec.loads(text)  # == spec
    """

    code: CodeSection = field(default_factory=CodeSection)
    fleet: FleetSection = field(default_factory=FleetSection)
    lifetime: LifetimeSection = field(default_factory=LifetimeSection)
    trace: TraceSection | None = None
    domains: DomainsSection = field(default_factory=DomainsSection)
    repair: RepairSection = field(default_factory=RepairSection)
    sector: SectorSection = field(default_factory=SectorSection)
    estimator: EstimatorSection = field(default_factory=EstimatorSection)
    store: StoreSection | None = None
    version: int = SPEC_VERSION

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Build (strictly) from a parsed TOML/JSON mapping."""
        if not isinstance(data, Mapping):
            raise ScenarioSpecError("scenario spec must be a table/object")
        if "version" not in data:
            raise ScenarioSpecError(
                "scenario spec is missing the required 'version' key "
                f"(this library writes version = {SPEC_VERSION})")
        version = data["version"]
        if version != SPEC_VERSION:
            raise ScenarioSpecError(
                f"scenario spec version {version!r} is not supported; "
                f"this library reads version {SPEC_VERSION}")
        unknown = sorted(set(data) - set(_SECTION_TYPES) - {"version"})
        if unknown:
            raise ScenarioSpecError(
                f"unknown section(s) {unknown} in scenario spec; "
                f"known sections: {sorted(_SECTION_TYPES)}")
        missing = [name for name in _REQUIRED_SECTIONS if name not in data]
        if missing:
            raise ScenarioSpecError(
                f"scenario spec is missing required section(s) {missing}")
        kwargs: dict[str, Any] = {"version": SPEC_VERSION}
        for name in _SECTION_TYPES:
            if name in data:
                section_data = data[name]
                if section_data is None:
                    # Canonical JSON spells an absent section as null.
                    continue
                if not isinstance(section_data, Mapping):
                    raise ScenarioSpecError(
                        f"[{name}] must be a table/object")
                kwargs[name] = _section_from_dict(name, section_data)
        if "trace" in kwargs and not kwargs["trace"].path:
            raise ScenarioSpecError(
                "[trace] section needs a 'path' (the failure-trace CSV)")
        return cls(**kwargs)

    @classmethod
    def loads(cls, text: str, format: str = "toml") -> "ScenarioSpec":
        """Parse a spec from TOML (default) or JSON text."""
        if format == "toml":
            try:
                data = tomllib.loads(text)
            except tomllib.TOMLDecodeError as exc:
                raise ScenarioSpecError(f"invalid TOML: {exc}") from exc
        elif format == "json":
            try:
                data = json.loads(text)
            except json.JSONDecodeError as exc:
                raise ScenarioSpecError(f"invalid JSON: {exc}") from exc
        else:
            raise ScenarioSpecError(
                f"unknown spec format {format!r}; use 'toml' or 'json'")
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: str | os.PathLike) -> "ScenarioSpec":
        """Load a spec file; the format follows the file extension
        (``.json`` -> JSON, anything else -> TOML)."""
        path = os.fspath(path)
        if not os.path.exists(path):
            raise ScenarioSpecError(f"scenario spec {path!r} does not exist")
        with open(path, "rb") as handle:
            text = handle.read().decode("utf-8")
        format = "json" if path.endswith(".json") else "toml"
        try:
            return cls.loads(text, format=format)
        except ScenarioSpecError as exc:
            raise ScenarioSpecError(f"{path}: {exc}") from exc

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        """A plain nested dict: every section, every key (None kept)."""
        out: dict[str, Any] = {"version": self.version}
        for name in _SECTION_TYPES:
            section = getattr(self, name)
            if section is None:
                continue
            out[name] = dataclasses.asdict(section)
        return out

    def canonical_dict(self) -> dict[str, Any]:
        """The normalized form the content hash is computed over.

        Explicit about everything: sections the spec left at their
        defaults appear fully expanded, and absent optional sections
        (trace, store) are recorded as ``None``, so two specs hash
        equal iff every knob an engine reads is equal.
        """
        out = self.to_dict()
        if self.trace is None:
            out["trace"] = None
        if self.store is None:
            out["store"] = None
        return out

    def dumps_json(self) -> str:
        """Canonical JSON (stable key order -- safe to hash or diff)."""
        return json.dumps(self.canonical_dict(), sort_keys=True, indent=2)

    def dumps_toml(self) -> str:
        """TOML, the committed/human format (None keys are omitted --
        reloading restores them as defaults)."""
        buffer = io.StringIO()
        buffer.write(f"version = {self.version}\n")
        for name in _SECTION_TYPES:
            section = getattr(self, name)
            if section is None:
                continue
            items = [(key, value) for key, value
                     in dataclasses.asdict(section).items()
                     if value is not None]
            if not items:
                continue
            buffer.write(f"\n[{name}]\n")
            for key, value in items:
                buffer.write(f"{key} = {_toml_value(value)}\n")
        return buffer.getvalue()

    def dump(self, path: str | os.PathLike) -> None:
        """Write the spec to ``path`` (extension picks the format)."""
        path = os.fspath(path)
        text = (self.dumps_json() + "\n" if path.endswith(".json")
                else self.dumps_toml())
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)

    def replace(self, **section_updates: Any) -> "ScenarioSpec":
        """A copy with whole sections or section fields replaced.

        Accepts section objects (``estimator=EstimatorSection(...)``)
        or mappings of field updates (``estimator={"seed": 7}``, merged
        into the existing section)::

            fast = spec.replace(estimator={"trials": 50})
        """
        updates: dict[str, Any] = {}
        for name, value in section_updates.items():
            if name not in _SECTION_TYPES:
                raise ScenarioSpecError(f"unknown section {name!r}")
            if isinstance(value, Mapping):
                current = getattr(self, name)
                if current is None:
                    current = _SECTION_TYPES[name]()
                value = dataclasses.replace(current, **value)
            updates[name] = value
        return dataclasses.replace(self, **updates)

    # ------------------------------------------------------------------ #
    # Semantic validation (the flag-interaction footguns)
    # ------------------------------------------------------------------ #
    def validate(self) -> "ScenarioSpec":
        """Reject contradictory combinations a naive loader would run.

        Returns ``self`` so loading call sites can chain it.  These are
        the same rules ``repro.sim.cli`` enforces on raw flags; keeping
        them here means a hand-written spec file gets them too.
        """
        est, life, dom, trace = (self.estimator, self.lifetime,
                                 self.domains, self.trace)
        if est.trials < 1:
            raise ScenarioSpecError("[estimator] trials must be >= 1")
        if self.fleet.arrays < 1:
            raise ScenarioSpecError("[fleet] arrays must be >= 1")
        if self.fleet.stripes_per_array < 1:
            raise ScenarioSpecError(
                "[fleet] stripes_per_array must be >= 1")
        if self.fleet.scrub_interval_hours < 0:
            raise ScenarioSpecError(
                "[fleet] scrub_interval_hours must be >= 0 "
                "(0 disables scrubbing)")
        if est.horizon_hours is not None and est.horizon_hours <= 0:
            raise ScenarioSpecError(
                "[estimator] horizon_hours must be positive")
        for key in ("mttf_hours",):
            if getattr(life, key) <= 0:
                raise ScenarioSpecError(f"[lifetime] {key} must be positive")
        if self.repair.repair_hours <= 0:
            raise ScenarioSpecError("[repair] repair_hours must be positive")
        if not (0.0 <= self.sector.p_bit <= 1.0):
            raise ScenarioSpecError("[sector] p_bit must lie in [0, 1]")

        # Lifetime model contradictions.
        if life.kind == "weibull" and life.weibull_shape is None:
            raise ScenarioSpecError(
                "[lifetime] kind = 'weibull' needs weibull_shape")
        if life.kind == "exponential" and life.weibull_shape is not None:
            raise ScenarioSpecError(
                "[lifetime] weibull_shape only applies to kind = "
                "'weibull'")
        if trace is not None and life.weibull_shape is not None:
            raise ScenarioSpecError(
                "a [trace] section and a Weibull [lifetime] both specify "
                "the lifetime model; pick one")
        if trace is not None:
            if trace.bins is not None and trace.bins < 1:
                raise ScenarioSpecError("[trace] bins must be >= 1")
            if trace.model != "piecewise" and trace.bins is not None:
                raise ScenarioSpecError(
                    "[trace] bins sizes the piecewise-exponential fit; "
                    f"model = {trace.model!r} has no bins")
            if trace.model == "replay" and est.mode != "events":
                raise ScenarioSpecError(
                    "[trace] model = 'replay' plays verbatim trajectories "
                    "and applies to the events engine only")

        # Estimator-policy contradictions.
        if est.mode == "rare":
            if est.horizon_hours is not None:
                raise ScenarioSpecError(
                    "the rare-event estimator computes the MTTDL "
                    "directly; horizon_hours only applies to direct "
                    "Monte Carlo")
            if life.kind == "weibull":
                raise ScenarioSpecError(
                    "the rare-event estimator requires exponential (or "
                    "trace-fitted piecewise-exponential) lifetimes")
            if trace is not None and trace.model != "piecewise":
                raise ScenarioSpecError(
                    "the rare-event estimator needs a lifetime density; "
                    "use the piecewise-exponential trace fit "
                    "(model = 'piecewise')")
        if est.mode == "events":
            defaults = EstimatorSection()
            if (est.rare_target_rel_se != defaults.rare_target_rel_se
                    or est.rare_max_cycles != defaults.rare_max_cycles):
                raise ScenarioSpecError(
                    "rare-event tuning (rare_target_rel_se / "
                    "rare_max_cycles) has no effect on the events engine")
        if est.mode == "analytic":
            if trace is not None:
                raise ScenarioSpecError(
                    "the analytic chain has no closed form for "
                    "trace-fitted lifetimes; drop the [trace] section")
            if life.kind != "exponential":
                raise ScenarioSpecError(
                    "the analytic chain assumes exponential lifetimes")
            if not self._domains_inert():
                raise ScenarioSpecError(
                    "the analytic chain assumes independent failures; "
                    "drop the [domains] correlation")
            if est.horizon_hours is not None:
                raise ScenarioSpecError(
                    "horizon_hours does not apply to the analytic chain")

        # Failure-domain contradictions (silent no-ops rejected).
        if dom.racks < 1:
            raise ScenarioSpecError("[domains] racks must be >= 1")
        if dom.enclosures_per_rack < 1:
            raise ScenarioSpecError(
                "[domains] enclosures_per_rack must be >= 1")
        if dom.rack_shock_rate_per_hour > 0 and dom.racks == 1:
            raise ScenarioSpecError(
                "rack_shock_rate_per_hour > 0 with a single rack means "
                "every shock is a cluster-wide kill; spread the fleet "
                "with racks >= 2 (or model the outage explicitly)")
        if (dom.rack_kill_probability != 1.0
                and dom.rack_shock_rate_per_hour == 0.0):
            raise ScenarioSpecError(
                "rack_kill_probability has no effect without "
                "rack_shock_rate_per_hour > 0")
        if (dom.enclosure_shock_rate_per_hour > 0
                and dom.enclosures_per_rack == 1):
            raise ScenarioSpecError(
                "enclosure_shock_rate_per_hour > 0 needs "
                "enclosures_per_rack >= 2 (one enclosure per rack is "
                "just the rack shock again)")
        if (dom.enclosure_kill_probability != 1.0
                and dom.enclosure_shock_rate_per_hour == 0.0):
            raise ScenarioSpecError(
                "enclosure_kill_probability has no effect without "
                "enclosure_shock_rate_per_hour > 0")
        if dom.batch_accel != 1.0 and dom.batch_fraction == 0.0:
            raise ScenarioSpecError(
                "batch_accel has no effect without batch_fraction > 0")
        if dom.batch_fraction > 0.0 and dom.batch_accel == 1.0:
            raise ScenarioSpecError(
                "batch_fraction > 0 with batch_accel = 1.0 is a no-op "
                "batch; set batch_accel != 1 (or drop the batch)")
        if dom.placement == "contiguous" and dom.racks == 1:
            raise ScenarioSpecError(
                "placement = 'contiguous' needs racks >= 2 (with one "
                "rack both placements are the same)")

        # Object-store traffic contradictions.
        store = self.store
        if store is not None:
            if est.mode == "analytic":
                raise ScenarioSpecError(
                    "store traffic is a simulation; the analytic chain "
                    "has no closed form for a served workload -- drop "
                    "the [store] section or pick a simulating mode")
            if est.mode == "rare":
                raise ScenarioSpecError(
                    "the rare-event estimator computes MTTDL, it does "
                    "not serve traffic; [store] workloads run under "
                    "mode = 'montecarlo' or 'events'")
            if store.objects < 1:
                raise ScenarioSpecError("[store] objects must be >= 1")
            if store.object_bytes < 0:
                raise ScenarioSpecError(
                    "[store] object_bytes must be >= 0")
            if store.min_object_bytes is not None and not (
                    0 <= store.min_object_bytes <= store.object_bytes):
                raise ScenarioSpecError(
                    "[store] min_object_bytes must lie in "
                    "[0, object_bytes]")
            if store.symbol_bytes < 1:
                raise ScenarioSpecError(
                    "[store] symbol_bytes must be >= 1")
            if store.operations < 1:
                raise ScenarioSpecError(
                    "[store] operations must be >= 1")
            if store.clients < 1:
                raise ScenarioSpecError("[store] clients must be >= 1")
            if not (0.0 <= store.read_fraction <= 1.0):
                raise ScenarioSpecError(
                    "[store] read_fraction must lie in [0, 1]")
            if store.zipf_alpha < 0.0:
                raise ScenarioSpecError(
                    "[store] zipf_alpha must be >= 0 (0 = uniform)")
            if store.kill_nodes < 0:
                raise ScenarioSpecError(
                    "[store] kill_nodes must be >= 0")
            if not (0.0 <= store.kill_at_fraction < 1.0):
                raise ScenarioSpecError(
                    "[store] kill_at_fraction must lie in [0, 1) so "
                    "the kill lands inside the workload")
            if (store.kill_at_fraction != 0.5
                    and store.kill_nodes == 0):
                raise ScenarioSpecError(
                    "[store] kill_at_fraction has no effect without "
                    "kill_nodes > 0")
            if store.hours_per_op < 0.0:
                raise ScenarioSpecError(
                    "[store] hours_per_op must be >= 0 (0 disables "
                    "lifetime/domain-driven failures)")
            if store.meta_shards < 1:
                raise ScenarioSpecError(
                    "[store] meta_shards must be >= 1")
            for knob in ("latency_net_rtt_ms", "latency_net_jitter_ms",
                         "latency_disk_ms", "latency_disk_jitter_ms"):
                if getattr(store, knob) < 0.0:
                    raise ScenarioSpecError(
                        f"[store] {knob} must be >= 0 (0 = no "
                        "simulated latency)")
            if trace is not None and trace.model == "replay":
                raise ScenarioSpecError(
                    "[store] failure injection samples lifetimes; "
                    "verbatim trace replay applies to the events "
                    "engine only")
        return self

    def _domains_inert(self) -> bool:
        """True when the domains section adds no correlation at all."""
        dom = self.domains
        return (dom.rack_shock_rate_per_hour == 0.0
                and dom.enclosure_shock_rate_per_hour == 0.0
                and (dom.batch_fraction == 0.0 or dom.batch_accel == 1.0))


def _toml_value(value: Any) -> str:
    """Render one scalar (or flat list) as TOML source."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return repr(value)
    if isinstance(value, float):
        if not math.isfinite(value):
            raise ScenarioSpecError(
                f"cannot serialize non-finite float {value!r} to TOML")
        text = repr(value)
        # TOML floats need a dot or exponent; repr of a whole float has
        # one already ('500000.0'), so only ints-in-disguise need care.
        return text
    if isinstance(value, str):
        return json.dumps(value)
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_toml_value(v) for v in value) + "]"
    raise ScenarioSpecError(f"cannot serialize {type(value).__name__} "
                            "to TOML")


#: Salt mixed into every content hash.  Bump when an engine's sampling
#: or estimator semantics change, so stale sweep-cache entries (computed
#: by older engine code) miss instead of being served as current.
CODE_VERSION_SALT = "repro-sim/engines-v1"


def spec_hash(spec: ScenarioSpec, salt: str = CODE_VERSION_SALT) -> str:
    """Content address of a spec: SHA-256 over the canonical JSON plus
    the engine-version salt.  Equal specs hash equal; any field change
    (or an engine-semantics bump) changes the address."""
    canon = json.dumps(spec.canonical_dict(), sort_keys=True,
                       separators=(",", ":"))
    digest = hashlib.sha256()
    digest.update(salt.encode("utf-8"))
    digest.update(b"\n")
    digest.update(canon.encode("utf-8"))
    return digest.hexdigest()
