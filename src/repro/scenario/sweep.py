"""Grid sweeps over scenario specs, with content-addressed caching.

A *sweep file* is a TOML file with a ``[scenario]`` base spec and an
optional ``[sweep]`` section describing how to vary it::

    [scenario]
    version = 1
    [scenario.code]
    spec = "rs(n=8,r=16,m=1)"
    [scenario.lifetime]
    mttf_hours = 20000.0
    [scenario.estimator]
    trials = 400
    seed = 0

    [sweep]
    name = "p-bit-sweep"
    [sweep.grid]
    "sector.p_bit" = [1e-14, 1e-12, 1e-10]
    "code.spec" = ["rs(n=8,r=16,m=1)", "stair(n=8,r=16,m=1,e=(1,2))"]

``grid`` keys are dotted spec paths; the cells are their cartesian
product in file order (here 3 x 2 = 6 cells, p_bit varying slowest).
``[[sweep.cells]]`` tables append explicit cells instead of (or on top
of) a grid.  A file with no ``[sweep]`` section is a one-cell sweep --
any committed scenario spec runs through the orchestrator unchanged.

Per-cell seeds are derived deterministically from the base spec's
``estimator.seed`` via ``numpy.random.SeedSequence.spawn`` -- cells are
statistically independent, yet the whole sweep is reproducible from one
seed.  A cell whose overrides set ``estimator.seed`` explicitly keeps
that seed instead.

Results are cached content-addressed: each cell's canonical spec is
hashed (:func:`~repro.scenario.spec.spec_hash`, which mixes in the
engine-version salt) and the outcome summary is stored as
``<cache_dir>/<hash>.json``.  Re-running a sweep recomputes only cells
whose spec (or engine version) changed; corrupted or stale cache
entries are recomputed, never trusted.  Cell fan-out uses a
``multiprocessing`` pool (``processes > 1``).

Command line::

    PYTHONPATH=src python -m repro.scenario.sweep sweep.toml \\
        --cache-dir .sweep-cache --processes 4
    # second run: all cells served from cache
    PYTHONPATH=src python -m repro.scenario.sweep sweep.toml \\
        --cache-dir .sweep-cache --expect-all-hits

Tutorial: ``docs/scenarios.md``.
"""

from __future__ import annotations

import argparse
import itertools
import json
import multiprocessing
import os
import tomllib
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from repro.scenario.runner import run_scenario
from repro.scenario.spec import (
    CODE_VERSION_SALT,
    ScenarioSpec,
    ScenarioSpecError,
    spec_hash,
)


@dataclass(frozen=True)
class SweepSpec:
    """A parsed sweep file: the base scenario plus its variations."""

    base: ScenarioSpec
    name: str = "sweep"
    #: Dotted spec path -> list of values (cartesian product, file order).
    grid: dict[str, list] = field(default_factory=dict)
    #: Explicit extra cells (dotted path -> value each).
    cells: list[dict[str, Any]] = field(default_factory=list)


@dataclass
class SweepCell:
    """One expanded cell: its spec, overrides, and (after the run) its
    cached-or-computed result summary."""

    index: int
    spec: ScenarioSpec
    overrides: dict[str, Any]
    key: str
    cached: bool = False
    result: dict | None = None


@dataclass
class SweepResult:
    """All cells of one sweep run, plus hit/miss accounting."""

    name: str
    cells: list[SweepCell]

    @property
    def hits(self) -> int:
        return sum(cell.cached for cell in self.cells)

    @property
    def misses(self) -> int:
        return len(self.cells) - self.hits

    def rows(self) -> list[dict]:
        """One flat dict per cell: the overrides plus the summary."""
        out = []
        for cell in self.cells:
            row = dict(cell.overrides)
            row.update(cell.result or {})
            out.append(row)
        return out


# --------------------------------------------------------------------------- #
# Sweep-file parsing and cell expansion
# --------------------------------------------------------------------------- #
def load_sweep(path: str | os.PathLike) -> SweepSpec:
    """Parse a sweep file (or a plain scenario spec: one-cell sweep)."""
    path = os.fspath(path)
    if not os.path.exists(path):
        raise ScenarioSpecError(f"sweep file {path!r} does not exist")
    with open(path, "rb") as handle:
        try:
            data = tomllib.load(handle)
        except tomllib.TOMLDecodeError as exc:
            raise ScenarioSpecError(f"{path}: invalid TOML: {exc}") from exc
    if "scenario" not in data:
        # A bare scenario spec file: run it as a single cell.
        return SweepSpec(base=ScenarioSpec.load(path),
                         name=os.path.splitext(os.path.basename(path))[0])
    unknown = sorted(set(data) - {"scenario", "sweep"})
    if unknown:
        raise ScenarioSpecError(
            f"{path}: unknown top-level section(s) {unknown}; a sweep "
            "file has [scenario] and optionally [sweep]")
    try:
        base = ScenarioSpec.from_dict(data["scenario"])
    except ScenarioSpecError as exc:
        raise ScenarioSpecError(f"{path}: [scenario] {exc}") from exc
    sweep_data = data.get("sweep", {})
    if not isinstance(sweep_data, Mapping):
        raise ScenarioSpecError(f"{path}: [sweep] must be a table")
    unknown = sorted(set(sweep_data) - {"name", "grid", "cells"})
    if unknown:
        raise ScenarioSpecError(
            f"{path}: unknown [sweep] key(s) {unknown}; known keys: "
            "name, grid, cells")
    name = sweep_data.get("name",
                          os.path.splitext(os.path.basename(path))[0])
    grid = dict(sweep_data.get("grid", {}))
    for dotted, values in grid.items():
        if not isinstance(values, list) or not values:
            raise ScenarioSpecError(
                f"{path}: [sweep.grid] {dotted!r} must map to a "
                "non-empty list of values")
        _check_dotted(dotted)
    cells = list(sweep_data.get("cells", []))
    for cell in cells:
        if not isinstance(cell, Mapping):
            raise ScenarioSpecError(
                f"{path}: [[sweep.cells]] entries must be tables")
        for dotted in cell:
            _check_dotted(dotted)
    return SweepSpec(base=base, name=str(name), grid=grid,
                     cells=[dict(c) for c in cells])


def _check_dotted(dotted: str) -> None:
    if "." not in dotted:
        raise ScenarioSpecError(
            f"sweep override {dotted!r} must be a dotted spec path like "
            "'sector.p_bit'")


def _apply_override(data: dict, dotted: str, value: Any) -> None:
    parts = dotted.split(".")
    node = data
    for part in parts[:-1]:
        child = node.get(part)
        if not isinstance(child, dict):
            child = {}
            node[part] = child
        node = child
    node[parts[-1]] = value


def expand_cells(sweep: SweepSpec) -> list[tuple[ScenarioSpec, dict]]:
    """All ``(cell_spec, overrides)`` pairs of a sweep, in order.

    Grid cells come first (cartesian product, first grid key varying
    slowest), then the explicit ``cells`` entries.  Per-cell seeds are
    spawned from the base ``estimator.seed`` unless a cell pins
    ``estimator.seed`` itself.
    """
    override_sets: list[dict[str, Any]] = []
    if sweep.grid:
        keys = list(sweep.grid)
        for combo in itertools.product(*(sweep.grid[k] for k in keys)):
            override_sets.append(dict(zip(keys, combo)))
    override_sets.extend(sweep.cells)
    if not override_sets:
        override_sets.append({})
    children = np.random.SeedSequence(
        sweep.base.estimator.seed).spawn(len(override_sets))
    out = []
    for index, overrides in enumerate(override_sets):
        data = sweep.base.to_dict()
        for dotted, value in overrides.items():
            _apply_override(data, dotted, value)
        if "estimator.seed" not in overrides:
            # Derived, deterministic, independent per cell.
            _apply_override(
                data, "estimator.seed",
                int(children[index].generate_state(1, np.uint32)[0]))
        try:
            spec = ScenarioSpec.from_dict(data)
        except ScenarioSpecError as exc:
            raise ScenarioSpecError(
                f"sweep cell {index} ({overrides!r}): {exc}") from exc
        out.append((spec, dict(overrides)))
    return out


# --------------------------------------------------------------------------- #
# Content-addressed result cache
# --------------------------------------------------------------------------- #
def _cache_path(cache_dir: str, key: str) -> str:
    return os.path.join(cache_dir, f"{key}.json")


def cache_lookup(cache_dir: str, spec: ScenarioSpec,
                 key: str | None = None) -> dict | None:
    """The cached result for a spec, or None (missing / corrupted /
    stale salt / spec mismatch -- all treated as a miss)."""
    key = key or spec_hash(spec)
    path = _cache_path(cache_dir, key)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            entry = json.load(handle)
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return None
    if not isinstance(entry, dict):
        return None
    if entry.get("salt") != CODE_VERSION_SALT:
        return None
    if entry.get("spec") != spec.canonical_dict():
        # Hash collision or hand-edited entry: never trust it.
        return None
    result = entry.get("result")
    return result if isinstance(result, dict) else None


def cache_store(cache_dir: str, spec: ScenarioSpec, result: dict,
                key: str | None = None) -> str:
    """Write one result entry; returns the file path."""
    key = key or spec_hash(spec)
    os.makedirs(cache_dir, exist_ok=True)
    path = _cache_path(cache_dir, key)
    entry = {"salt": CODE_VERSION_SALT, "spec": spec.canonical_dict(),
             "result": result}
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(entry, handle, sort_keys=True, indent=1)
    os.replace(tmp, path)
    return path


def _run_cell(spec_dict: dict) -> dict:
    """Pool worker: rebuild the spec (dicts are picklable, specs cross
    process boundaries as their canonical dicts) and run it."""
    spec = ScenarioSpec.from_dict(_strip_none(spec_dict))
    return run_scenario(spec).summary()


def _strip_none(data: dict) -> dict:
    """Drop None-valued entries (canonical dicts carry ``trace: None``,
    which ``from_dict`` does not accept as a section)."""
    out = {}
    for key, value in data.items():
        if value is None:
            continue
        out[key] = (_strip_none(value) if isinstance(value, dict)
                    else value)
    return out


# --------------------------------------------------------------------------- #
# The orchestrator
# --------------------------------------------------------------------------- #
def run_sweep(sweep: SweepSpec,
              cache_dir: str | os.PathLike | None = None,
              processes: int = 1) -> SweepResult:
    """Expand, run (or serve from cache), and collect every cell.

    ``cache_dir=None`` disables caching (every cell recomputes).
    ``processes > 1`` fans uncached cells out across a multiprocessing
    pool; cached cells never touch the pool.  Every cell spec is
    validated before anything runs, so a bad cell fails the sweep fast.
    """
    expanded = expand_cells(sweep)
    cells = []
    for index, (spec, overrides) in enumerate(expanded):
        try:
            spec.validate()
        except ScenarioSpecError as exc:
            raise ScenarioSpecError(
                f"sweep cell {index} ({overrides!r}): {exc}") from exc
        cells.append(SweepCell(index=index, spec=spec,
                               overrides=overrides, key=spec_hash(spec)))
    cache = os.fspath(cache_dir) if cache_dir is not None else None
    pending: list[SweepCell] = []
    for cell in cells:
        if cache is not None:
            result = cache_lookup(cache, cell.spec, key=cell.key)
            if result is not None:
                cell.cached, cell.result = True, result
                continue
        pending.append(cell)
    if pending:
        payloads = [cell.spec.canonical_dict() for cell in pending]
        if processes > 1 and len(pending) > 1:
            with multiprocessing.Pool(min(processes,
                                          len(pending))) as pool:
                results = pool.map(_run_cell, payloads)
        else:
            results = [_run_cell(payload) for payload in payloads]
        for cell, result in zip(pending, results):
            cell.result = result
            if cache is not None:
                cache_store(cache, cell.spec, result, key=cell.key)
    return SweepResult(name=sweep.name, cells=cells)


def run_sweep_file(path: str | os.PathLike,
                   cache_dir: str | os.PathLike | None = None,
                   processes: int = 1) -> SweepResult:
    """:func:`load_sweep` + :func:`run_sweep` in one call."""
    return run_sweep(load_sweep(path), cache_dir=cache_dir,
                     processes=processes)


# --------------------------------------------------------------------------- #
# Command line
# --------------------------------------------------------------------------- #
def _headline(result: dict) -> str:
    """The one number worth a table cell, per engine."""
    inner = result.get("result", {})
    for source, key in ((inner, "mttdl_hours"),
                        (result, "analytic_system_mttdl_hours"),
                        (result, "analytic_mttdl_hours")):
        if key in source:
            return f"{source[key]:.4g} h"
    if result.get("engine") == "events":
        return (f"{result.get('losses', '?')}/{result.get('trials', '?')} "
                "losses")
    return "-"


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenario.sweep",
        description="Run a scenario sweep file with content-addressed "
                    "result caching (docs/scenarios.md).")
    parser.add_argument("file", help="sweep TOML (or a single scenario "
                                     "spec file)")
    parser.add_argument("--cache-dir", default=None,
                        help="cache directory for content-addressed "
                             "results (omit to always recompute)")
    parser.add_argument("--processes", type=int, default=1,
                        help="multiprocessing pool size for uncached "
                             "cells")
    parser.add_argument("--expect-all-hits", action="store_true",
                        help="fail unless every cell was served from "
                             "the cache (CI determinism check)")
    parser.add_argument("--json", action="store_true",
                        help="print the cell results as JSON instead "
                             "of a table")
    args = parser.parse_args(argv)
    try:
        result = run_sweep_file(args.file, cache_dir=args.cache_dir,
                                processes=args.processes)
    except (ScenarioSpecError, ValueError, RuntimeError) as exc:
        raise SystemExit(f"error: {exc}") from exc
    if args.json:
        print(json.dumps([{"overrides": cell.overrides,
                           "key": cell.key,
                           "cached": cell.cached,
                           "result": cell.result}
                          for cell in result.cells],
                         indent=2, sort_keys=True))
    else:
        from repro.bench.reporting import print_table
        rows = []
        for cell in result.cells:
            overrides = ", ".join(f"{k}={v}" for k, v
                                  in cell.overrides.items()) or "-"
            rows.append((cell.index, overrides, cell.key[:12],
                         "hit" if cell.cached else "miss",
                         _headline(cell.result or {})))
        print_table(["cell", "overrides", "key", "cache", "headline"],
                    rows, title=f"sweep {result.name}: "
                                f"{result.hits} cached / "
                                f"{len(result.cells)} cells")
    if args.expect_all_hits and result.misses:
        raise SystemExit(
            f"error: expected every cell cached, but {result.misses} of "
            f"{len(result.cells)} recomputed")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
