"""P_str: probability that a stripe in critical mode is unrecoverable.

During the rebuild of one failed device (critical mode) the stripe has
``n - m`` surviving chunks, each of which may contain sector failures.
``P_str`` is the probability that those failures exceed what the code's
remaining redundancy can repair.  Appendix B of the paper gives explicit
expressions for Reed-Solomon codes, several STAIR configurations and SD
codes; this module implements

* :func:`pstr_generic` -- an exact enumeration valid for *any* coverage
  vector ``e`` (the paper only states closed forms for a few shapes), and
* the closed forms of Appendix B (Eq. 18-26), used to cross-validate the
  generic enumerator in the test suite.
"""

from __future__ import annotations

from itertools import combinations_with_replacement
from math import comb, factorial
from typing import Callable, Sequence

from repro.reliability.sector_models import SectorFailureModel

PchkFunc = Callable[[int], float]


def _as_pchk(model: SectorFailureModel | PchkFunc) -> PchkFunc:
    if isinstance(model, SectorFailureModel):
        return model.p_chk
    return model


# --------------------------------------------------------------------------- #
# Generic enumeration
# --------------------------------------------------------------------------- #
def _covered_probability(chunks: int, max_failures: int, r: int,
                         pchk: PchkFunc,
                         covered: Callable[[tuple[int, ...]], bool]) -> float:
    """Sum the probability of every per-chunk failure-count multiset that is
    covered.

    ``covered`` receives the non-zero failure counts sorted descending.
    Counts above ``max_failures`` can never be covered, so the enumeration
    only considers counts in ``1..max_failures`` spread over at most
    ``chunks`` chunks -- a tiny space for realistic parameters.
    """
    p0 = pchk(0)
    total = p0 ** chunks  # no chunk damaged
    if max_failures <= 0:
        return total
    max_damaged = chunks
    for k in range(1, max_damaged + 1):
        for counts in combinations_with_replacement(
                range(1, max_failures + 1), k):
            sorted_desc = tuple(sorted(counts, reverse=True))
            if not covered(sorted_desc):
                continue
            # Number of ways to assign these counts to distinct chunks.
            multiplicities: dict[int, int] = {}
            for c in counts:
                multiplicities[c] = multiplicities.get(c, 0) + 1
            ways = comb(chunks, k) * factorial(k)
            for mult in multiplicities.values():
                ways //= factorial(mult)
            prob = 1.0
            for c in counts:
                prob *= pchk(c)
            total += ways * prob * p0 ** (chunks - k)
    return total


def pstr_generic(e: Sequence[int], n: int, m: int,
                 model: SectorFailureModel | PchkFunc, r: int) -> float:
    """P_str of a STAIR code with coverage vector ``e`` (any shape).

    A per-chunk failure pattern is recoverable iff, after sorting the
    non-zero counts in descending order, at most ``m'`` chunks are damaged
    and the i-th largest count is at most the i-th largest entry of ``e``.
    """
    e_desc = sorted(e, reverse=True)

    def covered(counts: tuple[int, ...]) -> bool:
        if len(counts) > len(e_desc):
            return False
        return all(c <= e_desc[i] for i, c in enumerate(counts))

    max_failures = e_desc[0] if e_desc else 0
    return 1.0 - _covered_probability(n - m, max_failures, r,
                                      _as_pchk(model), covered)


def pstr_sd_generic(s: int, n: int, m: int,
                    model: SectorFailureModel | PchkFunc, r: int) -> float:
    """P_str of an SD code: recoverable iff the stripe has at most s failures."""
    def covered(counts: tuple[int, ...]) -> bool:
        return sum(counts) <= s

    return 1.0 - _covered_probability(n - m, s, r, _as_pchk(model), covered)


def pstr_reed_solomon(n: int, m: int,
                      model: SectorFailureModel | PchkFunc) -> float:
    """P_str of a device-level RS code in critical mode (Eq. 18).

    With the last erasure capability consumed by the failed device, any
    sector failure in a surviving chunk is unrecoverable.
    """
    pchk = _as_pchk(model)
    return 1.0 - pchk(0) ** (n - m)


# --------------------------------------------------------------------------- #
# Closed forms of Appendix B (used for cross-validation)
# --------------------------------------------------------------------------- #
def pstr_stair_single(e_value: int, n: int, m: int,
                      model: SectorFailureModel | PchkFunc) -> float:
    """Eq. 19: STAIR with e = (s): one chunk may have up to s failures."""
    pchk = _as_pchk(model)
    k = n - m
    p0 = pchk(0)
    covered = p0 ** k
    covered += comb(k, 1) * sum(pchk(i) for i in range(1, e_value + 1)) * p0 ** (k - 1)
    return 1.0 - covered


def pstr_stair_one_plus(s: int, n: int, m: int,
                        model: SectorFailureModel | PchkFunc) -> float:
    """Eq. 20: STAIR with e = (1, s-1), s >= 2."""
    pchk = _as_pchk(model)
    k = n - m
    p0 = pchk(0)
    covered = p0 ** k
    covered += comb(k, 1) * sum(pchk(i) for i in range(1, s)) * p0 ** (k - 1)
    covered += comb(k, 2) * pchk(1) ** 2 * p0 ** (k - 2)
    covered += (comb(k, 1) * comb(k - 1, 1)
                * sum(pchk(i) for i in range(2, s)) * pchk(1) * p0 ** (k - 2))
    return 1.0 - covered


def pstr_stair_two_plus(s: int, n: int, m: int,
                        model: SectorFailureModel | PchkFunc) -> float:
    """Eq. 21: STAIR with e = (2, s-2), s >= 4."""
    pchk = _as_pchk(model)
    k = n - m
    p0 = pchk(0)
    covered = p0 ** k
    covered += comb(k, 1) * sum(pchk(i) for i in range(1, s - 1)) * p0 ** (k - 1)
    covered += comb(k, 2) * pchk(1) ** 2 * p0 ** (k - 2)
    covered += (comb(k, 1) * comb(k - 1, 1)
                * sum(pchk(i) for i in range(2, s - 1)) * pchk(1) * p0 ** (k - 2))
    covered += comb(k, 2) * pchk(2) ** 2 * p0 ** (k - 2)
    covered += (comb(k, 1) * comb(k - 1, 1)
                * sum(pchk(i) for i in range(3, s - 1)) * pchk(2) * p0 ** (k - 2))
    return 1.0 - covered


def pstr_stair_one_one_plus(s: int, n: int, m: int,
                            model: SectorFailureModel | PchkFunc) -> float:
    """Eq. 22: STAIR with e = (1, 1, s-2), s >= 3."""
    pchk = _as_pchk(model)
    k = n - m
    p0 = pchk(0)
    covered = p0 ** k
    covered += comb(k, 1) * sum(pchk(i) for i in range(1, s - 1)) * p0 ** (k - 1)
    covered += comb(k, 2) * pchk(1) ** 2 * p0 ** (k - 2)
    covered += (comb(k, 1) * comb(k - 1, 1)
                * sum(pchk(i) for i in range(2, s - 1)) * pchk(1) * p0 ** (k - 2))
    covered += comb(k, 3) * pchk(1) ** 3 * p0 ** (k - 3)
    covered += (comb(k, 2) * comb(k - 2, 1)
                * sum(pchk(i) for i in range(2, s - 1)) * pchk(1) ** 2 * p0 ** (k - 3))
    return 1.0 - covered


def pstr_stair_all_ones(s: int, n: int, m: int,
                        model: SectorFailureModel | PchkFunc) -> float:
    """Eq. 23: STAIR with e = (1, 1, ..., 1) of length s."""
    pchk = _as_pchk(model)
    k = n - m
    p0 = pchk(0)
    covered = sum(comb(k, i) * pchk(1) ** i * p0 ** (k - i)
                  for i in range(0, s + 1))
    return 1.0 - covered


def pstr_sd(s: int, n: int, m: int,
            model: SectorFailureModel | PchkFunc) -> float:
    """Eq. 24-26: SD codes with s <= 3 (falls back to the generic form)."""
    pchk = _as_pchk(model)
    k = n - m
    p0 = pchk(0)
    if s == 1:
        covered = p0 ** k + comb(k, 1) * pchk(1) * p0 ** (k - 1)
        return 1.0 - covered
    if s == 2:
        covered = p0 ** k
        covered += comb(k, 1) * (pchk(1) + pchk(2)) * p0 ** (k - 1)
        covered += comb(k, 2) * pchk(1) ** 2 * p0 ** (k - 2)
        return 1.0 - covered
    if s == 3:
        covered = p0 ** k
        covered += comb(k, 1) * (pchk(1) + pchk(2) + pchk(3)) * p0 ** (k - 1)
        covered += comb(k, 2) * pchk(1) ** 2 * p0 ** (k - 2)
        covered += comb(k, 1) * comb(k - 1, 1) * pchk(2) * pchk(1) * p0 ** (k - 2)
        covered += comb(k, 3) * pchk(1) ** 3 * p0 ** (k - 3)
        return 1.0 - covered
    raise ValueError(
        "closed-form SD P_str is only given for s <= 3; use pstr_sd_generic"
    )
