"""Choosing the sector-failure coverage vector e (§2 and §7.2).

Practitioners pick ``e`` from two observations about their drives:

* the maximum burst length β they need to survive (set ``e_max = β``), and
* how bursty failures are (``b1``, ``alpha``): bursty drives favour
  concentrating the budget in one chunk (e = (s)); scattered failures
  favour spreading it (e = (1, ..., 1)).

:func:`candidate_coverages` enumerates the e vectors worth considering
for a redundancy budget, :func:`rank_coverages` orders them by the MTTDL
they achieve under a given sector-failure model, and
:func:`recommend_coverage` combines both -- reproducing the qualitative
guidance of §7.2 (e.g. that e = (1, 2) beats e = (3) and e = (1, 1, 1)
under independent failures, while e = (s) wins under bursty failures).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.config import enumerate_e_vectors
from repro.reliability.mttdl import CodeReliability, SystemParameters, mttdl_system
from repro.reliability.sector_models import SectorFailureModel


def coverage_for_burst(beta: int, extra_single_failures: int = 1) -> tuple[int, ...]:
    """The paper's §2 recipe: tolerate one burst of length β plus a few
    isolated sector failures in other chunks (e.g. β = 4 -> e = (1, 4))."""
    if beta < 1:
        raise ValueError("beta must be >= 1")
    if extra_single_failures < 0:
        raise ValueError("extra_single_failures must be >= 0")
    return tuple([1] * extra_single_failures + [beta])


def candidate_coverages(s: int, r: int, max_chunks: int | None = None,
                        ) -> list[tuple[int, ...]]:
    """All e vectors with total redundancy s (bounded by r per chunk)."""
    return list(enumerate_e_vectors(s, m_prime_max=max_chunks, e_max_cap=r))


@dataclass(frozen=True)
class CoverageRanking:
    """MTTDL achieved by one candidate coverage vector."""

    e: tuple[int, ...]
    mttdl_hours: float


def rank_coverages(candidates: Sequence[Sequence[int]],
                   params: SystemParameters,
                   model: SectorFailureModel) -> list[CoverageRanking]:
    """Rank candidate e vectors by system MTTDL (best first)."""
    ranked = [
        CoverageRanking(e=tuple(sorted(int(x) for x in e)),
                        mttdl_hours=mttdl_system(CodeReliability.stair(e),
                                                 params, model))
        for e in candidates
    ]
    ranked.sort(key=lambda item: item.mttdl_hours, reverse=True)
    return ranked


def recommend_coverage(s: int, params: SystemParameters,
                       model: SectorFailureModel,
                       max_chunks: int | None = None) -> CoverageRanking:
    """Best coverage vector for a redundancy budget of s parity sectors."""
    candidates = candidate_coverages(s, params.r,
                                     max_chunks=max_chunks or params.n - params.m)
    ranked = rank_coverages(candidates, params, model)
    if not ranked:
        raise ValueError("no candidate coverage vectors for the given budget")
    return ranked[0]
