"""Continuous-time Markov chain helpers for the MTTDL analysis (§7.1.1).

The paper models a storage array with m = 1 as a three-state chain
(Figure 16): State 0 (all devices healthy), State 1 (one device failed,
rebuild in progress) and the absorbing data-loss state.  The mean time to
absorption starting from State 0 is MTTDL_arr, Eq. (10).

:func:`mean_time_to_absorption` solves the general problem for any chain
so that tests can confirm the closed form, and so larger chains (e.g. the
m = 2 extension implemented in :func:`mttdl_arr_two_parity`) reuse the
same machinery.
"""

from __future__ import annotations

import numpy as np


def mean_time_to_absorption(generator: np.ndarray,
                            absorbing: list[int],
                            start: int = 0) -> float:
    """Expected time to reach an absorbing state of a CTMC.

    Parameters
    ----------
    generator:
        The full generator (rate) matrix Q, where ``Q[i, j]`` for i != j is
        the transition rate and rows sum to zero.
    absorbing:
        Indices of absorbing states.
    start:
        Starting state.

    The expected hitting times ``t`` of the transient states satisfy
    ``Q_t t = -1`` where ``Q_t`` is the restriction of Q to transient
    states.
    """
    generator = np.asarray(generator, dtype=float)
    num_states = generator.shape[0]
    transient = [i for i in range(num_states) if i not in set(absorbing)]
    if start not in transient:
        return 0.0
    q_t = generator[np.ix_(transient, transient)]
    rhs = -np.ones(len(transient))
    times = np.linalg.solve(q_t, rhs)
    return float(times[transient.index(start)])


def critical_mode_chain(n: int, lam: float, mu: float,
                        p_arr: float) -> np.ndarray:
    """Generator matrix of the paper's three-state chain (Figure 16).

    State 0: healthy; State 1: critical (one failed device, rebuilding);
    State 2: data loss (absorbing).  From State 1, a successful rebuild
    returns to State 0 at rate ``mu * (1 - P_arr)``; an additional device
    failure (rate ``(n-1) * lam``) or hitting unrecoverable sector failures
    during rebuild (rate ``mu * P_arr``) leads to data loss.
    """
    q = np.zeros((3, 3))
    q[0, 1] = n * lam
    q[0, 0] = -n * lam
    repair = mu * (1.0 - p_arr)
    loss = (n - 1) * lam + mu * p_arr
    q[1, 0] = repair
    q[1, 2] = loss
    q[1, 1] = -(repair + loss)
    return q


def mttdl_arr_closed_form(n: int, lam: float, mu: float, p_arr: float) -> float:
    """Eq. (10): MTTDL of one array with m = 1."""
    numerator = (2 * n - 1) * lam + mu
    denominator = n * lam * ((n - 1) * lam + mu * p_arr)
    return numerator / denominator


def mttdl_arr_markov(n: int, lam: float, mu: float, p_arr: float) -> float:
    """MTTDL of one array with m = 1 solved numerically from the chain."""
    chain = critical_mode_chain(n, lam, mu, p_arr)
    return mean_time_to_absorption(chain, absorbing=[2], start=0)


def mttdl_arr_two_parity(n: int, lam: float, mu: float, p_arr: float) -> float:
    """MTTDL of an array with m = 2 parity devices (an extension of §7).

    States: 0 (healthy), 1 (one failed device), 2 (two failed devices,
    critical), 3 (data loss).  Unrecoverable sector failures only cause
    data loss in critical mode, mirroring the paper's m = 1 model.
    """
    q = np.zeros((4, 4))
    q[0, 1] = n * lam
    q[0, 0] = -n * lam
    q[1, 0] = mu
    q[1, 2] = (n - 1) * lam
    q[1, 1] = -(mu + (n - 1) * lam)
    repair = mu * (1.0 - p_arr)
    loss = (n - 2) * lam + mu * p_arr
    q[2, 1] = repair
    q[2, 3] = loss
    q[2, 2] = -(repair + loss)
    return mean_time_to_absorption(q, absorbing=[3], start=0)


def m_parity_chain(n: int, lam: float, mu: float, p_arr: float,
                   m: int) -> np.ndarray:
    """Generator matrix of the birth-death chain for any device tolerance m.

    States ``0..m`` count failed devices (state ``m`` is critical mode);
    state ``m + 1`` is the absorbing data-loss state.  Devices fail at
    rate ``(n - j) * lam`` and are rebuilt one at a time at rate ``mu``.
    A rebuild completing in critical mode trips over unrecoverable
    sector failures with probability ``p_arr``, mirroring the paper's
    m = 1 model (and degenerating to it at ``m = 1``).
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    if n < m + 1:
        raise ValueError(f"need n >= m + 1 (n={n}, m={m})")
    loss_state = m + 1
    q = np.zeros((m + 2, m + 2))
    for j in range(m):
        q[j, j + 1] = (n - j) * lam
        if j >= 1:
            q[j, j - 1] = mu
    q[m, m - 1] = mu * (1.0 - p_arr)
    q[m, loss_state] = (n - m) * lam + mu * p_arr
    for j in range(m + 1):
        q[j, j] = -q[j].sum()
    return q


def mttdl_arr_m_parity(n: int, lam: float, mu: float, p_arr: float,
                       m: int) -> float:
    """MTTDL of one array tolerating any number ``m`` of device failures.

    Generalises :func:`mttdl_arr_closed_form` (m = 1) and
    :func:`mttdl_arr_two_parity` (m = 2) via
    :func:`mean_time_to_absorption`; the vectorized Monte Carlo runner of
    :mod:`repro.sim.montecarlo` is cross-validated against this chain in
    the exponential case.
    """
    chain = m_parity_chain(n, lam, mu, p_arr, m)
    return mean_time_to_absorption(chain, absorbing=[m + 1], start=0)
