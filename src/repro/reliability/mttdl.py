"""System-level MTTDL model (§7.1.1, Eq. 7-11) and the code descriptions it
compares.

The workflow mirrors the paper's numerical study (§7.2):

1. pick a storage-system parameter set (:class:`SystemParameters`, whose
   defaults are the paper's: 10 PB of user data on 300 GB SATA drives,
   512-byte sectors, 1/λ = 500,000 h, 1/μ = 17.8 h, n = 8, r = 16, m = 1);
2. pick a sector-failure model (independent or correlated) for a given
   ``P_bit``;
3. pick an erasure-code description (:class:`CodeReliability` for RS,
   STAIR with any ``e``, or SD with any ``s``), which supplies the storage
   efficiency (Eq. 8) and ``P_str``;
4. call :func:`mttdl_system` to obtain MTTDL_sys (Eq. 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import floor
from typing import Sequence

from repro.reliability.markov import mttdl_arr_closed_form, mttdl_arr_m_parity
from repro.reliability.pstr import (
    pstr_generic,
    pstr_reed_solomon,
    pstr_sd_generic,
)
from repro.reliability.sector_models import SectorFailureModel


@dataclass(frozen=True)
class SystemParameters:
    """Storage-system parameters used throughout §7.2.

    The capacity figures use binary prefixes (10 PiB of user data on
    300 GiB devices); this is what reproduces the paper's table of
    ``N_arr`` values (4994 arrays for Reed-Solomon, 5039 for s = 1, ...).
    """

    user_data_bytes: float = 10 * 2 ** 50   # U: 10 PB (binary)
    device_capacity_bytes: float = 300 * 2 ** 30   # C: 300 GB (binary)
    sector_bytes: int = 512                 # S
    mean_time_to_failure_hours: float = 500_000.0   # 1/lambda
    mean_time_to_rebuild_hours: float = 17.8        # 1/mu
    n: int = 8
    r: int = 16
    m: int = 1

    @property
    def failure_rate(self) -> float:
        """λ (per hour)."""
        return 1.0 / self.mean_time_to_failure_hours

    @property
    def rebuild_rate(self) -> float:
        """μ (per hour)."""
        return 1.0 / self.mean_time_to_rebuild_hours

    @property
    def stripes_per_array(self) -> int:
        """⌊C / (S·r)⌋, the number of stripes in one array (Eq. 11)."""
        return int(floor(self.device_capacity_bytes
                         / (self.sector_bytes * self.r)))


@dataclass(frozen=True)
class CodeReliability:
    """Reliability-relevant description of one erasure code.

    ``kind`` is ``"rs"``, ``"stair"`` or ``"sd"``; ``e`` is the STAIR
    coverage vector and ``s`` the SD global-parity count (for RS both are
    empty/zero).
    """

    kind: str
    e: tuple[int, ...] = ()
    s: int = 0

    @classmethod
    def reed_solomon(cls) -> "CodeReliability":
        return cls(kind="rs")

    @classmethod
    def stair(cls, e: Sequence[int]) -> "CodeReliability":
        return cls(kind="stair", e=tuple(sorted(int(x) for x in e)),
                   s=int(sum(e)))

    @classmethod
    def sd(cls, s: int) -> "CodeReliability":
        return cls(kind="sd", s=int(s))

    def label(self) -> str:
        if self.kind == "rs":
            return "RS"
        if self.kind == "sd":
            return f"SD s={self.s}"
        return f"STAIR e={self.e}"

    # ------------------------------------------------------------------ #
    def storage_efficiency(self, params: SystemParameters) -> float:
        """Eq. 8: E = (r·(n-m) - s) / (r·n)."""
        r, n, m = params.r, params.n, params.m
        return (r * (n - m) - self.s) / (r * n)

    def p_str(self, params: SystemParameters,
              model: SectorFailureModel) -> float:
        """P_str for this code under the given sector-failure model."""
        n, m, r = params.n, params.m, params.r
        if self.kind == "rs":
            return pstr_reed_solomon(n, m, model)
        if self.kind == "sd":
            return pstr_sd_generic(self.s, n, m, model, r)
        if self.kind == "stair":
            return pstr_generic(self.e, n, m, model, r)
        raise ValueError(f"unknown code kind {self.kind!r}")


def number_of_arrays(code: CodeReliability, params: SystemParameters) -> int:
    """Eq. 7: N_arr = ceil( (U / E) / (C · n) )."""
    efficiency = code.storage_efficiency(params)
    raw = (params.user_data_bytes / efficiency) / (
        params.device_capacity_bytes * params.n)
    arrays = int(raw)
    if raw > arrays:
        arrays += 1
    return arrays


def p_array(code: CodeReliability, params: SystemParameters,
            model: SectorFailureModel) -> float:
    """Eq. 11: probability that an array in critical mode hits unrecoverable
    sector failures."""
    p_str = code.p_str(params, model)
    stripes = params.stripes_per_array
    # 1 - (1 - Pstr)^stripes, computed stably for tiny Pstr.
    if p_str <= 0.0:
        return 0.0
    if p_str >= 1.0:
        return 1.0
    return float(1.0 - (1.0 - p_str) ** stripes)


def mttdl_array(code: CodeReliability, params: SystemParameters,
                model: SectorFailureModel) -> float:
    """Eq. 10: MTTDL of a single array (hours)."""
    if params.m != 1:
        raise ValueError(
            "the paper's closed-form array model covers m = 1 only; "
            "use repro.reliability.markov for other m"
        )
    parr = p_array(code, params, model)
    return mttdl_arr_closed_form(params.n, params.failure_rate,
                                 params.rebuild_rate, parr)


def mttdl_array_general(code: CodeReliability, params: SystemParameters,
                        model: SectorFailureModel) -> float:
    """MTTDL of a single array for any ``params.m`` (hours).

    For ``m = 1`` this equals Eq. 10; for ``m >= 2`` it solves the
    general birth-death chain of
    :func:`repro.reliability.markov.mttdl_arr_m_parity` with the same
    ``P_arr`` (Eq. 11).  This is the analytic reference the vectorized
    Monte Carlo runner is validated against.
    """
    parr = p_array(code, params, model)
    return mttdl_arr_m_parity(params.n, params.failure_rate,
                              params.rebuild_rate, parr, params.m)


def mttdl_system(code: CodeReliability, params: SystemParameters,
                 model: SectorFailureModel) -> float:
    """Eq. 9: MTTDL of the whole storage system (hours)."""
    return mttdl_array(code, params, model) / number_of_arrays(code, params)
