"""Sector-failure models for the reliability analysis (§7.1.2).

Both models are parameterised by the unrecoverable bit-error probability
``P_bit`` (Eq. 12 turns it into the per-sector failure probability
``P_sec``) and expose ``P_chk(i)``: the probability that a chunk of ``r``
sectors suffers exactly ``i`` sector failures.

* :class:`IndependentSectorModel` -- sector failures are independent
  (Eq. 13); failures tend to scatter across chunks.
* :class:`CorrelatedSectorModel` -- sector failures arrive in bursts whose
  length distribution follows the field study of Schroeder et al.:
  a fraction ``b1`` of bursts have length one and the remainder follow a
  Pareto tail with index ``alpha`` (Eq. 14-17); failures tend to pile up
  inside a single chunk.
"""

from __future__ import annotations

import abc
from math import comb

import numpy as np

#: Default sector size in bytes (the paper uses 512-byte sectors).
DEFAULT_SECTOR_BYTES = 512


def sector_failure_probability(p_bit: float,
                               sector_bytes: int = DEFAULT_SECTOR_BYTES) -> float:
    """P_sec from P_bit (Eq. 12): 1 - (1 - P_bit)^(8*S)."""
    if not (0.0 <= p_bit <= 1.0):
        raise ValueError("p_bit must lie in [0, 1]")
    return 1.0 - (1.0 - p_bit) ** (sector_bytes * 8)


class SectorFailureModel(abc.ABC):
    """Base class: per-chunk sector-failure count distribution."""

    def __init__(self, p_sec: float, r: int) -> None:
        if not (0.0 <= p_sec <= 1.0):
            raise ValueError("p_sec must lie in [0, 1]")
        if r < 1:
            raise ValueError("r must be >= 1")
        self.p_sec = p_sec
        self.r = r

    @classmethod
    def from_p_bit(cls, p_bit: float, r: int,
                   sector_bytes: int = DEFAULT_SECTOR_BYTES, **kwargs):
        """Construct the model from the bit-error probability."""
        return cls(sector_failure_probability(p_bit, sector_bytes), r, **kwargs)

    @abc.abstractmethod
    def p_chk(self, i: int) -> float:
        """Probability that a chunk has exactly ``i`` failed sectors."""

    def p_chk_vector(self) -> np.ndarray:
        """The full distribution ``[P_chk(0), ..., P_chk(r)]``."""
        return np.array([self.p_chk(i) for i in range(self.r + 1)])

    def p_chunk_damaged(self) -> float:
        """Probability that a chunk has at least one failed sector."""
        return 1.0 - self.p_chk(0)


class IndependentSectorModel(SectorFailureModel):
    """Independent sector failures: binomial per-chunk counts (Eq. 13)."""

    def p_chk(self, i: int) -> float:
        if not (0 <= i <= self.r):
            return 0.0
        return (comb(self.r, i) * self.p_sec ** i
                * (1.0 - self.p_sec) ** (self.r - i))


class CorrelatedSectorModel(SectorFailureModel):
    """Bursty sector failures following the (b1, alpha) parametric fit.

    Parameters
    ----------
    p_sec:
        Per-sector failure probability (same expected number of failed
        sectors as the independent model -- the paper's comparison keeps
        P_sec fixed across models).
    r:
        Sectors per chunk.  Burst lengths are truncated at ``r`` and a
        burst never spans two chunks (the paper's simplifying assumptions).
    b1:
        Fraction of bursts of length one.
    alpha:
        Pareto tail index fitted to bursts of length >= 2.
    """

    def __init__(self, p_sec: float, r: int, b1: float = 0.98,
                 alpha: float = 1.79) -> None:
        super().__init__(p_sec, r)
        if not (0.0 < b1 <= 1.0):
            raise ValueError("b1 must lie in (0, 1]")
        if alpha <= 0.0:
            raise ValueError("alpha must be positive")
        self.b1 = b1
        self.alpha = alpha
        self.burst_pmf = self._burst_length_pmf()
        #: Average burst length B (Eq. 14).
        self.mean_burst_length = float(
            np.dot(np.arange(1, self.r + 1), self.burst_pmf))

    def _burst_length_pmf(self) -> np.ndarray:
        """b_i for i = 1..r: P(L=1)=b1, Pareto tail truncated at r."""
        pmf = np.zeros(self.r)
        if self.r == 1:
            pmf[0] = 1.0
            return pmf
        pmf[0] = self.b1
        # Discrete Pareto tail: P(L >= i | L >= 2) = (2/i)^alpha for i >= 2.
        survival = np.array([(2.0 / i) ** self.alpha
                             for i in range(2, self.r + 2)])
        tail = survival[:-1] - survival[1:]
        tail[-1] = survival[-2]  # truncate: mass of lengths >= r collapses to r
        tail = tail / tail.sum() * (1.0 - self.b1)
        pmf[1:] = tail
        return pmf

    def burst_cdf(self) -> np.ndarray:
        """CDF of the burst length over 1..r (Figure 19a)."""
        return np.cumsum(self.burst_pmf)

    def p_chk(self, i: int) -> float:
        if not (0 <= i <= self.r):
            return 0.0
        # Probability a chunk is hit by at least one burst (Eq. 15-16).
        p_hit = min(1.0, self.r * self.p_sec / self.mean_burst_length)
        if i == 0:
            return 1.0 - p_hit
        # A damaged chunk contains one burst of length i with fraction b_i
        # (Eq. 17).
        return self.burst_pmf[i - 1] * p_hit
