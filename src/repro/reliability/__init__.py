"""Reliability analysis of STAIR codes and baselines (§7 of the paper).

* :mod:`repro.reliability.sector_models` -- independent and correlated
  (bursty) sector-failure models.
* :mod:`repro.reliability.pstr` -- per-stripe unrecoverability P_str:
  generic enumeration for any coverage vector plus the closed forms of
  Appendix B.
* :mod:`repro.reliability.markov` -- the critical-mode Markov chain and
  MTTDL_arr.
* :mod:`repro.reliability.mttdl` -- system-level MTTDL (Eq. 7-11) with the
  paper's parameter defaults.
* :mod:`repro.reliability.configurator` -- how to pick e (§2, §7.2).
"""

from repro.reliability.configurator import (
    CoverageRanking,
    candidate_coverages,
    coverage_for_burst,
    rank_coverages,
    recommend_coverage,
)
from repro.reliability.markov import (
    critical_mode_chain,
    m_parity_chain,
    mean_time_to_absorption,
    mttdl_arr_closed_form,
    mttdl_arr_m_parity,
    mttdl_arr_markov,
    mttdl_arr_two_parity,
)
from repro.reliability.mttdl import (
    CodeReliability,
    SystemParameters,
    mttdl_array,
    mttdl_array_general,
    mttdl_system,
    number_of_arrays,
    p_array,
)
from repro.reliability.pstr import (
    pstr_generic,
    pstr_reed_solomon,
    pstr_sd,
    pstr_sd_generic,
    pstr_stair_all_ones,
    pstr_stair_one_one_plus,
    pstr_stair_one_plus,
    pstr_stair_single,
    pstr_stair_two_plus,
)
from repro.reliability.sector_models import (
    CorrelatedSectorModel,
    IndependentSectorModel,
    SectorFailureModel,
    sector_failure_probability,
)

__all__ = [
    "SystemParameters",
    "CodeReliability",
    "mttdl_system",
    "mttdl_array",
    "mttdl_array_general",
    "p_array",
    "number_of_arrays",
    "IndependentSectorModel",
    "CorrelatedSectorModel",
    "SectorFailureModel",
    "sector_failure_probability",
    "pstr_generic",
    "pstr_sd_generic",
    "pstr_reed_solomon",
    "pstr_sd",
    "pstr_stair_single",
    "pstr_stair_one_plus",
    "pstr_stair_two_plus",
    "pstr_stair_one_one_plus",
    "pstr_stair_all_ones",
    "mean_time_to_absorption",
    "critical_mode_chain",
    "m_parity_chain",
    "mttdl_arr_closed_form",
    "mttdl_arr_m_parity",
    "mttdl_arr_markov",
    "mttdl_arr_two_parity",
    "coverage_for_burst",
    "candidate_coverages",
    "rank_coverages",
    "recommend_coverage",
    "CoverageRanking",
]
