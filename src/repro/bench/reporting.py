"""Plain-text reporting helpers for the benchmark harness.

The paper presents its evaluation as figures; in a terminal environment
we print the same series as aligned tables so the numbers (and more
importantly their ordering and trends) can be compared directly against
the paper's plots.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str | None = None, float_format: str = "{:.2f}") -> str:
    """Render rows as an aligned text table."""
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    rendered = [[render(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def print_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                title: str | None = None, float_format: str = "{:.2f}") -> None:
    """Print an aligned text table (convenience wrapper)."""
    print()
    print(format_table(headers, rows, title=title, float_format=float_format))


def summarize_ratio(label: str, numerators: Sequence[float],
                    denominators: Sequence[float]) -> str:
    """Average / min / max percentage improvement of one series over another.

    Used for the paper's aggregate claims such as "STAIR codes improve the
    encoding speed by 106.03% on average (29.30% to 225.14%)".
    """
    ratios = [(a / b - 1.0) * 100.0 for a, b in zip(numerators, denominators) if b > 0]
    if not ratios:
        return f"{label}: no comparable points"
    avg = sum(ratios) / len(ratios)
    return (f"{label}: +{avg:.1f}% on average "
            f"(range {min(ratios):+.1f}% to {max(ratios):+.1f}%)")
