"""Benchmark harness: speed measurement, per-figure data generators, reporting."""

from repro.bench.reporting import format_table, print_table, summarize_ratio
from repro.bench.speed import (
    SpeedResult,
    device_only_losses,
    measure_decoding_speed,
    measure_encoding_speed,
    stripe_symbols,
    worst_case_losses_sd,
    worst_case_losses_stair,
)
from repro.bench import figures
from repro.bench.sim_validation import sim_vs_analytic_rows

__all__ = [
    "figures",
    "sim_vs_analytic_rows",
    "SpeedResult",
    "measure_encoding_speed",
    "measure_decoding_speed",
    "stripe_symbols",
    "worst_case_losses_stair",
    "worst_case_losses_sd",
    "device_only_losses",
    "format_table",
    "print_table",
    "summarize_ratio",
]
