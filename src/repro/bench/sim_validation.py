"""Simulated vs. analytical reliability across code families (§7 cross-check).

The per-figure generators of :mod:`repro.bench.figures` reproduce the
paper's *analytical* MTTDL curves (Figures 17-19).  This module adds the
Monte Carlo counterpart: for each code configuration it runs the
vectorized lifetime simulator of :mod:`repro.sim.montecarlo` with the
same system parameters and reports both numbers side by side with a
3σ confidence interval -- the standard way storage papers validate their
Markov models.

Configurations cover both the paper's m = 1 focus (Eq. 10) and m >= 2
geometries (RAID-6/SD-style), validated against the general birth-death
chain of :func:`repro.reliability.markov.mttdl_arr_m_parity`.

Run directly for a quick table::

    PYTHONPATH=src python -m repro.bench.sim_validation
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.bench.reporting import print_table
from repro.reliability.mttdl import (
    CodeReliability,
    SystemParameters,
    mttdl_array_general,
    p_array,
)
from repro.reliability.sector_models import (
    IndependentSectorModel,
    SectorFailureModel,
)
from repro.sim.montecarlo import simulate_code_mttdl

#: Accelerated-failure regime for the m = 2 rows.  With the paper's
#: 1/λ = 500,000 h a double-fault MTTDL is ~1e12 h, i.e. ~1e7 simulated
#: failure/repair cycles per trial -- intractable for direct Monte
#: Carlo.  Shortening device lifetimes and stretching rebuilds makes
#: critical mode reachable in a few hundred cycles while validating
#: exactly the same state machine against the same Markov chain.
M2_STRESS = {"mean_time_to_failure_hours": 20_000.0,
             "mean_time_to_rebuild_hours": 200.0}

#: Code families compared by default: the RS/RAID-5 baseline plus the
#: paper's flagship STAIR configurations and the SD competitor, and two
#: m = 2 geometries exercising the general-m vectorized path.  Each
#: entry is ``(CodeReliability, m)`` or ``(CodeReliability, m,
#: params-override dict)``.
DEFAULT_CODES = (
    (CodeReliability.reed_solomon(), 1),
    (CodeReliability.stair([1]), 1),
    (CodeReliability.stair([1, 2]), 1),
    (CodeReliability.sd(2), 1),
    (CodeReliability.reed_solomon(), 2, M2_STRESS),
    (CodeReliability.sd(2), 2, M2_STRESS),
)


def _normalize(entry) -> tuple[CodeReliability, int, dict]:
    """Accept a bare CodeReliability (m = 1), ``(code, m)``, or
    ``(code, m, params-override dict)``."""
    if isinstance(entry, CodeReliability):
        return entry, 1, {}
    if len(entry) == 2:
        code, m = entry
        return code, int(m), {}
    code, m, overrides = entry
    return code, int(m), dict(overrides)


def sim_vs_analytic_rows(codes: Sequence = DEFAULT_CODES,
                         p_bit: float = 1e-10,
                         trials: int = 400,
                         seed: int = 0,
                         params: SystemParameters | None = None,
                         model: SectorFailureModel | None = None,
                         z: float = 3.0) -> list[dict]:
    """One row per configuration: analytic MTTDL_arr, simulated MTTDL, CI.

    ``codes`` entries are ``(CodeReliability, m)`` pairs (a bare
    CodeReliability means m = 1).  The analytic reference is
    :func:`repro.reliability.mttdl.mttdl_array_general`, i.e. Eq. 10 at
    m = 1 and the general Markov chain beyond.  The seed is offset per
    configuration so rows are independent but the whole table is
    reproducible from one ``seed``.
    """
    params = params or SystemParameters()
    sector_model = model or IndependentSectorModel.from_p_bit(
        p_bit, params.r, params.sector_bytes)
    rows = []
    for index, entry in enumerate(codes):
        code, m, overrides = _normalize(entry)
        if m != params.m or overrides:
            row_params = replace(params, m=m, **overrides)
        else:
            row_params = params
        analytic = mttdl_array_general(code, row_params, sector_model)
        result = simulate_code_mttdl(code, sector_model, row_params,
                                     trials=trials, seed=seed + index)
        low, high = result.mttdl_confidence(z=z)
        rows.append({
            "code": code.label(),
            "m": m,
            "p_bit": p_bit,
            "p_arr": p_array(code, row_params, sector_model),
            "analytic_mttdl_hours": analytic,
            "sim_mttdl_hours": result.mttdl_hours,
            "ci_low_hours": low,
            "ci_high_hours": high,
            "agrees": result.agrees_with(analytic, z=z),
            "trials": trials,
        })
    return rows


def main() -> int:  # pragma: no cover - exercised via the smoke benchmark
    rows = sim_vs_analytic_rows()
    print_table(
        ["code", "m", "P_arr", "analytic (h)", "simulated (h)",
         "3-sigma CI (h)", "agrees"],
        [(row["code"], row["m"], f"{row['p_arr']:.3e}",
          f"{row['analytic_mttdl_hours']:.4g}",
          f"{row['sim_mttdl_hours']:.4g}",
          f"[{row['ci_low_hours']:.4g}, {row['ci_high_hours']:.4g}]",
          "yes" if row["agrees"] else "NO") for row in rows],
        title="Monte Carlo vs analytical MTTDL_arr "
              "(independent sector failures)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
