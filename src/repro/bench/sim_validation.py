"""Simulated vs. analytical reliability across code families (§7 cross-check).

The per-figure generators of :mod:`repro.bench.figures` reproduce the
paper's *analytical* MTTDL curves (Figures 17-19).  This module adds the
Monte Carlo counterpart: for each code configuration it runs the
vectorized lifetime simulator of :mod:`repro.sim.montecarlo` with the
same system parameters and reports both numbers side by side with a
3σ confidence interval -- the standard way storage papers validate their
Markov models.

Run directly for a quick table::

    PYTHONPATH=src python -m repro.bench.sim_validation
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.reporting import print_table
from repro.reliability.mttdl import (
    CodeReliability,
    SystemParameters,
    mttdl_array,
    p_array,
)
from repro.reliability.sector_models import (
    IndependentSectorModel,
    SectorFailureModel,
)
from repro.sim.montecarlo import simulate_code_mttdl

#: Code families compared by default: the RS/RAID-5 baseline plus the
#: paper's flagship STAIR configurations and the SD competitor.
DEFAULT_CODES = (
    CodeReliability.reed_solomon(),
    CodeReliability.stair([1]),
    CodeReliability.stair([1, 2]),
    CodeReliability.sd(2),
)


def sim_vs_analytic_rows(codes: Sequence[CodeReliability] = DEFAULT_CODES,
                         p_bit: float = 1e-10,
                         trials: int = 400,
                         seed: int = 0,
                         params: SystemParameters | None = None,
                         model: SectorFailureModel | None = None,
                         z: float = 3.0) -> list[dict]:
    """One row per code: analytic MTTDL_arr, simulated MTTDL and CI.

    The seed is offset per code so rows are independent but the whole
    table is reproducible from one ``seed``.
    """
    params = params or SystemParameters()
    sector_model = model or IndependentSectorModel.from_p_bit(
        p_bit, params.r, params.sector_bytes)
    rows = []
    for index, code in enumerate(codes):
        analytic = mttdl_array(code, params, sector_model)
        result = simulate_code_mttdl(code, sector_model, params,
                                     trials=trials, seed=seed + index)
        low, high = result.mttdl_confidence(z=z)
        rows.append({
            "code": code.label(),
            "p_bit": p_bit,
            "p_arr": p_array(code, params, sector_model),
            "analytic_mttdl_hours": analytic,
            "sim_mttdl_hours": result.mttdl_hours,
            "ci_low_hours": low,
            "ci_high_hours": high,
            "agrees": result.agrees_with(analytic, z=z),
            "trials": trials,
        })
    return rows


def main() -> int:  # pragma: no cover - exercised via the smoke benchmark
    rows = sim_vs_analytic_rows()
    print_table(
        ["code", "P_arr", "analytic (h)", "simulated (h)",
         "3-sigma CI (h)", "agrees"],
        [(row["code"], f"{row['p_arr']:.3e}",
          f"{row['analytic_mttdl_hours']:.4g}",
          f"{row['sim_mttdl_hours']:.4g}",
          f"[{row['ci_low_hours']:.4g}, {row['ci_high_hours']:.4g}]",
          "yes" if row["agrees"] else "NO") for row in rows],
        title="Monte Carlo vs analytical MTTDL_arr "
              "(independent sector failures)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
