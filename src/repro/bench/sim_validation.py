"""Simulated vs. analytical reliability across code families (§7 cross-check).

The per-figure generators of :mod:`repro.bench.figures` reproduce the
paper's *analytical* MTTDL curves (Figures 17-19).  This module adds the
Monte Carlo counterpart: for each code configuration it runs a simulated
estimate with the same system parameters and reports both numbers side
by side with a 3σ confidence interval -- the standard way storage papers
validate their Markov models.

All rows run at the paper's true parameters (1/λ = 500,000 h,
1/μ = 17.8 h).  The m = 1 rows use the direct vectorized lifetime
simulator of :mod:`repro.sim.montecarlo`; the m >= 2 rows -- whose MTTDL
of ~1e12 h is unreachable by direct simulation -- use the
importance-sampled regenerative-cycle estimator of
:mod:`repro.sim.rare`, validated against the general birth-death chain
of :func:`repro.reliability.markov.mttdl_arr_m_parity`.  (Earlier
revisions sidestepped the m >= 2 comparison with an accelerated-failure
surrogate; the rare-event estimator removed the need for it.)

A second table (:func:`correlated_failure_rows`) drops the independence
assumption: rack shocks under domain-spread vs contiguous placement,
each scenario run by the vectorized runner *and* the event engine, with
the analytic anchors that stay exact under correlation (single-device
shock groups are equivalent to an effective failure rate ``λ + s``; a
contiguous kill-all rack bounds MTTDL by ``1/s``).  The headline
numbers: how much MTTDL a given shock rate costs, and how much of it
domain-spread placement buys back.

A third table (:func:`trace_validation_rows`) closes the loop with
*data*: lifetime models fitted from (seeded, synthetic) failure traces
by :mod:`repro.sim.traces`.  When the trace was generated from an
exponential fleet, the fitted piecewise-exponential model must recover
the analytic MTTDL within 3σ -- in the vectorized runner *and* in the
rare-event estimator at the paper's true 1/λ = 500,000 h (model
confronts data, and wins).  When the trace is bathtub-shaped (an
infant-mortality cohort plus wear-out), the same fit must *break* the
constant-hazard prediction at the matched mean -- the quantitative
reason trace-driven lifetimes exist at all.

Run directly for all tables::

    PYTHONPATH=src python -m repro.bench.sim_validation
"""

from __future__ import annotations

import math
from dataclasses import replace
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.bench.reporting import print_table
from repro.codes.registry import parse_code_spec
from repro.reliability.markov import mttdl_arr_m_parity
from repro.reliability.mttdl import (
    CodeReliability,
    SystemParameters,
    mttdl_array_general,
    p_array,
)
from repro.reliability.sector_models import (
    IndependentSectorModel,
    SectorFailureModel,
)
from repro.sim.domains import FailureDomains
from repro.sim.events import ClusterSimulation, Scenario
from repro.sim.lifetimes import (
    ExponentialLifetime,
    ExponentialRepair,
    WeibullLifetime,
)
from repro.scenario.spec import ScenarioSpec
from repro.sim.cluster import CoverageModel
from repro.sim.montecarlo import (
    code_reliability_from_code,
    simulate_array_lifetimes,
    simulate_code_mttdl,
)
from repro.sim.rare import estimate_rare_mttdl, rare_event_code_mttdl
from repro.sim.traces import (
    EmpiricalLifetime,
    concatenate_traces,
    generate_trace,
)

#: Directory of the committed scenario specs behind the default table.
VALIDATION_SPEC_DIR = Path(__file__).resolve().parent / "specs" / "validation"

#: Code families compared by default: the RS/RAID-5 baseline plus the
#: paper's flagship STAIR configurations and the SD competitor at m = 1
#: (direct Monte Carlo), and m = 2 / m = 3 geometries at the very same
#: paper parameters via the rare-event estimator.  Each default entry
#: is a committed scenario spec file (``specs/validation/*.toml``,
#: loadable by :class:`repro.scenario.ScenarioSpec` and runnable
#: standalone via ``python -m repro.sim.cli --spec FILE``); inline
#: entries -- a bare CodeReliability (m = 1, direct), ``(code, m)`` or
#: ``(code, m, estimator)`` with estimator ``"direct"``/``"rare"`` --
#: are still accepted everywhere a spec path is.
DEFAULT_CODES = (
    VALIDATION_SPEC_DIR / "rs_m1.toml",
    VALIDATION_SPEC_DIR / "stair_e1_m1.toml",
    VALIDATION_SPEC_DIR / "stair_e12_m1.toml",
    VALIDATION_SPEC_DIR / "sd2_m1.toml",
    VALIDATION_SPEC_DIR / "rs_m2_rare.toml",
    VALIDATION_SPEC_DIR / "sd2_m2_rare.toml",
    VALIDATION_SPEC_DIR / "rs_m3_rare.toml",
)


def _entry_from_spec(spec: ScenarioSpec) -> tuple[CodeReliability, int, str]:
    """The ``(reliability, m, estimator)`` triple one scenario spec
    describes: the sector-tolerance structure and device tolerance come
    out of the parsed code spec, the estimator out of the spec's mode."""
    code = parse_code_spec(spec.code.spec)
    estimator = "rare" if spec.estimator.mode == "rare" else "direct"
    return (code_reliability_from_code(code),
            CoverageModel.from_code(code).m, estimator)


def _normalize(entry) -> tuple[CodeReliability, int, str]:
    """Accept a scenario spec file path, a bare CodeReliability (m = 1,
    direct), ``(code, m)`` (direct), or ``(code, m, estimator)``."""
    if isinstance(entry, (str, Path)):
        return _entry_from_spec(ScenarioSpec.load(entry))
    if isinstance(entry, ScenarioSpec):
        return _entry_from_spec(entry)
    if isinstance(entry, CodeReliability):
        return entry, 1, "direct"
    if len(entry) == 2:
        code, m = entry
        return code, int(m), "direct"
    code, m, estimator = entry
    if estimator not in ("direct", "rare"):
        raise ValueError(f"unknown estimator {estimator!r}")
    return code, int(m), estimator


def sim_vs_analytic_rows(codes: Sequence = DEFAULT_CODES,
                         p_bit: float = 1e-10,
                         trials: int = 400,
                         seed: int = 0,
                         params: SystemParameters | None = None,
                         model: SectorFailureModel | None = None,
                         z: float = 3.0,
                         rare_target_rel_se: float = 0.02) -> list[dict]:
    """One row per configuration: analytic MTTDL_arr, simulated MTTDL, CI.

    ``codes`` entries are committed scenario spec files or inline
    ``(CodeReliability, m, estimator)`` triples (see
    :data:`DEFAULT_CODES`).  The analytic reference is
    :func:`repro.reliability.mttdl.mttdl_array_general`, i.e. Eq. 10 at
    m = 1 and the general Markov chain beyond.  ``trials`` sizes the
    direct rows; rare rows stop at ``rare_target_rel_se`` instead.  The
    seed is offset per configuration so rows are independent but the
    whole table is reproducible from one ``seed``.
    """
    params = params or SystemParameters()
    sector_model = model or IndependentSectorModel.from_p_bit(
        p_bit, params.r, params.sector_bytes)
    rows = []
    for index, entry in enumerate(codes):
        code, m, estimator = _normalize(entry)
        row_params = replace(params, m=m) if m != params.m else params
        analytic = mttdl_array_general(code, row_params, sector_model)
        if estimator == "rare":
            result = rare_event_code_mttdl(
                code, sector_model, row_params, seed=seed + index,
                target_rel_se=rare_target_rel_se)
        else:
            result = simulate_code_mttdl(code, sector_model, row_params,
                                         trials=trials, seed=seed + index)
        low, high = result.mttdl_confidence(z=z)
        rows.append({
            "code": code.label(),
            "m": m,
            "estimator": estimator,
            "p_bit": p_bit,
            "p_arr": p_array(code, row_params, sector_model),
            "analytic_mttdl_hours": analytic,
            "sim_mttdl_hours": result.mttdl_hours,
            "ci_low_hours": low,
            "ci_high_hours": high,
            "agrees": result.agrees_with(analytic, z=z),
            "trials": trials if estimator == "direct" else result.cycles,
        })
    return rows


# --------------------------------------------------------------------------- #
# Correlated failure domains: MTTDL degradation vs placement
# --------------------------------------------------------------------------- #
def _event_engine_mttdl(code_spec: str, domains: FailureDomains | None,
                        trials: int, seed: int, mttf_hours: float,
                        repair_hours: float) -> tuple[float, float]:
    """Mean time to data loss (and its standard error) from full
    event-engine trajectories of a pure device-failure scenario.

    Sector errors, scrubs and writes are disabled so the trajectory
    dynamics match the vectorized lane machine exactly; the horizon is
    pushed out far enough that no trajectory is censored.
    """
    scenario = Scenario(
        code=parse_code_spec(code_spec), num_arrays=1, stripes_per_array=16,
        lifetime=ExponentialLifetime(mttf_hours),
        repair=ExponentialRepair(repair_hours),
        domains=domains, horizon_hours=1e9)
    root = np.random.default_rng(seed)
    times = []
    for _ in range(trials):
        result = ClusterSimulation(
            scenario, np.random.default_rng(root.integers(2 ** 63))).run()
        assert result.lost_data, "horizon too short for the scenario"
        times.append(result.time_to_data_loss)
    arr = np.asarray(times)
    return float(arr.mean()), float(arr.std(ddof=1) / math.sqrt(arr.size))


def correlated_failure_rows(trials: int = 400,
                            event_trials: int = 50,
                            seed: int = 0,
                            n: int = 8,
                            mttf_hours: float = 20_000.0,
                            repair_hours: float = 17.8,
                            shock_rate_per_hour: float = 1e-4,
                            ) -> list[dict]:
    """MTTDL under rack shocks, for spread vs contiguous placement.

    Three m = 1 scenarios of one ``n``-device RS array (``p_arr = 0``:
    pure device-failure/shock dynamics, so the vectorized runner and the
    event engine model *exactly* the same process):

    * **independent** -- no domains; the §7 baseline, anchored to the
      m-parity chain;
    * **rack shocks, spread** -- ``racks = n`` so every shock group is a
      single device: exactly equivalent to an effective failure rate
      ``λ + s``, so the chain at that rate is still an exact anchor;
    * **rack shocks, contiguous** -- the whole array in one rack; the
      first shock is fatal, so ``1/s`` upper-bounds the MTTDL.

    Each correlated scenario carries both a vectorized estimate (with
    3σ CI) and an event-engine estimate (mean ± SE over full
    trajectories); ``engines_agree`` checks them against each other at
    3σ.  ``degradation`` is the independent analytic MTTDL divided by
    the simulated one -- the headline cost of the correlation, and the
    spread-vs-contiguous gap is what placement buys back.
    """
    lam, mu = 1.0 / mttf_hours, 1.0 / repair_hours
    independent = mttdl_arr_m_parity(n, lam, mu, 0.0, 1)
    spread_analytic = mttdl_arr_m_parity(n, lam + shock_rate_per_hour,
                                         mu, 0.0, 1)
    code_spec = f"rs(n={n},r=16,m=1)"
    scenarios = [
        ("independent", None, independent, "m-parity chain", True),
        ("rack shocks, spread",
         FailureDomains(racks=n,
                        rack_shock_rate_per_hour=shock_rate_per_hour),
         spread_analytic, "m-parity chain at lambda + s", True),
        ("rack shocks, contiguous",
         FailureDomains(racks=n,
                        rack_shock_rate_per_hour=shock_rate_per_hour,
                        placement="contiguous"),
         1.0 / shock_rate_per_hour, "1/s bound (first shock fatal)",
         False),
    ]
    rows = []
    for index, (label, domains, analytic, kind, exact) in \
            enumerate(scenarios):
        vec = simulate_array_lifetimes(
            n, 0.0, trials, seed=seed + index, m=1,
            lifetime=ExponentialLifetime(mttf_hours),
            repair=ExponentialRepair(repair_hours), domains=domains)
        low, high = vec.mttdl_confidence(z=3.0)
        row = {
            "scenario": label,
            "placement": domains.placement if domains is not None else "-",
            "analytic_mttdl_hours": analytic,
            "analytic_kind": kind,
            "sim_mttdl_hours": vec.mttdl_hours,
            "ci_low_hours": low,
            "ci_high_hours": high,
            "degradation": independent / vec.mttdl_hours,
            # Exact anchors must sit inside the CI; the contiguous bound
            # must not be exceeded.
            "agrees": (low <= analytic <= high) if exact
                      else vec.mttdl_hours <= analytic,
            "trials": trials,
        }
        if domains is not None:
            ev_mean, ev_se = _event_engine_mttdl(
                code_spec, domains, event_trials, seed + 100 + index,
                mttf_hours, repair_hours)
            row["event_mttdl_hours"] = ev_mean
            row["event_std_error"] = ev_se
            row["engines_agree"] = (
                abs(vec.mttdl_hours - ev_mean)
                <= 3.0 * math.hypot(vec.mttdl_std_error, ev_se))
        rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# Trace-driven lifetimes: fitted models vs the analytic chain
# --------------------------------------------------------------------------- #
def trace_validation_rows(trials: int = 400,
                          seed: int = 0,
                          n: int = 8,
                          num_devices: int = 30_000,
                          repair_hours: float = 17.8,
                          bins: int = 6,
                          rare_target_rel_se: float = 0.05,
                          ) -> list[dict]:
    """Fitted-from-trace MTTDL vs the analytic chain, three ways.

    * **exponential trace, m = 1 (vectorized)** -- a synthetic trace
      generated from an exponential fleet (1/λ = 1,000 h so direct
      simulation is cheap), fitted with
      :meth:`~repro.sim.traces.EmpiricalLifetime.fit`; the vectorized
      runner under the *fitted* model must bracket the m-parity chain
      at the true λ within 3σ.  The residual gap is pure fitting noise
      (``~1/sqrt(num_devices)`` on the hazard), so the row doubles as a
      check that the trace was large enough to trust.
    * **exponential trace, m = 2 (rare-event)** -- same construction at
      the paper's true 1/λ = 500,000 h where only
      :mod:`repro.sim.rare` can reach the ~1e12 h MTTDL; the fitted
      model rides the estimator's quasi-renewal decomposition and must
      again bracket the chain within 3σ.
    * **bathtub trace vs constant hazard** -- an infant-mortality
      cohort (Weibull shape < 1) pooled with a wear-out cohort
      (shape > 1): the fitted model's simulated MTTDL is compared
      against the chain at the *fitted mean* rate (the best
      constant-hazard impostor).  ``agrees`` is expected ``False`` --
      the 3σ interval must *exclude* the impostor -- and
      ``mttdl_ratio`` quantifies how far off a memoryless assumption
      would have been (here the impostor is ~17% pessimistic: infant
      deaths drag the fitted mean down while the surviving, renewed
      population spends most of its time in the low mid-bathtub
      hazard).

    ``p_arr = 0`` throughout: these rows isolate the lifetime model
    (sector damage is exercised by :func:`sim_vs_analytic_rows`).
    """
    mu = 1.0 / repair_hours
    rows = []

    # -- 1. exponential trace, vectorized, m = 1 ----------------------- #
    mttf = 1_000.0
    trace = generate_trace(ExponentialLifetime(mttf), num_devices,
                           observation_hours=5.0 * mttf, seed=seed,
                           source="exp-m1")
    fitted = EmpiricalLifetime.fit(trace, bins=bins)
    analytic = mttdl_arr_m_parity(n, 1.0 / mttf, mu, 0.0, 1)
    direct = simulate_array_lifetimes(
        n, 0.0, trials, seed=seed + 1, m=1, lifetime=fitted,
        repair=ExponentialRepair(repair_hours))
    low, high = direct.mttdl_confidence(z=3.0)
    rows.append({
        "scenario": "exponential trace, m=1 (vectorized)",
        "trace": trace.describe(),
        "fitted_mean_hours": fitted.mean_hours,
        "analytic_mttdl_hours": analytic,
        "analytic_kind": "m-parity chain at the true lambda",
        "sim_mttdl_hours": direct.mttdl_hours,
        "ci_low_hours": low,
        "ci_high_hours": high,
        "mttdl_ratio": direct.mttdl_hours / analytic,
        "agrees": low <= analytic <= high,
        "expect_agreement": True,
    })

    # -- 2. exponential trace, rare-event, m = 2 at paper parameters --- #
    paper_mttf = 500_000.0
    trace2 = generate_trace(ExponentialLifetime(paper_mttf), num_devices,
                            observation_hours=5.0 * paper_mttf,
                            seed=seed + 10, source="exp-m2")
    fitted2 = EmpiricalLifetime.fit(trace2, bins=bins)
    analytic2 = mttdl_arr_m_parity(n, 1.0 / paper_mttf, mu, 0.0, 2)
    rare = estimate_rare_mttdl(
        n, 0.0, m=2, seed=seed + 11, lifetime=fitted2,
        repair=ExponentialRepair(repair_hours),
        target_rel_se=rare_target_rel_se, batch_cycles=20_000)
    low2, high2 = rare.mttdl_confidence(z=3.0)
    rows.append({
        "scenario": "exponential trace, m=2 (rare-event)",
        "trace": trace2.describe(),
        "fitted_mean_hours": fitted2.mean_hours,
        "analytic_mttdl_hours": analytic2,
        "analytic_kind": "m-parity chain at the paper's lambda",
        "sim_mttdl_hours": rare.mttdl_hours,
        "ci_low_hours": low2,
        "ci_high_hours": high2,
        "mttdl_ratio": rare.mttdl_hours / analytic2,
        "agrees": low2 <= analytic2 <= high2,
        "expect_agreement": True,
        "effective_sample_size": rare.effective_sample_size,
        "cycles": rare.cycles,
    })

    # -- 3. bathtub trace breaks the constant-hazard prediction -------- #
    infant = generate_trace(
        WeibullLifetime(scale_hours=150.0, shape=0.5),
        int(round(0.15 * num_devices)), observation_hours=6_000.0,
        seed=seed + 20, source="bathtub-infant")
    wearout = generate_trace(
        WeibullLifetime(scale_hours=1_100.0, shape=3.5),
        num_devices - infant.num_devices, observation_hours=6_000.0,
        seed=seed + 21, source="bathtub-wearout")
    bathtub = concatenate_traces(infant, wearout, source="bathtub")
    fitted3 = EmpiricalLifetime.fit(bathtub, bins=2 * bins)
    constant = mttdl_arr_m_parity(n, 1.0 / fitted3.mean_hours, mu, 0.0, 1)
    direct3 = simulate_array_lifetimes(
        n, 0.0, trials, seed=seed + 22, m=1, lifetime=fitted3,
        repair=ExponentialRepair(repair_hours))
    low3, high3 = direct3.mttdl_confidence(z=3.0)
    rows.append({
        "scenario": "bathtub trace vs constant hazard",
        "trace": bathtub.describe(),
        "fitted_mean_hours": fitted3.mean_hours,
        "analytic_mttdl_hours": constant,
        "analytic_kind": "m-parity chain at the fitted mean "
                         "(constant-hazard impostor)",
        "sim_mttdl_hours": direct3.mttdl_hours,
        "ci_low_hours": low3,
        "ci_high_hours": high3,
        "mttdl_ratio": direct3.mttdl_hours / constant,
        "agrees": low3 <= constant <= high3,
        "expect_agreement": False,
    })
    return rows


def main() -> int:  # pragma: no cover - exercised via the smoke benchmark
    rows = sim_vs_analytic_rows()
    print_table(
        ["code", "m", "estimator", "P_arr", "analytic (h)", "simulated (h)",
         "3-sigma CI (h)", "agrees"],
        [(row["code"], row["m"], row["estimator"], f"{row['p_arr']:.3e}",
          f"{row['analytic_mttdl_hours']:.4g}",
          f"{row['sim_mttdl_hours']:.4g}",
          f"[{row['ci_low_hours']:.4g}, {row['ci_high_hours']:.4g}]",
          "yes" if row["agrees"] else "NO") for row in rows],
        title="Monte Carlo vs analytical MTTDL_arr at the paper's "
              "parameters (independent sector failures)")
    print()
    corr = correlated_failure_rows()
    print_table(
        ["scenario", "analytic (h)", "vectorized (h)", "3-sigma CI (h)",
         "event engine (h)", "degradation", "agrees"],
        [(row["scenario"], f"{row['analytic_mttdl_hours']:.4g}",
          f"{row['sim_mttdl_hours']:.4g}",
          f"[{row['ci_low_hours']:.4g}, {row['ci_high_hours']:.4g}]",
          (f"{row['event_mttdl_hours']:.4g}"
           if "event_mttdl_hours" in row else "-"),
          f"{row['degradation']:.1f}x",
          "yes" if row["agrees"]
          and row.get("engines_agree", True) else "NO")
         for row in corr],
        title="Correlated rack shocks: MTTDL degradation vs placement "
              "(m = 1, p_arr = 0)")
    print()
    traced = trace_validation_rows()
    print_table(
        ["scenario", "fitted mean (h)", "analytic (h)", "simulated (h)",
         "3-sigma CI (h)", "ratio", "verdict"],
        [(row["scenario"], f"{row['fitted_mean_hours']:.4g}",
          f"{row['analytic_mttdl_hours']:.4g}",
          f"{row['sim_mttdl_hours']:.4g}",
          f"[{row['ci_low_hours']:.4g}, {row['ci_high_hours']:.4g}]",
          f"{row['mttdl_ratio']:.3f}",
          ("agrees" if row["agrees"] else "DISAGREES")
          + ("" if row["agrees"] == row["expect_agreement"]
             else " (UNEXPECTED)"))
         for row in traced],
        title="Trace-fitted lifetimes vs the analytic chain "
              "(EmpiricalLifetime, p_arr = 0)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
