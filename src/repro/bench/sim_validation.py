"""Simulated vs. analytical reliability across code families (§7 cross-check).

The per-figure generators of :mod:`repro.bench.figures` reproduce the
paper's *analytical* MTTDL curves (Figures 17-19).  This module adds the
Monte Carlo counterpart: for each code configuration it runs a simulated
estimate with the same system parameters and reports both numbers side
by side with a 3σ confidence interval -- the standard way storage papers
validate their Markov models.

All rows run at the paper's true parameters (1/λ = 500,000 h,
1/μ = 17.8 h).  The m = 1 rows use the direct vectorized lifetime
simulator of :mod:`repro.sim.montecarlo`; the m >= 2 rows -- whose MTTDL
of ~1e12 h is unreachable by direct simulation -- use the
importance-sampled regenerative-cycle estimator of
:mod:`repro.sim.rare`, validated against the general birth-death chain
of :func:`repro.reliability.markov.mttdl_arr_m_parity`.  (Earlier
revisions sidestepped the m >= 2 comparison with an accelerated-failure
surrogate; the rare-event estimator removed the need for it.)

Run directly for a quick table::

    PYTHONPATH=src python -m repro.bench.sim_validation
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.bench.reporting import print_table
from repro.reliability.mttdl import (
    CodeReliability,
    SystemParameters,
    mttdl_array_general,
    p_array,
)
from repro.reliability.sector_models import (
    IndependentSectorModel,
    SectorFailureModel,
)
from repro.sim.montecarlo import simulate_code_mttdl
from repro.sim.rare import rare_event_code_mttdl

#: Code families compared by default: the RS/RAID-5 baseline plus the
#: paper's flagship STAIR configurations and the SD competitor at m = 1
#: (direct Monte Carlo), and m = 2 / m = 3 geometries at the very same
#: paper parameters via the rare-event estimator.  Each entry is
#: ``(CodeReliability, m, estimator)`` with estimator ``"direct"`` or
#: ``"rare"`` (a bare CodeReliability means m = 1, direct).
DEFAULT_CODES = (
    (CodeReliability.reed_solomon(), 1, "direct"),
    (CodeReliability.stair([1]), 1, "direct"),
    (CodeReliability.stair([1, 2]), 1, "direct"),
    (CodeReliability.sd(2), 1, "direct"),
    (CodeReliability.reed_solomon(), 2, "rare"),
    (CodeReliability.sd(2), 2, "rare"),
    (CodeReliability.reed_solomon(), 3, "rare"),
)


def _normalize(entry) -> tuple[CodeReliability, int, str]:
    """Accept a bare CodeReliability (m = 1, direct), ``(code, m)``
    (direct), or ``(code, m, estimator)``."""
    if isinstance(entry, CodeReliability):
        return entry, 1, "direct"
    if len(entry) == 2:
        code, m = entry
        return code, int(m), "direct"
    code, m, estimator = entry
    if estimator not in ("direct", "rare"):
        raise ValueError(f"unknown estimator {estimator!r}")
    return code, int(m), estimator


def sim_vs_analytic_rows(codes: Sequence = DEFAULT_CODES,
                         p_bit: float = 1e-10,
                         trials: int = 400,
                         seed: int = 0,
                         params: SystemParameters | None = None,
                         model: SectorFailureModel | None = None,
                         z: float = 3.0,
                         rare_target_rel_se: float = 0.02) -> list[dict]:
    """One row per configuration: analytic MTTDL_arr, simulated MTTDL, CI.

    ``codes`` entries are ``(CodeReliability, m, estimator)`` triples
    (see :data:`DEFAULT_CODES`).  The analytic reference is
    :func:`repro.reliability.mttdl.mttdl_array_general`, i.e. Eq. 10 at
    m = 1 and the general Markov chain beyond.  ``trials`` sizes the
    direct rows; rare rows stop at ``rare_target_rel_se`` instead.  The
    seed is offset per configuration so rows are independent but the
    whole table is reproducible from one ``seed``.
    """
    params = params or SystemParameters()
    sector_model = model or IndependentSectorModel.from_p_bit(
        p_bit, params.r, params.sector_bytes)
    rows = []
    for index, entry in enumerate(codes):
        code, m, estimator = _normalize(entry)
        row_params = replace(params, m=m) if m != params.m else params
        analytic = mttdl_array_general(code, row_params, sector_model)
        if estimator == "rare":
            result = rare_event_code_mttdl(
                code, sector_model, row_params, seed=seed + index,
                target_rel_se=rare_target_rel_se)
        else:
            result = simulate_code_mttdl(code, sector_model, row_params,
                                         trials=trials, seed=seed + index)
        low, high = result.mttdl_confidence(z=z)
        rows.append({
            "code": code.label(),
            "m": m,
            "estimator": estimator,
            "p_bit": p_bit,
            "p_arr": p_array(code, row_params, sector_model),
            "analytic_mttdl_hours": analytic,
            "sim_mttdl_hours": result.mttdl_hours,
            "ci_low_hours": low,
            "ci_high_hours": high,
            "agrees": result.agrees_with(analytic, z=z),
            "trials": trials if estimator == "direct" else result.cycles,
        })
    return rows


def main() -> int:  # pragma: no cover - exercised via the smoke benchmark
    rows = sim_vs_analytic_rows()
    print_table(
        ["code", "m", "estimator", "P_arr", "analytic (h)", "simulated (h)",
         "3-sigma CI (h)", "agrees"],
        [(row["code"], row["m"], row["estimator"], f"{row['p_arr']:.3e}",
          f"{row['analytic_mttdl_hours']:.4g}",
          f"{row['sim_mttdl_hours']:.4g}",
          f"[{row['ci_low_hours']:.4g}, {row['ci_high_hours']:.4g}]",
          "yes" if row["agrees"] else "NO") for row in rows],
        title="Monte Carlo vs analytical MTTDL_arr at the paper's "
              "parameters (independent sector failures)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
