"""Per-figure data generators for the paper's evaluation (§6 and §7).

Each ``figure*_rows`` function regenerates the data series behind one
figure of the paper and returns them as a list of row dicts, ready to be
printed by :mod:`repro.bench.reporting` or asserted by the benchmark
suite.  Absolute speeds differ from the paper's SIMD C implementation;
the claims being reproduced are the orderings and trends.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.encoding_cost import figure9_data
from repro.analysis.space import devices_saved_sd, devices_saved_stair
from repro.analysis.update_penalty import figure14_data, figure15_data
from repro.codes.sd import SDCode
from repro.codes.stair_adapter import StairStripeCode
from repro.core.complexity import downstairs_mult_xors, upstairs_mult_xors
from repro.core.config import StairConfig, enumerate_e_vectors
from repro.bench.speed import (
    SpeedResult,
    measure_decoding_speed,
    measure_encoding_speed,
    worst_case_losses_sd,
    worst_case_losses_stair,
)
from repro.reliability import (
    CodeReliability,
    CorrelatedSectorModel,
    IndependentSectorModel,
    SystemParameters,
    mttdl_system,
)

#: Stripe size used by the stripe-size sweep (Figure 12).  The paper uses a
#: fixed 32 MB stripe; a pure Python reproduction uses smaller stripes to keep
#: the sweeps fast -- the relative ordering of the codes is unchanged.
DEFAULT_STRIPE_BYTES = 1 << 20

#: Sector size used by the n/r speed sweeps (Figures 11 and 13).  Fixing the
#: sector size (rather than the whole stripe size) keeps the per-operation
#: interpreter overhead constant across configurations, so the scaling trends
#: with n and r reflect the algorithms rather than NumPy call overhead; the
#: paper's fixed 32 MB stripe achieves the same effect with SIMD C because its
#: per-operation overhead is negligible.
DEFAULT_SYMBOL_BYTES = 8 << 10

#: SD code constructions are only published for s <= 3; the benchmarks use
#: the same limit when building the SD baselines.
SD_MAX_S = 3


def worst_e_for_s(n: int, r: int, m: int, s: int) -> tuple[int, ...]:
    """The coverage vector with the highest (i.e. worst) encoding cost.

    The paper takes "a conservative approach to analyze the worst-case
    performance of STAIR codes": for a given s it tests every e and keeps
    the slowest.  The encoder always picks min(X_up, X_down), so the worst
    e maximises that minimum.
    """
    candidates = [e for e in enumerate_e_vectors(s, m_prime_max=n - m, e_max_cap=r)]
    def cost(e: tuple[int, ...]) -> int:
        cfg = StairConfig(n=n, r=r, m=m, e=e)
        return min(upstairs_mult_xors(cfg), downstairs_mult_xors(cfg))
    return max(candidates, key=cost)


def _stair_code(n: int, r: int, m: int, s: int) -> StairStripeCode:
    return StairStripeCode(n=n, r=r, m=m, e=worst_e_for_s(n, r, m, s))


def _sd_code(n: int, r: int, m: int, s: int,
             required_losses: Sequence[tuple[int, int]] | None = None) -> SDCode:
    """Build an SD baseline, preferring a base whose decode pattern works."""
    last = None
    for base in (2, 3, 5, 7, 11):
        code = SDCode(n=n, r=r, m=m, s=s, global_base=base)
        try:
            code.encoding_matrix()
        except Exception:
            continue
        last = code
        if required_losses is None or code.tolerates(list(required_losses)):
            return code
    if last is None:
        raise RuntimeError(f"unable to build SD code for n={n}, r={r}, m={m}, s={s}")
    return last


# --------------------------------------------------------------------------- #
# Figure 9: encoding complexity vs e
# --------------------------------------------------------------------------- #
def figure9_rows(n: int = 8, m: int = 2, s: int = 4,
                 r_values: Sequence[int] = (8, 16, 24, 32)) -> list[dict]:
    rows = []
    for r, points in figure9_data(n=n, m=m, s=s, r_values=r_values).items():
        for point in points:
            rows.append({
                "r": r, "e": point.e, "standard": point.standard,
                "upstairs": point.upstairs, "downstairs": point.downstairs,
                "best": point.best(),
            })
    return rows


# --------------------------------------------------------------------------- #
# Figure 10: space saving
# --------------------------------------------------------------------------- #
def figure10_rows(s_values: Sequence[int] = (1, 2, 3, 4),
                  r_values: Sequence[int] = (4, 8, 16, 24, 32)) -> list[dict]:
    rows = []
    for s in s_values:
        for m_prime in range(1, s + 1):
            for r in r_values:
                rows.append({
                    "s": s, "m_prime": m_prime, "r": r,
                    "stair_devices_saved": devices_saved_stair(s, m_prime, r),
                    "sd_devices_saved": devices_saved_sd(s, r),
                })
    return rows


# --------------------------------------------------------------------------- #
# Figures 11-13: encoding / decoding speed
# --------------------------------------------------------------------------- #
def encoding_speed_rows(n_values: Sequence[int], r_values: Sequence[int],
                        m_values: Sequence[int] = (1, 2, 3),
                        stair_s_values: Sequence[int] = (1, 2, 3, 4),
                        sd_s_values: Sequence[int] = (1, 2, 3),
                        symbol_bytes: int = DEFAULT_SYMBOL_BYTES,
                        repeats: int = 2) -> list[dict]:
    """Speed grid shared by Figures 11(a) and 11(b)."""
    rows = []
    for n in n_values:
        for r in r_values:
            for m in m_values:
                for s in stair_s_values:
                    code = _stair_code(n, r, m, s)
                    result = measure_encoding_speed(code, repeats=repeats,
                                                    symbol_bytes=symbol_bytes)
                    rows.append(_speed_row("STAIR", n, r, m, s, result))
                for s in sd_s_values:
                    code = _sd_code(n, r, m, s)
                    result = measure_encoding_speed(code, repeats=repeats,
                                                    symbol_bytes=symbol_bytes)
                    rows.append(_speed_row("SD", n, r, m, s, result))
    return rows


def decoding_speed_rows(n_values: Sequence[int], r_values: Sequence[int],
                        m_values: Sequence[int] = (1, 2, 3),
                        stair_s_values: Sequence[int] = (1, 2, 3, 4),
                        sd_s_values: Sequence[int] = (1, 2, 3),
                        symbol_bytes: int = DEFAULT_SYMBOL_BYTES,
                        repeats: int = 2) -> list[dict]:
    """Worst-case decoding speed grid shared by Figures 13(a) and 13(b)."""
    rows = []
    for n in n_values:
        for r in r_values:
            for m in m_values:
                for s in stair_s_values:
                    e = worst_e_for_s(n, r, m, s)
                    code = StairStripeCode(n=n, r=r, m=m, e=e)
                    losses = worst_case_losses_stair(n, r, m, e)
                    result = measure_decoding_speed(code, losses, repeats=repeats,
                                                    symbol_bytes=symbol_bytes)
                    rows.append(_speed_row("STAIR", n, r, m, s, result))
                for s in sd_s_values:
                    losses = worst_case_losses_sd(n, r, m, s)
                    code = _sd_code(n, r, m, s, required_losses=losses)
                    result = measure_decoding_speed(code, losses, repeats=repeats,
                                                    symbol_bytes=symbol_bytes)
                    rows.append(_speed_row("SD", n, r, m, s, result))
    return rows


def figure12_rows(n: int = 16, r: int = 16, m_values: Sequence[int] = (1, 2, 3),
                  stair_s_values: Sequence[int] = (1, 2, 3, 4),
                  sd_s_values: Sequence[int] = (1, 2, 3),
                  stripe_sizes: Sequence[int] = (128 << 10, 512 << 10,
                                                 2 << 20, 8 << 20),
                  repeats: int = 1) -> list[dict]:
    """Encoding speed vs stripe size (Figure 12)."""
    rows = []
    for stripe_bytes in stripe_sizes:
        for m in m_values:
            for s in stair_s_values:
                code = _stair_code(n, r, m, s)
                result = measure_encoding_speed(code, stripe_bytes, repeats)
                row = _speed_row("STAIR", n, r, m, s, result)
                row["stripe_bytes"] = stripe_bytes
                rows.append(row)
            for s in sd_s_values:
                code = _sd_code(n, r, m, s)
                result = measure_encoding_speed(code, stripe_bytes, repeats)
                row = _speed_row("SD", n, r, m, s, result)
                row["stripe_bytes"] = stripe_bytes
                rows.append(row)
    return rows


def _speed_row(family: str, n: int, r: int, m: int, s: int,
               result: SpeedResult) -> dict:
    return {"family": family, "n": n, "r": r, "m": m, "s": s,
            "mb_per_second": result.mb_per_second,
            "seconds_per_stripe": result.seconds_per_stripe,
            "stripe_bytes": result.stripe_bytes}


def stair_vs_sd_summary(rows: Sequence[dict]) -> dict[str, float]:
    """Aggregate STAIR-vs-SD speed improvement over a speed grid.

    Compares, for every (n, r, m, s) with s <= SD_MAX_S, the STAIR speed
    against the SD speed -- the aggregation behind the paper's "+106.03%
    on average" (encoding) and "+102.99%" (decoding) claims.
    """
    sd_index = {(row["n"], row["r"], row["m"], row["s"]): row["mb_per_second"]
                for row in rows if row["family"] == "SD"}
    improvements = []
    for row in rows:
        if row["family"] != "STAIR" or row["s"] > SD_MAX_S:
            continue
        key = (row["n"], row["r"], row["m"], row["s"])
        if key in sd_index and sd_index[key] > 0:
            improvements.append((row["mb_per_second"] / sd_index[key] - 1) * 100)
    if not improvements:
        return {"average_pct": 0.0, "min_pct": 0.0, "max_pct": 0.0, "points": 0}
    return {"average_pct": sum(improvements) / len(improvements),
            "min_pct": min(improvements), "max_pct": max(improvements),
            "points": len(improvements)}


# --------------------------------------------------------------------------- #
# Figures 14-15: update penalty
# --------------------------------------------------------------------------- #
def figure14_rows(n: int = 16, s: int = 4, m_values: Sequence[int] = (1, 2, 3),
                  r_values: Sequence[int] = (8, 16, 24, 32)) -> list[dict]:
    rows = []
    for r, per_e in figure14_data(n=n, s=s, m_values=m_values,
                                  r_values=r_values).items():
        for e, per_m in per_e.items():
            for m, penalty in per_m.items():
                rows.append({"r": r, "e": e, "m": m, "update_penalty": penalty})
    return rows


def figure15_rows(n: int = 16, r: int = 16,
                  m_values: Sequence[int] = (1, 2, 3)) -> list[dict]:
    rows = []
    for m, entry in figure15_data(n=n, r=r, m_values=m_values).items():
        rows.append({"m": m, "code": "RS", "s": 0, "penalty": entry["rs"],
                     "min": entry["rs"], "max": entry["rs"]})
        for s, penalty in entry["sd"].items():
            rows.append({"m": m, "code": "SD", "s": s, "penalty": penalty,
                         "min": penalty, "max": penalty})
        for s, stats in entry["stair"].items():
            rows.append({"m": m, "code": "STAIR", "s": s,
                         "penalty": stats.average, "min": stats.minimum,
                         "max": stats.maximum})
    return rows


# --------------------------------------------------------------------------- #
# Figures 17-19: reliability
# --------------------------------------------------------------------------- #
P_BIT_SWEEP = (1e-14, 1e-13, 1e-12, 1e-11, 1e-10)

FIG17_CODES = (
    CodeReliability.reed_solomon(),
    CodeReliability.stair([1]),
    CodeReliability.stair([2]),
    CodeReliability.stair([1, 1]),
    CodeReliability.sd(2),
    CodeReliability.stair([3]),
    CodeReliability.stair([1, 2]),
    CodeReliability.stair([1, 1, 1]),
)

FIG18_CODES = FIG17_CODES + (CodeReliability.sd(1), CodeReliability.sd(3))


def figure17_rows(params: SystemParameters | None = None,
                  p_bits: Sequence[float] = P_BIT_SWEEP) -> list[dict]:
    """MTTDL_sys vs P_bit under independent sector failures."""
    params = params or SystemParameters()
    rows = []
    for p_bit in p_bits:
        model = IndependentSectorModel.from_p_bit(p_bit, params.r,
                                                  params.sector_bytes)
        for code in FIG17_CODES:
            rows.append({"p_bit": p_bit, "code": code.label(),
                         "mttdl_hours": mttdl_system(code, params, model)})
    return rows


def figure18_rows(params: SystemParameters | None = None,
                  p_bits: Sequence[float] = P_BIT_SWEEP,
                  b1: float = 0.98, alpha: float = 1.79) -> list[dict]:
    """MTTDL_sys vs P_bit under correlated (bursty) sector failures."""
    params = params or SystemParameters()
    rows = []
    for p_bit in p_bits:
        model = CorrelatedSectorModel.from_p_bit(p_bit, params.r,
                                                 params.sector_bytes,
                                                 b1=b1, alpha=alpha)
        for code in FIG18_CODES:
            rows.append({"p_bit": p_bit, "code": code.label(),
                         "mttdl_hours": mttdl_system(code, params, model)})
    return rows


BURSTINESS_PAIRS = ((0.9, 1.0), (0.98, 1.79), (0.99, 2.0),
                    (0.999, 3.0), (0.9999, 4.0))


def figure19a_rows(params: SystemParameters | None = None,
                   pairs: Sequence[tuple[float, float]] = BURSTINESS_PAIRS,
                   ) -> list[dict]:
    """Burst-length CDFs for the (b1, alpha) pairs of Figure 19(a)."""
    params = params or SystemParameters()
    rows = []
    for b1, alpha in pairs:
        model = CorrelatedSectorModel(p_sec=1e-6, r=params.r, b1=b1, alpha=alpha)
        cdf = model.burst_cdf()
        for length, value in enumerate(cdf, start=1):
            rows.append({"b1": b1, "alpha": alpha, "length": length,
                         "cdf": float(value)})
    return rows


def figure19b_rows(params: SystemParameters | None = None,
                   s_values: Sequence[int] = tuple(range(1, 13)),
                   p_bits: Sequence[float] = (1e-14, 1e-12, 1e-10),
                   pairs: Sequence[tuple[float, float]] = ((0.9, 1.0),
                                                           (0.99, 2.0),
                                                           (0.999, 3.0),
                                                           (0.9999, 4.0)),
                   ) -> list[dict]:
    """MTTDL of e=(s) vs e=(1, s-1) under varying burstiness (Figure 19(b))."""
    params = params or SystemParameters()
    rows = []
    for p_bit in p_bits:
        for b1, alpha in pairs:
            model = CorrelatedSectorModel.from_p_bit(p_bit, params.r,
                                                     params.sector_bytes,
                                                     b1=b1, alpha=alpha)
            for s in s_values:
                concentrated = CodeReliability.stair([s])
                rows.append({"p_bit": p_bit, "b1": b1, "alpha": alpha, "s": s,
                             "e": f"({s})",
                             "mttdl_hours": mttdl_system(concentrated, params,
                                                         model)})
                if s >= 2:
                    split = CodeReliability.stair([1, s - 1])
                    rows.append({"p_bit": p_bit, "b1": b1, "alpha": alpha, "s": s,
                                 "e": f"(1,{s - 1})",
                                 "mttdl_hours": mttdl_system(split, params,
                                                             model)})
    return rows
