"""Encoding/decoding speed measurement (§6.2 methodology).

The paper constructs an in-memory stripe of random bytes, divides it into
``r x n`` sectors, and reports the amount of data encoded (or decoded)
per second, averaged over several runs.  These helpers reproduce that
methodology for any :class:`~repro.codes.base.StripeCode`, plus the
worst-case failure patterns used for the decoding measurements.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.codes.base import Grid, StripeCode


@dataclass(frozen=True)
class SpeedResult:
    """Result of one speed measurement."""

    label: str
    stripe_bytes: int
    seconds_per_stripe: float
    mb_per_second: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.label}: {self.mb_per_second:.1f} MB/s"


def _symbol_dtype(code: StripeCode) -> np.dtype:
    field = getattr(code, "field", None)
    if field is not None and getattr(field, "w", 8) > 8:
        return np.dtype(np.uint16)
    return np.dtype(np.uint8)


def stripe_symbols(code: StripeCode, stripe_bytes: int,
                   seed: int = 0,
                   symbol_bytes: int | None = None) -> tuple[list[np.ndarray], int]:
    """Random data symbols for one stripe.

    By default the whole r x n stripe occupies ``stripe_bytes`` (the
    paper's methodology: a fixed-size in-memory stripe divided into
    sectors).  Passing ``symbol_bytes`` instead fixes the sector size and
    lets the stripe grow with n and r -- the speed sweeps use this so that
    the per-operation interpreter overhead (which the paper's SIMD C
    implementation does not have) stays constant across configurations
    and does not mask the algorithmic trends.
    """
    dtype = _symbol_dtype(code)
    itemsize = np.dtype(dtype).itemsize
    if symbol_bytes is not None:
        symbol_elems = max(1, symbol_bytes // itemsize)
    else:
        symbol_elems = max(1, stripe_bytes // (code.n * code.r * itemsize))
    rng = np.random.default_rng(seed)
    high = np.iinfo(dtype).max + 1
    data = [rng.integers(0, high, size=symbol_elems, dtype=dtype)
            for _ in range(code.num_data_symbols)]
    actual_bytes = symbol_elems * itemsize * code.n * code.r
    return data, actual_bytes


def measure_encoding_speed(code: StripeCode, stripe_bytes: int = 1 << 20,
                           repeats: int = 3, seed: int = 0,
                           label: str | None = None,
                           symbol_bytes: int | None = None) -> SpeedResult:
    """Measure the encoding throughput of a stripe code."""
    data, actual_bytes = stripe_symbols(code, stripe_bytes, seed,
                                        symbol_bytes=symbol_bytes)
    code.encode(data)  # warm-up (builds caches / encoding matrices)
    start = time.perf_counter()
    for _ in range(repeats):
        code.encode(data)
    elapsed = time.perf_counter() - start
    seconds = elapsed / repeats
    return SpeedResult(
        label=label or code.describe(),
        stripe_bytes=actual_bytes,
        seconds_per_stripe=seconds,
        mb_per_second=actual_bytes / seconds / 1e6,
    )


def measure_decoding_speed(code: StripeCode, lost_positions: Sequence[tuple[int, int]],
                           stripe_bytes: int = 1 << 20, repeats: int = 3,
                           seed: int = 0, label: str | None = None,
                           symbol_bytes: int | None = None) -> SpeedResult:
    """Measure decoding throughput for a given failure pattern."""
    data, actual_bytes = stripe_symbols(code, stripe_bytes, seed,
                                        symbol_bytes=symbol_bytes)
    encoded = code.encode(data)
    damaged: Grid = [[None if (i, j) in set(lost_positions) else encoded[i][j]
                      for j in range(code.n)] for i in range(code.r)]
    code.decode(damaged)  # warm-up
    start = time.perf_counter()
    for _ in range(repeats):
        code.decode(damaged)
    elapsed = time.perf_counter() - start
    seconds = elapsed / repeats
    return SpeedResult(
        label=label or code.describe(),
        stripe_bytes=actual_bytes,
        seconds_per_stripe=seconds,
        mb_per_second=actual_bytes / seconds / 1e6,
    )


# --------------------------------------------------------------------------- #
# Worst-case failure patterns (§6.2.2)
# --------------------------------------------------------------------------- #
def worst_case_losses_stair(n: int, r: int, m: int,
                            e: Sequence[int]) -> list[tuple[int, int]]:
    """The m leftmost chunks entirely lost plus e-shaped sector failures in
    the following m' chunks (the paper's worst-case decoding scenario)."""
    losses = [(i, j) for j in range(m) for i in range(r)]
    for l, e_l in enumerate(sorted(e)):
        col = m + l
        losses.extend((r - 1 - h, col) for h in range(e_l))
    return losses


def worst_case_losses_sd(n: int, r: int, m: int, s: int) -> list[tuple[int, int]]:
    """The m leftmost chunks entirely lost plus s sector failures spread one
    per following chunk."""
    losses = [(i, j) for j in range(m) for i in range(r)]
    for q in range(s):
        losses.append((r - 1, m + q))
    return losses


def device_only_losses(r: int, m: int) -> list[tuple[int, int]]:
    """m whole-device failures and no sector failures (the common case of
    §6.2.2 where decoding reduces to Reed-Solomon decoding)."""
    return [(i, j) for j in range(m) for i in range(r)]
