"""Verification helpers for MDS codes.

Used by the test suite and by the SD-code search to check that a
candidate generator matrix really defines an MDS code (every κ columns
linearly independent) and is systematic.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.gf.matrix import GFMatrix
from repro.rs.systematic import SystematicMDSCode


def verify_systematic(code: SystematicMDSCode) -> bool:
    """Return True if the generator's left κ x κ block is the identity."""
    k = code.dimension
    return bool(np.array_equal(code.generator.data[:, :k], np.eye(k, dtype=np.int64)))


def verify_mds_property(code: SystematicMDSCode,
                        max_combinations: int | None = 20000) -> bool:
    """Exhaustively check that every κ columns of the generator are independent.

    Equivalent to checking that any κ codeword symbols determine the data,
    i.e. the code tolerates any η - κ erasures.  The number of subsets is
    C(η, κ); ``max_combinations`` bounds the work for larger codes (the
    check then covers a deterministic prefix of subsets and returns early).
    """
    n, k = code.length, code.dimension
    checked = 0
    for cols in combinations(range(n), k):
        sub = code.generator.submatrix(range(k), cols)
        if not sub.is_invertible():
            return False
        checked += 1
        if max_combinations is not None and checked >= max_combinations:
            break
    return True


def verify_erasure_recovery(code: SystematicMDSCode, symbol_size: int = 8,
                            trials: int | None = None, seed: int = 0) -> bool:
    """Encode random data and confirm recovery from every erasure pattern.

    For codes where the number of erasure patterns C(η, η-κ) is large,
    ``trials`` random patterns are checked instead of all of them.
    """
    rng = np.random.default_rng(seed)
    data = [rng.integers(0, code.field.order, size=symbol_size,
                         dtype=code.field.element_dtype)
            for _ in range(code.dimension)]
    codeword = code.encode_codeword(data)
    erasable = code.length - code.dimension

    def check(pattern: tuple[int, ...]) -> bool:
        damaged = [None if i in pattern else codeword[i]
                   for i in range(code.length)]
        recovered = code.recover_all(damaged)
        return all(np.array_equal(recovered[i], codeword[i])
                   for i in range(code.length))

    all_patterns = list(combinations(range(code.length), erasable))
    if trials is not None and len(all_patterns) > trials:
        indices = rng.choice(len(all_patterns), size=trials, replace=False)
        patterns = [all_patterns[i] for i in indices]
    else:
        patterns = all_patterns
    return all(check(p) for p in patterns)


def count_nonzero_coefficients(matrix: GFMatrix) -> int:
    """Number of non-zero entries of a coefficient matrix.

    Handy for the standard-encoding Mult_XOR count, which equals the
    number of non-zero generator coefficients linking data to parities.
    """
    return int(np.count_nonzero(matrix.data))
