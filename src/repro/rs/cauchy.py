"""Cauchy Reed-Solomon codes.

The STAIR paper implements both of its building-block codes (``C_row``
and ``C_col``) as Cauchy Reed-Solomon codes because they impose no
restriction on code length or fault tolerance.  A Cauchy matrix has the
property that *every* square sub-matrix is invertible, so a generator of
the form ``[I | C]`` with ``C`` Cauchy yields a systematic MDS code.
"""

from __future__ import annotations

from repro.gf.field import GField, default_field
from repro.gf.matrix import GFMatrix
from repro.rs.systematic import SystematicMDSCode


class CauchyRSCode(SystematicMDSCode):
    """Systematic Cauchy Reed-Solomon (η, κ) code over GF(2^w).

    The parity block is the κ x (η-κ) Cauchy matrix built from the point
    sets ``x_i = i`` (for data symbols) and ``y_j = κ + j`` (for parity
    symbols); the sets are disjoint so every denominator is non-zero.
    The field must satisfy ``η <= 2^w``.
    """

    def __init__(self, length: int, dimension: int,
                 field: GField | None = None) -> None:
        field = field or default_field()
        if length > field.order:
            raise ValueError(
                f"codeword length {length} exceeds field order {field.order}; "
                f"use a larger word size"
            )
        parities = length - dimension
        x_points = list(range(dimension))
        y_points = list(range(dimension, dimension + parities))
        cauchy = GFMatrix.cauchy(x_points, y_points, field)
        generator = GFMatrix.identity(dimension, field).hstack(cauchy)
        super().__init__(length, dimension, generator, field)
