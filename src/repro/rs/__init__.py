"""Systematic MDS (Reed-Solomon family) codes.

These are the building blocks the STAIR construction calls ``C_row`` and
``C_col``: systematic (η, κ) MDS codes with no restriction on length or
fault tolerance.  Two constructions are provided, matching the paper's
references:

* :class:`~repro.rs.cauchy.CauchyRSCode` -- Cauchy Reed-Solomon codes
  (the construction the paper's implementation uses).
* :class:`~repro.rs.vandermonde.VandermondeRSCode` -- classical
  Vandermonde-based systematic Reed-Solomon codes (Plank's tutorial with
  the Plank-Ding correction).

Both return :class:`~repro.rs.systematic.SystematicMDSCode` behaviour:
``encode`` produces parity symbols, ``recover`` reconstructs any erased
symbols from any κ surviving ones, and ``decode_matrix`` exposes the
coefficient view used by the STAIR schedulers.
"""

from repro.rs.systematic import SystematicMDSCode, UnrecoverableErasureError
from repro.rs.cauchy import CauchyRSCode
from repro.rs.vandermonde import VandermondeRSCode
from repro.rs.verify import verify_mds_property, verify_systematic

__all__ = [
    "SystematicMDSCode",
    "UnrecoverableErasureError",
    "CauchyRSCode",
    "VandermondeRSCode",
    "verify_mds_property",
    "verify_systematic",
]
