"""Vandermonde-based systematic Reed-Solomon codes.

This is the classical construction from Plank's RAID tutorial with the
Plank-Ding correction: start from an η x κ Vandermonde matrix (every κ
rows of which are linearly independent because the evaluation points are
distinct), then apply elementary *column* operations to bring its top
κ x κ block to the identity.  Column operations preserve the
"any κ rows are independent" property, so the result is a systematic MDS
generator.
"""

from __future__ import annotations

import numpy as np

from repro.gf.field import GField, default_field
from repro.gf.matrix import GFMatrix
from repro.rs.systematic import SystematicMDSCode


def _systematic_vandermonde(length: int, dimension: int,
                            field: GField) -> GFMatrix:
    """Return a κ x η systematic MDS generator from a Vandermonde matrix."""
    # Build the η x κ Vandermonde matrix V[i][j] = i^j (row 0 -> [1,0,..,0]).
    data = np.zeros((length, dimension), dtype=np.int64)
    for i in range(length):
        for j in range(dimension):
            data[i, j] = field.pow(i, j) if i != 0 else (1 if j == 0 else 0)

    # Column-reduce so that the top κ x κ block becomes the identity.
    for col in range(dimension):
        # Find a column (>= col) with a non-zero entry in row `col` and swap.
        pivot_col = None
        for c in range(col, dimension):
            if data[col, c]:
                pivot_col = c
                break
        if pivot_col is None:  # pragma: no cover - cannot happen for Vandermonde
            raise ValueError("Vandermonde matrix unexpectedly singular")
        if pivot_col != col:
            data[:, [col, pivot_col]] = data[:, [pivot_col, col]]
        # Scale the pivot column so the diagonal entry becomes 1.
        inv = field.inv(int(data[col, col]))
        for i in range(length):
            data[i, col] = field.mul(int(data[i, col]), inv)
        # Eliminate the other entries of row `col`.
        for c in range(dimension):
            if c == col or not data[col, c]:
                continue
            factor = int(data[col, c])
            for i in range(length):
                data[i, c] ^= field.mul(factor, int(data[i, col]))

    # data is η x κ with identity on top; the generator is its transpose.
    return GFMatrix(data.T.copy(), field)


class VandermondeRSCode(SystematicMDSCode):
    """Systematic Vandermonde Reed-Solomon (η, κ) code over GF(2^w)."""

    def __init__(self, length: int, dimension: int,
                 field: GField | None = None) -> None:
        field = field or default_field()
        if length > field.order:
            raise ValueError(
                f"codeword length {length} exceeds field order {field.order}; "
                f"use a larger word size"
            )
        generator = _systematic_vandermonde(length, dimension, field)
        super().__init__(length, dimension, generator, field)
