"""Systematic MDS code base class.

A systematic (η, κ) MDS code is defined here by a κ x η generator matrix
whose first κ columns form the identity.  Encoding multiplies the data
row-vector by the generator; decoding recovers erased symbols from any κ
surviving ones by inverting the corresponding κ x κ sub-matrix.

Two views are provided:

* the *region* view (``encode``, ``recover``), operating on NumPy symbol
  buffers through :class:`~repro.gf.regions.RegionOps` so that the cost in
  Mult_XORs can be counted; and
* the *coefficient* view (``parity_matrix``, ``decode_matrix``), operating
  on scalar coefficients, used by the STAIR schedulers and by the symbolic
  generator-matrix derivation.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

from repro.gf.field import GField, default_field
from repro.gf.matrix import GFMatrix, SingularMatrixError
from repro.gf.regions import RegionOps


class UnrecoverableErasureError(ValueError):
    """Raised when fewer than κ symbols of a codeword are available."""


class SystematicMDSCode:
    """A systematic (η, κ) MDS erasure code defined by its generator matrix.

    Parameters
    ----------
    length:
        Codeword length η (number of symbols).
    dimension:
        Number of data symbols κ.
    generator:
        κ x η generator matrix whose left κ x κ block is the identity.
    field:
        The Galois field the code is defined over.
    """

    def __init__(self, length: int, dimension: int, generator: GFMatrix,
                 field: GField | None = None) -> None:
        if dimension <= 0 or length <= dimension:
            raise ValueError(
                f"invalid code parameters: length={length}, dimension={dimension}"
            )
        self.field = field or default_field()
        if generator.shape != (dimension, length):
            raise ValueError(
                f"generator shape {generator.shape} != ({dimension}, {length})"
            )
        identity = GFMatrix.identity(dimension, self.field)
        if not np.array_equal(generator.data[:, :dimension], identity.data):
            raise ValueError("generator matrix is not in systematic form")
        self.length = length
        self.dimension = dimension
        self.generator = generator
        self._decode_cache: dict[tuple[tuple[int, ...], tuple[int, ...]], np.ndarray] = {}

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_parities(self) -> int:
        """Number of parity symbols η - κ."""
        return self.length - self.dimension

    def parity_matrix(self) -> GFMatrix:
        """Return the κ x (η - κ) parity-coefficient block of the generator."""
        return GFMatrix(self.generator.data[:, self.dimension:], self.field)

    def coefficient_for(self, data_index: int, position: int) -> int:
        """Generator coefficient linking data symbol ``data_index`` to codeword
        ``position``."""
        return int(self.generator.data[data_index, position])

    # ------------------------------------------------------------------ #
    # Region view
    # ------------------------------------------------------------------ #
    def encode(self, data: Sequence[np.ndarray],
               ops: RegionOps | None = None) -> list[np.ndarray]:
        """Encode κ data symbols, returning the η - κ parity symbols.

        All parities are produced by one bulk matrix-times-plane kernel
        (the data symbols are stacked into a plane once, each parity row
        is a single table gather plus an XOR reduction).
        """
        self._check_data(data)
        ops = ops or RegionOps(self.field)
        parity = self.parity_matrix()
        return ops.matrix_vector(parity.data.T, data)

    def encode_codeword(self, data: Sequence[np.ndarray],
                        ops: RegionOps | None = None) -> list[np.ndarray]:
        """Encode κ data symbols, returning the full codeword of η symbols."""
        parities = self.encode(data, ops)
        return [np.copy(d) for d in data] + parities

    def recover(self, codeword: Sequence[Optional[np.ndarray]],
                ops: RegionOps | None = None,
                wanted: Sequence[int] | None = None) -> dict[int, np.ndarray]:
        """Recover erased symbols of a codeword.

        Parameters
        ----------
        codeword:
            Length-η sequence where missing symbols are ``None``.
        ops:
            Region-operation context (supplies the Mult_XOR counter).
        wanted:
            Optional subset of positions to recover; defaults to every
            missing position.  Restricting the set is what lets the STAIR
            schedulers recover only the virtual symbols they need.

        Returns
        -------
        dict mapping recovered position -> symbol.
        """
        if len(codeword) != self.length:
            raise ValueError(
                f"codeword length {len(codeword)} != {self.length}"
            )
        ops = ops or RegionOps(self.field)
        known = [i for i, sym in enumerate(codeword) if sym is not None]
        missing = [i for i, sym in enumerate(codeword) if sym is None]
        targets = list(wanted) if wanted is not None else missing
        targets = [t for t in targets if codeword[t] is None]
        if not targets:
            return {}
        if len(known) < self.dimension:
            raise UnrecoverableErasureError(
                f"only {len(known)} of {self.dimension} required symbols available"
            )
        basis = tuple(known[: self.dimension])
        coeffs = self.decode_matrix(basis, tuple(targets))
        basis_symbols = [codeword[i] for i in basis]
        recovered = ops.matrix_vector(coeffs, basis_symbols)
        return dict(zip(targets, recovered))

    def recover_many(self, codewords: Sequence[Sequence[Optional[np.ndarray]]],
                     ops: RegionOps | None = None,
                     wanted: Sequence[int] | None = None,
                     ) -> list[dict[int, np.ndarray]]:
        """Recover the *same* erasure pattern across many codewords at once.

        Every codeword must have ``None`` at exactly the same positions.
        The decode matrix is computed once and applied to the whole batch
        with one gather per matrix column, which is how the decoder's
        row-local repair phase processes all rows of a stripe that share
        a failure pattern.  Bit- and counter-identical to calling
        :meth:`recover` once per codeword.
        """
        if not len(codewords):
            return []
        first = codewords[0]
        if len(first) != self.length:
            raise ValueError(
                f"codeword length {len(first)} != {self.length}"
            )
        known = [i for i, sym in enumerate(first) if sym is not None]
        missing = [i for i, sym in enumerate(first) if sym is None]
        for cw in codewords[1:]:
            if [i for i, sym in enumerate(cw) if sym is None] != missing:
                raise ValueError(
                    "recover_many requires an identical erasure pattern "
                    "across all codewords")
        targets = list(wanted) if wanted is not None else missing
        targets = [t for t in targets if first[t] is None]
        if not targets:
            return [{} for _ in codewords]
        if len(known) < self.dimension:
            raise UnrecoverableErasureError(
                f"only {len(known)} of {self.dimension} required symbols available"
            )
        ops = ops or RegionOps(self.field)
        basis = tuple(known[: self.dimension])
        coeffs = self.decode_matrix(basis, tuple(targets))
        batches = ops.matrix_vector_batch(
            coeffs, [[cw[i] for i in basis] for cw in codewords])
        return [dict(zip(targets, recovered)) for recovered in batches]

    def recover_all(self, codeword: Sequence[Optional[np.ndarray]],
                    ops: RegionOps | None = None) -> list[np.ndarray]:
        """Return the full codeword with every erasure filled in."""
        recovered = self.recover(codeword, ops)
        full: list[np.ndarray] = []
        for i, sym in enumerate(codeword):
            full.append(np.copy(sym) if sym is not None else recovered[i])
        return full

    # ------------------------------------------------------------------ #
    # Coefficient view
    # ------------------------------------------------------------------ #
    def decode_matrix(self, known_positions: Sequence[int],
                      unknown_positions: Sequence[int]) -> np.ndarray:
        """Coefficients expressing unknown symbols from κ known symbols.

        ``known_positions`` must contain exactly κ distinct positions.  The
        returned array has shape ``(len(unknown_positions), κ)``: row ``i``
        gives the coefficients of the known symbols whose linear
        combination equals the symbol at ``unknown_positions[i]``.

        Results are cached per (known, unknown) tuple because the STAIR
        schedulers repeat the same recovery pattern for every row/column
        of a stripe.
        """
        known = tuple(int(p) for p in known_positions)
        unknown = tuple(int(p) for p in unknown_positions)
        if len(known) != self.dimension:
            raise ValueError(
                f"need exactly {self.dimension} known positions, got {len(known)}"
            )
        if len(set(known)) != len(known):
            raise ValueError("known positions must be distinct")
        key = (known, unknown)
        cached = self._decode_cache.get(key)
        if cached is not None:
            return cached

        sub_known = self.generator.submatrix(range(self.dimension), known)
        try:
            inv = sub_known.inverse()
        except SingularMatrixError as exc:  # pragma: no cover - MDS guarantees
            raise UnrecoverableErasureError(
                "known-position sub-matrix is singular; code is not MDS"
            ) from exc
        sub_unknown = self.generator.submatrix(range(self.dimension), unknown)
        # unknown = data @ G_U and data = known @ G_K^{-1}
        # => unknown = known @ (G_K^{-1} @ G_U)
        mapping = inv.matmul(sub_unknown)          # κ x |unknown|
        coeffs = mapping.data.T.copy()             # |unknown| x κ
        self._decode_cache[key] = coeffs
        return coeffs

    def scalar_encode(self, data: Sequence[int]) -> list[int]:
        """Encode a vector of scalar field elements (coefficient view)."""
        if len(data) != self.dimension:
            raise ValueError("data length mismatch")
        f = self.field
        out = []
        for j in range(self.length):
            acc = 0
            for i, d in enumerate(data):
                if d:
                    c = int(self.generator.data[i, j])
                    if c:
                        acc ^= f.mul(d, c)
            out.append(acc)
        return out

    # ------------------------------------------------------------------ #
    def _check_data(self, data: Sequence[np.ndarray]) -> None:
        if len(data) != self.dimension:
            raise ValueError(
                f"expected {self.dimension} data symbols, got {len(data)}"
            )
        sizes = {len(d) for d in data}
        if len(sizes) > 1:
            raise ValueError("all data symbols must have the same size")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{type(self).__name__}(length={self.length}, "
                f"dimension={self.dimension}, GF(2^{self.field.w}))")
