"""Workload generators for examples, tests and benchmarks.

The paper's performance evaluation encodes stripes of random bytes and
its motivation sections describe backup/WORM and update-heavy workloads;
these helpers generate both kinds of traffic plus the symbol-level inputs
the benchmark harness feeds the codes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.codes.base import StripeCode


def random_symbols(count: int, symbol_size: int,
                   seed: int | None = None,
                   dtype: np.dtype | type = np.uint8) -> list[np.ndarray]:
    """Generate ``count`` random symbols of ``symbol_size`` elements."""
    rng = np.random.default_rng(seed)
    high = np.iinfo(dtype).max + 1
    return [rng.integers(0, high, size=symbol_size, dtype=dtype)
            for _ in range(count)]


def random_payload(num_bytes: int, seed: int | None = None) -> bytes:
    """Generate a random byte payload."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=num_bytes, dtype=np.uint8).tobytes()


def stripe_data_for(code: StripeCode, symbol_size: int,
                    seed: int | None = None) -> list[np.ndarray]:
    """Random data symbols shaped for one stripe of ``code``."""
    return random_symbols(code.num_data_symbols, symbol_size, seed=seed)


def symbol_size_for_stripe(code: StripeCode, stripe_bytes: int) -> int:
    """Symbol size so that the whole r x n stripe occupies ``stripe_bytes``.

    Matches the paper's methodology (e.g. a 32 MB stripe divided into
    r x n sectors); the result is floored to at least one byte.
    """
    return max(1, stripe_bytes // (code.n * code.r))


@dataclass(frozen=True)
class UpdateOperation:
    """One small-write: overwrite a single data symbol of a stripe."""

    stripe: int
    data_index: int
    payload: np.ndarray


def update_trace(code: StripeCode, num_stripes: int, operations: int,
                 symbol_size: int, seed: int | None = None,
                 ) -> Iterator[UpdateOperation]:
    """A random small-write trace (for the update-penalty experiments)."""
    rng = np.random.default_rng(seed)
    for _ in range(operations):
        yield UpdateOperation(
            stripe=int(rng.integers(0, num_stripes)),
            data_index=int(rng.integers(0, code.num_data_symbols)),
            payload=rng.integers(0, 256, size=symbol_size, dtype=np.uint8),
        )


def sequential_write_trace(total_bytes: int, stripe_capacity: int) -> list[int]:
    """Byte counts per stripe for a full-stripe sequential write workload."""
    sizes = []
    remaining = total_bytes
    while remaining > 0:
        sizes.append(min(stripe_capacity, remaining))
        remaining -= stripe_capacity
    return sizes
