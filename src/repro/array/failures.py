"""Failure models and failure injection for the storage-array simulator.

Two kinds of failures are modelled, matching §2 of the paper:

* **Device failures** -- a whole device (all of its chunks in every
  stripe) becomes unavailable.
* **Sector failures** -- individual sectors become unreadable (latent
  sector errors / worn-out flash blocks).  They can be injected
  independently or as *bursts* of contiguous sectors whose length follows
  the empirical distribution of Schroeder et al. (fraction ``b1`` of
  length-1 bursts, Pareto tail with index ``alpha`` beyond that) -- the
  same parametric model used for the reliability analysis in §7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np


@dataclass(frozen=True)
class DeviceFailure:
    """Loss of an entire device."""

    device: int


@dataclass(frozen=True)
class SectorFailure:
    """Loss of a single sector: stripe-local coordinates (stripe, row, device)."""

    stripe: int
    row: int
    device: int


@dataclass
class FailureEvent:
    """A batch of failures injected at one instant."""

    device_failures: list[DeviceFailure] = field(default_factory=list)
    sector_failures: list[SectorFailure] = field(default_factory=list)

    def is_empty(self) -> bool:
        return not self.device_failures and not self.sector_failures


class BurstLengthDistribution:
    """Discrete burst-length distribution: P(L=1)=b1, Pareto tail beyond.

    ``P(L >= i | L >= 2) = (2 / i) ** alpha`` for ``i >= 2``, truncated at
    ``max_length`` and renormalised -- the same form used by the
    reliability models (Eq. 14-17), so simulation and analysis share one
    failure model.
    """

    def __init__(self, b1: float = 0.98, alpha: float = 1.79,
                 max_length: int = 16) -> None:
        if not (0.0 < b1 <= 1.0):
            raise ValueError("b1 must lie in (0, 1]")
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        if max_length < 1:
            raise ValueError("max_length must be >= 1")
        self.b1 = b1
        self.alpha = alpha
        self.max_length = max_length
        self.pmf = self._build_pmf()

    def _build_pmf(self) -> np.ndarray:
        pmf = np.zeros(self.max_length + 1)
        pmf[1] = self.b1
        if self.max_length >= 2:
            # Survival of the Pareto tail, conditioned on L >= 2.
            survival = np.array([(2.0 / i) ** self.alpha
                                 for i in range(2, self.max_length + 2)])
            tail = survival[:-1] - survival[1:]
            tail = np.append(tail, survival[-1])[: self.max_length - 1]
            tail = tail / tail.sum() * (1.0 - self.b1)
            pmf[2:] = tail
        else:
            pmf[1] = 1.0
        return pmf / pmf.sum()

    def mean(self) -> float:
        """Average burst length B (Eq. 14)."""
        lengths = np.arange(self.max_length + 1)
        return float(np.dot(lengths, self.pmf))

    def cdf(self) -> np.ndarray:
        """Cumulative distribution over lengths 1..max_length (Fig. 19a)."""
        return np.cumsum(self.pmf[1:])

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw burst lengths."""
        return rng.choice(np.arange(self.max_length + 1), size=size, p=self.pmf)


class FailureInjector:
    """Generates random failure events for an array geometry."""

    def __init__(self, num_devices: int, num_stripes: int, rows_per_chunk: int,
                 seed: int | None = None) -> None:
        self.num_devices = num_devices
        self.num_stripes = num_stripes
        self.rows_per_chunk = rows_per_chunk
        self.rng = np.random.default_rng(seed)

    def random_device_failures(self, count: int) -> FailureEvent:
        """Fail ``count`` distinct random devices."""
        devices = self.rng.choice(self.num_devices, size=count, replace=False)
        return FailureEvent(device_failures=[DeviceFailure(int(d)) for d in devices])

    def random_sector_failures(self, count: int,
                               exclude_devices: Iterable[int] = ()) -> FailureEvent:
        """Fail ``count`` random distinct sectors outside ``exclude_devices``."""
        excluded = set(exclude_devices)
        candidates = [(st, row, dev)
                      for st in range(self.num_stripes)
                      for row in range(self.rows_per_chunk)
                      for dev in range(self.num_devices)
                      if dev not in excluded]
        chosen = self.rng.choice(len(candidates), size=count, replace=False)
        return FailureEvent(sector_failures=[SectorFailure(*candidates[int(c)])
                                             for c in chosen])

    def burst_sector_failures(self, bursts: int,
                              distribution: BurstLengthDistribution,
                              exclude_devices: Iterable[int] = ()) -> FailureEvent:
        """Inject ``bursts`` bursts of contiguous sector failures.

        Each burst hits one chunk of one stripe starting at a random row;
        it is truncated at the chunk boundary (the paper's §7 assumption
        that a burst does not span chunks).
        """
        excluded = set(exclude_devices)
        devices = [d for d in range(self.num_devices) if d not in excluded]
        failures: list[SectorFailure] = []
        for _ in range(bursts):
            length = int(distribution.sample(self.rng)[0])
            if length == 0:
                continue
            stripe = int(self.rng.integers(0, self.num_stripes))
            device = int(self.rng.choice(devices))
            start = int(self.rng.integers(0, self.rows_per_chunk))
            for offset in range(length):
                row = start + offset
                if row >= self.rows_per_chunk:
                    break
                failures.append(SectorFailure(stripe, row, device))
        return FailureEvent(sector_failures=failures)

    def worst_case_event(self, m: int, e: tuple[int, ...],
                         stripe: int = 0) -> FailureEvent:
        """The worst-case pattern of §4.2: m failed devices plus e-shaped
        sector failures in the adjacent devices of one stripe."""
        data_devices = self.num_devices - m
        device_failures = [DeviceFailure(data_devices + k) for k in range(m)]
        sector_failures = []
        for l, e_l in enumerate(sorted(e)):
            device = data_devices - len(e) + l
            for h in range(e_l):
                sector_failures.append(
                    SectorFailure(stripe, self.rows_per_chunk - 1 - h, device))
        return FailureEvent(device_failures=device_failures,
                            sector_failures=sector_failures)
