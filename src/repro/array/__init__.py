"""Storage-array simulator: devices, stripes, failures, scrubbing, rebuild.

The simulator stands in for the physical disk arrays the paper deploys
erasure codes on; it drives the same encode/decode code paths end-to-end
and provides the workload and failure generators used by the examples,
integration tests and benchmarks.
"""

from repro.array.device import Device, DeviceState
from repro.array.failures import (
    BurstLengthDistribution,
    DeviceFailure,
    FailureEvent,
    FailureInjector,
    SectorFailure,
)
from repro.array.storage_array import ArrayStatus, DataLossError, StorageArray
from repro.array.workload import (
    UpdateOperation,
    random_payload,
    random_symbols,
    sequential_write_trace,
    stripe_data_for,
    symbol_size_for_stripe,
    update_trace,
)

__all__ = [
    "Device",
    "DeviceState",
    "StorageArray",
    "ArrayStatus",
    "DataLossError",
    "FailureInjector",
    "FailureEvent",
    "DeviceFailure",
    "SectorFailure",
    "BurstLengthDistribution",
    "random_symbols",
    "random_payload",
    "stripe_data_for",
    "symbol_size_for_stripe",
    "update_trace",
    "UpdateOperation",
    "sequential_write_trace",
]
