"""The storage-array simulator.

A :class:`StorageArray` is a set of ``n`` devices protected stripe-by-
stripe with any :class:`~repro.codes.base.StripeCode` (STAIR, RS, SD,
IDR).  It supports writing and reading user data, injecting device and
sector failures, degraded reads, scrubbing and rebuild -- the end-to-end
code path that a deployment of the paper's library would exercise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.array.device import Device
from repro.array.failures import FailureEvent
from repro.codes.base import StripeCode
from repro.core.exceptions import DecodingFailureError


class DataLossError(RuntimeError):
    """Raised when a failure pattern exceeds the array's protection."""


@dataclass
class ArrayStatus:
    """Snapshot of the array's health."""

    failed_devices: list[int]
    bad_sectors: int
    stripes_with_damage: int

    @property
    def healthy(self) -> bool:
        return not self.failed_devices and self.bad_sectors == 0


class StorageArray:
    """An n-device array protected by a stripe code."""

    def __init__(self, code: StripeCode, num_stripes: int,
                 symbol_size: int = 512) -> None:
        if num_stripes < 1:
            raise ValueError("num_stripes must be >= 1")
        self.code = code
        self.num_stripes = num_stripes
        self.symbol_size = symbol_size
        self.devices = [Device(d, num_stripes, code.r, symbol_size)
                        for d in range(code.n)]

    # ------------------------------------------------------------------ #
    # Capacity / addressing
    # ------------------------------------------------------------------ #
    @property
    def stripe_capacity(self) -> int:
        """User bytes per stripe."""
        return self.code.num_data_symbols * self.symbol_size

    @property
    def capacity(self) -> int:
        """Total user bytes of the array."""
        return self.stripe_capacity * self.num_stripes

    # ------------------------------------------------------------------ #
    # Write / read
    # ------------------------------------------------------------------ #
    def write_stripe(self, stripe: int, payload: bytes) -> None:
        """Encode and store one stripe's worth of user data (zero padded)."""
        self._check_stripe(stripe)
        if len(payload) > self.stripe_capacity:
            raise ValueError(
                f"payload of {len(payload)} bytes exceeds stripe capacity "
                f"{self.stripe_capacity}"
            )
        padded = payload.ljust(self.stripe_capacity, b"\x00")
        data = [np.frombuffer(
            padded[k * self.symbol_size:(k + 1) * self.symbol_size],
            dtype=np.uint8).copy()
            for k in range(self.code.num_data_symbols)]
        encoded = self.code.encode(data)
        for row in range(self.code.r):
            for dev in range(self.code.n):
                self.devices[dev].write(stripe, row, encoded[row][dev])

    def write(self, payload: bytes) -> None:
        """Write a byte stream across consecutive stripes from stripe 0."""
        if len(payload) > self.capacity:
            raise ValueError("payload exceeds array capacity")
        for stripe in range(self.num_stripes):
            chunk = payload[stripe * self.stripe_capacity:
                            (stripe + 1) * self.stripe_capacity]
            if not chunk:
                break
            self.write_stripe(stripe, chunk)

    def read_stripe(self, stripe: int, degraded_ok: bool = True) -> bytes:
        """Read one stripe's user data, transparently repairing erasures.

        With ``degraded_ok`` the stripe code is invoked to reconstruct any
        unreadable symbols (a *degraded read*); without it, damage raises.
        """
        self._check_stripe(stripe)
        grid = self._read_grid(stripe)
        damaged = any(cell is None for row in grid for cell in row)
        if damaged:
            if not degraded_ok:
                raise DataLossError(f"stripe {stripe} has unreadable symbols")
            try:
                grid = self.code.decode(grid)
            except DecodingFailureError as exc:
                raise DataLossError(
                    f"stripe {stripe} is unrecoverable: {exc}") from exc
        data = self.code.extract_data(grid)
        return b"".join(np.asarray(sym, dtype=np.uint8).tobytes() for sym in data)

    def read(self, length: int | None = None) -> bytes:
        """Read the whole array's user data (degraded reads allowed)."""
        blob = b"".join(self.read_stripe(stripe)
                        for stripe in range(self.num_stripes))
        return blob if length is None else blob[:length]

    def update_symbol(self, stripe: int, data_index: int,
                      symbol: np.ndarray) -> int:
        """Update one data symbol and re-encode the stripe.

        Returns the number of parity symbols rewritten (a direct,
        measurable view of the update penalty of §6.3: the stripe is
        re-encoded and parities that changed are counted and rewritten).
        """
        self._check_stripe(stripe)
        try:
            grid = self.code.decode(self._read_grid(stripe))
        except DecodingFailureError as exc:
            raise DataLossError(
                f"cannot update stripe {stripe}: {exc}") from exc
        data = self.code.extract_data(grid)
        if not (0 <= data_index < len(data)):
            raise IndexError("data_index out of range")
        data[data_index] = np.asarray(symbol)
        new_grid = self.code.encode(data)
        rewritten = 0
        data_cells = set(self.code.data_positions())
        for row in range(self.code.r):
            for dev in range(self.code.n):
                if self.devices[dev].is_failed:
                    # Degraded update: nothing can be written to a failed
                    # device; rebuild() re-derives its chunk later.
                    continue
                changed = not np.array_equal(
                    np.asarray(grid[row][dev]), np.asarray(new_grid[row][dev]))
                if changed or (row, dev) in data_cells:
                    self.devices[dev].write(stripe, row, new_grid[row][dev])
                if changed and (row, dev) not in data_cells:
                    rewritten += 1
        return rewritten

    # ------------------------------------------------------------------ #
    # Failure injection / health
    # ------------------------------------------------------------------ #
    def inject(self, event: FailureEvent) -> None:
        """Apply a failure event to the array."""
        for failure in event.device_failures:
            self.fail_device(failure.device)
        for failure in event.sector_failures:
            self.fail_sector(failure.stripe, failure.row, failure.device)

    def fail_device(self, device: int) -> None:
        self.devices[device].fail()

    def fail_sector(self, stripe: int, row: int, device: int) -> None:
        self.devices[device].fail_sector(stripe, row)

    def status(self) -> ArrayStatus:
        failed = [d.device_id for d in self.devices if d.is_failed]
        bad = sum(len(d.bad_sectors()) for d in self.devices)
        damaged_stripes = set()
        for device in self.devices:
            if device.is_failed:
                damaged_stripes.update(range(self.num_stripes))
                break
        for device in self.devices:
            damaged_stripes.update(stripe for stripe, _ in device.bad_sectors())
        return ArrayStatus(failed_devices=failed, bad_sectors=bad,
                           stripes_with_damage=len(damaged_stripes))

    # ------------------------------------------------------------------ #
    # Repair
    # ------------------------------------------------------------------ #
    def scrub(self) -> int:
        """Scan every stripe and repair latent sector failures in place.

        Returns the number of sectors repaired.  Device failures are left
        to :meth:`rebuild`.
        """
        repaired = 0
        for stripe in range(self.num_stripes):
            bad = [(row, dev.device_id) for dev in self.devices
                   if not dev.is_failed
                   for (st, row) in dev.bad_sectors() if st == stripe]
            if not bad:
                continue
            grid = self._read_grid(stripe)
            try:
                recovered = self.code.decode(grid)
            except DecodingFailureError as exc:
                raise DataLossError(
                    f"scrub cannot repair stripe {stripe}: {exc}") from exc
            for row, device in bad:
                self.devices[device].repair_sector(stripe, row,
                                                   recovered[row][device])
                repaired += 1
        return repaired

    def rebuild(self) -> list[int]:
        """Replace every failed device and reconstruct its contents.

        Returns the list of rebuilt device ids.  Raises
        :class:`DataLossError` if any stripe cannot be reconstructed.
        """
        failed = [d.device_id for d in self.devices if d.is_failed]
        if not failed:
            return []
        recovered_stripes: list = []
        for stripe in range(self.num_stripes):
            grid = self._read_grid(stripe)
            try:
                recovered_stripes.append(self.code.decode(grid))
            except DecodingFailureError as exc:
                raise DataLossError(
                    f"rebuild failed: stripe {stripe} unrecoverable: {exc}"
                ) from exc
        for device_id in failed:
            self.devices[device_id].replace()
        for stripe, grid in enumerate(recovered_stripes):
            for device_id in failed:
                for row in range(self.code.r):
                    self.devices[device_id].write(stripe, row, grid[row][device_id])
        return failed

    # ------------------------------------------------------------------ #
    def _read_grid(self, stripe: int) -> list[list[Optional[np.ndarray]]]:
        return [[self.devices[dev].read(stripe, row) for dev in range(self.code.n)]
                for row in range(self.code.r)]

    def _check_stripe(self, stripe: int) -> None:
        if not (0 <= stripe < self.num_stripes):
            raise IndexError(f"stripe {stripe} out of range")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"StorageArray({self.code.describe()}, "
                f"{self.num_stripes} stripes, {self.symbol_size}B sectors)")
