"""Device model for the storage-array simulator.

A :class:`Device` stores one chunk (r sectors) per stripe and tracks its
own health plus per-sector failures.  Reads return ``None`` for sectors
that are currently unreadable, which is exactly how the stripe codes see
erasures.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional

import numpy as np


class DeviceState(Enum):
    """Operational state of a device."""

    HEALTHY = "healthy"
    FAILED = "failed"


class Device:
    """One storage device: a column of chunks, one per stripe."""

    def __init__(self, device_id: int, num_stripes: int, rows_per_chunk: int,
                 symbol_size: int) -> None:
        self.device_id = device_id
        self.num_stripes = num_stripes
        self.rows_per_chunk = rows_per_chunk
        self.symbol_size = symbol_size
        self.state = DeviceState.HEALTHY
        # sectors[stripe][row] -> symbol buffer (None until written).
        self._sectors: list[list[Optional[np.ndarray]]] = [
            [None] * rows_per_chunk for _ in range(num_stripes)
        ]
        self._bad_sectors: set[tuple[int, int]] = set()

    # ------------------------------------------------------------------ #
    # I/O
    # ------------------------------------------------------------------ #
    def write(self, stripe: int, row: int, symbol: np.ndarray) -> None:
        """Write one sector.  Writing clears any latent failure at the address."""
        if self.state is DeviceState.FAILED:
            raise IOError(f"device {self.device_id} has failed")
        self._sectors[stripe][row] = np.asarray(symbol).copy()
        self._bad_sectors.discard((stripe, row))

    def read(self, stripe: int, row: int) -> Optional[np.ndarray]:
        """Read one sector; ``None`` if the device/sector is unreadable."""
        if self.state is DeviceState.FAILED:
            return None
        if (stripe, row) in self._bad_sectors:
            return None
        symbol = self._sectors[stripe][row]
        return None if symbol is None else symbol.copy()

    # ------------------------------------------------------------------ #
    # Failure handling
    # ------------------------------------------------------------------ #
    def fail(self) -> None:
        """Fail the whole device (all sectors become unreadable)."""
        self.state = DeviceState.FAILED

    def replace(self) -> None:
        """Replace a failed device with a blank healthy one."""
        self.state = DeviceState.HEALTHY
        self._sectors = [[None] * self.rows_per_chunk
                         for _ in range(self.num_stripes)]
        self._bad_sectors.clear()

    def fail_sector(self, stripe: int, row: int) -> None:
        """Mark one sector as unreadable (a latent sector error)."""
        self._bad_sectors.add((stripe, row))

    def repair_sector(self, stripe: int, row: int, symbol: np.ndarray) -> None:
        """Rewrite a sector after recovery, clearing the failure."""
        self.write(stripe, row, symbol)

    @property
    def is_failed(self) -> bool:
        return self.state is DeviceState.FAILED

    def bad_sectors(self) -> set[tuple[int, int]]:
        """Currently failed sector addresses (stripe, row)."""
        return set(self._bad_sectors)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Device({self.device_id}, {self.state.value}, "
                f"{len(self._bad_sectors)} bad sectors)")
