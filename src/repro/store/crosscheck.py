"""Cross-check the live store against the discrete-event engine.

The store and the simulator model the *same* cluster from opposite
ends: :mod:`repro.store` serves real bytes through real crashes, while
:mod:`repro.sim.events` plays the analytical trajectory the paper
reasons about.  This module closes the loop between them for one spec:

1. run the live store workload (`run_store`) and read off the damage
   window it *measured* -- the ``first_damaged_op`` / ``last_damaged_op``
   digest fields, converted to hours through ``[store] hours_per_op``;
2. replay the :class:`~repro.store.injector.FailureInjector`'s exact
   crash schedule through a :class:`~repro.sim.events.ClusterSimulation`
   (one array, no organic failures, no shocks -- every DEVICE_FAILURE
   is injected by hand at ``at_op * hours_per_op``) and read off the
   damage window the engine *predicts*: from the first injected failure
   until its rebuilds bring the array back to zero failed devices;
3. assert the prediction brackets the measurement::

       predicted_start <= measured_start  and  measured_end <= predicted_end

The start sides coincide by construction (both fire the schedule at the
same op-hour); the end side holds whenever ``[repair] repair_hours``
dwarfs the workload span, because the store's repair loop races traffic
at memory speed while the engine charges the full sampled rebuild time.
A spec whose measurement escapes the engine's envelope means the two
models have drifted apart -- exactly the regression this guards in CI.

The engine's rebuild durations are sampled, so the prediction is an
*envelope* over several engine seeds (min start, max end).

Usage::

    python -m repro.store.crosscheck --spec examples/store_crosscheck.toml
    python -m repro.store.crosscheck --spec ... --backend process --json
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from typing import Sequence

from repro.codes.registry import parse_code_spec
from repro.scenario.spec import ScenarioSpec, ScenarioSpecError
from repro.sim.events import ClusterSimulation, EventType, Scenario
from repro.store.injector import FailureEvent, FailureInjector
from repro.store.runner import StoreOutcome, run_store

#: Slack for float comparison of hour boundaries (the two sides compute
#: the same ``at_op * hours_per_op`` product, but independently).
_EPS_HOURS = 1e-9


@dataclass
class EngineWindow:
    """The damage window one engine replay predicted."""

    seed: int
    #: Hour of the first injected failure (None when nothing fired).
    start_hours: float | None
    #: Hour the last rebuild restored the array (horizon if never).
    end_hours: float | None
    #: Loss cause string when the engine declared data loss.
    loss_cause: str | None = None


@dataclass
class CrosscheckResult:
    """Measured-vs-predicted damage windows for one spec."""

    spec: ScenarioSpec
    outcome: StoreOutcome
    schedule: list[FailureEvent]
    windows: list[EngineWindow]
    measured_start_hours: float | None
    measured_end_hours: float | None
    predicted_start_hours: float | None
    predicted_end_hours: float | None
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Did the engine's envelope bracket the live measurement?"""
        return not self.failures

    def summary(self) -> dict:
        return {
            "ok": self.ok,
            "failures": list(self.failures),
            "backend": self.outcome.report.backend,
            "crash_schedule": [
                {"at_op": e.at_op, "node": e.node, "cause": e.cause}
                for e in self.schedule],
            "measured_start_hours": self.measured_start_hours,
            "measured_end_hours": self.measured_end_hours,
            "predicted_start_hours": self.predicted_start_hours,
            "predicted_end_hours": self.predicted_end_hours,
            "engine_windows": [
                {"seed": w.seed, "start_hours": w.start_hours,
                 "end_hours": w.end_hours, "loss_cause": w.loss_cause}
                for w in self.windows],
            "zero_data_loss": self.outcome.zero_data_loss,
            "digest": self.outcome.report.deterministic_summary(),
        }


def _engine_scenario(spec: ScenarioSpec,
                     horizon_hours: float) -> Scenario:
    """The engine-side twin of the spec's store cluster: same code,
    same lifetime/repair models, one array, nothing stochastic beyond
    the rebuild durations (failures are injected by hand)."""
    # Local import: scenario.runner imports the trace/lifetime stack,
    # which the store package otherwise never touches.
    from repro.scenario.runner import lifetime_from_spec, repair_from_spec
    return Scenario(
        code=parse_code_spec(spec.code.spec),
        num_arrays=1,
        lifetime=lifetime_from_spec(spec),
        repair=repair_from_spec(spec),
        repair_streams=spec.repair.rebuild_streams,
        horizon_hours=horizon_hours,
    )


def replay_schedule(spec: ScenarioSpec, schedule: Sequence[FailureEvent],
                    engine_seed: int, *,
                    horizon_hours: float = 87_600.0) -> EngineWindow:
    """Play the injector's crash schedule through the event engine.

    Every ``FailureEvent`` becomes a hand-scheduled ``DEVICE_FAILURE``
    at ``at_op * hours_per_op`` (the op-hour at which the live store
    fires it).  The replay stops once the whole schedule has fired and
    the array is healthy again -- organic lifetimes the engine
    reschedules for rebuilt devices are outside the injected window and
    are not replayed.
    """
    hours_per_op = spec.store.hours_per_op
    sim = ClusterSimulation(_engine_scenario(spec, horizon_hours),
                            seed=engine_seed)
    injected = 0
    for event in schedule:
        sim.queue.schedule(event.at_op * hours_per_op,
                           EventType.DEVICE_FAILURE,
                           array=0, device=event.node, injected=True)
        injected += 1

    array = sim.cluster.arrays[0]
    start: float | None = None
    end: float | None = None
    fired = 0
    for event in sim.queue.drain():
        if event.time > horizon_hours:
            break
        if event.payload.get("injected"):
            fired += 1
        loss_cause = sim._handle(event)
        if loss_cause is not None:
            # Data loss: the damage never clears -- the window runs to
            # the horizon (a maximally pessimistic, always-valid end).
            return EngineWindow(seed=engine_seed,
                                start_hours=start if start is not None
                                else event.time,
                                end_hours=horizon_hours,
                                loss_cause=loss_cause)
        if array.num_failed > 0:
            if start is None:
                start = event.time
            end = event.time
        else:
            if start is not None:
                end = event.time
            if fired == injected:
                break  # schedule exhausted, array healthy: done
    if start is not None and array.num_failed > 0:
        end = horizon_hours  # still damaged when the replay stopped
    return EngineWindow(seed=engine_seed, start_hours=start, end_hours=end)


def bracket_failures(measured_start: float | None,
                     measured_end: float | None,
                     predicted_start: float | None,
                     predicted_end: float | None,
                     num_crashes: int) -> list[str]:
    """The bracket rule itself: predicted must contain measured."""
    if measured_start is None:
        return ["the live store measured no damage window although the "
                f"injector scheduled {num_crashes} crash(es)"]
    if predicted_start is None:
        return ["the engine predicted no damage window although the "
                f"schedule replayed {num_crashes} crash(es)"]
    failures: list[str] = []
    if predicted_start > measured_start + _EPS_HOURS:
        failures.append(
            f"predicted window opens at {predicted_start:.6g} h, "
            f"after the measured start {measured_start:.6g} h")
    if measured_end > predicted_end + _EPS_HOURS:
        failures.append(
            f"measured window closes at {measured_end:.6g} h, "
            f"after the predicted end {predicted_end:.6g} h")
    return failures


def crosscheck(spec: ScenarioSpec, *,
               engine_seeds: Sequence[int] = (0, 1, 2, 3),
               horizon_hours: float = 87_600.0) -> CrosscheckResult:
    """Run the live store and assert the engine brackets its window."""
    spec.validate()
    if spec.store is None:
        raise ScenarioSpecError(
            "crosscheck needs a [store] section describing the workload")
    if spec.store.hours_per_op <= 0.0:
        raise ScenarioSpecError(
            "crosscheck needs [store] hours_per_op > 0 to place the "
            "store's op clock on the engine's hour axis")

    outcome = run_store(spec)
    report = outcome.report
    schedule = list(outcome.injector.events)
    if not schedule:
        raise ScenarioSpecError(
            "crosscheck needs a spec that injects at least one crash "
            "([store] kill_nodes, [domains], or a lifetime model dense "
            "enough to fire within the run)")

    hours = spec.store.hours_per_op
    measured_start = (report.first_damaged_op * hours
                      if report.first_damaged_op is not None else None)
    measured_end = (report.last_damaged_op * hours
                    if report.last_damaged_op is not None else None)

    windows = [replay_schedule(spec, schedule, seed,
                               horizon_hours=horizon_hours)
               for seed in engine_seeds]
    starts = [w.start_hours for w in windows if w.start_hours is not None]
    ends = [w.end_hours for w in windows if w.end_hours is not None]
    predicted_start = min(starts) if starts else None
    predicted_end = max(ends) if ends else None

    failures = bracket_failures(measured_start, measured_end,
                                predicted_start, predicted_end,
                                len(schedule))
    return CrosscheckResult(
        spec=spec, outcome=outcome, schedule=schedule, windows=windows,
        measured_start_hours=measured_start,
        measured_end_hours=measured_end,
        predicted_start_hours=predicted_start,
        predicted_end_hours=predicted_end,
        failures=failures)


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store.crosscheck",
        description="Replay the store's crash schedule through the "
                    "discrete-event engine and assert the engine's "
                    "predicted degraded window brackets the window the "
                    "live store measured.",
        epilog="Spec format: docs/store.md (cross-check section).",
    )
    parser.add_argument("--spec", required=True,
                        help="scenario spec with [store] hours_per_op > 0 "
                             "and a crash schedule")
    parser.add_argument("--seed", type=int, default=None,
                        help="override [estimator] seed")
    parser.add_argument("--backend", choices=("inprocess", "process"),
                        default=None,
                        help="override [store] backend for the live run")
    parser.add_argument("--engine-seeds", type=int, default=4,
                        help="engine replays enveloped (min start, max "
                             "end) into the prediction (default 4)")
    parser.add_argument("--json", action="store_true",
                        help="print the full comparison as JSON")
    return parser


def _render(result: CrosscheckResult) -> str:
    def _hours(value: float | None) -> str:
        return "-" if value is None else f"{value:.4g} h"

    lines = [
        "Store / event-engine cross-check",
        f"  backend              {result.outcome.report.backend}",
        f"  crash schedule       {len(result.schedule)} event(s): "
        + ", ".join(f"op {e.at_op} node {e.node} ({e.cause})"
                    for e in result.schedule),
        f"  measured window      {_hours(result.measured_start_hours)} .. "
        f"{_hours(result.measured_end_hours)}",
        f"  predicted window     {_hours(result.predicted_start_hours)} .. "
        f"{_hours(result.predicted_end_hours)} "
        f"(envelope of {len(result.windows)} engine seed(s))",
        f"  bracket              {'holds' if result.ok else 'VIOLATED'}",
    ]
    lines += [f"    {failure}" for failure in result.failures]
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        spec = ScenarioSpec.load(args.spec)
        if args.seed is not None:
            spec = spec.replace(estimator={"seed": args.seed})
        if args.backend is not None:
            spec = spec.replace(store={"backend": args.backend})
        result = crosscheck(spec,
                            engine_seeds=range(max(1, args.engine_seeds)))
    except (ScenarioSpecError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(result.summary(), indent=2, sort_keys=True))
    else:
        print(_render(result))
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
