"""What one store run measured: latency tails, amplification, repair.

A :class:`StoreReport` accumulates two kinds of telemetry:

* **deterministic counters** -- operation/byte/repair/degraded-read
  counts that are a pure function of the spec and its seed.  Two runs
  of the same spec produce identical
  :meth:`~StoreReport.deterministic_summary` dicts, the same guarantee
  sweep cells give (and the replay test asserts);
* **wall-clock latencies** -- per-operation ``perf_counter`` deltas,
  summarised as p50/p99.  Real time is inherently noisy, so latencies
  live outside the deterministic digest; they answer the ROADMAP's
  tail-latency question, not the reproducibility one.

``degraded_read_amplification`` is bytes fetched from nodes per user
byte returned on degraded reads (a degraded read must pull surviving
parity columns too, so it is strictly worse than the healthy ratio);
``interfered_ops`` counts client operations that ran while at least one
stripe repair was in flight (the repair-interference signal).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any


def percentile(samples: list[float], q: float) -> float:
    """The q-th percentile (0..100) by linear interpolation; NaN when
    no samples were recorded."""
    if not samples:
        return math.nan
    data = sorted(samples)
    if len(data) == 1:
        return data[0]
    rank = (q / 100.0) * (len(data) - 1)
    low = int(math.floor(rank))
    high = min(low + 1, len(data) - 1)
    frac = rank - low
    return data[low] * (1.0 - frac) + data[high] * frac


@dataclass
class StoreReport:
    """Aggregated outcome of one object-store workload."""

    # -- workload shape (echoed from the spec) ------------------------- #
    objects: int = 0
    operations: int = 0

    # -- deterministic counters ---------------------------------------- #
    puts: int = 0
    gets: int = 0
    degraded_reads: int = 0
    failed_reads: int = 0
    verify_failures: int = 0
    bytes_put: int = 0
    bytes_read_user: int = 0
    #: Node bytes fetched by healthy reads (data columns only).
    bytes_read_nodes_healthy: int = 0
    #: Node bytes fetched by degraded reads (every surviving column).
    bytes_read_nodes_degraded: int = 0
    #: User bytes returned by degraded reads.
    bytes_read_user_degraded: int = 0
    partial_put_stripes: int = 0
    repaired_stripes: int = 0
    repaired_chunks: int = 0
    repair_bytes: int = 0
    repair_rounds: int = 0
    unrecoverable_stripes: int = 0
    interfered_ops: int = 0
    node_crashes: int = 0
    #: ``(op_index, node, cause)`` for every injected failure that fired.
    failures: list[tuple[int, int, str]] = field(default_factory=list)
    #: Measured degraded window, in op indices: first/last operation
    #: issued while the cluster suspected a degraded stripe (see
    #: ``StoreCluster.damage_suspected``).  ``None`` when the whole run
    #: stayed healthy.  Mirror-driven, hence part of the digest -- and
    #: the store-side half of the store-vs-simulator cross-check.
    first_damaged_op: int | None = None
    last_damaged_op: int | None = None

    # -- data-plane health (excluded from the deterministic digest, so
    # -- a physically broken backend differs in *health*, not digest) -- #
    backend: str = "inprocess"
    chunk_integrity_failures: int = 0

    # -- wall-clock telemetry (excluded from the deterministic digest) - #
    put_latencies: list[float] = field(default_factory=list)
    get_latencies: list[float] = field(default_factory=list)
    degraded_get_latencies: list[float] = field(default_factory=list)

    def note_damage(self, op_index: int, suspected: bool) -> None:
        """Record one per-op damage sample into the measured window."""
        if not suspected:
            return
        if self.first_damaged_op is None:
            self.first_damaged_op = op_index
        self.last_damaged_op = op_index

    # ------------------------------------------------------------------ #
    @property
    def degraded_read_amplification(self) -> float:
        """Node bytes fetched per user byte served, degraded reads only
        (NaN when no degraded read happened)."""
        if self.bytes_read_user_degraded == 0:
            return math.nan
        return self.bytes_read_nodes_degraded / self.bytes_read_user_degraded

    @property
    def healthy_read_amplification(self) -> float:
        """Node bytes fetched per user byte served on healthy reads."""
        healthy_user = self.bytes_read_user - self.bytes_read_user_degraded
        if healthy_user == 0:
            return math.nan
        return self.bytes_read_nodes_healthy / healthy_user

    def latency_percentiles(self) -> dict[str, float]:
        """p50/p99 (seconds) of puts, gets and degraded gets."""
        return {
            "put_p50_s": percentile(self.put_latencies, 50),
            "put_p99_s": percentile(self.put_latencies, 99),
            "get_p50_s": percentile(self.get_latencies, 50),
            "get_p99_s": percentile(self.get_latencies, 99),
            "degraded_get_p50_s": percentile(self.degraded_get_latencies, 50),
            "degraded_get_p99_s": percentile(self.degraded_get_latencies, 99),
        }

    def deterministic_summary(self) -> dict[str, Any]:
        """The seed-reproducible digest: counters only, no wall clock.

        Equal specs (same seed) produce equal dicts -- the store-level
        analogue of the sweep cache's bitwise-equal summaries.
        """
        return {
            "objects": self.objects,
            "operations": self.operations,
            "puts": self.puts,
            "gets": self.gets,
            "degraded_reads": self.degraded_reads,
            "failed_reads": self.failed_reads,
            "verify_failures": self.verify_failures,
            "bytes_put": self.bytes_put,
            "bytes_read_user": self.bytes_read_user,
            "bytes_read_nodes_healthy": self.bytes_read_nodes_healthy,
            "bytes_read_nodes_degraded": self.bytes_read_nodes_degraded,
            "bytes_read_user_degraded": self.bytes_read_user_degraded,
            "partial_put_stripes": self.partial_put_stripes,
            "repaired_stripes": self.repaired_stripes,
            "repaired_chunks": self.repaired_chunks,
            "repair_bytes": self.repair_bytes,
            "unrecoverable_stripes": self.unrecoverable_stripes,
            "node_crashes": self.node_crashes,
            "failures": list(self.failures),
            "first_damaged_op": self.first_damaged_op,
            "last_damaged_op": self.last_damaged_op,
        }

    def summary(self) -> dict[str, Any]:
        """Everything: the deterministic digest plus backend health,
        latency tails and amplification ratios (JSON-safe)."""
        out = self.deterministic_summary()
        out["backend"] = self.backend
        out["chunk_integrity_failures"] = self.chunk_integrity_failures
        out["repair_rounds"] = self.repair_rounds
        out["interfered_ops"] = self.interfered_ops
        out["degraded_read_amplification"] = _json_float(
            self.degraded_read_amplification)
        out["healthy_read_amplification"] = _json_float(
            self.healthy_read_amplification)
        out.update({key: _json_float(value)
                    for key, value in self.latency_percentiles().items()})
        return out


def _json_float(value: float) -> float | None:
    """NaN -> None so summaries stay strict-JSON safe."""
    return None if isinstance(value, float) and math.isnan(value) else value
