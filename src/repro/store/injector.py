"""Declarative failure injection for store workloads.

The injector turns the *same* scenario sections the simulator replays
into a deterministic crash schedule over the workload's operation
index:

* ``[store] kill_nodes / kill_at_fraction`` -- the explicit injection:
  exactly ``kill_nodes`` distinct victims (chosen by the seeded RNG)
  crash at operation ``floor(kill_at_fraction * operations)``;
* ``[lifetime]`` / ``[trace]`` -- when ``hours_per_op > 0``, each node
  draws a lifetime from the spec's model
  (:func:`repro.scenario.runner.lifetime_from_spec`) and crashes at the
  operation its failure time maps to, if that falls inside the
  workload's simulated span;
* ``[domains]`` -- rack/enclosure shock processes
  (:meth:`~repro.sim.domains.FailureDomains.array_shock_groups`) are
  sampled as Poisson arrivals over the same span; each shock kills
  every member independently with the level's kill probability.

Everything is derived from one ``numpy.random.SeedSequence``, so a
spec plus its seed fully determines which nodes die and when --
store runs replay exactly like sweep cells.

Usage::

    schedule = FailureInjector.from_spec(spec, np.random.SeedSequence(7))
    for op_index in range(spec.store.operations):
        schedule.tick(op_index, cluster)   # fires due crashes
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.scenario.spec import ScenarioSpec, ScenarioSpecError


@dataclass(frozen=True)
class FailureEvent:
    """One scheduled node crash."""

    at_op: int
    node: int
    cause: str  # "kill" | "lifetime" | "shock:<level>:<index>"


class FailureInjector:
    """A precomputed, seed-deterministic crash schedule."""

    def __init__(self, events: list[FailureEvent]) -> None:
        #: Sorted by firing op; ties fire in schedule order.
        self.events = sorted(events, key=lambda e: (e.at_op, e.node))
        self._cursor = 0
        self.fired: list[FailureEvent] = []

    @classmethod
    def from_spec(cls, spec: ScenarioSpec,
                  seed_seq: np.random.SeedSequence) -> "FailureInjector":
        """Build the schedule a spec describes (requires ``[store]``)."""
        if spec.store is None:
            raise ScenarioSpecError(
                "failure injection needs a [store] section")
        # Late imports: scenario.runner pulls the whole simulator in;
        # keep the store importable without paying that at module load.
        from repro.codes.registry import parse_code_spec
        from repro.scenario.runner import (
            domains_from_spec,
            lifetime_from_spec,
        )

        store = spec.store
        n = parse_code_spec(spec.code.spec).n
        rng = np.random.default_rng(seed_seq)
        events: list[FailureEvent] = []

        if store.kill_nodes > 0:
            if store.kill_nodes > n:
                raise ScenarioSpecError(
                    f"[store] kill_nodes = {store.kill_nodes} exceeds "
                    f"the cluster's {n} nodes")
            at = int(store.kill_at_fraction * store.operations)
            victims = rng.choice(n, size=store.kill_nodes, replace=False)
            events += [FailureEvent(at_op=at, node=int(v), cause="kill")
                       for v in sorted(victims)]

        if store.hours_per_op > 0.0:
            horizon = store.hours_per_op * store.operations
            lifetime = lifetime_from_spec(spec)
            domains = domains_from_spec(spec)
            draws = np.asarray(lifetime.sample(rng, n), dtype=float)
            if domains is not None and domains.has_batch_wear:
                # Bad-batch devices (0..b-1, the simulator's
                # deterministic membership) age batch_accel times
                # faster: the same AFT scaling the engines apply.
                batch = round(domains.batch_fraction * n)
                draws[:batch] = draws[:batch] / domains.batch_accel
            for node, hours in enumerate(draws):
                if np.isfinite(hours) and hours < horizon:
                    events.append(FailureEvent(
                        at_op=int(hours / store.hours_per_op),
                        node=node, cause="lifetime"))
            if domains is not None:
                for group in domains.array_shock_groups(n):
                    if group.rate_per_hour <= 0.0:
                        continue
                    t = rng.exponential(1.0 / group.rate_per_hour)
                    while t < horizon:
                        at = int(t / store.hours_per_op)
                        for member in group.devices:
                            if rng.random() < group.kill_probability:
                                events.append(FailureEvent(
                                    at_op=at, node=int(member),
                                    cause=(f"shock:{group.level}:"
                                           f"{group.index}")))
                        t += rng.exponential(1.0 / group.rate_per_hour)
        return cls(events)

    # ------------------------------------------------------------------ #
    def tick(self, op_index: int, cluster) -> list[FailureEvent]:
        """Fire every event due at or before ``op_index``.

        A crash against an already-down node still counts as fired (the
        slot just stays down); duplicate shocks are harmless.
        """
        fired = []
        while (self._cursor < len(self.events)
               and self.events[self._cursor].at_op <= op_index):
            event = self.events[self._cursor]
            self._cursor += 1
            if cluster.nodes[event.node].up:
                cluster.crash_node(event.node)
            fired.append(event)
            self.fired.append(event)
        return fired

    @property
    def pending(self) -> int:
        """Events not yet fired."""
        return len(self.events) - self._cursor
