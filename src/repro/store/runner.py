"""``run_store(spec)``: one spec-driven store workload, end to end.

The store-side sibling of :func:`repro.scenario.runner.run_scenario`:
it takes a :class:`~repro.scenario.spec.ScenarioSpec` carrying a
``[store]`` section, builds the cluster (code via the registry, one
node per column, repair budget from ``[repair].rebuild_streams``), the
failure injector and the traffic generator -- all seeded from
``[estimator].seed`` through one ``SeedSequence`` -- and drives:

1. preload ``objects`` objects,
2. the closed-loop workload (injector crashes land mid-flight; the
   background repair loop races the traffic when ``repair = true``),
3. a final drain: repair runs to quiescence so the report can state
   whether full redundancy was restored.

Usage::

    from repro.scenario import ScenarioSpec
    from repro.store import run_store

    spec = ScenarioSpec.from_dict({
        "version": 1,
        "code": {"spec": "rs(n=6,r=4,m=2)"},
        "store": {"objects": 8, "object_bytes": 1024,
                  "operations": 32, "kill_nodes": 1},
    })
    outcome = run_store(spec)
    outcome.report.deterministic_summary()
    outcome.fully_redundant
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

import numpy as np

from repro.codes.registry import parse_code_spec
from repro.scenario.spec import ScenarioSpec, ScenarioSpecError
from repro.store.cluster import StoreCluster
from repro.store.injector import FailureInjector
from repro.store.report import StoreReport
from repro.store.traffic import TrafficGenerator


@dataclass
class StoreOutcome:
    """Everything one store run produced."""

    spec: ScenarioSpec
    report: StoreReport
    cluster: StoreCluster
    injector: FailureInjector

    @property
    def fully_redundant(self) -> bool:
        """Did the drain leave every stripe at full redundancy?"""
        return self.cluster.fully_redundant()

    @property
    def zero_data_loss(self) -> bool:
        """No read failed, no payload mis-verified, no stripe was
        beyond coverage."""
        report = self.report
        return (report.failed_reads == 0 and report.verify_failures == 0
                and report.unrecoverable_stripes == 0)

    def summary(self) -> dict:
        out = self.report.summary()
        out["fully_redundant"] = self.fully_redundant
        out["zero_data_loss"] = self.zero_data_loss
        return out


async def run_store_async(spec: ScenarioSpec, *, check: bool = True
                          ) -> StoreOutcome:
    """The async entry point (compose it into a larger loop)."""
    if check:
        spec.validate()
    if spec.store is None:
        raise ScenarioSpecError(
            "run_store needs a [store] section describing the workload")
    store = spec.store
    code = parse_code_spec(spec.code.spec)
    cluster = StoreCluster(
        code,
        symbol_bytes=store.symbol_bytes,
        repair_streams=spec.repair.rebuild_streams,
    )
    root = np.random.SeedSequence(spec.estimator.seed)
    traffic_seed, injector_seed = root.spawn(2)
    injector = FailureInjector.from_spec(spec, injector_seed)
    traffic = TrafficGenerator(cluster, store, traffic_seed,
                               injector=injector)

    await traffic.load()
    repair_task = (asyncio.create_task(cluster.repair_forever())
                   if store.repair else None)
    try:
        await traffic.run()
    finally:
        if repair_task is not None:
            cluster.stop_repair()
            await repair_task
    # Drain: fire any stragglers scheduled at the final op boundary,
    # then repair to quiescence so the redundancy verdict is final.
    injector.tick(store.operations, cluster)
    if store.repair:
        while await cluster.repair_once():
            pass
    return StoreOutcome(spec=spec, report=cluster.report,
                        cluster=cluster, injector=injector)


def run_store(spec: ScenarioSpec, *, check: bool = True) -> StoreOutcome:
    """Synchronous wrapper: run the whole workload on a fresh loop."""
    return asyncio.run(run_store_async(spec, check=check))
