"""``run_store(spec)``: one spec-driven store workload, end to end.

The store-side sibling of :func:`repro.scenario.runner.run_scenario`:
it takes a :class:`~repro.scenario.spec.ScenarioSpec` carrying a
``[store]`` section, builds the cluster -- code via the registry, one
node per column on the backend the spec selects (``backend =
"inprocess"`` keeps chunk bytes in this event loop; ``"process"``
spawns one ``python -m repro.store.rpc`` subprocess per node), repair
budget from ``[repair].rebuild_streams``, metadata sharded
``meta_shards`` ways, optional physical latency from the
``latency_*`` knobs -- plus the failure injector and the traffic
generator, all seeded from ``[estimator].seed`` through one
``SeedSequence``, and drives:

1. preload ``objects`` objects,
2. the closed-loop workload (injector crashes land mid-flight; the
   background repair loop races the traffic when ``repair = true``),
3. a final drain: repair runs to quiescence, the data plane is flushed
   (every decided chunk physically delivered, verified and timed), and
   each node's physical byte inventory is audited against its mirror,
4. teardown: every task, timer and node subprocess is stopped before
   the loop closes -- nothing pending survives the run.

Because every deterministic counter is decided in the control plane,
the outcome's ``report.deterministic_summary()`` is bit-identical
across backends for equal specs and seeds; backend health
(``chunk_integrity_failures``, the mirror audit) and latencies are
reported separately.

Usage::

    from repro.scenario import ScenarioSpec
    from repro.store import run_store

    spec = ScenarioSpec.from_dict({
        "version": 1,
        "code": {"spec": "rs(n=6,r=4,m=2)"},
        "store": {"objects": 8, "object_bytes": 1024,
                  "operations": 32, "kill_nodes": 1,
                  "backend": "process"},
    })
    outcome = run_store(spec)
    outcome.report.deterministic_summary()
    outcome.fully_redundant
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

import numpy as np

from repro.codes.registry import parse_code_spec
from repro.scenario.spec import ScenarioSpec, ScenarioSpecError
from repro.store.cluster import StoreCluster
from repro.store.injector import FailureInjector
from repro.store.latency import LatencyModel, node_latencies
from repro.store.node import LocalTransport, ProcessTransport, StoreNode
from repro.store.report import StoreReport
from repro.store.traffic import TrafficGenerator


@dataclass
class StoreOutcome:
    """Everything one store run produced."""

    spec: ScenarioSpec
    report: StoreReport
    cluster: StoreCluster
    injector: FailureInjector
    #: Mirror-vs-physical mismatches found by the closing audit
    #: (empty = the data plane held exactly what the mirror decided).
    audit_mismatches: list[str] = field(default_factory=list)

    @property
    def fully_redundant(self) -> bool:
        """Did the drain leave every stripe at full redundancy?"""
        return self.cluster.fully_redundant()

    @property
    def zero_data_loss(self) -> bool:
        """No read failed, no payload mis-verified, no stripe was
        beyond coverage, and the data plane delivered every byte the
        control plane promised."""
        report = self.report
        return (report.failed_reads == 0 and report.verify_failures == 0
                and report.unrecoverable_stripes == 0
                and report.chunk_integrity_failures == 0
                and not self.audit_mismatches)

    def summary(self) -> dict:
        out = self.report.summary()
        out["fully_redundant"] = self.fully_redundant
        out["zero_data_loss"] = self.zero_data_loss
        out["audit_mismatches"] = list(self.audit_mismatches)
        return out


async def build_cluster(spec: ScenarioSpec) -> StoreCluster:
    """The spec's cluster: backend, shards, latency, repair budget."""
    store = spec.store
    code = parse_code_spec(spec.code.spec)
    root = np.random.SeedSequence(spec.estimator.seed)
    # Children 0 and 1 feed traffic and the injector (see
    # run_store_async); child 2 seeds the latency samplers.  Spawning
    # is index-keyed, so adding child 2 left 0 and 1 unchanged.
    latency_seed = root.spawn(3)[2]
    model = LatencyModel.from_store_section(store)
    latencies = node_latencies(model, code.n, latency_seed)
    if store.backend == "process":
        transports = await asyncio.gather(*[
            ProcessTransport.spawn() for _ in range(code.n)])
    else:
        transports = [LocalTransport() for _ in range(code.n)]
    nodes = [StoreNode(j, transport=transports[j], latency=latencies[j])
             for j in range(code.n)]
    cluster = StoreCluster(
        code,
        symbol_bytes=store.symbol_bytes,
        nodes=nodes,
        repair_streams=spec.repair.rebuild_streams,
        meta_shards=store.meta_shards,
    )
    cluster.report.backend = store.backend
    return cluster


async def run_store_async(spec: ScenarioSpec, *, check: bool = True
                          ) -> StoreOutcome:
    """The async entry point (compose it into a larger loop)."""
    if check:
        spec.validate()
    if spec.store is None:
        raise ScenarioSpecError(
            "run_store needs a [store] section describing the workload")
    store = spec.store
    cluster = await build_cluster(spec)
    try:
        root = np.random.SeedSequence(spec.estimator.seed)
        traffic_seed, injector_seed = root.spawn(2)
        injector = FailureInjector.from_spec(spec, injector_seed)
        traffic = TrafficGenerator(cluster, store, traffic_seed,
                                   injector=injector)

        await traffic.load()
        repair_task = (asyncio.create_task(cluster.repair_forever())
                       if store.repair else None)
        try:
            await traffic.run()
        finally:
            if repair_task is not None:
                cluster.stop_repair()
                await repair_task
        # Drain: fire any stragglers scheduled at the final op
        # boundary, then repair to quiescence so the redundancy verdict
        # is final; the closing damage sample extends the measured
        # degraded window if the run ended damaged.
        injector.tick(store.operations, cluster)
        if store.repair:
            while await cluster.repair_once():
                pass
        cluster.report.note_damage(store.operations,
                                   cluster.damage_suspected())
        # Flush the data plane (deliveries, verifies, latency samples)
        # and audit physical bytes against the mirror.
        await cluster.flush()
        cluster.report.chunk_integrity_failures += \
            len(cluster.dataplane_errors())
        mismatches = await cluster.audit_data_plane()
        return StoreOutcome(spec=spec, report=cluster.report,
                            cluster=cluster, injector=injector,
                            audit_mismatches=mismatches)
    finally:
        await cluster.aclose()


def run_store(spec: ScenarioSpec, *, check: bool = True) -> StoreOutcome:
    """Synchronous wrapper: run the whole workload on a fresh loop."""
    return asyncio.run(run_store_async(spec, check=check))
