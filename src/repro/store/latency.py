"""Composable, seeded physical-latency models for store nodes.

PR 9's latencies were pure software artifacts -- whatever the event
loop happened to cost.  This module injects *physical* time at the
node boundary so the report's p50/p99s track parameters you can reason
about: a chunk operation pays one network round trip plus one disk
service time, each an independently seeded base + exponential-jitter
draw.  The model composes from :class:`LatencyComponent` terms, so
adding (say) a per-MiB transfer term or a queueing term later is a new
component, not a rewrite.

Determinism contract: the *sample values* are drawn synchronously at
operation-decision time from a per-node ``SeedSequence``-derived
generator, so the draw sequence is a pure function of the spec + seed
and identical across the in-process and subprocess backends.  Only the
wall-clock *delivery* of chunk bytes is delayed (the transport holds
the data future until the sampled deadline); the deterministic mirror
never waits on a sample, so digests are latency-independent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LatencyComponent:
    """One additive service-time term: ``base + Exp(jitter)``, in ms."""

    base_ms: float = 0.0
    jitter_ms: float = 0.0

    def sample_ms(self, rng: np.random.Generator) -> float:
        delay = self.base_ms
        if self.jitter_ms > 0.0:
            delay += float(rng.exponential(self.jitter_ms))
        return delay

    @property
    def is_zero(self) -> bool:
        return self.base_ms <= 0.0 and self.jitter_ms <= 0.0


@dataclass(frozen=True)
class LatencyModel:
    """Network RTT + disk service time for one chunk operation."""

    network: LatencyComponent = LatencyComponent()
    disk: LatencyComponent = LatencyComponent()

    @property
    def is_zero(self) -> bool:
        return self.network.is_zero and self.disk.is_zero

    def sample_ms(self, rng: np.random.Generator) -> float:
        return self.network.sample_ms(rng) + self.disk.sample_ms(rng)

    @classmethod
    def from_store_section(cls, store) -> "LatencyModel | None":
        """Build from a ``[store]`` spec section; ``None`` when all
        latency knobs are zero (the transport then skips sampling
        entirely, keeping the zero-latency fast path allocation-free).
        """
        model = cls(
            network=LatencyComponent(base_ms=store.latency_net_rtt_ms,
                                     jitter_ms=store.latency_net_jitter_ms),
            disk=LatencyComponent(base_ms=store.latency_disk_ms,
                                  jitter_ms=store.latency_disk_jitter_ms),
        )
        return None if model.is_zero else model


class NodeLatency:
    """Per-node sampler: one seeded generator + the shared model.

    ``sample_s`` is called synchronously at decision time (determinism
    contract above); the caller turns the returned seconds into a
    delivery deadline for the chunk's data future.
    """

    def __init__(self, model: LatencyModel,
                 seed: np.random.SeedSequence) -> None:
        self.model = model
        self._rng = np.random.default_rng(seed)

    def sample_s(self) -> float:
        return self.model.sample_ms(self._rng) / 1000.0


def node_latencies(model: "LatencyModel | None", num_nodes: int,
                   seed: "np.random.SeedSequence | None",
                   ) -> "list[NodeLatency | None]":
    """One independently seeded sampler per node (``None`` sans model)."""
    if model is None:
        return [None] * num_nodes
    if seed is None:
        seed = np.random.SeedSequence(0)
    return [NodeLatency(model, child) for child in seed.spawn(num_nodes)]
