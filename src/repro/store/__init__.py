"""An asyncio object store serving STAIR/RS/SD-encoded objects.

The serving layer the ROADMAP's flagship item asks for: the same codes
the paper analyses, behind a put/get interface with transparent
degraded reads and a budgeted background repair loop, driven by the
same declarative :class:`~repro.scenario.spec.ScenarioSpec` machinery
as the simulator (a ``[store]`` section describes the workload; the
``[lifetime]``/``[trace]``/``[domains]`` sections it already carries
become the failure injection).

* :mod:`repro.store.node` -- one simulated device: async chunk
  storage, crash (data loss) / restore (empty replacement), with chunk
  bytes either in-process or in one subprocess per node;
* :mod:`repro.store.rpc` -- the length-prefixed chunk RPC protocol and
  the stdlib-only chunk-server subprocess entry point;
* :mod:`repro.store.latency` -- composable, seeded physical-latency
  models injected at the node boundary (digest-neutral);
* :mod:`repro.store.codec` -- object bytes <-> per-node chunks through
  any registry stripe code, healthy reads without decoding;
* :mod:`repro.store.cluster` -- put / get (degraded reads through
  ``code.decode``) / budgeted repair, per-key ordering locks;
* :mod:`repro.store.injector` -- seed-deterministic crash schedules
  from the spec's lifetime model, domain shocks and explicit kills;
* :mod:`repro.store.traffic` -- closed-loop Zipf workload with
  self-verifying payloads, precomputed from one ``SeedSequence``;
* :mod:`repro.store.report` -- p50/p99 latency, degraded-read
  amplification, repair-interference counters, and the deterministic
  digest two equal-seed runs reproduce exactly;
* :mod:`repro.store.runner` / :mod:`repro.store.cli` -- spec-driven
  end-to-end runs (``python -m repro.store.cli --spec ...``);
* :mod:`repro.store.crosscheck` -- replay the injector's crash
  schedule through :mod:`repro.sim.events` and assert the engine's
  predicted degraded window brackets the live store's measured one.

Tutorial: ``docs/store.md``.
"""

from repro.store.cluster import (GetTicket, KeyShards, ObjectLostError,
                                 ObjectMeta, PutTicket, StoreCluster)
from repro.store.codec import ObjectCodec, StoreError
from repro.store.injector import FailureEvent, FailureInjector
from repro.store.latency import LatencyComponent, LatencyModel, NodeLatency
from repro.store.node import (ChunkIntegrityError, ChunkMissingError,
                              LocalTransport, NodeDownError,
                              ProcessTransport, StoreNode)
from repro.store.report import StoreReport
from repro.store.runner import (StoreOutcome, build_cluster, run_store,
                                run_store_async)
from repro.store.traffic import TrafficGenerator, make_payload, verify_payload

__all__ = [
    "ChunkIntegrityError",
    "ChunkMissingError",
    "FailureEvent",
    "FailureInjector",
    "GetTicket",
    "KeyShards",
    "LatencyComponent",
    "LatencyModel",
    "LocalTransport",
    "NodeDownError",
    "NodeLatency",
    "ObjectCodec",
    "ObjectLostError",
    "ObjectMeta",
    "ProcessTransport",
    "PutTicket",
    "StoreCluster",
    "StoreError",
    "StoreNode",
    "StoreOutcome",
    "StoreReport",
    "TrafficGenerator",
    "build_cluster",
    "make_payload",
    "run_store",
    "run_store_async",
    "verify_payload",
]
