"""Command-line front end of the object store.

Runs one spec-driven workload and prints the report::

    python -m repro.store.cli --spec examples/store_smoke.toml
    python -m repro.store.cli --spec ... --json
    python -m repro.store.cli --spec ... --check-integrity   # CI gate

``--check-integrity`` exits non-zero unless the run had zero data loss
(no failed reads, no verification failures, no unrecoverable stripes)
and -- when the repair loop was enabled -- full redundancy restored; it
is the assertion behind the CI store smoke step.  ``--seed`` and
``--operations`` override the spec without editing the file (sweep-style
what-ifs).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.scenario.spec import ScenarioSpec, ScenarioSpecError
from repro.store.runner import StoreOutcome, run_store


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store.cli",
        description="Serve a spec-driven object-store workload "
                    "(put/get/degraded-read/repair) and report latency, "
                    "amplification and repair counters.",
        epilog="Spec format: docs/scenarios.md ([store] section: "
               "docs/store.md).",
    )
    parser.add_argument("--spec", required=True,
                        help="scenario spec file with a [store] section")
    parser.add_argument("--seed", type=int, default=None,
                        help="override [estimator] seed")
    parser.add_argument("--operations", type=int, default=None,
                        help="override [store] operations")
    parser.add_argument("--backend", choices=("inprocess", "process"),
                        default=None,
                        help="override [store] backend (chunk bytes "
                             "in-process vs one subprocess per node)")
    parser.add_argument("--json", action="store_true",
                        help="print the full summary as JSON")
    parser.add_argument("--check-integrity", action="store_true",
                        help="exit 1 unless the run had zero data loss "
                             "(and full redundancy, if repair ran)")
    return parser


def _render(outcome: StoreOutcome) -> str:
    report = outcome.report
    pct = report.latency_percentiles()

    def _ms(value: float) -> str:
        return "-" if value != value else f"{value * 1e3:8.3f} ms"

    lines = [
        "Object-store workload report",
        f"  code                 {outcome.cluster.code.describe()}",
        f"  backend              {report.backend}",
        f"  objects / operations {report.objects} / {report.operations}",
        f"  puts / gets          {report.puts} / {report.gets}",
        f"  degraded reads       {report.degraded_reads}",
        f"  failed reads         {report.failed_reads}",
        f"  verify failures      {report.verify_failures}",
        f"  node crashes         {report.node_crashes}",
        f"  repaired stripes     {report.repaired_stripes} "
        f"({report.repaired_chunks} chunks, {report.repair_bytes} bytes)",
        f"  interfered ops       {report.interfered_ops}",
        f"  degraded amplification "
        f"{_fmt_ratio(report.degraded_read_amplification)}",
        f"  healthy amplification  "
        f"{_fmt_ratio(report.healthy_read_amplification)}",
        f"  put latency p50/p99  {_ms(pct['put_p50_s'])} / "
        f"{_ms(pct['put_p99_s'])}",
        f"  get latency p50/p99  {_ms(pct['get_p50_s'])} / "
        f"{_ms(pct['get_p99_s'])}",
        f"  degraded get p50/p99 {_ms(pct['degraded_get_p50_s'])} / "
        f"{_ms(pct['degraded_get_p99_s'])}",
        f"  fully redundant      {'yes' if outcome.fully_redundant else 'NO'}",
        f"  zero data loss       {'yes' if outcome.zero_data_loss else 'NO'}",
    ]
    return "\n".join(lines)


def _fmt_ratio(value: float) -> str:
    return "-" if value != value else f"{value:.2f}x"


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        spec = ScenarioSpec.load(args.spec)
        if spec.store is None:
            raise ScenarioSpecError(
                f"{args.spec}: no [store] section -- this spec is a "
                "reliability scenario; run it with repro.sim.cli")
        if args.seed is not None:
            spec = spec.replace(estimator={"seed": args.seed})
        if args.operations is not None:
            spec = spec.replace(store={"operations": args.operations})
        if args.backend is not None:
            spec = spec.replace(store={"backend": args.backend})
        outcome = run_store(spec)
    except (ScenarioSpecError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(outcome.summary(), indent=2, sort_keys=True))
    else:
        print(_render(outcome))
    if args.check_integrity:
        problems = []
        if not outcome.zero_data_loss:
            problems.append("data loss detected")
        if outcome.report.chunk_integrity_failures:
            problems.append(
                f"{outcome.report.chunk_integrity_failures} chunk "
                "integrity failures")
        if outcome.audit_mismatches:
            problems.append("mirror/data-plane audit mismatch: "
                            + "; ".join(outcome.audit_mismatches))
        if spec.store.repair and not outcome.fully_redundant:
            problems.append("full redundancy not restored")
        if problems:
            print("integrity check FAILED: " + "; ".join(problems),
                  file=sys.stderr)
            return 1
        print("integrity check passed: zero data loss"
              + (", full redundancy restored" if spec.store.repair else ""))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
