"""One storage device slot: a deterministic mirror over a transport.

PR 9's :class:`StoreNode` was a dict of chunk bytes inside the
cluster's own event loop.  This PR splits it in two:

* the **mirror** (this class) is the control plane: which chunks the
  device holds (key, stripe -> size), whether it is up, and every
  counter.  All of it updates synchronously at decision time, the only
  awaits are bare ``asyncio.sleep(0)`` yields, and the code is
  *byte-identical across backends* -- which is why the in-process and
  subprocess backends produce bit-identical deterministic digests: the
  digest is a pure function of the mirror, and the mirror never waits
  on data;
* the **transport** is the data plane: where chunk bytes physically
  live.  :class:`LocalTransport` keeps them in a dict (PR 9 semantics);
  :class:`ProcessTransport` ships them to a ``python -m
  repro.store.rpc`` subprocess over length-prefixed asyncio-stream
  frames.  Operations are enqueued synchronously at mirror-decision
  time, so the per-node order the warehouse applies is exactly the
  order the mirror decided -- the two can never disagree about which
  write a read observes.

Reads are *snapshot* reads: ``fetch_chunk`` captures a promise for the
bytes as of the decision instant; a later crash or overwrite does not
retroactively change what an already-decided read returns (locally the
captured entry keeps its bytes; remotely the GET frame is ordered
before the CRASH/PUT frame).  A repair may mark a rebuilt chunk
present before its bytes exist -- ``put_chunk_deferred`` enqueues the
write with a payload future the decode task resolves later, and the
transport holds subsequent frames behind it so ordering is preserved.

A :class:`~repro.store.latency.NodeLatency` sampler, when attached,
delays only the *delivery* of data futures (never a mirror decision),
so p50/p99s track physical parameters while digests stay
latency-independent.

Usage::

    node = StoreNode(3)                       # in-process backend
    node = StoreNode(3, transport=await ProcessTransport.spawn())
    await node.put_chunk("key", 0, b"...")
    await node.get_chunk("key", 0)
    node.crash()          # chunks gone, node down
    node.restore()        # back up, empty (a replacement device)
"""

from __future__ import annotations

import asyncio
import sys
from pathlib import Path
from typing import Union

from repro.store.latency import NodeLatency
from repro.store import rpc
from repro.store.rpc import (MAX_FRAME_BYTES, NodeProcessError, Request,
                             RpcClient)


class NodeDownError(RuntimeError):
    """An operation reached a node that is down."""


class ChunkMissingError(KeyError):
    """The node is up but does not hold the requested chunk."""


class ChunkIntegrityError(RuntimeError):
    """The data plane disagreed with the mirror (missing/corrupt bytes,
    dead subprocess): never silent, surfaced through ``drain()``."""


Payload = Union[bytes, "asyncio.Future[bytes]"]


def _deliver(source: "asyncio.Future", target: "asyncio.Future",
             deadline: float | None,
             transform=None) -> None:
    """Chain ``source`` into ``target``, releasing no earlier than
    ``deadline`` (an ``loop.time()`` instant; ``None`` = immediately).

    The sampled delay was drawn at decision time in the deterministic
    plane; only the wall-clock release happens here, so latency can
    never reorder control-plane decisions.
    """

    def ready(fut: "asyncio.Future") -> None:
        if target.done():
            return
        if fut.cancelled():
            target.cancel()
            return
        exc = fut.exception()
        if exc is not None:
            target.set_exception(exc)
            return
        try:
            value = fut.result() if transform is None \
                else transform(fut.result())
        except BaseException as exc:  # noqa: BLE001 - forwarded, not lost
            target.set_exception(exc)
            return
        target.set_result(value)

    def chain(fut: "asyncio.Future") -> None:
        if deadline is None:
            ready(fut)
            return
        loop = asyncio.get_running_loop()
        remaining = deadline - loop.time()
        if remaining <= 0:
            ready(fut)
        else:
            loop.call_later(remaining, ready, fut)

    if source.done():
        chain(source)
    else:
        source.add_done_callback(chain)


class _AckTracker:
    """Outstanding data-plane acknowledgements of one transport."""

    def __init__(self) -> None:
        self._outstanding: set[asyncio.Future] = set()
        self.errors: list[BaseException] = []

    def track(self, future: "asyncio.Future") -> "asyncio.Future":
        self._outstanding.add(future)
        future.add_done_callback(self._done)
        return future

    def _done(self, future: "asyncio.Future") -> None:
        self._outstanding.discard(future)
        if not future.cancelled():
            exc = future.exception()
            if exc is not None:
                self.errors.append(exc)

    async def drain(self) -> None:
        while self._outstanding:
            pending = list(self._outstanding)
            await asyncio.gather(*pending, return_exceptions=True)


class LocalTransport:
    """Chunk bytes in a dict inside this very event loop (PR 9 mode)."""

    def __init__(self) -> None:
        self._entries: dict[tuple[str, int], Payload] = {}
        self._acks = _AckTracker()

    @property
    def errors(self) -> list[BaseException]:
        return self._acks.errors

    def _future(self) -> "asyncio.Future":
        return asyncio.get_running_loop().create_future()

    def put(self, key: str, stripe: int, payload: Payload,
            deadline: float | None) -> "asyncio.Future[None]":
        self._entries[(key, stripe)] = payload
        ack = self._future()
        if isinstance(payload, asyncio.Future):
            _deliver(payload, ack, deadline, transform=lambda _: None)
        elif deadline is None:
            ack.set_result(None)
        else:
            source = self._future()
            source.set_result(None)
            _deliver(source, ack, deadline)
        return self._acks.track(ack)

    def fetch(self, key: str, stripe: int,
              deadline: float | None) -> "asyncio.Future[bytes]":
        # The mirror already decided the chunk is present; entries track
        # the mirror synchronously, so a miss here is an integrity bug.
        entry = self._entries.get((key, stripe))
        out = self._future()
        if entry is None:
            out.set_exception(ChunkIntegrityError(
                f"local entry for {(key, stripe)} missing though the "
                "mirror marked it present"))
            return out
        if isinstance(entry, asyncio.Future):
            _deliver(entry, out, deadline)
        elif deadline is None:
            out.set_result(entry)
        else:
            source = self._future()
            source.set_result(entry)
            _deliver(source, out, deadline)
        return out

    def delete(self, key: str) -> None:
        doomed = [pair for pair in self._entries if pair[0] == key]
        for pair in doomed:
            del self._entries[pair]

    def crash(self) -> None:
        self._entries.clear()

    def restore(self) -> None:
        pass

    async def stat(self) -> tuple[int, int]:
        """(chunks, bytes) actually held -- awaits pending payloads."""
        chunks, total = 0, 0
        for entry in list(self._entries.values()):
            if isinstance(entry, asyncio.Future):
                entry = await entry
            chunks += 1
            total += len(entry)
        return chunks, total

    async def drain(self) -> None:
        await self._acks.drain()

    async def aclose(self) -> None:
        await self.drain()


class ProcessTransport:
    """Chunk bytes in one node subprocess, reached over stream RPC.

    Every mirror decision enqueues its frame synchronously through the
    pipelined :class:`~repro.store.rpc.RpcClient`, whose write loop
    preserves call order (holding later frames behind a deferred
    payload), and the server applies frames strictly in order -- so
    the warehouse replays the mirror's decision sequence exactly.
    """

    def __init__(self, process: "asyncio.subprocess.Process",
                 client: RpcClient) -> None:
        self.process = process
        self.client = client
        self._acks = _AckTracker()
        self._closed = False

    @classmethod
    async def spawn(cls, max_frame: int = MAX_FRAME_BYTES,
                    ) -> "ProcessTransport":
        # Exec the server file directly rather than `-m repro.store.rpc`:
        # the module is deliberately stdlib-only, and running it as a
        # bare script keeps the subprocess from importing the whole
        # package (numpy and all), so node processes start in tens of
        # milliseconds.
        server = str(Path(rpc.__file__).resolve())
        process = await asyncio.create_subprocess_exec(
            sys.executable, server, "--max-frame-bytes", str(max_frame),
            stdin=asyncio.subprocess.PIPE,
            stdout=asyncio.subprocess.PIPE)
        client = RpcClient(process.stdout, process.stdin, max_frame)
        return cls(process, client)

    @property
    def errors(self) -> list[BaseException]:
        return self._acks.errors

    @staticmethod
    def _check_ok(response: tuple[int, bytes]) -> None:
        status, payload = response
        if status != rpc.STATUS_OK:
            raise ChunkIntegrityError(
                f"node process answered status {status}: "
                f"{payload[:128]!r}")

    @staticmethod
    def _check_data(response: tuple[int, bytes]) -> bytes:
        status, payload = response
        if status == rpc.STATUS_OK:
            return payload
        if status == rpc.STATUS_MISSING:
            raise ChunkIntegrityError(
                "node process is missing a chunk the mirror marked "
                "present")
        raise ChunkIntegrityError(
            f"node process answered status {status}: {payload[:128]!r}")

    def put(self, key: str, stripe: int, payload: Payload,
            deadline: float | None) -> "asyncio.Future[None]":
        response = self.client.call(
            Request(rpc.OP_PUT, key, stripe, payload))
        ack = asyncio.get_running_loop().create_future()
        _deliver(response, ack, deadline,
                 transform=lambda resp: self._check_ok(resp))
        return self._acks.track(ack)

    def fetch(self, key: str, stripe: int,
              deadline: float | None) -> "asyncio.Future[bytes]":
        response = self.client.call(Request(rpc.OP_GET, key, stripe))
        out = asyncio.get_running_loop().create_future()
        _deliver(response, out, deadline, transform=self._check_data)
        return out

    def delete(self, key: str) -> None:
        ack = asyncio.get_running_loop().create_future()
        _deliver(self.client.call(Request(rpc.OP_DELETE, key)), ack, None,
                 transform=lambda resp: self._check_ok(resp))
        self._acks.track(ack)

    def crash(self) -> None:
        ack = asyncio.get_running_loop().create_future()
        _deliver(self.client.call(Request(rpc.OP_CRASH)), ack, None,
                 transform=lambda resp: self._check_ok(resp))
        self._acks.track(ack)

    def restore(self) -> None:
        ack = asyncio.get_running_loop().create_future()
        _deliver(self.client.call(Request(rpc.OP_RESTORE)), ack, None,
                 transform=lambda resp: self._check_ok(resp))
        self._acks.track(ack)

    async def stat(self) -> tuple[int, int]:
        status, payload = await self.client.call(Request(rpc.OP_STAT))
        if status != rpc.STATUS_OK:
            raise ChunkIntegrityError(
                f"stat answered status {status}: {payload[:128]!r}")
        return rpc.decode_stat(payload)

    async def drain(self) -> None:
        await self._acks.drain()

    async def aclose(self) -> None:
        """Graceful shutdown; escalates to terminate/kill on silence."""
        if self._closed:
            return
        self._closed = True
        try:
            await self._acks.drain()
            response = self.client.call(Request(rpc.OP_SHUTDOWN))
            await asyncio.wait_for(asyncio.shield(response), timeout=5.0)
        except (NodeProcessError, asyncio.TimeoutError, OSError):
            pass
        await self.client.aclose()
        if self.process.returncode is None:
            try:
                self.process.terminate()
            except ProcessLookupError:
                pass
        try:
            await asyncio.wait_for(self.process.wait(), timeout=5.0)
        except asyncio.TimeoutError:  # pragma: no cover - last resort
            self.process.kill()
            await self.process.wait()


class StoreNode:
    """Deterministic mirror of one device slot of the cluster."""

    def __init__(self, index: int, *,
                 transport: "LocalTransport | ProcessTransport | None"
                 = None,
                 latency: NodeLatency | None = None) -> None:
        self.index = index
        self.up = True
        self.transport = transport if transport is not None \
            else LocalTransport()
        self.latency = latency
        #: Mirror of held chunks: (key, stripe) -> size in bytes.
        self._present: dict[tuple[str, int], int] = {}
        #: Lifetime telemetry (monotonic across crashes/restores).
        self.crashes = 0
        self.restores = 0
        self.chunks_written = 0
        self.chunks_read = 0
        self.bytes_written = 0
        self.bytes_read = 0

    def _deadline(self) -> float | None:
        """Sample the physical delay *now* (deterministic draw order),
        turning it into a wall-clock release instant for the data
        plane."""
        if self.latency is None:
            return None
        return asyncio.get_running_loop().time() + self.latency.sample_s()

    # ------------------------------------------------------------------ #
    # Async chunk interface
    # ------------------------------------------------------------------ #
    async def put_chunk(self, key: str, stripe: int,
                        data: bytes) -> "asyncio.Future[None]":
        """Decide a write; returns the data-plane delivery ack.

        The mirror is updated (and the write enqueued, in order) before
        returning; the ack future resolves when the bytes physically
        landed.  Callers that only need PR 9 semantics may ignore it --
        the transport tracks every ack for ``drain()``.
        """
        await asyncio.sleep(0)
        self._require_up()
        self._present[(key, stripe)] = len(data)
        self.chunks_written += 1
        self.bytes_written += len(data)
        return self.transport.put(key, stripe, data, self._deadline())

    async def put_chunk_deferred(self, key: str, stripe: int,
                                 payload: "asyncio.Future[bytes]",
                                 size: int) -> "asyncio.Future[None]":
        """Mark a chunk present whose bytes a decode will deliver later.

        The repair path decides placements before the rebuilt bytes
        exist; the transport enqueues the write immediately (keeping
        per-node order) and blocks later frames until ``payload``
        resolves.
        """
        await asyncio.sleep(0)
        self._require_up()
        self._present[(key, stripe)] = size
        self.chunks_written += 1
        self.bytes_written += size
        return self.transport.put(key, stripe, payload, self._deadline())

    async def fetch_chunk(self, key: str,
                          stripe: int) -> "asyncio.Future[bytes]":
        """Decide a read and return a promise for the bytes.

        The decision (up? present? counters) is the deterministic part;
        the returned future is data-plane and resolves with the chunk
        as of this instant, regardless of later crashes or overwrites.
        """
        await asyncio.sleep(0)
        self._require_up()
        size = self._present.get((key, stripe))
        if size is None:
            raise ChunkMissingError((key, stripe))
        self.chunks_read += 1
        self.bytes_read += size
        return self.transport.fetch(key, stripe, self._deadline())

    async def get_chunk(self, key: str, stripe: int) -> bytes:
        return await (await self.fetch_chunk(key, stripe))

    async def delete_object(self, key: str) -> int:
        """Drop every chunk of ``key``; returns how many were held."""
        await asyncio.sleep(0)
        self._require_up()
        doomed = [pair for pair in self._present if pair[0] == key]
        for pair in doomed:
            del self._present[pair]
        self.transport.delete(key)
        return len(doomed)

    # ------------------------------------------------------------------ #
    # Synchronous state inspection / failure injection
    # ------------------------------------------------------------------ #
    def has_chunk(self, key: str, stripe: int) -> bool:
        return self.up and (key, stripe) in self._present

    def chunk_size(self, key: str, stripe: int) -> int:
        return self._present[(key, stripe)]

    @property
    def num_chunks(self) -> int:
        return len(self._present)

    def crash(self) -> None:
        """Fail the device: all stored chunks are lost."""
        self.up = False
        self._present.clear()
        self.crashes += 1
        self.transport.crash()

    def restore(self) -> None:
        """Bring the slot back as an empty replacement device."""
        if self.up:
            return
        self.up = True
        self.restores += 1
        self.transport.restore()

    def _require_up(self) -> None:
        if not self.up:
            raise NodeDownError(f"node {self.index} is down")

    # ------------------------------------------------------------------ #
    # Data-plane bookkeeping
    # ------------------------------------------------------------------ #
    @property
    def dataplane_errors(self) -> list[BaseException]:
        return self.transport.errors

    def mirror_stat(self) -> tuple[int, int]:
        """(chunks, bytes) the mirror *believes* the device holds."""
        return len(self._present), sum(self._present.values())

    async def stat(self) -> tuple[int, int]:
        """(chunks, bytes) the *data plane* actually holds -- the
        cross-check against the mirror's view."""
        return await self.transport.stat()

    async def drain(self) -> None:
        await self.transport.drain()

    async def aclose(self) -> None:
        await self.transport.aclose()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.up else "DOWN"
        return (f"StoreNode({self.index}, {state}, "
                f"{len(self._present)} chunks)")
