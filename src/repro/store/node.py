"""One simulated storage device behind the object store.

A :class:`StoreNode` is the in-process stand-in for the flud-style
storage daemon the ROADMAP points at: it owns the chunks of exactly one
stripe column position, speaks an async interface (so the cluster's
puts, gets and repairs genuinely interleave on the event loop), and can
*crash* -- losing every chunk it held, the way a failed device does --
and later be *restored* as an empty replacement for the repair loop to
rebuild onto.

Nodes never sleep on wall-clock timers and never draw randomness; every
await is a bare cooperative yield, so a store run's interleaving is a
deterministic function of the workload (which is itself seeded).

Usage::

    node = StoreNode(3)
    await node.put_chunk("key", 0, b"...")
    await node.get_chunk("key", 0)
    node.crash()          # chunks gone, node down
    node.restore()        # back up, empty (a replacement device)
"""

from __future__ import annotations

import asyncio


class NodeDownError(RuntimeError):
    """An operation reached a node that is down."""


class ChunkMissingError(KeyError):
    """The node is up but does not hold the requested chunk."""


class StoreNode:
    """In-memory chunk store for one device slot of the cluster."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.up = True
        self._chunks: dict[tuple[str, int], bytes] = {}
        #: Lifetime telemetry (monotonic across crashes/restores).
        self.crashes = 0
        self.restores = 0
        self.chunks_written = 0
        self.chunks_read = 0
        self.bytes_written = 0
        self.bytes_read = 0

    # ------------------------------------------------------------------ #
    # Async chunk interface
    # ------------------------------------------------------------------ #
    async def put_chunk(self, key: str, stripe: int, data: bytes) -> None:
        await asyncio.sleep(0)
        self._require_up()
        self._chunks[(key, stripe)] = data
        self.chunks_written += 1
        self.bytes_written += len(data)

    async def get_chunk(self, key: str, stripe: int) -> bytes:
        await asyncio.sleep(0)
        self._require_up()
        try:
            data = self._chunks[(key, stripe)]
        except KeyError:
            raise ChunkMissingError((key, stripe)) from None
        self.chunks_read += 1
        self.bytes_read += len(data)
        return data

    async def delete_object(self, key: str) -> int:
        """Drop every chunk of ``key``; returns how many were held."""
        await asyncio.sleep(0)
        self._require_up()
        doomed = [pair for pair in self._chunks if pair[0] == key]
        for pair in doomed:
            del self._chunks[pair]
        return len(doomed)

    # ------------------------------------------------------------------ #
    # Synchronous state inspection / failure injection
    # ------------------------------------------------------------------ #
    def has_chunk(self, key: str, stripe: int) -> bool:
        return self.up and (key, stripe) in self._chunks

    @property
    def num_chunks(self) -> int:
        return len(self._chunks)

    def crash(self) -> None:
        """Fail the device: all stored chunks are lost."""
        self.up = False
        self._chunks.clear()
        self.crashes += 1

    def restore(self) -> None:
        """Bring the slot back as an empty replacement device."""
        if self.up:
            return
        self.up = True
        self.restores += 1

    def _require_up(self) -> None:
        if not self.up:
            raise NodeDownError(f"node {self.index} is down")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.up else "DOWN"
        return (f"StoreNode({self.index}, {state}, "
                f"{len(self._chunks)} chunks)")
