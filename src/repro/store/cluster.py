"""The object store's control plane: put / get / degraded read / repair.

A :class:`StoreCluster` stripes every object across one
:class:`~repro.store.node.StoreNode` per stripe-code column.  Since the
out-of-process backend landed, the cluster is explicitly a **control
plane**: every placement and read decision is made synchronously
against the nodes' deterministic mirrors and the bytes themselves flow
through a **data plane** of chunk promises (local dict or node
subprocess, see :mod:`repro.store.node`).  The split is what makes the
two backends produce bit-identical deterministic digests -- every
counter in the digest is written at decision time, and decisions never
wait on data.

Serving paths:

* ``put(key, data)`` -- encode through the bulk-kernel path and fan the
  ``n`` chunk writes out; a down node simply misses its chunk (the
  stripe starts life degraded and the repair loop owes it a rebuild).
  Returns a :class:`PutTicket` whose ``settled()`` awaits physical
  delivery -- callers wanting only PR 9 semantics ignore it;
* ``get_submit(key)`` -- the two-phase read.  The submit decides, under
  the key's lock, which columns serve each stripe (healthy reads touch
  only data-carrying columns and never decode; degraded reads capture
  every surviving column and are recoverable iff the erasure pattern is
  within the code's coverage -- the simulator's own
  ``CoverageModel`` predicate) and captures snapshot promises for the
  bytes.  The returned :class:`GetTicket` assembles them (decoding
  degraded stripes) entirely in the data plane, so a later crash or
  overwrite cannot tear an already-decided read;
* ``get(key)`` -- submit + assemble, for direct callers;
* ``repair_once()`` / ``repair_forever()`` -- budgeted repair: at most
  ``ceil(repair_streams)`` stripes in flight (the store-level reading
  of the simulator's processor-sharing budget).  Placement of rebuilt
  chunks is decided immediately; the decode producing their bytes runs
  as a tracked data-plane task that resolves the deferred payloads.

Metadata and per-key ordering locks are sharded by key CRC across
``meta_shards`` independent tables, so millions-of-keys populations
don't funnel through one dict or leak one ``asyncio.Lock`` per key
ever touched (lock entries are reclaimed when released and
uncontended).

The cluster draws no randomness and never sleeps on the wall clock;
all nondeterminism in a store run comes from the (seeded) traffic and
injector layers, and all *wall-clock* time lives in the data plane.

Usage::

    cluster = StoreCluster(parse_code_spec("rs(n=6,r=4,m=2)"),
                           symbol_bytes=64)
    await cluster.put("k", b"payload")
    cluster.crash_node(0)
    await cluster.get("k")          # degraded read, bytes identical
    await cluster.repair_once()     # full redundancy restored
    await cluster.aclose()          # flush data plane, stop everything
"""

from __future__ import annotations

import asyncio
import math
import zlib
from contextlib import asynccontextmanager
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.codes.base import StripeCode
from repro.store.codec import ObjectCodec, StoreError
from repro.store.node import (ChunkIntegrityError, ChunkMissingError,
                              NodeDownError, StoreNode)
from repro.store.report import StoreReport


class ObjectLostError(RuntimeError):
    """A stripe's erasure pattern exceeds the code's coverage: data loss."""


@dataclass(frozen=True)
class ObjectMeta:
    """Authoritative per-object record (size drives unpadding)."""

    size: int
    stripes: int


class KeyShards:
    """CRC-sharded metadata and per-key ordering locks.

    ``shard_of`` hashes with ``zlib.crc32`` -- stable across processes
    and runs, unlike the interpreter's randomized ``hash()`` -- so both
    backends (and any future multi-process metadata service) agree on
    placement.  Lock entries are refcounted and reclaimed as soon as no
    task holds or awaits them: a workload touching a million keys keeps
    a million metadata records but only O(in-flight) lock objects.
    """

    def __init__(self, num_shards: int = 16) -> None:
        if num_shards < 1:
            raise StoreError("meta_shards must be >= 1")
        self.num_shards = num_shards
        self._meta: list[dict[str, ObjectMeta]] = [
            {} for _ in range(num_shards)]
        self._locks: list[dict[str, list]] = [
            {} for _ in range(num_shards)]

    def shard_of(self, key: str) -> int:
        return zlib.crc32(key.encode("utf-8")) % self.num_shards

    def meta(self, key: str) -> ObjectMeta:
        return self._meta[self.shard_of(key)][key]

    def set_meta(self, key: str, meta: ObjectMeta) -> None:
        self._meta[self.shard_of(key)][key] = meta

    def __contains__(self, key: str) -> bool:
        return key in self._meta[self.shard_of(key)]

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._meta)

    def items(self):
        """Every (key, meta), shard by shard, insertion-ordered within
        each shard -- deterministic for a deterministic put sequence."""
        for shard in self._meta:
            yield from shard.items()

    @property
    def live_locks(self) -> int:
        """Lock entries currently held or awaited (reclaim telemetry)."""
        return sum(len(shard) for shard in self._locks)

    @asynccontextmanager
    async def lock(self, key: str):
        table = self._locks[self.shard_of(key)]
        entry = table.get(key)
        if entry is None:
            entry = table[key] = [asyncio.Lock(), 0]
        entry[1] += 1
        try:
            async with entry[0]:
                yield
        finally:
            entry[1] -= 1
            if entry[1] == 0 and table.get(key) is entry:
                del table[key]


@dataclass
class _StripeRead:
    """One stripe's decided read: captured column promises."""

    degraded: bool
    #: column -> data-plane promise, only the columns the decision
    #: captured (data columns when healthy, all survivors when
    #: degraded).
    promises: dict[int, "asyncio.Future[bytes]"]


@dataclass
class GetTicket:
    """A decided read; ``data()`` assembles the bytes in the data plane."""

    key: str
    size: int
    degraded: bool
    _codec: ObjectCodec
    _stripes: list[_StripeRead] = field(default_factory=list)

    async def data(self) -> bytes:
        pieces: list[bytes] = []
        for plan in self._stripes:
            columns: list[Optional[bytes]] = [None] * self._codec.code.n
            for col, promise in plan.promises.items():
                columns[col] = await promise
            if plan.degraded:
                pieces.append(self._codec.decode_stripe(columns))
            else:
                pieces.append(self._codec.extract_payload(columns))
        return b"".join(pieces)[:self.size]


@dataclass
class PutTicket:
    """A decided write; ``settled()`` awaits physical delivery."""

    key: str
    _acks: list["asyncio.Future[None]"] = field(default_factory=list)

    async def settled(self) -> None:
        for ack in self._acks:
            await ack


class StoreCluster:
    """A cluster of one node per stripe-code column, any backend."""

    def __init__(self, code: StripeCode, *, symbol_bytes: int = 512,
                 nodes: Sequence[StoreNode] | None = None,
                 repair_streams: float | None = None,
                 auto_replace: bool = True,
                 meta_shards: int = 16,
                 report: StoreReport | None = None) -> None:
        self.code = code
        self.codec = ObjectCodec(code, symbol_bytes)
        if nodes is None:
            nodes = [StoreNode(j) for j in range(code.n)]
        if len(nodes) != code.n:
            raise StoreError(
                f"need exactly {code.n} nodes (one per column), "
                f"got {len(nodes)}")
        self.nodes = list(nodes)
        if repair_streams is not None and repair_streams <= 0:
            raise StoreError(
                "repair_streams must be positive (None = unbudgeted)")
        #: Max stripes repaired concurrently -- ceil of the fractional
        #: processor-sharing budget (a 1.5-stream budget admits 2
        #: in-flight repairs, matching the event engine's reading that
        #: fractional budgets still make progress on every stream).
        self.repair_slots = (math.ceil(repair_streams)
                             if repair_streams is not None else code.n)
        self.auto_replace = auto_replace
        self.report = report if report is not None else StoreReport()
        self.shards = KeyShards(meta_shards)
        self._repairs_in_flight = 0
        self._damage = asyncio.Event()
        self._stop_repair = False
        #: Incremental damage suspicion (cheap, conservative): stripes
        #: known short of ``n`` chunks, plus nodes that crashed and
        #: haven't been confirmed rebuilt by a clean repair scan.
        self._suspect_stripes: set[tuple[str, int]] = set()
        self._suspect_nodes: set[int] = set()
        #: Tracked data-plane tasks (stripe decodes, finishers) and the
        #: exceptions they surfaced.
        self._dataplane: set[asyncio.Task] = set()
        self.dataplane_task_errors: list[BaseException] = []
        self._closed = False

    # ------------------------------------------------------------------ #
    # Failure injection hooks (synchronous -- callable from anywhere)
    # ------------------------------------------------------------------ #
    def crash_node(self, index: int) -> None:
        """Fail node ``index``, losing its chunks, and wake the repair
        loop."""
        self.nodes[index].crash()
        self.report.node_crashes += 1
        self._suspect_nodes.add(index)
        self._damage.set()

    def restore_node(self, index: int) -> None:
        """Bring slot ``index`` back as an empty replacement device."""
        self.nodes[index].restore()
        self._damage.set()

    @property
    def nodes_up(self) -> int:
        return sum(node.up for node in self.nodes)

    # ------------------------------------------------------------------ #
    # Client operations
    # ------------------------------------------------------------------ #
    async def put(self, key: str, data: bytes) -> PutTicket:
        """Store (or overwrite) an object.

        Returns once placement is decided (mirrors updated, writes
        enqueued in order); the ticket's ``settled()`` awaits the
        data-plane delivery acks.
        """
        ticket = PutTicket(key)
        async with self.shards.lock(key):
            if self._repairs_in_flight:
                self.report.interfered_ops += 1
            chunks = self.codec.encode_object(data)
            for stripe_index, columns in enumerate(chunks):
                written = await asyncio.gather(*[
                    self._try_put_chunk(ticket, j, key, stripe_index,
                                        columns[j])
                    for j in range(self.code.n)])
                missing = len(written) - sum(written)
                if missing:
                    self.report.partial_put_stripes += 1
                    self._suspect_stripes.add((key, stripe_index))
                    self._damage.set()
                else:
                    self._suspect_stripes.discard((key, stripe_index))
            self.shards.set_meta(
                key, ObjectMeta(size=len(data), stripes=len(chunks)))
            self.report.puts += 1
            self.report.bytes_put += len(data)
        return ticket

    async def get(self, key: str) -> bytes:
        """Fetch an object; degrades transparently under failures.

        Raises ``KeyError`` for unknown keys and
        :class:`ObjectLostError` when some stripe is beyond the code's
        coverage (counted in ``report.failed_reads``).
        """
        ticket = await self.get_submit(key)
        return await ticket.data()

    async def get_submit(self, key: str) -> GetTicket:
        """Decide a read and capture its chunk promises (phase one).

        Runs entirely in the control plane: by the time this returns,
        every counter the read will ever touch is counted and the bytes
        it will return are pinned -- ``ticket.data()`` merely awaits
        and assembles them.
        """
        async with self.shards.lock(key):
            meta = self.shards.meta(key)
            if self._repairs_in_flight:
                self.report.interfered_ops += 1
            ticket = GetTicket(key=key, size=meta.size, degraded=False,
                               _codec=self.codec)
            for stripe_index in range(meta.stripes):
                plan = await self._plan_stripe_read(key, stripe_index)
                ticket._stripes.append(plan)
                ticket.degraded = ticket.degraded or plan.degraded
            self.report.gets += 1
            self.report.bytes_read_user += meta.size
            if ticket.degraded:
                self.report.degraded_reads += 1
                self.report.bytes_read_user_degraded += meta.size
            return ticket

    async def _plan_stripe_read(self, key: str,
                                stripe_index: int) -> _StripeRead:
        have = [node.has_chunk(key, stripe_index) for node in self.nodes]
        if all(have[col] for col in self.codec.data_columns):
            promises = await self._capture_columns(
                key, stripe_index, self.codec.data_columns)
            # A crash may land between the availability check and the
            # capture; a torn fast path falls through to the degraded
            # one.
            if all(promises[col] is not None
                   for col in self.codec.data_columns):
                self.report.bytes_read_nodes_healthy += \
                    self.codec.chunk_bytes * len(self.codec.data_columns)
                return _StripeRead(degraded=False, promises={
                    col: promises[col]
                    for col in self.codec.data_columns})
            have = [node.has_chunk(key, stripe_index)
                    for node in self.nodes]
        wanted = [j for j in range(self.code.n) if have[j]]
        promises = await self._capture_columns(key, stripe_index, wanted)
        captured = {j: promises[j] for j in wanted
                    if promises[j] is not None}
        self.report.bytes_read_nodes_degraded += \
            self.codec.chunk_bytes * len(captured)
        if not self.codec.column_pattern_recoverable(
                self.code.n - len(captured)):
            self.report.failed_reads += 1
            raise ObjectLostError(
                f"object {key!r} stripe {stripe_index} is beyond the "
                f"code's coverage ({self.code.n - len(captured)} of "
                f"{self.code.n} columns missing)")
        return _StripeRead(degraded=True, promises=captured)

    async def _capture_columns(
            self, key: str, stripe_index: int, wanted: Sequence[int]
            ) -> list[Optional["asyncio.Future[bytes]"]]:
        """Capture promises for ``wanted`` columns concurrently; races
        with crashes resolve to ``None`` (treated as erasures)."""
        promises: list[Optional[asyncio.Future]] = [None] * self.code.n
        results = await asyncio.gather(*[
            self._try_fetch_chunk(j, key, stripe_index) for j in wanted])
        for j, promise in zip(wanted, results):
            promises[j] = promise
        return promises

    async def _try_fetch_chunk(
            self, j: int, key: str, stripe_index: int
            ) -> Optional["asyncio.Future[bytes]"]:
        try:
            return await self.nodes[j].fetch_chunk(key, stripe_index)
        except (NodeDownError, ChunkMissingError):
            return None

    async def _try_put_chunk(self, ticket: PutTicket | None, j: int,
                             key: str, stripe_index: int,
                             chunk: bytes) -> bool:
        try:
            ack = await self.nodes[j].put_chunk(key, stripe_index, chunk)
        except NodeDownError:
            return False
        if ticket is not None:
            ticket._acks.append(ack)
        return True

    # ------------------------------------------------------------------ #
    # Redundancy accounting and repair
    # ------------------------------------------------------------------ #
    def damage_suspected(self) -> bool:
        """Cheap (O(n)) conservative damage probe, for per-op sampling.

        True whenever the cluster might hold a degraded stripe: some
        node is down, a put was partial, or a crashed node's rebuild
        has not yet been confirmed by a clean repair scan.  Purely
        mirror-driven, hence identical across backends.
        """
        return bool(self._suspect_stripes) or bool(self._suspect_nodes) \
            or any(not node.up for node in self.nodes)

    def damaged_stripes(self) -> list[tuple[str, int, tuple[int, ...]]]:
        """Every ``(key, stripe, missing_columns)`` short of ``n``
        live chunks."""
        out = []
        for key, meta in self.shards.items():
            for stripe_index in range(meta.stripes):
                missing = tuple(
                    j for j, node in enumerate(self.nodes)
                    if not node.has_chunk(key, stripe_index))
                if missing:
                    out.append((key, stripe_index, missing))
        return out

    def fully_redundant(self) -> bool:
        """True when every node is up and every stripe holds all ``n``
        chunks."""
        return all(node.up for node in self.nodes) \
            and not self.damaged_stripes()

    async def repair_once(
            self,
            on_stripe: Callable[[str, int], None] | None = None) -> int:
        """One repair pass; returns the number of stripes repaired.

        ``on_stripe(key, stripe)`` fires after each stripe's placement
        completes -- the hook the crash-during-repair tests use to fail
        another node mid-pass.  Stripes whose erasure pattern exceeds
        coverage are counted (``report.unrecoverable_stripes``) and
        skipped, not raised: a repair pass must visit every stripe it
        can still save.
        """
        if self.auto_replace:
            for node in self.nodes:
                if not node.up:
                    self.restore_node(node.index)
        damaged = self.damaged_stripes()
        if not damaged:
            self._suspect_stripes.clear()
            if all(node.up for node in self.nodes):
                self._suspect_nodes.clear()
            return 0
        self.report.repair_rounds += 1
        semaphore = asyncio.Semaphore(self.repair_slots)
        repaired = await asyncio.gather(*[
            self._repair_stripe(semaphore, key, stripe_index, on_stripe)
            for key, stripe_index, _ in damaged])
        if not self.damaged_stripes():
            self._suspect_stripes.clear()
            if all(node.up for node in self.nodes):
                self._suspect_nodes.clear()
        return sum(repaired)

    async def _repair_stripe(self, semaphore: asyncio.Semaphore, key: str,
                             stripe_index: int,
                             on_stripe: Callable[[str, int], None] | None
                             ) -> bool:
        # The key lock orders the repair against overwrites of the same
        # object: rebuilding from a half-overwritten stripe would
        # "repair" a torn mix of old and new chunks.  Lock order is
        # semaphore -> key lock; clients never hold the semaphore, so
        # no cycle.
        async with semaphore:
            async with self.shards.lock(key):
                self._repairs_in_flight += 1
                try:
                    return await self._repair_stripe_locked(
                        key, stripe_index, on_stripe)
                finally:
                    self._repairs_in_flight -= 1

    async def _repair_stripe_locked(
            self, key: str, stripe_index: int,
            on_stripe: Callable[[str, int], None] | None) -> bool:
        # Re-derive damage at execution time: an earlier repair (or a
        # fresh crash) may have changed the picture.
        missing = [j for j, node in enumerate(self.nodes)
                   if not node.has_chunk(key, stripe_index)]
        targets = [j for j in missing if self.nodes[j].up]
        if not targets:
            if not missing:
                self._suspect_stripes.discard((key, stripe_index))
            return False
        wanted = [j for j in range(self.code.n) if j not in missing]
        promises = await self._capture_columns(key, stripe_index, wanted)
        captured = {j: promises[j] for j in wanted
                    if promises[j] is not None}
        if not self.codec.column_pattern_recoverable(
                self.code.n - len(captured)):
            self.report.unrecoverable_stripes += 1
            return False
        # Placement is decided now; the rebuilt bytes arrive later.
        # Each target gets a deferred payload the decode task resolves;
        # the transports hold subsequent frames behind it, so ordering
        # survives the detour through the data plane.
        loop = asyncio.get_running_loop()
        payloads: dict[int, asyncio.Future] = {}
        wrote = False
        for j in targets:
            payload: asyncio.Future = loop.create_future()
            try:
                await self.nodes[j].put_chunk_deferred(
                    key, stripe_index, payload, self.codec.chunk_bytes)
            except NodeDownError:
                continue
            payloads[j] = payload
            self.report.repaired_chunks += 1
            self.report.repair_bytes += self.codec.chunk_bytes
            wrote = True
        if wrote:
            self.report.repaired_stripes += 1
            self.track(self._decode_rebuilt(key, stripe_index, captured,
                                            payloads))
        if not any(not node.has_chunk(key, stripe_index)
                   for node in self.nodes):
            self._suspect_stripes.discard((key, stripe_index))
        if on_stripe is not None:
            on_stripe(key, stripe_index)
        return wrote

    async def _decode_rebuilt(
            self, key: str, stripe_index: int,
            captured: dict[int, "asyncio.Future[bytes]"],
            payloads: dict[int, "asyncio.Future[bytes]"]) -> None:
        """Data-plane tail of a repair: decode survivors, fill payloads."""
        try:
            columns: list[Optional[bytes]] = [None] * self.code.n
            for j, promise in captured.items():
                columns[j] = await promise
            rebuilt = self.codec.rebuild_columns(columns,
                                                 list(payloads.keys()))
        except BaseException as exc:  # noqa: BLE001 - routed to payloads
            failure = ChunkIntegrityError(
                f"rebuild of {key!r} stripe {stripe_index} failed in "
                f"the data plane: {exc!r}")
            for payload in payloads.values():
                if not payload.done():
                    payload.set_exception(failure)
            raise failure from exc
        for j, payload in payloads.items():
            if not payload.done():
                payload.set_result(rebuilt[j])

    async def repair_forever(self) -> None:
        """Background loop: wait for damage, repair, repeat.

        Stop it with :meth:`stop_repair` (the runner does this after
        the workload drains).
        """
        while not self._stop_repair:
            await self._damage.wait()
            self._damage.clear()
            if self._stop_repair:
                return
            await self.repair_once()

    def stop_repair(self) -> None:
        self._stop_repair = True
        self._damage.set()

    # ------------------------------------------------------------------ #
    # Data plane bookkeeping and teardown
    # ------------------------------------------------------------------ #
    def track(self, coro) -> asyncio.Task:
        """Run ``coro`` as a tracked data-plane task.

        Tracked tasks are awaited by :meth:`flush`; their exceptions
        are collected (never lost to "exception was never retrieved")
        and surface through :meth:`dataplane_errors`.
        """
        task = asyncio.ensure_future(coro)
        self._dataplane.add(task)
        task.add_done_callback(self._untrack)
        return task

    def _untrack(self, task: asyncio.Task) -> None:
        self._dataplane.discard(task)
        if not task.cancelled():
            exc = task.exception()
            if exc is not None:
                self.dataplane_task_errors.append(exc)

    async def flush(self) -> None:
        """Wait until every decided operation physically completed:
        tracked tasks done, every node's delivery acks drained."""
        while self._dataplane:
            await asyncio.gather(*list(self._dataplane),
                                 return_exceptions=True)
        for node in self.nodes:
            await node.drain()

    def dataplane_errors(self) -> list[BaseException]:
        """Every data-plane failure seen so far (transport acks plus
        tracked tasks).  Empty in a healthy run -- on either backend."""
        errors = list(self.dataplane_task_errors)
        for node in self.nodes:
            errors.extend(node.dataplane_errors)
        return errors

    async def audit_data_plane(self) -> list[str]:
        """Compare each node's physical stat against its mirror.

        Returns human-readable mismatch descriptions (empty = clean).
        Call after :meth:`flush`; pending deliveries would otherwise
        show up as false mismatches.
        """
        mismatches = []
        for node in self.nodes:
            want_chunks, want_bytes = node.mirror_stat()
            got_chunks, got_bytes = await node.stat()
            if (want_chunks, want_bytes) != (got_chunks, got_bytes):
                mismatches.append(
                    f"node {node.index}: mirror says {want_chunks} "
                    f"chunks / {want_bytes} B, data plane holds "
                    f"{got_chunks} chunks / {got_bytes} B")
        return mismatches

    async def aclose(self) -> None:
        """Stop repair, flush the data plane, shut every node down.

        Idempotent; afterwards no task, timer or subprocess of this
        cluster is left running (the "Task was destroyed but it is
        pending" guarantee).
        """
        if self._closed:
            return
        self._closed = True
        self.stop_repair()
        await self.flush()
        for node in self.nodes:
            await node.aclose()

    async def __aenter__(self) -> "StoreCluster":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()
