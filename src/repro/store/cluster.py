"""The asyncio object store: put / get / degraded read / repair.

A :class:`StoreCluster` stripes every object across one
:class:`~repro.store.node.StoreNode` per stripe-code column and serves:

* ``put(key, data)`` -- encode through the bulk-kernel path and fan the
  ``n`` chunks out concurrently; a down node simply misses its chunk
  (the stripe starts life degraded and the repair loop owes it a
  rebuild), exactly like a write landing during a device outage;
* ``get(key)`` -- the healthy path reads only the data-carrying columns
  and never decodes; when any needed chunk is unreachable the read
  degrades transparently: every surviving column is fetched and the
  stripe is rebuilt through ``code.decode`` (the ``recover_rows`` bulk
  machinery), still returning byte-identical data as long as the
  erasure pattern is within the code's coverage;
* ``repair_once()`` -- revive down slots as empty replacement devices,
  then reconstruct every missing chunk, at most ``repair_streams``
  stripes in flight at once (the store-level reading of the simulator's
  processor-sharing repair budget: a small budget stretches repair and
  lengthens the degraded window, a large one steals the event loop from
  client traffic -- the interference `report` counters measure both);
* ``repair_forever()`` -- the background loop, woken by every crash.

Per-key asyncio locks order overwrites against reads (a get sees the
old object or the new one, never a torn mix).  The cluster draws no
randomness and never sleeps on the wall clock; all nondeterminism in a
store run comes from the (seeded) traffic and injector layers.

Usage::

    cluster = StoreCluster(parse_code_spec("rs(n=6,r=4,m=2)"),
                           symbol_bytes=64)
    await cluster.put("k", b"payload")
    cluster.crash_node(0)
    await cluster.get("k")          # degraded read, bytes identical
    await cluster.repair_once()     # full redundancy restored
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.codes.base import StripeCode
from repro.store.codec import ObjectCodec, StoreError
from repro.store.node import ChunkMissingError, NodeDownError, StoreNode
from repro.store.report import StoreReport


class ObjectLostError(RuntimeError):
    """A stripe's erasure pattern exceeds the code's coverage: data loss."""


@dataclass(frozen=True)
class ObjectMeta:
    """Authoritative per-object record (size drives unpadding)."""

    size: int
    stripes: int


class StoreCluster:
    """An in-process cluster of one node per stripe-code column."""

    def __init__(self, code: StripeCode, *, symbol_bytes: int = 512,
                 nodes: Sequence[StoreNode] | None = None,
                 repair_streams: float | None = None,
                 auto_replace: bool = True,
                 report: StoreReport | None = None) -> None:
        self.code = code
        self.codec = ObjectCodec(code, symbol_bytes)
        if nodes is None:
            nodes = [StoreNode(j) for j in range(code.n)]
        if len(nodes) != code.n:
            raise StoreError(
                f"need exactly {code.n} nodes (one per column), "
                f"got {len(nodes)}")
        self.nodes = list(nodes)
        if repair_streams is not None and repair_streams <= 0:
            raise StoreError(
                "repair_streams must be positive (None = unbudgeted)")
        #: Max stripes repaired concurrently -- ceil of the fractional
        #: processor-sharing budget (a 1.5-stream budget admits 2
        #: in-flight repairs, matching the event engine's reading that
        #: fractional budgets still make progress on every stream).
        self.repair_slots = (math.ceil(repair_streams)
                             if repair_streams is not None else code.n)
        self.auto_replace = auto_replace
        self.report = report if report is not None else StoreReport()
        self._meta: dict[str, ObjectMeta] = {}
        self._locks: dict[str, asyncio.Lock] = {}
        self._repairs_in_flight = 0
        self._damage = asyncio.Event()
        self._stop_repair = False

    # ------------------------------------------------------------------ #
    # Failure injection hooks (synchronous -- callable from anywhere)
    # ------------------------------------------------------------------ #
    def crash_node(self, index: int) -> None:
        """Fail node ``index``, losing its chunks, and wake the repair
        loop."""
        self.nodes[index].crash()
        self.report.node_crashes += 1
        self._damage.set()

    def restore_node(self, index: int) -> None:
        """Bring slot ``index`` back as an empty replacement device."""
        self.nodes[index].restore()
        self._damage.set()

    @property
    def nodes_up(self) -> int:
        return sum(node.up for node in self.nodes)

    # ------------------------------------------------------------------ #
    # Client operations
    # ------------------------------------------------------------------ #
    async def put(self, key: str, data: bytes) -> None:
        """Store (or overwrite) an object."""
        async with self._key_lock(key):
            if self._repairs_in_flight:
                self.report.interfered_ops += 1
            chunks = self.codec.encode_object(data)
            for stripe_index, columns in enumerate(chunks):
                written = await asyncio.gather(*[
                    self._try_put_chunk(j, key, stripe_index, columns[j])
                    for j in range(self.code.n)])
                missing = len(written) - sum(written)
                if missing:
                    self.report.partial_put_stripes += 1
                    self._damage.set()
            self._meta[key] = ObjectMeta(size=len(data), stripes=len(chunks))
            self.report.puts += 1
            self.report.bytes_put += len(data)

    async def get(self, key: str) -> bytes:
        """Fetch an object; degrades transparently under failures.

        Raises ``KeyError`` for unknown keys and
        :class:`ObjectLostError` when some stripe is beyond the code's
        coverage (counted in ``report.failed_reads``).
        """
        async with self._key_lock(key):
            meta = self._meta[key]
            if self._repairs_in_flight:
                self.report.interfered_ops += 1
            degraded = False
            pieces: list[bytes] = []
            for stripe_index in range(meta.stripes):
                payload, stripe_degraded = await self._read_stripe(
                    key, stripe_index)
                degraded = degraded or stripe_degraded
                pieces.append(payload)
            data = b"".join(pieces)[:meta.size]
            self.report.gets += 1
            self.report.bytes_read_user += meta.size
            if degraded:
                self.report.degraded_reads += 1
                self.report.bytes_read_user_degraded += meta.size
            return data

    async def _read_stripe(self, key: str,
                           stripe_index: int) -> tuple[bytes, bool]:
        have = [node.has_chunk(key, stripe_index) for node in self.nodes]
        if all(have[col] for col in self.codec.data_columns):
            columns = await self._fetch_columns(
                key, stripe_index, self.codec.data_columns)
            # A crash may land between the availability check and the
            # fetch; a torn fast path falls through to the degraded one.
            if all(columns[col] is not None
                   for col in self.codec.data_columns):
                self.report.bytes_read_nodes_healthy += sum(
                    len(chunk) for chunk in columns if chunk is not None)
                return self.codec.extract_payload(columns), False
            have = [node.has_chunk(key, stripe_index)
                    for node in self.nodes]
        wanted = [j for j in range(self.code.n) if have[j]]
        columns = await self._fetch_columns(key, stripe_index, wanted)
        self.report.bytes_read_nodes_degraded += sum(
            len(chunk) for chunk in columns if chunk is not None)
        try:
            payload = self.codec.decode_stripe(columns)
        except Exception as exc:
            self.report.failed_reads += 1
            raise ObjectLostError(
                f"object {key!r} stripe {stripe_index} is beyond the "
                f"code's coverage: {exc}") from exc
        return payload, True

    async def _fetch_columns(self, key: str, stripe_index: int,
                             wanted: Sequence[int]
                             ) -> list[Optional[bytes]]:
        """Fetch ``wanted`` columns concurrently; races with crashes
        resolve to ``None`` (the caller treats them as erasures)."""
        columns: list[Optional[bytes]] = [None] * self.code.n
        results = await asyncio.gather(*[
            self._try_get_chunk(j, key, stripe_index) for j in wanted])
        for j, chunk in zip(wanted, results):
            columns[j] = chunk
        return columns

    async def _try_get_chunk(self, j: int, key: str,
                             stripe_index: int) -> Optional[bytes]:
        try:
            return await self.nodes[j].get_chunk(key, stripe_index)
        except (NodeDownError, ChunkMissingError):
            return None

    async def _try_put_chunk(self, j: int, key: str, stripe_index: int,
                             chunk: bytes) -> bool:
        try:
            await self.nodes[j].put_chunk(key, stripe_index, chunk)
            return True
        except NodeDownError:
            return False

    def _key_lock(self, key: str) -> asyncio.Lock:
        lock = self._locks.get(key)
        if lock is None:
            lock = self._locks[key] = asyncio.Lock()
        return lock

    # ------------------------------------------------------------------ #
    # Redundancy accounting and repair
    # ------------------------------------------------------------------ #
    def damaged_stripes(self) -> list[tuple[str, int, tuple[int, ...]]]:
        """Every ``(key, stripe, missing_columns)`` short of ``n``
        live chunks."""
        out = []
        for key, meta in self._meta.items():
            for stripe_index in range(meta.stripes):
                missing = tuple(
                    j for j, node in enumerate(self.nodes)
                    if not node.has_chunk(key, stripe_index))
                if missing:
                    out.append((key, stripe_index, missing))
        return out

    def fully_redundant(self) -> bool:
        """True when every node is up and every stripe holds all ``n``
        chunks."""
        return all(node.up for node in self.nodes) \
            and not self.damaged_stripes()

    async def repair_once(
            self,
            on_stripe: Callable[[str, int], None] | None = None) -> int:
        """One repair pass; returns the number of stripes repaired.

        ``on_stripe(key, stripe)`` fires after each stripe completes --
        the hook the crash-during-repair tests use to fail another
        node mid-pass.  Stripes whose erasure pattern exceeds coverage
        are counted (``report.unrecoverable_stripes``) and skipped, not
        raised: a repair pass must visit every stripe it can still
        save.
        """
        if self.auto_replace:
            for node in self.nodes:
                if not node.up:
                    self.restore_node(node.index)
        damaged = self.damaged_stripes()
        if not damaged:
            return 0
        self.report.repair_rounds += 1
        semaphore = asyncio.Semaphore(self.repair_slots)
        repaired = await asyncio.gather(*[
            self._repair_stripe(semaphore, key, stripe_index, on_stripe)
            for key, stripe_index, _ in damaged])
        return sum(repaired)

    async def _repair_stripe(self, semaphore: asyncio.Semaphore, key: str,
                             stripe_index: int,
                             on_stripe: Callable[[str, int], None] | None
                             ) -> bool:
        # The key lock orders the repair against overwrites of the same
        # object: decoding a half-overwritten stripe would "repair" a
        # torn mix of old and new chunks.  Lock order is semaphore ->
        # key lock; clients never hold the semaphore, so no cycle.
        async with semaphore, self._key_lock(key):
            self._repairs_in_flight += 1
            try:
                # Re-derive damage at execution time: an earlier repair
                # (or a fresh crash) may have changed the picture.
                missing = [j for j, node in enumerate(self.nodes)
                           if not node.has_chunk(key, stripe_index)]
                targets = [j for j in missing if self.nodes[j].up]
                if not targets:
                    return False
                wanted = [j for j in range(self.code.n) if j not in missing]
                columns = await self._fetch_columns(key, stripe_index,
                                                    wanted)
                try:
                    rebuilt = self.codec.rebuild_columns(columns, targets)
                except Exception:
                    self.report.unrecoverable_stripes += 1
                    return False
                wrote = False
                for j, chunk in rebuilt.items():
                    if await self._try_put_chunk(j, key, stripe_index,
                                                 chunk):
                        self.report.repaired_chunks += 1
                        self.report.repair_bytes += len(chunk)
                        wrote = True
                if wrote:
                    self.report.repaired_stripes += 1
                if on_stripe is not None:
                    on_stripe(key, stripe_index)
                return wrote
            finally:
                self._repairs_in_flight -= 1

    async def repair_forever(self) -> None:
        """Background loop: wait for damage, repair, repeat.

        Stop it with :meth:`stop_repair` (the runner does this after
        the workload drains).
        """
        while not self._stop_repair:
            await self._damage.wait()
            self._damage.clear()
            if self._stop_repair:
                return
            await self.repair_once()

    def stop_repair(self) -> None:
        self._stop_repair = True
        self._damage.set()
