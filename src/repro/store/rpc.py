"""Length-prefixed chunk RPC over asyncio streams.

This module is both halves of the store's out-of-process data plane:

* the **wire protocol** -- every message is a 4-byte big-endian length
  prefix followed by exactly that many body bytes, so a reader either
  delivers a whole frame or raises :class:`RpcProtocolError`; torn
  chunks are structurally impossible.  Requests are ``put_chunk`` /
  ``get_chunk`` / ``delete_object`` / ``crash`` / ``restore`` /
  ``stat`` / ``shutdown``; responses are ``OK`` (with an optional
  payload), ``MISSING`` or ``ERR``;
* the **chunk server** -- the ``python -m repro.store.rpc`` entry point
  a :class:`~repro.store.node.ProcessTransport` spawns, one subprocess
  per store node.  The server is a deliberately dumb byte warehouse
  (dict of ``(key, stripe) -> bytes`` plus an up/down flag): every
  placement *decision* lives client-side in the deterministic mirror,
  and because each connection's frames are handled strictly in arrival
  order, the server's byte state replays the mirror's decision order
  exactly;
* the **pipelined client** -- :class:`RpcClient` writes frames in call
  order and matches responses FIFO (the server replies in order), so
  many requests overlap in flight while the per-node ordering the
  mirror relies on is preserved.

The server imports only the standard library -- no numpy -- so node
subprocesses start in tens of milliseconds.

Usage (client side)::

    client = RpcClient(reader, writer)
    future = client.call(Request(OP_PUT, "k", 0, b"chunk"))
    status, payload = await future
"""

from __future__ import annotations

import asyncio
import sys
from dataclasses import dataclass
from typing import Union

#: Frame length prefix: 4 bytes, big-endian, body length only.
LENGTH_BYTES = 4
#: Default ceiling on one frame's body; an oversized length prefix is
#: rejected *before* any allocation or read.
MAX_FRAME_BYTES = 64 * 1024 * 1024

# Request opcodes (first body byte).
OP_PUT = 1
OP_GET = 2
OP_DELETE = 3
OP_CRASH = 4
OP_RESTORE = 5
OP_STAT = 6
OP_SHUTDOWN = 7

_KNOWN_OPS = (OP_PUT, OP_GET, OP_DELETE, OP_CRASH, OP_RESTORE, OP_STAT,
              OP_SHUTDOWN)

# Response status codes (first body byte).
STATUS_OK = 0
STATUS_MISSING = 1
STATUS_ERR = 2


class RpcProtocolError(RuntimeError):
    """A malformed, truncated or oversized frame (either direction)."""


class NodeProcessError(RuntimeError):
    """The peer died (EOF / broken pipe) with requests outstanding."""


# --------------------------------------------------------------------------- #
# Frame codec
# --------------------------------------------------------------------------- #
def encode_frame(body: bytes) -> bytes:
    """Prefix ``body`` with its length; the unit every read expects."""
    if not body:
        raise RpcProtocolError("refusing to send an empty frame")
    if len(body) > MAX_FRAME_BYTES:
        raise RpcProtocolError(
            f"frame body of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte ceiling")
    return len(body).to_bytes(LENGTH_BYTES, "big") + body


async def read_frame(reader: asyncio.StreamReader,
                     max_frame: int = MAX_FRAME_BYTES) -> bytes | None:
    """Read one whole frame body; ``None`` on clean EOF at a boundary.

    Raises :class:`RpcProtocolError` for a truncated length prefix, a
    length prefix beyond ``max_frame`` (before reading the body, so a
    hostile prefix cannot force an allocation), an empty frame, or EOF
    mid-body -- the partial bytes are never delivered.
    """
    try:
        header = await reader.readexactly(LENGTH_BYTES)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise RpcProtocolError(
            f"peer closed mid-prefix ({len(exc.partial)} of "
            f"{LENGTH_BYTES} length bytes)") from None
    length = int.from_bytes(header, "big")
    if length == 0:
        raise RpcProtocolError("zero-length frame")
    if length > max_frame:
        raise RpcProtocolError(
            f"length prefix {length} exceeds the {max_frame}-byte frame "
            "ceiling")
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise RpcProtocolError(
            f"peer closed mid-frame ({len(exc.partial)} of {length} "
            "body bytes)") from None


@dataclass
class Request:
    """One chunk request; ``payload`` may be a future for deferred data.

    A repair marks a rebuilt chunk present in the mirror *before* the
    decode that produces its bytes has run; the transport enqueues the
    request immediately (preserving per-node order) with a payload
    future the decode task resolves later.
    """

    op: int
    key: str = ""
    stripe: int = 0
    payload: Union[bytes, "asyncio.Future[bytes]"] = b""

    def encode(self, payload: bytes) -> bytes:
        key_bytes = self.key.encode("utf-8")
        if len(key_bytes) > 0xFFFF:
            raise RpcProtocolError("key longer than 65535 bytes")
        return (bytes([self.op])
                + len(key_bytes).to_bytes(2, "big") + key_bytes
                + int(self.stripe).to_bytes(4, "big")
                + payload)


def decode_request(body: bytes) -> tuple[int, str, int, bytes]:
    """Parse a request body -> ``(op, key, stripe, payload)``."""
    if len(body) < 1:
        raise RpcProtocolError("empty request body")
    op = body[0]
    if op not in _KNOWN_OPS:
        raise RpcProtocolError(f"unknown opcode {op}")
    if len(body) < 3:
        raise RpcProtocolError("request truncated before key length")
    key_len = int.from_bytes(body[1:3], "big")
    if len(body) < 3 + key_len + 4:
        raise RpcProtocolError(
            f"request body of {len(body)} bytes too short for a "
            f"{key_len}-byte key")
    try:
        key = body[3:3 + key_len].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise RpcProtocolError(f"undecodable key: {exc}") from None
    stripe = int.from_bytes(body[3 + key_len:7 + key_len], "big")
    return op, key, stripe, body[7 + key_len:]


def encode_response(status: int, payload: bytes = b"") -> bytes:
    return bytes([status]) + payload


def decode_response(body: bytes) -> tuple[int, bytes]:
    if len(body) < 1:
        raise RpcProtocolError("empty response body")
    status = body[0]
    if status not in (STATUS_OK, STATUS_MISSING, STATUS_ERR):
        raise RpcProtocolError(f"unknown response status {status}")
    return status, body[1:]


def encode_stat(chunks: int, total_bytes: int) -> bytes:
    return chunks.to_bytes(8, "big") + total_bytes.to_bytes(8, "big")


def decode_stat(payload: bytes) -> tuple[int, int]:
    if len(payload) != 16:
        raise RpcProtocolError(
            f"stat payload must be 16 bytes, got {len(payload)}")
    return (int.from_bytes(payload[:8], "big"),
            int.from_bytes(payload[8:], "big"))


# --------------------------------------------------------------------------- #
# Pipelined client
# --------------------------------------------------------------------------- #
class RpcClient:
    """FIFO request/response pipelining over one stream pair.

    ``call`` enqueues a request and returns a future for its
    ``(status, payload)`` response.  Frames go out strictly in call
    order (a request whose payload is itself a pending future blocks
    the queue until the bytes exist -- later requests wait, preserving
    the order the deterministic mirror decided); the server answers in
    order, so responses match pending futures FIFO.  Peer death fails
    every outstanding and future call with :class:`NodeProcessError`
    instead of hanging.
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter,
                 max_frame: int = MAX_FRAME_BYTES) -> None:
        self._reader = reader
        self._writer = writer
        self._max_frame = max_frame
        self._outbox: asyncio.Queue[Request | None] = asyncio.Queue()
        self._pending: list[asyncio.Future[tuple[int, bytes]]] = []
        self._dead: BaseException | None = None
        self._tasks = [
            asyncio.create_task(self._write_loop(), name="rpc-writer"),
            asyncio.create_task(self._read_loop(), name="rpc-reader"),
        ]

    def call(self, request: Request) -> "asyncio.Future[tuple[int, bytes]]":
        """Enqueue ``request`` (synchronously) and return its response
        future."""
        future: asyncio.Future[tuple[int, bytes]] = \
            asyncio.get_running_loop().create_future()
        if self._dead is not None:
            future.set_exception(NodeProcessError(str(self._dead)))
            return future
        self._pending.append(future)
        self._outbox.put_nowait(request)
        return future

    async def _write_loop(self) -> None:
        try:
            while True:
                request = await self._outbox.get()
                if request is None:
                    return
                payload = request.payload
                if isinstance(payload, asyncio.Future):
                    payload = await payload
                self._writer.write(
                    encode_frame(request.encode(payload)))
                await self._writer.drain()
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self._fail(exc)

    async def _read_loop(self) -> None:
        try:
            while True:
                body = await read_frame(self._reader, self._max_frame)
                if body is None:
                    if self._pending:
                        self._fail(NodeProcessError(
                            "peer closed with "
                            f"{len(self._pending)} responses outstanding"))
                    return
                if not self._pending:
                    raise RpcProtocolError("response with no request "
                                           "outstanding")
                future = self._pending.pop(0)
                if not future.done():
                    future.set_result(decode_response(body))
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self._fail(exc)

    def _fail(self, exc: BaseException) -> None:
        if self._dead is None:
            self._dead = exc
        for future in self._pending:
            if not future.done():
                future.set_exception(NodeProcessError(str(exc)))
        self._pending.clear()

    async def aclose(self) -> None:
        """Stop both loops and close the writer; idempotent."""
        self._outbox.put_nowait(None)
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks = []
        try:
            self._writer.close()
        except Exception:
            pass


# --------------------------------------------------------------------------- #
# The chunk server (subprocess entry point)
# --------------------------------------------------------------------------- #
class ChunkServer:
    """The byte warehouse one node subprocess runs.

    All *policy* -- who may read what, which writes should fail --
    lives in the client-side mirror; the server just applies frames in
    arrival order.  ``crash`` drops every chunk (a failed device loses
    its data) and marks the slot down; a ``put`` arriving while down is
    answered with ``ERR`` because the mirror never sends one -- seeing
    it means the two sides disagree, and the client surfaces that as an
    integrity failure rather than guessing.
    """

    def __init__(self) -> None:
        self.chunks: dict[tuple[str, int], bytes] = {}
        self.up = True

    def handle(self, op: int, key: str, stripe: int,
               payload: bytes) -> tuple[bytes, bool]:
        """Apply one request; returns ``(response_body, keep_serving)``."""
        if op == OP_PUT:
            if not self.up:
                return encode_response(
                    STATUS_ERR, b"put while down (mirror desync)"), True
            self.chunks[(key, stripe)] = payload
            return encode_response(STATUS_OK), True
        if op == OP_GET:
            if not self.up:
                return encode_response(
                    STATUS_ERR, b"get while down (mirror desync)"), True
            data = self.chunks.get((key, stripe))
            if data is None:
                return encode_response(STATUS_MISSING), True
            return encode_response(STATUS_OK, data), True
        if op == OP_DELETE:
            doomed = [pair for pair in self.chunks if pair[0] == key]
            for pair in doomed:
                del self.chunks[pair]
            return encode_response(
                STATUS_OK, len(doomed).to_bytes(4, "big")), True
        if op == OP_CRASH:
            self.chunks.clear()
            self.up = False
            return encode_response(STATUS_OK), True
        if op == OP_RESTORE:
            self.up = True
            return encode_response(STATUS_OK), True
        if op == OP_STAT:
            total = sum(len(data) for data in self.chunks.values())
            return encode_response(
                STATUS_OK, encode_stat(len(self.chunks), total)), True
        if op == OP_SHUTDOWN:
            return encode_response(STATUS_OK), False
        return encode_response(STATUS_ERR, f"opcode {op}".encode()), True


async def _stdio_streams() -> tuple[asyncio.StreamReader,
                                    asyncio.StreamWriter]:
    loop = asyncio.get_running_loop()
    reader = asyncio.StreamReader()
    await loop.connect_read_pipe(
        lambda: asyncio.StreamReaderProtocol(reader), sys.stdin.buffer)
    transport, protocol = await loop.connect_write_pipe(
        asyncio.streams.FlowControlMixin, sys.stdout.buffer)
    writer = asyncio.StreamWriter(transport, protocol, reader, loop)
    return reader, writer


async def serve(reader: asyncio.StreamReader, writer: asyncio.StreamWriter,
                max_frame: int = MAX_FRAME_BYTES) -> None:
    """Serve one connection until EOF, shutdown or a protocol error.

    A protocol error answers ``ERR`` (when the pipe still works) and
    stops serving: after a framing failure the stream offset can no
    longer be trusted, so continuing would risk delivering torn data.
    """
    server = ChunkServer()
    while True:
        try:
            body = await read_frame(reader, max_frame)
        except RpcProtocolError as exc:
            writer.write(encode_frame(encode_response(
                STATUS_ERR, str(exc).encode())))
            await writer.drain()
            return
        if body is None:
            return
        try:
            response, keep_serving = server.handle(*decode_request(body))
        except RpcProtocolError as exc:
            response, keep_serving = encode_response(
                STATUS_ERR, str(exc).encode()), False
        writer.write(encode_frame(response))
        await writer.drain()
        if not keep_serving:
            return


async def _amain(max_frame: int) -> None:
    reader, writer = await _stdio_streams()
    await serve(reader, writer, max_frame)


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.store.rpc",
        description="Chunk-server subprocess of the out-of-process "
                    "object-store backend (speaks the length-prefixed "
                    "frame protocol on stdin/stdout).")
    parser.add_argument("--max-frame-bytes", type=int,
                        default=MAX_FRAME_BYTES)
    args = parser.parse_args(argv)
    asyncio.run(_amain(args.max_frame_bytes))
    return 0


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    sys.exit(main())
