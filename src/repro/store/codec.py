"""Object bytes <-> coded node chunks, through any :class:`StripeCode`.

The store's unit of placement is the *chunk*: column ``j`` of one
encoded stripe, i.e. the ``r`` symbols a stripe puts on device ``j``,
serialised back to back (``r * symbol_bytes`` bytes, little-endian for
w = 16 fields).  An object is split into fixed-size stripe payloads of
``num_data_symbols * symbol_bytes`` bytes (the last one zero-padded;
the object's true length lives in the cluster's metadata), each payload
is encoded with the stripe code -- STAIR, RS, SD or IDR, all through
the PR 6 bulk kernels -- and chunk ``j`` of every stripe lands on node
``j``.

Reads invert the mapping.  The *healthy* path never decodes: it fetches
only the columns that carry data symbols and slices the payload
straight out of them.  The *degraded* path (any needed column missing)
fetches every surviving column, rebuilds the full grid with
``code.decode`` -- the same ``recover_rows``-backed machinery the
simulator's repair model counts -- and extracts the data positions.

The codec is deliberately stateless: everything is a pure function of
``(code, symbol_bytes)``, so two codecs built from equal specs agree
byte for byte (the property the round-trip fuzz suite pins down on both
``ops_class`` backends).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.codes.base import StripeCode
from repro.gf.regions import RegionOps


class StoreError(ValueError):
    """An object-store configuration or usage error."""


class ObjectCodec:
    """Split/join object bytes through one stripe code.

    Usage::

        from repro.codes.registry import parse_code_spec
        from repro.store.codec import ObjectCodec

        codec = ObjectCodec(parse_code_spec("rs(n=6,r=4,m=2)"),
                            symbol_bytes=64)
        chunks = codec.encode_object(b"payload")   # [stripe][column]
        codec.decode_stripe(chunks[0])             # payload, padded
    """

    def __init__(self, code: StripeCode, symbol_bytes: int = 512) -> None:
        if symbol_bytes < 1:
            raise StoreError("symbol_bytes must be >= 1")
        width = getattr(code, "field", None)
        width = width.w if width is not None else 8
        if width not in (8, 16):
            raise StoreError(
                f"the store serialises w=8 and w=16 symbols only "
                f"(code field has w={width})")
        self._element_bytes = 2 if width == 16 else 1
        if symbol_bytes % self._element_bytes:
            raise StoreError(
                f"symbol_bytes = {symbol_bytes} must be a multiple of "
                f"the element size ({self._element_bytes} bytes for "
                f"w={width})")
        self.code = code
        self.symbol_bytes = symbol_bytes
        self._ops = RegionOps(code.field)
        #: Columns that carry at least one data symbol -- the only
        #: columns a healthy read touches.
        self.data_columns: tuple[int, ...] = tuple(sorted(
            {col for _, col in code.data_positions()}))
        self._recoverable_cache: dict[int, bool] = {}

    def column_pattern_recoverable(self, num_missing: int) -> bool:
        """Whether ``num_missing`` whole-column erasures are within the
        code's coverage.

        This is the *decision* predicate of the store's degraded-read
        and repair paths: it answers from the simulator's own
        :class:`~repro.sim.cluster.CoverageModel` (the same model the
        event engine trusts), synchronously and deterministically,
        while the actual ``code.decode`` runs later in the data plane.
        A decode failing where this predicate said yes is an integrity
        bug, not an expected erasure outcome.
        """
        cached = self._recoverable_cache.get(num_missing)
        if cached is None:
            from repro.sim.cluster import CoverageModel
            coverage = CoverageModel.from_code(self.code)
            cached = coverage.tolerates_counts(
                (0,) * (self.code.n - num_missing), num_missing)
            self._recoverable_cache[num_missing] = cached
        return cached

    # ------------------------------------------------------------------ #
    # Geometry
    # ------------------------------------------------------------------ #
    @property
    def chunk_bytes(self) -> int:
        """Bytes of one node chunk (a full stripe column)."""
        return self.code.r * self.symbol_bytes

    @property
    def stripe_payload_bytes(self) -> int:
        """User bytes carried by one stripe."""
        return self.code.num_data_symbols * self.symbol_bytes

    def num_stripes(self, size: int) -> int:
        """Stripes needed for a ``size``-byte object (0 for 0 bytes)."""
        payload = self.stripe_payload_bytes
        return (size + payload - 1) // payload

    # ------------------------------------------------------------------ #
    # Encode
    # ------------------------------------------------------------------ #
    def encode_object(self, data: bytes) -> list[list[bytes]]:
        """Encode an object into ``[stripe][column] -> chunk bytes``."""
        payload = self.stripe_payload_bytes
        out: list[list[bytes]] = []
        for start in range(0, len(data), payload):
            piece = data[start:start + payload]
            if len(piece) < payload:
                piece = piece + b"\x00" * (payload - len(piece))
            out.append(self._encode_stripe(piece))
        return out

    def _encode_stripe(self, payload: bytes) -> list[bytes]:
        symbols = [
            self._ops.from_bytes(
                payload[k * self.symbol_bytes:(k + 1) * self.symbol_bytes])
            for k in range(self.code.num_data_symbols)]
        grid = self.code.encode(symbols)
        return [
            b"".join(self._ops.to_bytes(grid[i][j])
                     for i in range(self.code.r))
            for j in range(self.code.n)]

    # ------------------------------------------------------------------ #
    # Decode
    # ------------------------------------------------------------------ #
    def extract_payload(self, columns: Sequence[Optional[bytes]]) -> bytes:
        """The healthy fast path: slice data symbols out of their
        columns, no decoding.  Every column in :attr:`data_columns`
        must be present."""
        parts = []
        for row, col in self.code.data_positions():
            chunk = columns[col]
            if chunk is None:
                raise StoreError(
                    f"data column {col} is missing; use decode_stripe "
                    "for degraded reads")
            start = row * self.symbol_bytes
            parts.append(chunk[start:start + self.symbol_bytes])
        return b"".join(parts)

    def decode_stripe(self, columns: Sequence[Optional[bytes]]) -> bytes:
        """Recover one stripe's payload from surviving columns.

        Missing columns (``None``) are reconstructed through
        ``code.decode``; raises the code's own
        :class:`~repro.core.exceptions.DecodingFailureError` (or
        equivalent) when the erasure pattern exceeds coverage.
        """
        if all(columns[col] is not None for col in self.data_columns):
            return self.extract_payload(columns)
        grid = self._grid_from_columns(columns)
        recovered = self.code.decode(grid)
        data = self.code.extract_data(recovered)
        return b"".join(self._ops.to_bytes(symbol) for symbol in data)

    def rebuild_columns(self, columns: Sequence[Optional[bytes]],
                        wanted: Sequence[int]) -> dict[int, bytes]:
        """Reconstruct whole missing columns (the repair path).

        Returns ``{column -> chunk bytes}`` for every column in
        ``wanted``, decoding the full stripe once.
        """
        grid = self._grid_from_columns(columns)
        recovered = self.code.decode(grid)
        out = {}
        for j in wanted:
            out[j] = b"".join(self._ops.to_bytes(recovered[i][j])
                              for i in range(self.code.r))
        return out

    def _grid_from_columns(self, columns: Sequence[Optional[bytes]]):
        if len(columns) != self.code.n:
            raise StoreError(
                f"expected {self.code.n} columns, got {len(columns)}")
        grid: list[list[Optional[np.ndarray]]] = [
            [None] * self.code.n for _ in range(self.code.r)]
        for j, chunk in enumerate(columns):
            if chunk is None:
                continue
            if len(chunk) != self.chunk_bytes:
                raise StoreError(
                    f"column {j} has {len(chunk)} bytes, expected "
                    f"{self.chunk_bytes}")
            for i in range(self.code.r):
                start = i * self.symbol_bytes
                grid[i][j] = self._ops.from_bytes(
                    chunk[start:start + self.symbol_bytes])
        return grid
