"""Closed-loop, seeded Zipf traffic against a :class:`StoreCluster`.

The generator precomputes the whole workload -- operation types, target
keys, object sizes and payload seeds -- from ``SeedSequence``-derived
RNGs *before* the first request flies, then lets ``clients`` concurrent
workers drain the schedule.  That split is what makes store runs
replayable exactly like sweep cells: the schedule is a pure function of
the seed, independent of event-loop interleaving, and no draw ever
touches the wall clock or the global :mod:`random` state.

Payloads are *self-verifying*: the first 8 bytes carry a little-endian
seed and the rest is that seed's deterministic PCG byte stream, so any
reader can check integrity without an oracle that chases concurrent
overwrites.  Key popularity is Zipf (``p(rank) ~ (rank+1)^-alpha``
over the fixed object population, ``alpha = 0`` = uniform); reads and
overwrites mix per ``read_fraction``.

Workers are closed-loop on *decisions* and open-loop on *data*: each
worker awaits the cluster's control-plane submit (lock, placement,
counters) and then hands the data-plane tail -- awaiting chunk
delivery, verifying payloads, recording latency -- to a tracked
background task.  Pacing on decisions keeps the deterministic plane
identical across backends (a worker never blocks on a subprocess
round-trip or a sampled physical delay); the runner flushes the
tracked tails before the report is read, so every verify and latency
sample still lands.

Latencies are recorded around the full decision-to-delivery span with
``perf_counter`` -- wall-clock telemetry only, feeding nothing back
into behaviour.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np

from repro.scenario.spec import StoreSection
from repro.store.cluster import ObjectLostError, StoreCluster
from repro.store.injector import FailureInjector
from repro.store.report import StoreReport

#: Bytes of the payload's embedded seed header.
_HEADER = 8


def make_payload(seed: int, size: int) -> bytes:
    """A deterministic, self-verifying payload of exactly ``size``
    bytes (objects shorter than the 8-byte header are raw stream
    bytes -- still deterministic, just not self-checkable)."""
    if size <= _HEADER:
        return np.random.default_rng(seed).bytes(size)
    header = int(seed).to_bytes(_HEADER, "little")
    return header + np.random.default_rng(seed).bytes(size - _HEADER)


def verify_payload(data: bytes) -> bool:
    """Check a payload against its embedded seed (vacuously true for
    objects too short to carry the header)."""
    if len(data) <= _HEADER:
        return True
    seed = int.from_bytes(data[:_HEADER], "little")
    return data[_HEADER:] == np.random.default_rng(seed).bytes(
        len(data) - _HEADER)


class TrafficGenerator:
    """Preload + closed-loop workload, fully determined by one seed."""

    def __init__(self, cluster: StoreCluster, store: StoreSection,
                 seed_seq: np.random.SeedSequence,
                 injector: FailureInjector | None = None,
                 verify: bool = True) -> None:
        self.cluster = cluster
        self.store = store
        self.injector = injector
        self.verify = verify
        self.report: StoreReport = cluster.report
        self.report.objects = store.objects
        self.report.operations = store.operations
        schedule_rng, payload_rng = [
            np.random.default_rng(child) for child in seed_seq.spawn(2)]
        self._sizes = self._draw_sizes(schedule_rng)
        self._ops = self._draw_ops(schedule_rng)
        #: Fresh payload seed per (preload or overwrite) put.
        self._payload_seeds = payload_rng.integers(
            0, 2 ** 63, size=store.objects + store.operations)

    # ------------------------------------------------------------------ #
    # Schedule construction (pure function of the seed)
    # ------------------------------------------------------------------ #
    def _draw_sizes(self, rng: np.random.Generator) -> np.ndarray:
        store = self.store
        if store.min_object_bytes is None:
            return np.full(store.objects, store.object_bytes, dtype=np.int64)
        return rng.integers(store.min_object_bytes,
                            store.object_bytes + 1, size=store.objects)

    def _draw_ops(self, rng: np.random.Generator) -> list[tuple[str, int]]:
        """``(kind, object_index)`` per operation, Zipf-popular keys."""
        store = self.store
        ranks = np.arange(1, store.objects + 1, dtype=float)
        weights = ranks ** -store.zipf_alpha
        pmf = weights / weights.sum()
        keys = rng.choice(store.objects, size=store.operations, p=pmf)
        reads = rng.random(store.operations) < store.read_fraction
        return [("get" if is_read else "put", int(obj))
                for is_read, obj in zip(reads, keys)]

    @staticmethod
    def key_name(obj: int) -> str:
        return f"obj-{obj:06d}"

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    async def load(self) -> None:
        """Preload every object (not latency-measured, not injected)."""
        for obj in range(self.store.objects):
            payload = make_payload(int(self._payload_seeds[obj]),
                                   int(self._sizes[obj]))
            await self.cluster.put(self.key_name(obj), payload)

    async def run(self) -> None:
        """Drain the closed-loop schedule with ``clients`` workers.

        The shared cursor hands out operation indices in order; the
        injector ticks on every hand-out, so crashes land at exact
        operation indices regardless of how workers interleave.
        """
        cursor = iter(range(self.store.operations))

        async def worker() -> None:
            while True:
                try:
                    op_index = next(cursor)
                except StopIteration:
                    return
                if self.injector is not None:
                    self.injector.tick(op_index, self.cluster)
                    for event in self.injector.fired[
                            len(self.report.failures):]:
                        self.report.failures.append(
                            (event.at_op, event.node, event.cause))
                self.report.note_damage(op_index,
                                        self.cluster.damage_suspected())
                kind, obj = self._ops[op_index]
                if kind == "get":
                    await self._one_get(obj)
                else:
                    await self._one_put(op_index, obj)

        await asyncio.gather(*[worker()
                               for _ in range(self.store.clients)])

    async def _one_get(self, obj: int) -> None:
        start = time.perf_counter()
        try:
            ticket = await self.cluster.get_submit(self.key_name(obj))
        except ObjectLostError:
            # failed_reads already counted by the cluster.
            return
        self.cluster.track(self._finish_get(ticket, start))

    async def _finish_get(self, ticket, start: float) -> None:
        try:
            data = await ticket.data()
        except Exception:
            # The control plane promised these bytes; failure to
            # deliver them is a data-plane integrity problem, never a
            # legitimate read outcome.
            self.report.chunk_integrity_failures += 1
            return
        elapsed = time.perf_counter() - start
        self.report.get_latencies.append(elapsed)
        if ticket.degraded:
            self.report.degraded_get_latencies.append(elapsed)
        if self.verify and not verify_payload(data):
            self.report.verify_failures += 1

    async def _one_put(self, op_index: int, obj: int) -> None:
        size = int(self._sizes[obj])
        payload = make_payload(
            int(self._payload_seeds[self.store.objects + op_index]), size)
        start = time.perf_counter()
        ticket = await self.cluster.put(self.key_name(obj), payload)
        self.cluster.track(self._finish_put(ticket, start))

    async def _finish_put(self, ticket, start: float) -> None:
        try:
            await ticket.settled()
        except Exception:
            self.report.chunk_integrity_failures += 1
            return
        self.report.put_latencies.append(time.perf_counter() - start)
