"""Galois-field substrate for the STAIR-code reproduction.

This package provides everything the erasure-coding layers need from
finite-field arithmetic:

* :class:`~repro.gf.field.GField` -- GF(2^w) for w in {4, 8, 16} with
  log/antilog tables and (for w <= 8) full multiplication tables.
* :mod:`~repro.gf.regions` -- vectorised *region* operations over NumPy
  buffers, most importantly ``mult_xor`` which is the paper's basic cost
  unit (one multiply-accumulate of a whole sector by a field constant).
* :mod:`~repro.gf.matrix` -- dense matrices over GF(2^w): multiplication,
  Gaussian-elimination inversion, rank, and the Vandermonde / Cauchy
  constructions used to build systematic MDS codes.
* :mod:`~repro.gf.polynomial` -- polynomials over GF(2^w) (evaluation,
  interpolation), used by the classical Reed-Solomon view and by tests.

The default field used throughout the project is GF(2^8), obtained via
:func:`default_field`.
"""

from repro.gf.field import GField, default_field, get_field
from repro.gf.regions import RegionOps, OperationCounter
from repro.gf.matrix import GFMatrix
from repro.gf.polynomial import GFPolynomial

__all__ = [
    "GField",
    "default_field",
    "get_field",
    "RegionOps",
    "OperationCounter",
    "GFMatrix",
    "GFPolynomial",
]
