"""Dense matrices over GF(2^w).

These matrices hold *coefficients* (not data regions); they are used to
build generator matrices for the systematic MDS codes, to invert
sub-matrices during erasure decoding, and to derive the full STAIR
generator matrix symbolically.  Entries are stored in a NumPy integer
array; all arithmetic goes through a :class:`~repro.gf.field.GField`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.gf.field import GField, default_field


class SingularMatrixError(ValueError):
    """Raised when a matrix that must be invertible is singular."""


class GFMatrix:
    """A dense matrix of GF(2^w) coefficients.

    The class is deliberately small: just the operations the coding
    layers need (multiplication, inversion, rank, solving), implemented
    with straightforward Gaussian elimination.  Matrices are at most a
    few hundred rows/columns in this project, so clarity wins over
    asymptotic cleverness.
    """

    def __init__(self, data: Iterable[Iterable[int]] | np.ndarray,
                 field: GField | None = None) -> None:
        self.field = field or default_field()
        arr = np.array(data, dtype=np.int64)
        if arr.ndim == 1:
            arr = arr.reshape(1, -1)
        if arr.ndim != 2:
            raise ValueError("GFMatrix requires 2-D data")
        if arr.size and (arr.min() < 0 or arr.max() >= self.field.order):
            raise ValueError("matrix entries outside field range")
        self.data = arr

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def identity(cls, n: int, field: GField | None = None) -> "GFMatrix":
        """Return the n x n identity matrix."""
        return cls(np.eye(n, dtype=np.int64), field)

    @classmethod
    def zeros(cls, rows: int, cols: int, field: GField | None = None) -> "GFMatrix":
        """Return an all-zero matrix."""
        return cls(np.zeros((rows, cols), dtype=np.int64), field)

    @classmethod
    def vandermonde(cls, rows: int, cols: int,
                    field: GField | None = None) -> "GFMatrix":
        """Return the ``rows x cols`` Vandermonde matrix ``V[i][j] = alpha_i^j``.

        The evaluation points are ``0, 1, ..., rows-1`` interpreted as field
        elements (the classical RAID-style construction).
        """
        field = field or default_field()
        data = np.zeros((rows, cols), dtype=np.int64)
        for i in range(rows):
            for j in range(cols):
                data[i, j] = field.pow(i, j) if i or j == 0 else 0
        # Row 0 is [1, 0, 0, ...]; rows i>0 are [1, i, i^2, ...].
        for j in range(cols):
            data[0, j] = 1 if j == 0 else 0
        return cls(data, field)

    @classmethod
    def cauchy(cls, x_points: Sequence[int], y_points: Sequence[int],
               field: GField | None = None) -> "GFMatrix":
        """Return the Cauchy matrix ``C[i][j] = 1 / (x_i + y_j)``.

        Requires all ``x_i + y_j`` to be non-zero, which holds whenever the
        x and y point sets are disjoint.
        """
        field = field or default_field()
        data = np.zeros((len(x_points), len(y_points)), dtype=np.int64)
        for i, x in enumerate(x_points):
            for j, y in enumerate(y_points):
                denom = field.add(x, y)
                if denom == 0:
                    raise ValueError("Cauchy matrix requires disjoint point sets")
                data[i, j] = field.inv(denom)
        return cls(data, field)

    # ------------------------------------------------------------------ #
    # Shape / accessors
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, int]:
        return self.data.shape  # type: ignore[return-value]

    @property
    def rows(self) -> int:
        return self.data.shape[0]

    @property
    def cols(self) -> int:
        return self.data.shape[1]

    def copy(self) -> "GFMatrix":
        return GFMatrix(self.data.copy(), self.field)

    def row(self, i: int) -> np.ndarray:
        return self.data[i].copy()

    def col(self, j: int) -> np.ndarray:
        return self.data[:, j].copy()

    def submatrix(self, row_indices: Sequence[int],
                  col_indices: Sequence[int] | None = None) -> "GFMatrix":
        """Return the sub-matrix restricted to the given rows/columns."""
        rows = self.data[list(row_indices), :]
        if col_indices is not None:
            rows = rows[:, list(col_indices)]
        return GFMatrix(rows, self.field)

    def hstack(self, other: "GFMatrix") -> "GFMatrix":
        """Horizontally concatenate with another matrix."""
        return GFMatrix(np.hstack([self.data, other.data]), self.field)

    def vstack(self, other: "GFMatrix") -> "GFMatrix":
        """Vertically concatenate with another matrix."""
        return GFMatrix(np.vstack([self.data, other.data]), self.field)

    def transpose(self) -> "GFMatrix":
        return GFMatrix(self.data.T.copy(), self.field)

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def matmul(self, other: "GFMatrix") -> "GFMatrix":
        """Matrix multiplication over the field.

        Vectorised as one outer-product gather per inner dimension:
        ``C ^= A[:, k] (x) B[k, :]`` for each k with a non-zero column.
        """
        if self.cols != other.rows:
            raise ValueError(
                f"shape mismatch for matmul: {self.shape} @ {other.shape}"
            )
        f = self.field
        result = np.zeros((self.rows, other.cols), dtype=np.int64)
        for k in range(self.cols):
            col = self.data[:, k]
            if not col.any():
                continue
            result ^= f.mul_gather(col, other.data[k]).astype(np.int64)
        return GFMatrix(result, f)

    def __matmul__(self, other: "GFMatrix") -> "GFMatrix":
        return self.matmul(other)

    def add(self, other: "GFMatrix") -> "GFMatrix":
        """Entry-wise addition (XOR)."""
        if self.shape != other.shape:
            raise ValueError("shape mismatch for addition")
        return GFMatrix(np.bitwise_xor(self.data, other.data), self.field)

    def mul_vector(self, vector: Sequence[int]) -> np.ndarray:
        """Multiply this matrix by a coefficient column vector."""
        vec = np.asarray(vector, dtype=np.int64)
        if vec.shape[0] != self.cols:
            raise ValueError("vector length mismatch")
        if self.rows == 0 or self.cols == 0:
            return np.zeros(self.rows, dtype=np.int64)
        products = self.field.mul_elementwise(self.data, vec[None, :])
        return np.bitwise_xor.reduce(products.astype(np.int64), axis=1)

    # ------------------------------------------------------------------ #
    # Gaussian elimination: inverse, rank, solve
    # ------------------------------------------------------------------ #
    def _eliminate(self, mat: np.ndarray) -> list[int]:
        """In-place Gauss-Jordan elimination to reduced row-echelon form.

        Works on any augmented copy of the data.  Each pivot step
        normalises the pivot row and clears the pivot column of *every*
        other row with a single vectorised outer-product update
        (``mat ^= factors (x) pivot_row``) instead of a per-row Python
        loop.  Returns the pivot column indices in elimination order.
        """
        f = self.field
        rows = mat.shape[0]
        pivot_cols: list[int] = []
        rank = 0
        for col in range(self.cols):
            if rank == rows:
                break
            candidates = np.nonzero(mat[rank:, col])[0]
            if candidates.size == 0:
                continue
            pivot = rank + int(candidates[0])
            if pivot != rank:
                mat[[rank, pivot]] = mat[[pivot, rank]]
            pivot_inv = f.inv(int(mat[rank, col]))
            mat[rank] = f.mul_vector(pivot_inv, mat[rank]).astype(np.int64)
            factors = mat[:, col].copy()
            factors[rank] = 0
            if factors.any():
                mat ^= f.mul_gather(factors, mat[rank]).astype(np.int64)
            pivot_cols.append(col)
            rank += 1
        return pivot_cols

    def inverse(self) -> "GFMatrix":
        """Return the inverse matrix (Gauss-Jordan elimination).

        The elimination is vectorised row-at-a-time: every pivot step
        updates the whole augmented matrix with one GF outer-product
        gather, so the sub-matrix inversions performed during erasure
        decoding stay cheap even for ~100x100 systems.

        Raises
        ------
        SingularMatrixError
            If the matrix is singular (or not square).
        """
        if self.rows != self.cols:
            raise SingularMatrixError("only square matrices can be inverted")
        n = self.rows
        aug = np.hstack([self.data.copy(), np.eye(n, dtype=np.int64)])
        pivot_cols = self._eliminate(aug)
        if len(pivot_cols) != n:
            raise SingularMatrixError("matrix is singular over GF(2^w)")
        return GFMatrix(aug[:, n:], self.field)

    def rref(self) -> tuple["GFMatrix", tuple[int, ...]]:
        """Reduced row-echelon form and the pivot columns.

        Rank-deficient matrices are fine: the trailing rows of the
        returned matrix are zero and ``len(pivots)`` is the rank.
        """
        mat = self.data.copy()
        pivot_cols = self._eliminate(mat)
        return GFMatrix(mat, self.field), tuple(pivot_cols)

    def rank(self) -> int:
        """Return the rank of the matrix over the field."""
        mat = self.data.copy()
        return len(self._eliminate(mat))

    def is_invertible(self) -> bool:
        """True if the matrix is square and non-singular."""
        return self.rows == self.cols and self.rank() == self.rows

    def solve(self, rhs: Sequence[int]) -> np.ndarray:
        """Solve ``A x = rhs`` for a square invertible A."""
        return self.inverse().mul_vector(rhs)

    # ------------------------------------------------------------------ #
    # Dunder conveniences
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        return (isinstance(other, GFMatrix)
                and self.field == other.field
                and np.array_equal(self.data, other.data))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GFMatrix({self.rows}x{self.cols}, GF(2^{self.field.w}))"
