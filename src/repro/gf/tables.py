"""Construction of log/antilog and multiplication tables for GF(2^w).

The tables are built once per word size and cached.  The primitive
polynomials used here are the standard ones adopted by most storage-domain
Galois-field libraries (including GF-Complete, which the paper's C
implementation uses), so encodings produced by this library are
bit-compatible with codes built on those polynomials.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

#: Primitive polynomials (including the leading x^w term) for supported
#: word sizes, expressed as integers.  E.g. for w=8 the polynomial is
#: x^8 + x^4 + x^3 + x^2 + 1 -> 0x11D.
PRIMITIVE_POLYNOMIALS: dict[int, int] = {
    4: 0x13,      # x^4 + x + 1
    8: 0x11D,     # x^8 + x^4 + x^3 + x^2 + 1
    16: 0x1100B,  # x^16 + x^12 + x^3 + x + 1
}

#: Word sizes supported by this library.
SUPPORTED_WORD_SIZES = tuple(sorted(PRIMITIVE_POLYNOMIALS))


class TableSet:
    """The numeric tables backing one GF(2^w) field.

    Attributes
    ----------
    w:
        Word size in bits.
    order:
        Number of field elements, ``2**w``.
    exp:
        Antilog table of length ``2 * (order - 1)`` so that
        ``exp[log[a] + log[b]]`` works without an explicit modulo.
    log:
        Log table of length ``order`` (``log[0]`` is defined as 0 but must
        never be used; multiplication handles zero separately).
    mul_table:
        Full ``order x order`` multiplication table (only built for
        ``w <= 8``; ``None`` otherwise).
    div_table:
        Full ``order x order`` division table (only for ``w <= 8``).
    inv:
        Multiplicative-inverse table of length ``order`` (``inv[0] = 0``).
    """

    def __init__(self, w: int) -> None:
        if w not in PRIMITIVE_POLYNOMIALS:
            raise ValueError(
                f"unsupported word size w={w}; supported: {SUPPORTED_WORD_SIZES}"
            )
        self.w = w
        self.order = 1 << w
        self.prim_poly = PRIMITIVE_POLYNOMIALS[w]
        self.exp, self.log = _build_log_tables(w, self.prim_poly)
        self.inv = _build_inverse_table(self.exp, self.log, self.order)
        if w <= 8:
            self.mul_table, self.div_table = _build_full_tables(
                self.exp, self.log, self.order
            )
        else:
            self.mul_table = None
            self.div_table = None


def _build_log_tables(w: int, prim_poly: int) -> tuple[np.ndarray, np.ndarray]:
    """Build antilog (``exp``) and log tables for GF(2^w).

    The ``exp`` table is doubled in length so that adding two logs never
    needs a modulo reduction when multiplying non-zero elements.
    """
    order = 1 << w
    dtype = np.uint32 if w > 8 else np.uint16
    exp = np.zeros(2 * (order - 1), dtype=dtype)
    log = np.zeros(order, dtype=dtype)
    x = 1
    for i in range(order - 1):
        exp[i] = x
        log[x] = i
        x <<= 1
        if x & order:
            x ^= prim_poly
    # Duplicate for modulo-free indexing.
    exp[order - 1:] = exp[: order - 1]
    return exp, log


def _build_inverse_table(exp: np.ndarray, log: np.ndarray, order: int) -> np.ndarray:
    """Build the multiplicative-inverse lookup table."""
    inv = np.zeros(order, dtype=log.dtype)
    for a in range(1, order):
        inv[a] = exp[(order - 1) - int(log[a])]
    return inv


def _build_full_tables(
    exp: np.ndarray, log: np.ndarray, order: int
) -> tuple[np.ndarray, np.ndarray]:
    """Build full order x order multiplication and division tables.

    Only feasible for small word sizes (w <= 8: 64 KiB each for w=8).
    The multiplication table doubles as the per-constant lookup map used
    by the vectorised region operations: ``mul_table[c]`` is a length-256
    array mapping every byte ``b`` to ``c * b``.
    """
    a = np.arange(order, dtype=np.int64)
    la = log[a].astype(np.int64)
    # Outer sum of logs; rows/cols with zero handled afterwards.
    sums = la[:, None] + la[None, :]
    mul = exp[sums].astype(np.uint8 if order <= 256 else np.uint16)
    mul[0, :] = 0
    mul[:, 0] = 0

    div = np.zeros_like(mul)
    diffs = (la[:, None] - la[None, :]) % (order - 1)
    div[:, 1:] = exp[diffs[:, 1:]].astype(mul.dtype)
    div[0, :] = 0
    return mul, div


@lru_cache(maxsize=None)
def get_tables(w: int) -> TableSet:
    """Return the (cached) :class:`TableSet` for GF(2^w)."""
    return TableSet(w)
