"""Scalar Galois-field arithmetic for GF(2^w).

:class:`GField` wraps the lookup tables in :mod:`repro.gf.tables` and
exposes the element-level operations every other layer is written
against.  Elements are plain Python ints in ``[0, 2**w)``; the field
object itself is immutable and cached per word size.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable

import numpy as np

from repro.gf.tables import SUPPORTED_WORD_SIZES, get_tables


class GField:
    """The finite field GF(2^w) for w in {4, 8, 16}.

    Addition and subtraction are XOR.  Multiplication and division use
    log/antilog tables; for ``w <= 8`` a full multiplication table is also
    available and is what the vectorised region operations index into.

    Parameters
    ----------
    w:
        Word size in bits.
    """

    def __init__(self, w: int = 8) -> None:
        tables = get_tables(w)
        self.w = w
        self.order = tables.order
        self.prim_poly = tables.prim_poly
        self._exp = tables.exp
        self._log = tables.log
        self._inv = tables.inv
        self._mul_table = tables.mul_table
        self._div_table = tables.div_table

    # ------------------------------------------------------------------ #
    # Basic element arithmetic
    # ------------------------------------------------------------------ #
    def add(self, a: int, b: int) -> int:
        """Field addition (XOR)."""
        return a ^ b

    def sub(self, a: int, b: int) -> int:
        """Field subtraction (identical to addition in characteristic 2)."""
        return a ^ b

    def mul(self, a: int, b: int) -> int:
        """Field multiplication."""
        if a == 0 or b == 0:
            return 0
        return int(self._exp[int(self._log[a]) + int(self._log[b])])

    def div(self, a: int, b: int) -> int:
        """Field division ``a / b``.  Raises ``ZeroDivisionError`` if b == 0."""
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(2^w)")
        if a == 0:
            return 0
        diff = (int(self._log[a]) - int(self._log[b])) % (self.order - 1)
        return int(self._exp[diff])

    def inv(self, a: int) -> int:
        """Multiplicative inverse.  Raises ``ZeroDivisionError`` for 0."""
        if a == 0:
            raise ZeroDivisionError("zero has no multiplicative inverse")
        return int(self._inv[a])

    def pow(self, a: int, e: int) -> int:
        """Raise ``a`` to the (possibly negative) integer power ``e``."""
        if a == 0:
            if e == 0:
                return 1
            if e < 0:
                raise ZeroDivisionError("zero to a negative power")
            return 0
        exponent = (int(self._log[a]) * e) % (self.order - 1)
        return int(self._exp[exponent])

    def exp(self, e: int) -> int:
        """Return alpha**e where alpha is the primitive element."""
        return int(self._exp[e % (self.order - 1)])

    def log(self, a: int) -> int:
        """Discrete logarithm base the primitive element."""
        if a == 0:
            raise ValueError("log of zero is undefined")
        return int(self._log[a])

    # ------------------------------------------------------------------ #
    # Vector helpers (1-D NumPy arrays of field elements)
    # ------------------------------------------------------------------ #
    @property
    def element_dtype(self) -> np.dtype:
        """NumPy dtype used to store field elements of this word size."""
        return np.dtype(np.uint8) if self.w <= 8 else np.dtype(np.uint16)

    def mul_table_row(self, c: int) -> np.ndarray:
        """Return the lookup array mapping every element ``b`` to ``c * b``.

        Only available for ``w <= 8`` (where the full table exists); the
        region operations for w = 16 use the log/antilog path instead.
        """
        if self._mul_table is None:
            raise NotImplementedError(
                "full multiplication table only built for w <= 8"
            )
        return self._mul_table[c]

    def mul_vector(self, c: int, vec: np.ndarray) -> np.ndarray:
        """Multiply a vector of field elements by the constant ``c``."""
        vec = np.asarray(vec)
        if c == 0:
            return np.zeros_like(vec)
        if c == 1:
            return vec.copy()
        if self._mul_table is not None:
            return self._mul_table[c][vec]
        # Log/antilog path (w = 16).
        out = np.zeros_like(vec)
        nz = vec != 0
        logs = self._log[vec[nz]].astype(np.int64) + int(self._log[c])
        out[nz] = self._exp[logs].astype(vec.dtype)
        return out

    # ------------------------------------------------------------------ #
    # Bulk (plane) helpers: whole-array multiplies in one or two gathers
    # ------------------------------------------------------------------ #
    def mul_rows(self, constants: np.ndarray, plane: np.ndarray) -> np.ndarray:
        """Multiply row ``i`` of a 2-D ``plane`` by ``constants[i]``.

        ``constants`` has shape ``(S,)`` and ``plane`` shape ``(S, L)``;
        the result has the plane's shape and the field's element dtype.
        For ``w <= 8`` this is a single fancy-index gather into the full
        multiplication table; for w = 16 it goes through the log/antilog
        tables with explicit zero masking.
        """
        constants = np.asarray(constants, dtype=np.int64)
        if self._mul_table is not None:
            return self._mul_table[constants[:, None], plane]
        logs = (self._log[plane].astype(np.int64)
                + self._log[constants].astype(np.int64)[:, None])
        out = self._exp[logs].astype(self.element_dtype)
        out[plane == 0] = 0
        out[constants == 0, :] = 0
        return out

    def mul_gather(self, constants: np.ndarray, data: np.ndarray) -> np.ndarray:
        """Outer product gather: ``out[i, ...] = constants[i] * data[...]``.

        ``constants`` has shape ``(T,)``; the result has shape
        ``(T, *data.shape)``.  With 1-D ``data`` this is the classical
        GF outer product used by the vectorised Gaussian elimination.
        """
        constants = np.asarray(constants, dtype=np.int64)
        if self._mul_table is not None:
            # mul_table[c] is the per-constant lookup row; indexing it by
            # the data array broadcasts to (T, *data.shape) in one gather.
            return self._mul_table[constants][:, data]
        logs = (self._log[data].astype(np.int64)[None, ...]
                + self._log[constants].astype(np.int64).reshape(
                    (-1,) + (1,) * data.ndim))
        out = self._exp[logs].astype(self.element_dtype)
        out[:, data == 0] = 0
        out[constants == 0] = 0
        return out

    def mul_elementwise(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Element-wise product of two broadcastable arrays of elements."""
        a, b = np.broadcast_arrays(np.asarray(a, dtype=np.int64),
                                   np.asarray(b, dtype=np.int64))
        if self._mul_table is not None:
            return self._mul_table[a, b]
        logs = self._log[a].astype(np.int64) + self._log[b].astype(np.int64)
        out = self._exp[logs].astype(self.element_dtype)
        out[(a == 0) | (b == 0)] = 0
        return out

    def dot(self, coeffs: Iterable[int], vectors: Iterable[np.ndarray]) -> np.ndarray:
        """Return ``sum_i coeffs[i] * vectors[i]`` over the field.

        All vectors must share the same shape and dtype.
        """
        result: np.ndarray | None = None
        for c, v in zip(coeffs, vectors):
            if c == 0:
                continue
            term = self.mul_vector(c, v)
            result = term if result is None else result ^ term
        if result is None:
            first = next(iter(vectors))
            return np.zeros_like(first)
        return result

    # ------------------------------------------------------------------ #
    # Misc
    # ------------------------------------------------------------------ #
    def elements(self) -> range:
        """Iterate over all field elements (0 .. order-1)."""
        return range(self.order)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GField(2^{self.w})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, GField) and other.w == self.w

    def __hash__(self) -> int:
        return hash(("GField", self.w))


@lru_cache(maxsize=None)
def get_field(w: int) -> GField:
    """Return the cached :class:`GField` instance for word size ``w``."""
    if w not in SUPPORTED_WORD_SIZES:
        raise ValueError(f"unsupported word size {w}; supported: {SUPPORTED_WORD_SIZES}")
    return GField(w)


def default_field() -> GField:
    """The project-wide default field, GF(2^8).

    The STAIR paper uses w = 8 for all of its experiments because
    ``n + m' <= 256`` and ``r + e_max <= 256`` hold for every configuration
    it considers; we follow the same choice.
    """
    return get_field(8)
