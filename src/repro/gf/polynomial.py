"""Polynomials over GF(2^w).

Used by the classical (evaluation/interpolation) view of Reed-Solomon
codes and as an independent cross-check of the matrix-based encoders in
tests.  Coefficients are stored lowest-degree first.
"""

from __future__ import annotations

from typing import Sequence

from repro.gf.field import GField, default_field


class GFPolynomial:
    """A polynomial with coefficients in GF(2^w)."""

    def __init__(self, coefficients: Sequence[int],
                 field: GField | None = None) -> None:
        self.field = field or default_field()
        coeffs = [int(c) % self.field.order for c in coefficients]
        # Normalise: strip trailing (high-degree) zeros but keep at least one.
        while len(coeffs) > 1 and coeffs[-1] == 0:
            coeffs.pop()
        self.coefficients = coeffs

    # ------------------------------------------------------------------ #
    @property
    def degree(self) -> int:
        """Degree of the polynomial (0 for constants, including zero)."""
        return len(self.coefficients) - 1

    def is_zero(self) -> bool:
        return self.coefficients == [0]

    def evaluate(self, x: int) -> int:
        """Evaluate at ``x`` using Horner's rule."""
        f = self.field
        acc = 0
        for c in reversed(self.coefficients):
            acc = f.add(f.mul(acc, x), c)
        return acc

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def add(self, other: "GFPolynomial") -> "GFPolynomial":
        f = self.field
        a, b = self.coefficients, other.coefficients
        length = max(len(a), len(b))
        out = [0] * length
        for i in range(length):
            ca = a[i] if i < len(a) else 0
            cb = b[i] if i < len(b) else 0
            out[i] = f.add(ca, cb)
        return GFPolynomial(out, f)

    __add__ = add
    __sub__ = add  # characteristic 2

    def mul(self, other: "GFPolynomial") -> "GFPolynomial":
        f = self.field
        a, b = self.coefficients, other.coefficients
        out = [0] * (len(a) + len(b) - 1)
        for i, ca in enumerate(a):
            if ca == 0:
                continue
            for j, cb in enumerate(b):
                if cb:
                    out[i + j] ^= f.mul(ca, cb)
        return GFPolynomial(out, f)

    __mul__ = mul

    def scale(self, constant: int) -> "GFPolynomial":
        """Multiply every coefficient by a field constant."""
        f = self.field
        return GFPolynomial([f.mul(c, constant) for c in self.coefficients], f)

    def divmod(self, divisor: "GFPolynomial") -> tuple["GFPolynomial", "GFPolynomial"]:
        """Polynomial long division; returns (quotient, remainder)."""
        if divisor.is_zero():
            raise ZeroDivisionError("polynomial division by zero")
        f = self.field
        remainder = list(self.coefficients)
        dcoeffs = divisor.coefficients
        dlead_inv = f.inv(dcoeffs[-1])
        ddeg = divisor.degree
        if self.degree < ddeg:
            return GFPolynomial([0], f), GFPolynomial(remainder, f)
        quotient = [0] * (self.degree - ddeg + 1)
        for shift in range(len(quotient) - 1, -1, -1):
            coef = remainder[shift + ddeg]
            if coef == 0:
                continue
            factor = f.mul(coef, dlead_inv)
            quotient[shift] = factor
            for i, dc in enumerate(dcoeffs):
                remainder[shift + i] ^= f.mul(factor, dc)
        return GFPolynomial(quotient, f), GFPolynomial(remainder, f)

    # ------------------------------------------------------------------ #
    # Interpolation
    # ------------------------------------------------------------------ #
    @classmethod
    def interpolate(cls, points: Sequence[tuple[int, int]],
                    field: GField | None = None) -> "GFPolynomial":
        """Lagrange interpolation through ``(x, y)`` points with distinct x."""
        field = field or default_field()
        xs = [x for x, _ in points]
        if len(set(xs)) != len(xs):
            raise ValueError("interpolation points must have distinct x values")
        result = cls([0], field)
        for i, (xi, yi) in enumerate(points):
            if yi == 0:
                continue
            numerator = cls([1], field)
            denominator = 1
            for j, (xj, _) in enumerate(points):
                if i == j:
                    continue
                numerator = numerator.mul(cls([xj, 1], field))
                denominator = field.mul(denominator, field.add(xi, xj))
            scale = field.mul(yi, field.inv(denominator))
            result = result.add(numerator.scale(scale))
        return result

    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        return (isinstance(other, GFPolynomial)
                and self.field == other.field
                and self.coefficients == other.coefficients)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GFPolynomial({self.coefficients})"
