"""Vectorised region operations over Galois fields.

The STAIR paper expresses the cost of every encoding method in units of
``Mult_XOR(R1, R2, a)``: multiply a region ``R1`` of bytes by a field
constant ``a`` and XOR the product into a target region ``R2``.  This
module provides exactly that operation (NumPy-vectorised), together with
an :class:`OperationCounter` so higher layers can report per-stripe
Mult_XOR counts and compare them against the paper's analytical formulas
(Eq. 5 and Eq. 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Sequence

import numpy as np

from repro.gf.field import GField, default_field


@dataclass
class OperationCounter:
    """Counts the basic region operations performed by an encoder/decoder.

    ``mult_xors`` is the paper's cost unit; ``xors`` counts the cheaper
    pure-XOR accumulations (multiplication by the constant 1), which the
    paper folds into the same unit -- we keep them separate so tests can
    still reproduce the aggregate number exactly via :meth:`total`.
    """

    mult_xors: int = 0
    xors: int = 0
    bytes_processed: int = dataclass_field(default=0)

    def total(self) -> int:
        """Total Mult_XOR-equivalent operations (paper's counting unit)."""
        return self.mult_xors + self.xors

    def reset(self) -> None:
        """Zero all counters."""
        self.mult_xors = 0
        self.xors = 0
        self.bytes_processed = 0

    def merge(self, other: "OperationCounter") -> None:
        """Accumulate another counter into this one."""
        self.mult_xors += other.mult_xors
        self.xors += other.xors
        self.bytes_processed += other.bytes_processed


class RegionOps:
    """Region (sector-sized buffer) arithmetic bound to one field.

    A *symbol* throughout the project is a 1-D ``numpy`` array of the
    field's element dtype (``uint8`` for GF(2^8)).  All symbols in a
    stripe share the same length (the sector size in field elements).
    """

    def __init__(self, field: GField | None = None,
                 counter: OperationCounter | None = None) -> None:
        self.field = field or default_field()
        self.counter = counter or OperationCounter()

    # ------------------------------------------------------------------ #
    # Symbol construction helpers
    # ------------------------------------------------------------------ #
    def zeros(self, size: int) -> np.ndarray:
        """Return an all-zero symbol of ``size`` field elements."""
        return np.zeros(size, dtype=self.field.element_dtype)

    def from_bytes(self, data: bytes) -> np.ndarray:
        """Interpret raw bytes as a symbol."""
        arr = np.frombuffer(data, dtype=np.uint8)
        if self.field.w == 8:
            return arr.copy()
        if self.field.w == 16:
            if len(data) % 2:
                raise ValueError("byte length must be even for w=16 symbols")
            return arr.view(np.uint16).copy()
        raise NotImplementedError(f"from_bytes unsupported for w={self.field.w}")

    def to_bytes(self, symbol: np.ndarray) -> bytes:
        """Serialise a symbol back to raw bytes."""
        return symbol.astype(self.field.element_dtype, copy=False).tobytes()

    def random(self, size: int, rng: np.random.Generator | None = None) -> np.ndarray:
        """Return a uniformly random symbol (useful for tests/benchmarks)."""
        rng = rng or np.random.default_rng()
        return rng.integers(0, self.field.order, size=size,
                            dtype=self.field.element_dtype)

    # ------------------------------------------------------------------ #
    # The basic cost unit: Mult_XOR
    # ------------------------------------------------------------------ #
    def mult_xor(self, src: np.ndarray, dst: np.ndarray, constant: int) -> None:
        """``dst ^= constant * src`` over the field, in place.

        This is the paper's ``Mult_XOR(R1, R2, a)`` operation and the unit
        in which all encoding complexities are counted.
        """
        if constant == 0:
            return
        if constant == 1:
            dst ^= src
            self.counter.xors += 1
        else:
            dst ^= self.field.mul_vector(constant, src)
            self.counter.mult_xors += 1
        self.counter.bytes_processed += src.nbytes

    def mult(self, src: np.ndarray, constant: int) -> np.ndarray:
        """Return ``constant * src`` as a new symbol (no accumulation)."""
        return self.field.mul_vector(constant, src)

    def xor_into(self, src: np.ndarray, dst: np.ndarray) -> None:
        """``dst ^= src`` (multiplication by 1)."""
        dst ^= src
        self.counter.xors += 1
        self.counter.bytes_processed += src.nbytes

    # ------------------------------------------------------------------ #
    # Linear combinations
    # ------------------------------------------------------------------ #
    def linear_combination(self, coeffs: Sequence[int],
                           symbols: Sequence[np.ndarray],
                           size: int | None = None) -> np.ndarray:
        """Return ``sum_i coeffs[i] * symbols[i]`` as a fresh symbol.

        Each non-zero coefficient contributes one Mult_XOR (or XOR when
        the coefficient is 1), matching how the paper counts the cost of
        generating one parity symbol from ``k`` inputs as ``k`` Mult_XORs.
        """
        if len(coeffs) != len(symbols):
            raise ValueError("coeffs and symbols must have equal length")
        if size is None:
            if not symbols:
                raise ValueError("cannot infer symbol size from empty input")
            size = len(symbols[0])
        out = self.zeros(size)
        for c, sym in zip(coeffs, symbols):
            self.mult_xor(sym, out, int(c))
        return out

    def matrix_vector(self, matrix: np.ndarray,
                      symbols: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Apply a GF matrix to a vector of symbols.

        Row ``i`` of ``matrix`` produces output symbol ``i`` as the linear
        combination of the input symbols with that row's coefficients.
        """
        matrix = np.asarray(matrix)
        if matrix.ndim != 2 or matrix.shape[1] != len(symbols):
            raise ValueError(
                f"matrix shape {matrix.shape} incompatible with {len(symbols)} symbols"
            )
        size = len(symbols[0]) if symbols else 0
        return [self.linear_combination(row, symbols, size=size) for row in matrix]
