"""Vectorised region operations over Galois fields.

The STAIR paper expresses the cost of every encoding method in units of
``Mult_XOR(R1, R2, a)``: multiply a region ``R1`` of bytes by a field
constant ``a`` and XOR the product into a target region ``R2``.  This
module provides that operation together with an :class:`OperationCounter`
so higher layers can report per-stripe Mult_XOR counts and compare them
against the paper's analytical formulas (Eq. 5 and Eq. 6).

Two execution paths share one counting contract:

* the **bulk stripe-planar path** (:class:`RegionOps`, the default):
  symbols are stacked into a 2-D ``(num_symbols, region_len)`` byte
  plane and whole linear combinations are computed with one table-row
  gather per coefficient row (``mul_table[c]`` fancy-indexing) followed
  by ``np.bitwise_xor.reduce``; and
* the **scalar reference path** (:class:`ReferenceRegionOps`): every
  field multiplication is performed element-at-a-time through
  :meth:`~repro.gf.field.GField.mul`.  It is deliberately simple and
  obviously correct -- the differential fuzz harness
  (``tests/gf/test_kernels_differential.py``) proves the bulk kernels
  bit-exact against it, and ``benchmarks/bench_coding_throughput.py``
  commits the >= 100x speed gap between the two as a CI floor.

Counter semantics (shared by both paths, asserted by the harness):

* a coefficient of **0** performs no work and counts nothing -- no
  ``mult_xors``, no ``xors`` and no ``bytes_processed``;
* a coefficient of **1** counts one ``xor`` plus the region's bytes;
* any other coefficient counts one ``mult_xor`` plus the region's bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Sequence

import numpy as np

from repro.gf.field import GField, default_field


@dataclass
class OperationCounter:
    """Counts the basic region operations performed by an encoder/decoder.

    ``mult_xors`` is the paper's cost unit; ``xors`` counts the cheaper
    pure-XOR accumulations (multiplication by the constant 1), which the
    paper folds into the same unit -- we keep them separate so tests can
    still reproduce the aggregate number exactly via :meth:`total`.

    ``bytes_processed`` accumulates the source-region bytes touched by
    every *counted* operation.  A zero coefficient is an early return:
    it touches no bytes and therefore adds nothing, not even to
    ``bytes_processed`` -- the bulk kernels implement the identical
    rule, which is what lets the differential harness require equal
    counters between the two paths.
    """

    mult_xors: int = 0
    xors: int = 0
    bytes_processed: int = dataclass_field(default=0)

    def total(self) -> int:
        """Total Mult_XOR-equivalent operations (paper's counting unit)."""
        return self.mult_xors + self.xors

    def reset(self) -> None:
        """Zero all counters."""
        self.mult_xors = 0
        self.xors = 0
        self.bytes_processed = 0

    def merge(self, other: "OperationCounter") -> None:
        """Accumulate another counter into this one."""
        self.mult_xors += other.mult_xors
        self.xors += other.xors
        self.bytes_processed += other.bytes_processed

    def snapshot(self) -> tuple[int, int, int]:
        """``(mult_xors, xors, bytes_processed)`` -- handy for differential
        assertions."""
        return (self.mult_xors, self.xors, self.bytes_processed)


class RegionOps:
    """Region (sector-sized buffer) arithmetic bound to one field.

    A *symbol* throughout the project is a 1-D ``numpy`` array of the
    field's element dtype (``uint8`` for GF(2^8)).  All symbols in a
    stripe share the same length (the sector size in field elements).
    A *plane* is a 2-D ``(num_symbols, region_len)`` array stacking many
    symbols; the bulk kernels operate on planes so a whole stripe's worth
    of parity falls out of a handful of NumPy gathers.
    """

    def __init__(self, field: GField | None = None,
                 counter: OperationCounter | None = None) -> None:
        self.field = field or default_field()
        self.counter = counter or OperationCounter()

    # ------------------------------------------------------------------ #
    # Symbol construction helpers
    # ------------------------------------------------------------------ #
    def zeros(self, size: int) -> np.ndarray:
        """Return an all-zero symbol of ``size`` field elements."""
        return np.zeros(size, dtype=self.field.element_dtype)

    def from_bytes(self, data: bytes) -> np.ndarray:
        """Interpret raw bytes as a symbol.

        Multi-byte element widths use an explicit **little-endian** wire
        layout so a serialised symbol round-trips identically on any
        host, regardless of native byte order.
        """
        arr = np.frombuffer(data, dtype=np.uint8)
        if self.field.w == 8:
            return arr.copy()
        if self.field.w == 16:
            if len(data) % 2:
                raise ValueError("byte length must be even for w=16 symbols")
            return arr.view(np.dtype("<u2")).astype(np.uint16)
        raise NotImplementedError(f"from_bytes unsupported for w={self.field.w}")

    def to_bytes(self, symbol: np.ndarray) -> bytes:
        """Serialise a symbol back to raw bytes (little-endian for w=16)."""
        if self.field.w == 16:
            return np.asarray(symbol).astype(np.dtype("<u2"), copy=False).tobytes()
        return symbol.astype(self.field.element_dtype, copy=False).tobytes()

    def random(self, size: int, rng: np.random.Generator | None = None) -> np.ndarray:
        """Return a uniformly random symbol (useful for tests/benchmarks)."""
        rng = rng or np.random.default_rng()
        return rng.integers(0, self.field.order, size=size,
                            dtype=self.field.element_dtype)

    # ------------------------------------------------------------------ #
    # Plane construction
    # ------------------------------------------------------------------ #
    def as_plane(self, symbols: Sequence[np.ndarray]) -> np.ndarray:
        """Stack equal-length symbols into a ``(num_symbols, L)`` plane.

        A 2-D array passes through (cast to the element dtype, no copy
        when already contiguous in that dtype).
        """
        if isinstance(symbols, np.ndarray) and symbols.ndim == 2:
            return np.ascontiguousarray(symbols).astype(
                self.field.element_dtype, copy=False)
        if not len(symbols):
            raise ValueError("cannot build a plane from an empty symbol list")
        plane = np.stack([np.asarray(s) for s in symbols])
        return plane.astype(self.field.element_dtype, copy=False)

    def zeros_plane(self, num_symbols: int, size: int) -> np.ndarray:
        """Return an all-zero ``(num_symbols, size)`` plane."""
        return np.zeros((num_symbols, size), dtype=self.field.element_dtype)

    # ------------------------------------------------------------------ #
    # The basic cost unit: Mult_XOR
    # ------------------------------------------------------------------ #
    def mult_xor(self, src: np.ndarray, dst: np.ndarray, constant: int) -> None:
        """``dst ^= constant * src`` over the field, in place.

        This is the paper's ``Mult_XOR(R1, R2, a)`` operation and the unit
        in which all encoding complexities are counted.  ``constant == 0``
        is an early return: nothing is computed and nothing is counted
        (see the module docstring for the full counting contract).
        """
        if constant == 0:
            return
        if constant == 1:
            dst ^= src
            self.counter.xors += 1
        else:
            dst ^= self.field.mul_vector(constant, src)
            self.counter.mult_xors += 1
        self.counter.bytes_processed += src.nbytes

    def mult(self, src: np.ndarray, constant: int) -> np.ndarray:
        """Return ``constant * src`` as a new symbol (no accumulation)."""
        return self.field.mul_vector(constant, src)

    def xor_into(self, src: np.ndarray, dst: np.ndarray) -> None:
        """``dst ^= src`` (multiplication by 1)."""
        dst ^= src
        self.counter.xors += 1
        self.counter.bytes_processed += src.nbytes

    # ------------------------------------------------------------------ #
    # Bulk stripe-planar kernels
    # ------------------------------------------------------------------ #
    def _count_coefficients(self, coeffs: np.ndarray, region_nbytes: int,
                            repeat: int = 1) -> None:
        """Apply the counting contract for one coefficient row (or matrix)."""
        nonzero = int(np.count_nonzero(coeffs))
        ones = int(np.count_nonzero(coeffs == 1))
        self.counter.xors += ones * repeat
        self.counter.mult_xors += (nonzero - ones) * repeat
        self.counter.bytes_processed += nonzero * region_nbytes * repeat

    def mult_xor_plane(self, src: np.ndarray, dst: np.ndarray,
                       constants: Sequence[int]) -> None:
        """Per-row Mult_XOR on planes: ``dst[i] ^= constants[i] * src[i]``.

        ``src`` and ``dst`` are ``(S, L)`` planes; ``constants`` holds one
        field constant per row.  Rows with a zero constant are skipped
        entirely (and not counted), matching :meth:`mult_xor`.
        """
        src = np.asarray(src)
        constants = np.asarray(constants, dtype=np.int64)
        if src.shape != dst.shape or src.ndim != 2:
            raise ValueError("src and dst must be equal-shape 2-D planes")
        if constants.shape != (src.shape[0],):
            raise ValueError("need exactly one constant per plane row")
        active = constants != 0
        if active.any():
            dst[active] ^= self.field.mul_rows(constants[active], src[active])
        self._count_coefficients(constants, src.shape[1] * src.itemsize)

    def xor_accumulate_plane(self, src: np.ndarray, dst: np.ndarray) -> None:
        """Bulk XOR-accumulate: ``dst ^= src[0] ^ src[1] ^ ...``.

        Folds every row of an ``(S, L)`` plane into the 1-D symbol
        ``dst``; each row counts as one ``xor`` (multiplication by 1).
        """
        src = np.asarray(src)
        if src.ndim != 2:
            raise ValueError("src must be a 2-D plane")
        dst ^= np.bitwise_xor.reduce(src, axis=0)
        self.counter.xors += src.shape[0]
        self.counter.bytes_processed += src.nbytes

    def matrix_vector_plane(self, matrix: np.ndarray,
                            plane: np.ndarray) -> np.ndarray:
        """Apply a GF coefficient matrix to a symbol plane.

        ``matrix`` has shape ``(P, S)`` and ``plane`` shape ``(S, L)``;
        the result is the ``(P, L)`` plane whose row ``p`` is
        ``sum_j matrix[p, j] * plane[j]``.  Each output row costs one
        table-row gather over the non-zero coefficients plus one
        ``np.bitwise_xor.reduce`` -- the single-gather kernel the whole
        coding layer routes through.
        """
        matrix = np.asarray(matrix, dtype=np.int64)
        plane = np.asarray(plane)
        if matrix.ndim != 2 or plane.ndim != 2 or matrix.shape[1] != plane.shape[0]:
            raise ValueError(
                f"matrix shape {matrix.shape} incompatible with plane shape "
                f"{plane.shape}")
        num_out, length = matrix.shape[0], plane.shape[1]
        out = np.zeros((num_out, length), dtype=self.field.element_dtype)
        for p in range(num_out):
            row = matrix[p]
            nz = np.nonzero(row)[0]
            if nz.size == 0:
                continue
            products = self.field.mul_rows(row[nz], plane[nz])
            out[p] = np.bitwise_xor.reduce(products, axis=0)
        self._count_coefficients(matrix, length * plane.itemsize)
        return out

    def matrix_vector_planes(self, matrix: np.ndarray,
                             planes: np.ndarray) -> np.ndarray:
        """Apply one coefficient matrix to a batch of symbol planes.

        ``planes`` has shape ``(B, S, L)`` -- B independent codewords
        sharing the same erasure pattern -- and ``matrix`` shape
        ``(P, S)``.  Returns the ``(B, P, L)`` batch of outputs computed
        with one gather per non-zero matrix column (vectorised across the
        whole batch), counting exactly ``B`` times the single-plane cost.
        """
        matrix = np.asarray(matrix, dtype=np.int64)
        planes = np.asarray(planes)
        if planes.ndim != 3 or matrix.ndim != 2 or matrix.shape[1] != planes.shape[1]:
            raise ValueError(
                f"matrix shape {matrix.shape} incompatible with planes shape "
                f"{planes.shape}")
        batch, _, length = planes.shape
        num_out = matrix.shape[0]
        out = np.zeros((batch, num_out, length), dtype=self.field.element_dtype)
        for k in range(matrix.shape[1]):
            col = matrix[:, k]
            if not col.any():
                continue
            # (P, B, L) gather of coefficient column k against symbol k of
            # every codeword in the batch, accumulated batch-major.
            products = self.field.mul_gather(col, planes[:, k, :])
            out ^= products.transpose(1, 0, 2)
        self._count_coefficients(matrix, length * planes.itemsize, repeat=batch)
        return out

    # ------------------------------------------------------------------ #
    # Linear combinations (the API the coding layers are written against)
    # ------------------------------------------------------------------ #
    def linear_combination(self, coeffs: Sequence[int],
                           symbols: Sequence[np.ndarray],
                           size: int | None = None) -> np.ndarray:
        """Return ``sum_i coeffs[i] * symbols[i]`` as a fresh symbol.

        Each non-zero coefficient contributes one Mult_XOR (or XOR when
        the coefficient is 1), matching how the paper counts the cost of
        generating one parity symbol from ``k`` inputs as ``k`` Mult_XORs.
        """
        if len(coeffs) != len(symbols):
            raise ValueError("coeffs and symbols must have equal length")
        if size is None:
            if not len(symbols):
                raise ValueError("cannot infer symbol size from empty input")
            size = len(symbols[0])
        coeff_arr = np.asarray(list(coeffs), dtype=np.int64)
        if not len(symbols) or not coeff_arr.any():
            return self.zeros(size)
        plane = self.as_plane(symbols)
        return self.matrix_vector_plane(coeff_arr.reshape(1, -1), plane)[0]

    def matrix_vector(self, matrix: np.ndarray,
                      symbols: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Apply a GF matrix to a vector of symbols.

        Row ``i`` of ``matrix`` produces output symbol ``i`` as the linear
        combination of the input symbols with that row's coefficients.
        """
        matrix = np.asarray(matrix)
        if matrix.ndim != 2 or matrix.shape[1] != len(symbols):
            raise ValueError(
                f"matrix shape {matrix.shape} incompatible with {len(symbols)} symbols"
            )
        if not len(symbols):
            return [self.zeros(0) for _ in range(matrix.shape[0])]
        plane = self.as_plane(symbols)
        out = self.matrix_vector_plane(matrix, plane)
        return list(out)

    def matrix_vector_batch(self, matrix: np.ndarray,
                            symbol_lists: Sequence[Sequence[np.ndarray]],
                            ) -> list[list[np.ndarray]]:
        """Apply one GF matrix to many symbol vectors at once.

        Every inner sequence must have the same number of equal-length
        symbols; the result is one list of output symbols per input
        vector, identical (bits and counts) to calling
        :meth:`matrix_vector` once per vector.
        """
        matrix = np.asarray(matrix)
        if not len(symbol_lists):
            return []
        planes = np.stack([self.as_plane(symbols) for symbols in symbol_lists])
        out = self.matrix_vector_planes(matrix, planes)
        return [list(batch) for batch in out]


class ReferenceRegionOps(RegionOps):
    """The retained scalar reference path: element-at-a-time field ops.

    Every multiplication goes through :meth:`GField.mul` on Python ints,
    one region element at a time.  Orders of magnitude slower than the
    bulk kernels but obviously correct -- the differential fuzz harness
    uses it as the ground truth the stripe-planar kernels must match
    bit-for-bit, counter-for-counter.
    """

    def mult_xor(self, src: np.ndarray, dst: np.ndarray, constant: int) -> None:
        if constant == 0:
            return
        if constant == 1:
            for idx in range(len(src)):
                dst[idx] ^= src[idx]
            self.counter.xors += 1
        else:
            mul = self.field.mul
            for idx in range(len(src)):
                dst[idx] ^= mul(constant, int(src[idx]))
            self.counter.mult_xors += 1
        self.counter.bytes_processed += src.nbytes

    def mult(self, src: np.ndarray, constant: int) -> np.ndarray:
        mul = self.field.mul
        return np.array([mul(constant, int(v)) for v in np.asarray(src)],
                        dtype=np.asarray(src).dtype)

    def xor_into(self, src: np.ndarray, dst: np.ndarray) -> None:
        for idx in range(len(src)):
            dst[idx] ^= src[idx]
        self.counter.xors += 1
        self.counter.bytes_processed += src.nbytes

    def linear_combination(self, coeffs: Sequence[int],
                           symbols: Sequence[np.ndarray],
                           size: int | None = None) -> np.ndarray:
        if len(coeffs) != len(symbols):
            raise ValueError("coeffs and symbols must have equal length")
        if size is None:
            if not len(symbols):
                raise ValueError("cannot infer symbol size from empty input")
            size = len(symbols[0])
        out = self.zeros(size)
        for c, sym in zip(coeffs, symbols):
            self.mult_xor(np.asarray(sym), out, int(c))
        return out

    def matrix_vector(self, matrix: np.ndarray,
                      symbols: Sequence[np.ndarray]) -> list[np.ndarray]:
        matrix = np.asarray(matrix)
        if matrix.ndim != 2 or matrix.shape[1] != len(symbols):
            raise ValueError(
                f"matrix shape {matrix.shape} incompatible with {len(symbols)} symbols"
            )
        size = len(symbols[0]) if len(symbols) else 0
        return [self.linear_combination(row, symbols, size=size)
                for row in matrix]

    def matrix_vector_batch(self, matrix: np.ndarray,
                            symbol_lists: Sequence[Sequence[np.ndarray]],
                            ) -> list[list[np.ndarray]]:
        return [self.matrix_vector(matrix, symbols)
                for symbols in symbol_lists]
