"""The simulated fleet: damage-state arrays and vectorized recoverability.

The symbol-level :class:`repro.array.storage_array.StorageArray` actually
encodes and decodes data, which is exactly right for correctness tests
and hopeless for Monte Carlo (a single trajectory touches millions of
stripe-years).  The simulator therefore tracks *damage state only*, the
way SMRSU keeps per-stripe state vectors: an integer matrix of bad-sector
counts per (stripe, chunk) plus a failed flag per device.  Whether a
stripe is recoverable is decided by :class:`CoverageModel`, a vectorized
predicate with the same chunk-granularity semantics as the reliability
analysis of §7 / Appendix B -- and a conservative lower bound on what the
actual decoders of :mod:`repro.codes` can repair (asserted in the test
suite against ``StripeCode.tolerates``).

The predicate is general in the device tolerance ``m``: it serves both
the event engine of :mod:`repro.sim.events` (which tracks real sector
damage) and, through ``CoverageModel.m``, the m >= 2 lane dynamics of
the vectorized runner in :mod:`repro.sim.montecarlo`.  The damage state
is agnostic to *why* devices fail -- independent lifetimes, correlated
domain shocks (:mod:`repro.sim.domains`) and batch wear all funnel
through the same ``fail_device`` / ``rebuild`` transitions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.codes.base import StripeCode
from repro.codes.idr import IDRScheme
from repro.codes.reed_solomon import ReedSolomonStripeCode
from repro.codes.sd import SDCode
from repro.codes.stair_adapter import StairStripeCode


@dataclass(frozen=True)
class CoverageModel:
    """Chunk-granularity failure coverage of one stripe code.

    ``kind`` is ``"rs"``, ``"stair"``, ``"sd"`` or ``"idr"``; ``m`` the
    device-level tolerance, ``e`` the STAIR coverage vector, ``s`` the SD
    global-parity count and ``epsilon`` the IDR per-chunk tolerance.

    A per-stripe damage pattern -- ``f`` failed devices plus bad-sector
    counts in the surviving chunks -- is judged recoverable as in the
    analysis: ``m - f`` unused device-level erasures absorb the worst
    damaged chunks, and the remaining counts must fit the code's
    sector-level coverage (none for RS; sum ≤ s for SD; the sorted ``e``
    vector for STAIR; ≤ ε per chunk for IDR).
    """

    kind: str
    m: int
    r: int
    e: tuple[int, ...] = ()
    s: int = 0
    epsilon: int = 0

    @classmethod
    def from_code(cls, code: StripeCode) -> "CoverageModel":
        """Derive the coverage of any registered stripe code."""
        if isinstance(code, StairStripeCode):
            return cls(kind="stair", m=code.config.m, r=code.r,
                       e=tuple(code.config.e), s=int(sum(code.config.e)))
        if isinstance(code, SDCode):
            return cls(kind="sd", m=code.m, r=code.r, s=code.s)
        if isinstance(code, IDRScheme):
            return cls(kind="idr", m=code.m, r=code.r, epsilon=code.epsilon)
        if isinstance(code, ReedSolomonStripeCode):
            return cls(kind="rs", m=code.m, r=code.r)
        raise TypeError(
            f"no coverage model for {type(code).__name__}; construct a "
            "CoverageModel explicitly"
        )

    # ------------------------------------------------------------------ #
    def stripes_recoverable(self, sector_errors: np.ndarray,
                            failed: np.ndarray) -> np.ndarray:
        """Vectorized recoverability over all stripes.

        Parameters
        ----------
        sector_errors:
            Integer matrix of shape ``(num_stripes, n)``: bad-sector
            counts per (stripe, chunk).
        failed:
            Boolean vector of length ``n``: device health.

        Returns a boolean vector of length ``num_stripes``.
        """
        sector_errors = np.asarray(sector_errors)
        failed = np.asarray(failed, dtype=bool)
        num_stripes = sector_errors.shape[0]
        num_failed = int(failed.sum())
        if num_failed > self.m:
            return np.zeros(num_stripes, dtype=bool)
        surviving = sector_errors[:, ~failed]
        if surviving.shape[1] == 0:
            return np.ones(num_stripes, dtype=bool)
        # Sort per-stripe chunk damage descending; the first `spare`
        # columns are absorbed by unused device-level erasures.
        counts = -np.sort(-surviving, axis=1)
        spare = self.m - num_failed
        rest = counts[:, spare:]
        if rest.shape[1] == 0:
            return np.ones(num_stripes, dtype=bool)
        if self.kind == "rs":
            return rest[:, 0] == 0
        if self.kind == "sd":
            return rest.sum(axis=1) <= self.s
        if self.kind == "idr":
            return rest[:, 0] <= self.epsilon
        if self.kind == "stair":
            cap = np.zeros(rest.shape[1], dtype=sector_errors.dtype)
            e_desc = sorted(self.e, reverse=True)[: rest.shape[1]]
            cap[: len(e_desc)] = e_desc
            return np.all(rest <= cap, axis=1)
        raise ValueError(f"unknown coverage kind {self.kind!r}")

    def tolerates_counts(self, counts: tuple[int, ...],
                         num_failed_devices: int = 0) -> bool:
        """Scalar convenience: one stripe's surviving-chunk damage counts."""
        n = len(counts) + num_failed_devices
        if n == 0:
            return True
        errors = np.zeros((1, n), dtype=np.int64)
        errors[0, : len(counts)] = counts
        failed = np.zeros(n, dtype=bool)
        failed[len(counts):] = True
        return bool(self.stripes_recoverable(errors, failed)[0])


class SimulatedArray:
    """Damage-state twin of :class:`repro.array.StorageArray`.

    Tracks which devices are down and how many bad sectors each
    (stripe, chunk) cell carries -- never the data itself.  All bulk
    operations are numpy-vectorized over stripes.
    """

    def __init__(self, code: StripeCode, num_stripes: int,
                 coverage: CoverageModel | None = None) -> None:
        if num_stripes < 1:
            raise ValueError("num_stripes must be >= 1")
        self.code = code
        self.coverage = coverage or CoverageModel.from_code(code)
        self.n = code.n
        self.r = code.r
        self.num_stripes = num_stripes
        self.sector_errors = np.zeros((num_stripes, self.n), dtype=np.int16)
        self.device_failed = np.zeros(self.n, dtype=bool)

    # ------------------------------------------------------------------ #
    # Damage injection
    # ------------------------------------------------------------------ #
    def fail_device(self, device: int) -> None:
        self.device_failed[device] = True
        # The device's latent errors are subsumed by the chunk loss.
        self.sector_errors[:, device] = 0

    def add_sector_errors(self, stripe: int, device: int,
                          count: int = 1) -> None:
        """Add a burst of ``count`` bad sectors to one chunk (capped at r)."""
        if self.device_failed[device]:
            return
        total = int(self.sector_errors[stripe, device]) + int(count)
        self.sector_errors[stripe, device] = min(total, self.r)

    # ------------------------------------------------------------------ #
    # Health
    # ------------------------------------------------------------------ #
    @property
    def num_failed(self) -> int:
        return int(self.device_failed.sum())

    @property
    def total_bad_sectors(self) -> int:
        return int(self.sector_errors.sum())

    def stripes_recoverable(self) -> np.ndarray:
        return self.coverage.stripes_recoverable(self.sector_errors,
                                                 self.device_failed)

    def all_recoverable(self) -> bool:
        return bool(self.stripes_recoverable().all())

    def stripe_recoverable(self, stripe: int) -> bool:
        return bool(self.coverage.stripes_recoverable(
            self.sector_errors[stripe: stripe + 1], self.device_failed)[0])

    # ------------------------------------------------------------------ #
    # Repair
    # ------------------------------------------------------------------ #
    def scrub(self) -> int:
        """Repair latent sector errors everywhere (callers check
        :meth:`all_recoverable` first, mirroring ``StorageArray.scrub``
        raising on unrecoverable stripes).  Returns sectors repaired."""
        repaired = int(self.sector_errors[:, ~self.device_failed].sum())
        self.sector_errors[:, ~self.device_failed] = 0
        return repaired

    def rebuild(self, devices: list[int] | None = None) -> list[int]:
        """Replace failed devices; returns their ids (coverage pre-checked).

        With ``devices`` only that subset is replaced -- devices that
        failed after a rebuild started need their own rebuild pass.
        """
        if devices is None:
            replaced = np.flatnonzero(self.device_failed).tolist()
        else:
            replaced = [d for d in devices if self.device_failed[d]]
        self.device_failed[replaced] = False
        return replaced

    def clear_stripe_errors(self, stripe: int) -> None:
        """A full-stripe write rewrites every surviving chunk."""
        self.sector_errors[stripe, ~self.device_failed] = 0


class SimulatedCluster:
    """A fleet of identical arrays protected by one stripe code."""

    def __init__(self, code: StripeCode, num_arrays: int,
                 stripes_per_array: int) -> None:
        if num_arrays < 1:
            raise ValueError("num_arrays must be >= 1")
        coverage = CoverageModel.from_code(code)
        self.code = code
        self.arrays = [SimulatedArray(code, stripes_per_array, coverage)
                       for _ in range(num_arrays)]

    @property
    def num_devices(self) -> int:
        return sum(array.n for array in self.arrays)

    def damage_summary(self) -> dict[str, int]:
        return {
            "failed_devices": sum(a.num_failed for a in self.arrays),
            "bad_sectors": sum(a.total_bad_sectors for a in self.arrays),
            "unrecoverable_stripes": sum(
                int((~a.stripes_recoverable()).sum()) for a in self.arrays),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SimulatedCluster({self.code.describe()}, "
                f"{len(self.arrays)} arrays x "
                f"{self.arrays[0].num_stripes} stripes)")
