"""Device lifetime, repair-time and sector-error models for the simulator.

The analytical models of §7 assume exponential device lifetimes (rate λ)
and exponential rebuilds (rate μ).  The simulator accepts those, the
Weibull wear-out model that field studies (and the SMRSU-style storage
simulators) use for aging devices, and -- via :mod:`repro.sim.traces` --
*empirical* models fitted from failure traces
(:class:`~repro.sim.traces.EmpiricalLifetime`'s piecewise-exponential
hazard, Kaplan-Meier resampling, or verbatim trace replay), so lifetimes
no longer have to be parametric at all.  All models draw from a
``numpy.random.Generator`` so that every simulation is reproducible from
a single seed.

A :class:`RepairModel` samples the *nominal* time to rebuild one device
at its full per-device rebuild rate.  :class:`BandwidthRepair` derives
that time physically (device capacity / per-device rebuild rate); the
event engine of :mod:`repro.sim.events` can additionally divide a shared
cluster repair bandwidth across concurrent rebuilds (its
``repair_streams`` knob), stretching the sampled nominal times under
contention.

Times are in hours throughout, matching :mod:`repro.reliability`.
"""

from __future__ import annotations

import abc
import math

import numpy as np

from repro.reliability.sector_models import (
    DEFAULT_SECTOR_BYTES,
    sector_failure_probability,
)


class LifetimeModel(abc.ABC):
    """Distribution of a fresh device's time to failure.

    Besides sampling, every model exposes its log-density
    (:meth:`log_pdf`) and log-survival function (:meth:`log_survival`).
    These power importance sampling: :class:`BiasedLifetime` draws from
    an accelerated *proposal* distribution and scores each draw against
    the *target* distribution, so rare-event estimators
    (:mod:`repro.sim.rare`) stay unbiased for the true failure law.

    Implementations need not be parametric: the trace-driven models of
    :mod:`repro.sim.traces` fit the protocol from observed failure
    data (piecewise-exponential hazards, Kaplan-Meier resampling,
    verbatim replay).

    Usage -- any model slots into any engine through the same four
    methods::

        model = ExponentialLifetime(500_000.0)
        draws = model.sample(np.random.default_rng(0), 1000)
        model.log_survival(draws)      # log P(lifetime > draws)
        model.time_scaled(3.0)         # a 3x-accelerated variant
    """

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator,
               size: int | tuple[int, ...]) -> np.ndarray:
        """Draw lifetimes (hours) for newly installed devices."""

    @abc.abstractmethod
    def log_pdf(self, hours: np.ndarray | float) -> np.ndarray:
        """Log-density of the lifetime distribution at ``hours``."""

    @abc.abstractmethod
    def log_survival(self, hours: np.ndarray | float) -> np.ndarray:
        """Log of P(lifetime > ``hours``) (the log complementary CDF)."""

    @property
    @abc.abstractmethod
    def mean_hours(self) -> float:
        """Expected lifetime (MTTF) in hours."""

    def time_scaled(self, factor: float) -> "LifetimeModel":
        """Accelerated-failure-time scaling: every lifetime divided by
        ``factor``.

        This is how correlated-batch wear
        (:class:`repro.sim.domains.FailureDomains.batch_accel`) is
        applied: a bad-batch device's lifetime is the base model's draw
        divided by the acceleration, so an exponential device simply
        fails at ``factor * lambda`` while a Weibull device keeps its
        shape and shrinks its characteristic life.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support time scaling")


class ExponentialLifetime(LifetimeModel):
    """Memoryless lifetimes with MTTF ``1/λ`` (the paper's assumption).

    Usage -- the §7 default, and the only lifetime family whose MTTDL
    the analytic chain can check exactly::

        model = ExponentialLifetime(500_000.0)   # the paper's 1/λ
        model.rate                               # λ = 2e-6 per hour
        model.sample(np.random.default_rng(0), 8)
    """

    def __init__(self, mttf_hours: float = 500_000.0) -> None:
        if mttf_hours <= 0:
            raise ValueError("mttf_hours must be positive")
        self.mttf_hours = mttf_hours

    @property
    def rate(self) -> float:
        """λ (per hour)."""
        return 1.0 / self.mttf_hours

    @property
    def mean_hours(self) -> float:
        return self.mttf_hours

    def sample(self, rng: np.random.Generator,
               size: int | tuple[int, ...]) -> np.ndarray:
        return rng.exponential(self.mttf_hours, size=size)

    def log_pdf(self, hours: np.ndarray | float) -> np.ndarray:
        x = np.asarray(hours, dtype=float)
        return np.where(x >= 0.0,
                        -math.log(self.mttf_hours) - x / self.mttf_hours,
                        -math.inf)

    def log_survival(self, hours: np.ndarray | float) -> np.ndarray:
        x = np.asarray(hours, dtype=float)
        return np.where(x >= 0.0, -x / self.mttf_hours, 0.0)

    def time_scaled(self, factor: float) -> "ExponentialLifetime":
        if factor <= 0:
            raise ValueError("time-scaling factor must be positive")
        return ExponentialLifetime(self.mttf_hours / factor)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExponentialLifetime(mttf={self.mttf_hours:g}h)"


class WeibullLifetime(LifetimeModel):
    """Weibull lifetimes: wear-out (shape > 1) or infant mortality (< 1).

    ``shape`` is the Weibull k (β in the SMRSU configuration files) and
    ``scale`` the characteristic life η; ``location`` shifts the whole
    distribution right (a guaranteed failure-free period γ).  With
    ``shape = 1`` this degenerates to :class:`ExponentialLifetime` with
    MTTF = ``location + scale``.

    Usage -- wear-out with the mean pinned at a target MTTF (the CLI's
    ``--weibull-shape`` recipe)::

        import math
        shape = 2.0
        scale = 500_000.0 / math.gamma(1.0 + 1.0 / shape)
        model = WeibullLifetime(scale, shape)
        round(model.mean_hours)    # 500000
    """

    def __init__(self, scale_hours: float, shape: float,
                 location_hours: float = 0.0) -> None:
        if scale_hours <= 0:
            raise ValueError("scale_hours must be positive")
        if shape <= 0:
            raise ValueError("shape must be positive")
        if location_hours < 0:
            raise ValueError("location_hours must be >= 0")
        self.scale_hours = scale_hours
        self.shape = shape
        self.location_hours = location_hours

    @property
    def mean_hours(self) -> float:
        return self.location_hours + self.scale_hours * math.gamma(
            1.0 + 1.0 / self.shape)

    def sample(self, rng: np.random.Generator,
               size: int | tuple[int, ...]) -> np.ndarray:
        return (self.location_hours
                + self.scale_hours * rng.weibull(self.shape, size=size))

    def log_pdf(self, hours: np.ndarray | float) -> np.ndarray:
        x = np.asarray(hours, dtype=float)
        z = (x - self.location_hours) / self.scale_hours
        k = self.shape
        with np.errstate(divide="ignore", invalid="ignore"):
            inside = (math.log(k / self.scale_hours)
                      + (k - 1.0) * np.log(z) - z ** k)
        return np.where(z > 0.0, inside, -math.inf)

    def log_survival(self, hours: np.ndarray | float) -> np.ndarray:
        x = np.asarray(hours, dtype=float)
        z = (x - self.location_hours) / self.scale_hours
        return np.where(z > 0.0, -np.maximum(z, 0.0) ** self.shape, 0.0)

    def time_scaled(self, factor: float) -> "WeibullLifetime":
        if factor <= 0:
            raise ValueError("time-scaling factor must be positive")
        return WeibullLifetime(self.scale_hours / factor, self.shape,
                               self.location_hours / factor)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"WeibullLifetime(scale={self.scale_hours:g}h, "
                f"shape={self.shape:g}, loc={self.location_hours:g}h)")


class BiasedLifetime(LifetimeModel):
    """Importance-sampling wrapper: sample a *proposal*, score a *target*.

    Draws come from ``proposal`` (typically an accelerated-failure
    version of ``target``); the per-draw log-likelihood ratios keep any
    downstream estimator unbiased for the target distribution:

    * :meth:`log_weight` -- density ratio ``log f_target(x) -
      log f_proposal(x)`` for a lifetime *observed to end* at ``x``;
    * :meth:`log_weight_survival` -- survival ratio ``log S_target(t) -
      log S_proposal(t)`` for a device *observed to still be alive* at
      age ``t`` (the drawn value beyond ``t`` carries no information and
      must not be scored -- weighting full unused draws under strong
      acceleration has unbounded variance).

    The rare-event estimator of :mod:`repro.sim.rare` uses exactly this
    adapted scoring; the plain lane machine of
    :mod:`repro.sim.montecarlo` scores full draws and is therefore only
    suitable for *mild* biasing (acceleration below ~2x).
    """

    def __init__(self, target: LifetimeModel,
                 proposal: LifetimeModel) -> None:
        self.target = target
        self.proposal = proposal

    @classmethod
    def accelerated(cls, target: LifetimeModel,
                    factor: float) -> "BiasedLifetime":
        """Bias ``target`` toward earlier failures by ``factor``.

        Exponential targets get an exponential proposal with MTTF
        divided by ``factor``; Weibull targets keep their shape and
        failure-free period but shrink the characteristic life.  Any
        other model with a log-density gets an accelerated self as the
        proposal -- via ``hazard_scaled`` when available (the
        piecewise-exponential
        :class:`~repro.sim.traces.EmpiricalLifetime`, whose
        proportional-hazards scaling keeps zero-density regions
        aligned so the weights stay unbiased), otherwise via
        :meth:`LifetimeModel.time_scaled`.
        """
        if factor <= 0:
            raise ValueError("acceleration factor must be positive")
        if isinstance(target, BiasedLifetime):
            raise TypeError(
                "cannot accelerate a BiasedLifetime wrapper (nesting "
                "proposals would score the wrong density); accelerate "
                "the underlying target instead")
        if isinstance(target, ExponentialLifetime):
            proposal: LifetimeModel = ExponentialLifetime(
                target.mttf_hours / factor)
        elif isinstance(target, WeibullLifetime):
            proposal = WeibullLifetime(target.scale_hours / factor,
                                       target.shape,
                                       target.location_hours)
        else:
            try:
                # Fail fast at construction: biasing scores density
                # ratios, so density-less models (KM resampling, trace
                # replay) must be rejected here, not on the first
                # log_weight call deep inside a batch loop.
                target.log_pdf(0.0)
                # Prefer proportional-hazards scaling: an AFT shift of
                # a piecewise model can move a zero-density interval
                # off the target's, silently losing weight mass.
                scaled = getattr(target, "hazard_scaled", None)
                proposal = (scaled(factor) if callable(scaled)
                            else target.time_scaled(factor))
            except (NotImplementedError, TypeError):
                raise TypeError(
                    f"no accelerated proposal rule for "
                    f"{type(target).__name__} (importance sampling "
                    "needs a log-density and time_scaled support); "
                    "construct BiasedLifetime(target, proposal) "
                    "explicitly"
                ) from None
        return cls(target, proposal)

    @property
    def acceleration(self) -> float:
        """How much earlier proposal draws fail on average."""
        return self.target.mean_hours / self.proposal.mean_hours

    @property
    def mean_hours(self) -> float:
        """Mean of the *sampling* (proposal) distribution."""
        return self.proposal.mean_hours

    def sample(self, rng: np.random.Generator,
               size: int | tuple[int, ...]) -> np.ndarray:
        return self.proposal.sample(rng, size)

    def log_pdf(self, hours: np.ndarray | float) -> np.ndarray:
        """Log-density of the sampling (proposal) distribution."""
        return self.proposal.log_pdf(hours)

    def log_survival(self, hours: np.ndarray | float) -> np.ndarray:
        """Log-survival of the sampling (proposal) distribution."""
        return self.proposal.log_survival(hours)

    def log_weight(self, hours: np.ndarray | float) -> np.ndarray:
        """Log-likelihood ratio for a lifetime that ended at ``hours``."""
        return (np.asarray(self.target.log_pdf(hours))
                - np.asarray(self.proposal.log_pdf(hours)))

    def log_weight_survival(self,
                            hours: np.ndarray | float) -> np.ndarray:
        """Log-likelihood ratio for surviving past age ``hours``."""
        return (np.asarray(self.target.log_survival(hours))
                - np.asarray(self.proposal.log_survival(hours)))

    def time_scaled(self, factor: float) -> "BiasedLifetime":
        return BiasedLifetime(self.target.time_scaled(factor),
                              self.proposal.time_scaled(factor))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"BiasedLifetime(target={self.target!r}, "
                f"proposal={self.proposal!r})")


class RepairModel(abc.ABC):
    """Distribution of the time to rebuild one failed device.

    Usage -- the three shipped models cover the Markov shape, a fixed
    duration, and a physically derived one::

        ExponentialRepair(17.8)              # the paper's 1/μ
        DeterministicRepair(10.0)            # exactly 10 h per rebuild
        BandwidthRepair(4e12, 100.0)         # 4 TB at 100 MB/s
    """

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator,
               size: int | tuple[int, ...]) -> np.ndarray:
        """Draw rebuild durations (hours)."""

    @property
    @abc.abstractmethod
    def mean_hours(self) -> float:
        """Expected rebuild time (1/μ) in hours."""


class ExponentialRepair(RepairModel):
    """Exponential rebuilds with mean ``1/μ`` (the Markov model's shape)."""

    def __init__(self, mean_hours: float = 17.8) -> None:
        if mean_hours <= 0:
            raise ValueError("mean_hours must be positive")
        self._mean_hours = mean_hours

    @property
    def rate(self) -> float:
        """μ (per hour)."""
        return 1.0 / self._mean_hours

    @property
    def mean_hours(self) -> float:
        return self._mean_hours

    def sample(self, rng: np.random.Generator,
               size: int | tuple[int, ...]) -> np.ndarray:
        return rng.exponential(self._mean_hours, size=size)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExponentialRepair(mean={self._mean_hours:g}h)"


class DeterministicRepair(RepairModel):
    """Fixed-duration rebuilds (capacity / rebuild-bandwidth)."""

    def __init__(self, hours: float) -> None:
        if hours <= 0:
            raise ValueError("hours must be positive")
        self.hours = hours

    @property
    def mean_hours(self) -> float:
        return self.hours

    def sample(self, rng: np.random.Generator,
               size: int | tuple[int, ...]) -> np.ndarray:
        return np.full(size, self.hours, dtype=float)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DeterministicRepair({self.hours:g}h)"


class BandwidthRepair(RepairModel):
    """Rebuild time derived from device capacity and per-device rate.

    ``device_capacity_bytes / rebuild_mb_per_s`` gives the nominal time
    to reconstruct one device when the rebuild runs at the device's full
    rebuild rate.  Under the event engine's shared-bandwidth model the
    *effective* time stretches when concurrent rebuilds divide the
    cluster's repair bandwidth (``Scenario.repair_streams``).
    """

    def __init__(self, device_capacity_bytes: float,
                 rebuild_mb_per_s: float) -> None:
        if device_capacity_bytes <= 0:
            raise ValueError("device_capacity_bytes must be positive")
        if rebuild_mb_per_s <= 0:
            raise ValueError("rebuild_mb_per_s must be positive")
        self.device_capacity_bytes = device_capacity_bytes
        self.rebuild_mb_per_s = rebuild_mb_per_s

    @property
    def hours(self) -> float:
        """Nominal single-device rebuild duration at full rate."""
        return self.device_capacity_bytes / (
            self.rebuild_mb_per_s * 1e6 * 3600.0)

    @property
    def mean_hours(self) -> float:
        return self.hours

    def sample(self, rng: np.random.Generator,
               size: int | tuple[int, ...]) -> np.ndarray:
        return np.full(size, self.hours, dtype=float)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"BandwidthRepair({self.device_capacity_bytes:g}B @ "
                f"{self.rebuild_mb_per_s:g}MB/s = {self.hours:g}h)")


class SectorErrorProcess:
    """Poisson arrival of latent sector errors on one device.

    The analysis of §7 works with a *static* per-sector failure
    probability ``P_sec`` -- the chance a sector is found bad during a
    rebuild.  The simulator needs a *process*: errors arrive at rate
    ``rate_per_device_hour`` and persist until the next scrub or write of
    the affected stripe.  :meth:`from_p_bit` converts the paper's
    ``P_bit`` into that rate by matching the steady-state bad-sector
    probability under a scrub interval ``T``: an error arriving uniformly
    within a scrub period survives on average ``T/2`` hours, so
    ``P_sec ≈ rate_per_sector * T / 2``.

    Usage -- calibrate from the paper's ``P_bit`` and a weekly scrub::

        process = SectorErrorProcess.from_p_bit(
            1e-12, sectors_per_device=1024 * 16,
            scrub_interval_hours=168.0)
        process.next_arrival(np.random.default_rng(0), now=0.0)
    """

    def __init__(self, rate_per_device_hour: float) -> None:
        if rate_per_device_hour < 0:
            raise ValueError("rate must be >= 0")
        self.rate_per_device_hour = rate_per_device_hour

    @classmethod
    def from_p_bit(cls, p_bit: float, sectors_per_device: int,
                   scrub_interval_hours: float,
                   sector_bytes: int = DEFAULT_SECTOR_BYTES,
                   ) -> "SectorErrorProcess":
        """Match steady-state ``P_sec`` under the given scrub interval."""
        if scrub_interval_hours <= 0:
            raise ValueError("scrub_interval_hours must be positive")
        p_sec = sector_failure_probability(p_bit, sector_bytes)
        rate_per_sector = 2.0 * p_sec / scrub_interval_hours
        return cls(rate_per_sector * sectors_per_device)

    def next_arrival(self, rng: np.random.Generator, now: float) -> float:
        """Absolute time of the next error on this device (inf if rate 0)."""
        if self.rate_per_device_hour == 0.0:
            return math.inf
        return now + float(rng.exponential(1.0 / self.rate_per_device_hour))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SectorErrorProcess(rate={self.rate_per_device_hour:g}/h)"
