"""Binary-heap discrete-event engine for one cluster trajectory.

The engine plays a single, fully detailed cluster lifetime: device
failures drawn from a :class:`~repro.sim.lifetimes.LifetimeModel`
(parametric, fitted from a failure trace, or -- with
:class:`~repro.sim.traces.TraceReplayLifetime` -- the observed
lifespans replayed verbatim, censored records never failing),
correlated domain shocks (rack / enclosure outages from a
:class:`~repro.sim.domains.FailureDomains` spec), rebuilds under a
contention-aware repair model, latent-sector-error bursts, periodic
scrubs and stripe writes from a Poisson workload model.  It is the
ground truth that the vectorized batch runner of
:mod:`repro.sim.montecarlo` is validated against, and the only engine
that captures effects outside the Markov model (scrub intervals, repair
contention, normal-mode double damage, cross-array shock coupling).

Failure domains turn the engine's per-device failure process into a
correlated one: each rack (and optionally each enclosure within it)
carries a Poisson shock process, and a shock fails every healthy member
device simultaneously -- each independently with the domain's kill
probability.  A shock that leaves more than ``m`` devices of one array
down loses data outright; one that does not triggers simultaneous
rebuilds across every struck array, exactly the rebuild-storm regime in
which processor-sharing repair stretches rebuild windows the most.
Bad-batch devices (``FailureDomains.batch_fraction`` /
``batch_accel``) draw their lifetimes from an accelerated-failure-time
scaling of the scenario's lifetime model.

Repair is modelled physically rather than as a bare concurrency cap:
each rebuild owes a *nominal* amount of work (the repair model's sampled
duration -- the time one rebuild takes at the device's full per-device
rebuild rate), and the cluster's shared repair bandwidth
(``Scenario.repair_streams``, in units of one device's rebuild rate) is
divided evenly across all in-flight rebuilds.  With ``c`` concurrent
rebuilds each proceeds at ``min(1, streams / c)`` of full speed, so
rebuild times stretch exactly when the cluster is busiest -- the regime
where the closed forms are most optimistic.  ``rebuild_concurrency``
remains available as an optional hard admission cap (queued rebuilds
wait for a free slot); ``repair_streams=None`` disables bandwidth
sharing entirely.

Events are ordered by ``(time, seq)`` where ``seq`` is a monotonically
increasing counter, so simultaneous events fire in insertion order and
every run is deterministic for a fixed seed.  Rebuild completions are
rescheduled (lazily cancelling the superseded event) whenever the set of
in-flight rebuilds -- and therefore the shared per-rebuild speed --
changes.
"""

from __future__ import annotations

import enum
import heapq
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

from repro.array.failures import BurstLengthDistribution
from repro.codes.base import StripeCode
from repro.sim.cluster import SimulatedCluster
from repro.sim.domains import FailureDomains, ShockGroup
from repro.sim.lifetimes import (
    ExponentialLifetime,
    ExponentialRepair,
    LifetimeModel,
    RepairModel,
    SectorErrorProcess,
)


class EventType(enum.Enum):
    """Kinds of events the engine processes.

    Usage -- inject a failure by hand instead of waiting for a sampled
    one (the tutorial pattern of ``docs/simulator.md``)::

        sim.queue.schedule(1.0, EventType.DEVICE_FAILURE,
                           array=0, device=3)
    """

    DEVICE_FAILURE = "device_failure"
    REBUILD_COMPLETE = "rebuild_complete"
    SECTOR_ERROR = "sector_error"
    SCRUB = "scrub"
    STRIPE_WRITE = "stripe_write"
    DOMAIN_SHOCK = "domain_shock"


@dataclass(order=True)
class Event:
    """One scheduled event; heap-ordered by ``(time, seq)``.

    Usage::

        event = queue.schedule(17.8, EventType.SCRUB, array=0)
        event.payload["array"]      # 0
        queue.cancel(event)         # lazily skipped when popped
    """

    time: float
    seq: int
    type: EventType = field(compare=False)
    payload: dict[str, Any] = field(compare=False, default_factory=dict)


class EventQueue:
    """A binary-heap priority queue of :class:`Event` objects.

    Usage::

        queue = EventQueue()
        queue.schedule(2.0, EventType.DEVICE_FAILURE, array=0, device=1)
        queue.peek_time()                   # 2.0
        [e.type for e in queue.drain()]     # pops in time order
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, time: float, type: EventType, **payload: Any) -> Event:
        """Insert an event; returns it (so callers can cancel it)."""
        if not math.isfinite(time):
            raise ValueError(f"cannot schedule event at time {time!r}")
        event = Event(time=float(time), seq=self._seq, type=type,
                      payload=payload)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        return heapq.heappop(self._heap)

    def peek_time(self) -> float:
        """Time of the earliest event (inf when empty)."""
        return self._heap[0].time if self._heap else math.inf

    def cancel(self, event: Event) -> None:
        """Lazily cancel an event (it is skipped when popped)."""
        event.payload["cancelled"] = True

    def drain(self) -> Iterator[Event]:
        """Pop events in order, skipping cancelled ones."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.payload.get("cancelled"):
                yield event


@dataclass
class Scenario:
    """Everything that defines one simulated cluster deployment.

    Usage::

        from repro.codes import parse_code_spec
        from repro.sim import FailureDomains, Scenario

        scenario = Scenario(
            code=parse_code_spec("sd(n=8,r=16,m=2,s=2)"),
            num_arrays=4, scrub_interval_hours=168.0,
            repair_streams=2.0,
            domains=FailureDomains(racks=8,
                                   rack_shock_rate_per_hour=1e-5))

    The default scenario has no failure domains (devices fail
    independently); attach a
    :class:`~repro.sim.domains.FailureDomains` spec to add rack /
    enclosure shocks and correlated-batch wear.
    """

    code: StripeCode
    num_arrays: int = 1
    stripes_per_array: int = 1024
    lifetime: LifetimeModel = field(default_factory=ExponentialLifetime)
    repair: RepairModel = field(default_factory=ExponentialRepair)
    #: Latent-sector-error arrivals per device (None disables them).
    sector_errors: SectorErrorProcess | None = None
    #: Burst-length distribution for each sector-error arrival (length 1
    #: bursts when None) -- the Schroeder et al. model shared with §7.
    burst_lengths: BurstLengthDistribution | None = None
    #: Hours between scrubs of each array (None disables scrubbing).
    scrub_interval_hours: float | None = None
    #: Poisson rate of full-stripe writes per array per hour.
    write_rate_per_hour: float = 0.0
    #: Optional hard cap on concurrent rebuilds (None = unlimited).
    #: Rebuilds beyond the cap queue for a free slot.  Bandwidth-limited
    #: repair is modelled by ``repair_streams``; the cap only models an
    #: administrative limit on simultaneous rebuild jobs.
    rebuild_concurrency: int | None = None
    #: Cluster-wide repair bandwidth in units of one device's full
    #: rebuild rate: ``c`` concurrent rebuilds each run at
    #: ``min(1, repair_streams / c)`` of full speed.  None disables
    #: bandwidth sharing (every rebuild runs at full per-device rate).
    repair_streams: float | None = None
    #: Correlated failure domains (racks / enclosures / batches); None
    #: means devices fail independently.
    domains: FailureDomains | None = None
    #: Stop the run at this time even without data loss.
    horizon_hours: float = 87_600.0  # ten years

    def __post_init__(self) -> None:
        if self.num_arrays < 1:
            raise ValueError("num_arrays must be >= 1")
        if self.stripes_per_array < 1:
            raise ValueError("stripes_per_array must be >= 1")
        if self.rebuild_concurrency is not None \
                and self.rebuild_concurrency < 1:
            raise ValueError(
                "rebuild_concurrency must be >= 1 (None = unlimited)")
        if self.repair_streams is not None and self.repair_streams <= 0:
            raise ValueError(
                "repair_streams must be positive (None disables sharing)")
        if self.horizon_hours <= 0:
            raise ValueError("horizon_hours must be positive")
        if (self.scrub_interval_hours is not None
                and self.scrub_interval_hours <= 0):
            raise ValueError(
                "scrub_interval_hours must be positive (None disables)")
        if self.write_rate_per_hour < 0:
            raise ValueError("write_rate_per_hour must be >= 0")


@dataclass
class RebuildProgress:
    """Book-keeping for one in-flight rebuild under bandwidth sharing.

    ``remaining_hours`` is the work left *at full per-device rate*; it
    is accrued lazily whenever the shared per-rebuild speed changes.

    Usage -- inspecting the in-flight set mid-run (the rebuild-storm
    tests do this)::

        sim._inflight[array].targets          # devices being rebuilt
        sim._inflight[array].remaining_hours  # work left at full rate
    """

    targets: list[int]
    remaining_hours: float
    updated_at: float
    completion: Event | None = None


@dataclass
class TrajectoryResult:
    """Outcome of one simulated cluster lifetime.

    Usage::

        result = ClusterSimulation(scenario, seed=0).run()
        if result.lost_data:
            print(result.time_to_data_loss, result.cause)
        result.event_counts["domain_shock"]   # shocks processed

    ``cause`` names the loss path (``"device_failures_exceed_m"``,
    ``"rack_shock_exceeds_m"``, ``"unrecoverable_stripes_during_rebuild"``,
    ...) or is None for a trajectory censored at the horizon.
    """

    time_to_data_loss: float | None
    horizon_hours: float
    cause: str | None
    events_processed: int
    event_counts: dict[str, int]
    final_time: float

    @property
    def lost_data(self) -> bool:
        return self.time_to_data_loss is not None


class ClusterSimulation:
    """Discrete-event simulation of one cluster until data loss or horizon.

    Usage::

        sim = ClusterSimulation(scenario, seed=0)
        result = sim.run()
        result.lost_data, result.cause, result.final_time

    Runs are deterministic for a fixed seed.  To play many independent
    trajectories, derive one child generator per trial from a root
    ``numpy.random.Generator`` (the pattern ``repro.sim.cli`` uses).
    """

    def __init__(self, scenario: Scenario,
                 seed: int | np.random.Generator | None = None) -> None:
        self.scenario = scenario
        self.rng = (seed if isinstance(seed, np.random.Generator)
                    else np.random.default_rng(seed))
        self.cluster = SimulatedCluster(
            scenario.code, scenario.num_arrays, scenario.stripes_per_array)
        self.queue = EventQueue()
        self._pending_rebuilds: deque[int] = deque()
        # array -> in-flight rebuild progress; the targets are the
        # devices this rebuild is reconstructing -- a device that fails
        # after the rebuild started is NOT covered by it and needs its
        # own pass.
        self._inflight: dict[int, RebuildProgress] = {}
        self._rebuild_speed = 1.0
        # (array, device) -> the scheduled DEVICE_FAILURE event, so a
        # domain shock that kills the device can cancel it (a rebuilt
        # device would otherwise inherit the stale failure).
        self._pending_failure: dict[tuple[int, int], Event] = {}
        self._shock_groups: tuple[ShockGroup, ...] = ()
        self._batch_lifetime: Any = None
        self._batch_devices: frozenset[int] = frozenset()
        domains = scenario.domains
        if domains is not None:
            self._shock_groups = domains.cluster_shock_groups(
                scenario.num_arrays, scenario.code.n)
            if domains.has_batch_wear:
                self._batch_devices = frozenset(
                    domains.batch_devices(scenario.code.n))
                self._batch_lifetime = scenario.lifetime.time_scaled(
                    domains.batch_accel)

    @property
    def _active_rebuilds(self) -> int:
        return len(self._inflight)

    # ------------------------------------------------------------------ #
    # Scheduling helpers
    # ------------------------------------------------------------------ #
    def _schedule_device_failure(self, array: int, device: int,
                                 now: float) -> None:
        model = (self._batch_lifetime
                 if device in self._batch_devices else self.scenario.lifetime)
        lifetime = float(model.sample(self.rng, 1)[0])
        # Trace replay deals censored records as inf ("no failure was
        # observed for this device"): nothing to schedule.
        if not math.isfinite(lifetime):
            return
        self._pending_failure[(array, device)] = self.queue.schedule(
            now + lifetime, EventType.DEVICE_FAILURE,
            array=array, device=device)

    def _schedule_sector_error(self, array: int, device: int,
                               now: float) -> None:
        process = self.scenario.sector_errors
        if process is None:
            return
        at = process.next_arrival(self.rng, now)
        if math.isfinite(at):
            self.queue.schedule(at, EventType.SECTOR_ERROR,
                                array=array, device=device)

    def _schedule_write(self, array: int, now: float) -> None:
        rate = self.scenario.write_rate_per_hour
        if rate <= 0:
            return
        self.queue.schedule(now + float(self.rng.exponential(1.0 / rate)),
                            EventType.STRIPE_WRITE, array=array)

    def _schedule_shock(self, group: int, now: float) -> None:
        rate = self._shock_groups[group].rate_per_hour
        self.queue.schedule(now + float(self.rng.exponential(1.0 / rate)),
                            EventType.DOMAIN_SHOCK, group=group)

    def _start_or_queue_rebuild(self, array: int, now: float) -> None:
        if array in self._inflight or array in self._pending_rebuilds:
            return
        cap = self.scenario.rebuild_concurrency
        if cap is None or self._active_rebuilds < cap:
            self._start_rebuild(array, now)
        else:
            self._pending_rebuilds.append(array)

    # -- contention-aware repair ---------------------------------------- #
    def _shared_speed(self) -> float:
        """Per-rebuild speed when the repair bandwidth is divided evenly."""
        streams = self.scenario.repair_streams
        concurrent = len(self._inflight)
        if streams is None or concurrent <= streams:
            return 1.0
        return streams / concurrent

    def _accrue_rebuild_progress(self, now: float) -> None:
        """Charge elapsed wall time (at the prevailing shared speed)
        against every in-flight rebuild's remaining work."""
        speed = self._rebuild_speed
        for rebuild in self._inflight.values():
            elapsed = now - rebuild.updated_at
            if elapsed > 0.0:
                rebuild.remaining_hours = max(
                    0.0, rebuild.remaining_hours - elapsed * speed)
            rebuild.updated_at = now

    def _retime_rebuilds(self, now: float) -> None:
        """Reschedule completions after the in-flight set changed.

        Callers must have accrued progress up to ``now`` first.  When the
        shared speed is unchanged, existing completion events stay valid
        and are left alone (no churn in the no-contention case).
        """
        speed = self._shared_speed()
        for array, rebuild in self._inflight.items():
            if rebuild.completion is not None \
                    and speed == self._rebuild_speed:
                continue
            if rebuild.completion is not None:
                self.queue.cancel(rebuild.completion)
            rebuild.completion = self.queue.schedule(
                now + rebuild.remaining_hours / speed,
                EventType.REBUILD_COMPLETE, array=array)
        self._rebuild_speed = speed

    def _start_rebuild(self, array: int, now: float) -> None:
        self._accrue_rebuild_progress(now)
        targets = np.flatnonzero(
            self.cluster.arrays[array].device_failed).tolist()
        # The repair model samples the nominal work: rebuild time at the
        # full per-device rate.  Contention stretches it via the speed.
        work = float(self.scenario.repair.sample(self.rng, 1)[0])
        self._inflight[array] = RebuildProgress(
            targets=targets, remaining_hours=work, updated_at=now)
        self._retime_rebuilds(now)

    def _finish_rebuild_slot(self, array: int, now: float) -> None:
        self._accrue_rebuild_progress(now)
        self._inflight.pop(array, None)
        if self._pending_rebuilds:
            # _start_rebuild accrues (a no-op now) and retimes survivors.
            self._start_rebuild(self._pending_rebuilds.popleft(), now)
        else:
            self._retime_rebuilds(now)

    # ------------------------------------------------------------------ #
    def run(self) -> TrajectoryResult:
        """Play the trajectory; returns the (possibly censored) outcome."""
        scenario = self.scenario
        counts = {t.value: 0 for t in EventType}
        for a, array in enumerate(self.cluster.arrays):
            for d in range(array.n):
                self._schedule_device_failure(a, d, 0.0)
                self._schedule_sector_error(a, d, 0.0)
            if scenario.scrub_interval_hours is not None:
                # Stagger scrubs so arrays do not all scrub in lock-step.
                offset = scenario.scrub_interval_hours * (a + 1) / \
                    scenario.num_arrays
                self.queue.schedule(offset, EventType.SCRUB, array=a)
            self._schedule_write(a, 0.0)
        for group in range(len(self._shock_groups)):
            self._schedule_shock(group, 0.0)

        processed = 0
        for event in self.queue.drain():
            if event.time > scenario.horizon_hours:
                return TrajectoryResult(None, scenario.horizon_hours, None,
                                        processed, counts,
                                        scenario.horizon_hours)
            processed += 1
            counts[event.type.value] += 1
            loss_cause = self._handle(event)
            if loss_cause is not None:
                return TrajectoryResult(event.time, scenario.horizon_hours,
                                        loss_cause, processed, counts,
                                        event.time)
        return TrajectoryResult(None, scenario.horizon_hours, None,
                                processed, counts, scenario.horizon_hours)

    # ------------------------------------------------------------------ #
    def _handle(self, event: Event) -> str | None:
        """Apply one event; returns a data-loss cause string or None."""
        handler = {
            EventType.DEVICE_FAILURE: self._on_device_failure,
            EventType.REBUILD_COMPLETE: self._on_rebuild_complete,
            EventType.SECTOR_ERROR: self._on_sector_error,
            EventType.SCRUB: self._on_scrub,
            EventType.STRIPE_WRITE: self._on_stripe_write,
            EventType.DOMAIN_SHOCK: self._on_domain_shock,
        }[event.type]
        return handler(event)

    def _on_device_failure(self, event: Event) -> str | None:
        a, d = event.payload["array"], event.payload["device"]
        array = self.cluster.arrays[a]
        self._pending_failure.pop((a, d), None)
        if array.device_failed[d]:
            return None  # stale event for a device already down
        array.fail_device(d)
        if array.num_failed > array.coverage.m:
            return "device_failures_exceed_m"
        self._start_or_queue_rebuild(a, event.time)
        return None

    def _on_rebuild_complete(self, event: Event) -> str | None:
        a = event.payload["array"]
        array = self.cluster.arrays[a]
        # A rebuild reads every surviving chunk; stripes whose damage
        # exceeds the code's coverage are unrecoverable -- the μ·P_arr
        # loss path of the Markov model.
        if not array.all_recoverable():
            return "unrecoverable_stripes_during_rebuild"
        rebuild = self._inflight.get(a)
        targets = rebuild.targets if rebuild is not None else []
        replaced = array.rebuild(targets)
        self._finish_rebuild_slot(a, event.time)
        for d in replaced:
            self._schedule_device_failure(a, d, event.time)
        # Devices that failed while this rebuild ran (m >= 2 only --
        # with m = 1 a second failure already lost data) need their own
        # repair window.
        if array.num_failed:
            self._start_or_queue_rebuild(a, event.time)
        return None

    def _on_sector_error(self, event: Event) -> str | None:
        a, d = event.payload["array"], event.payload["device"]
        array = self.cluster.arrays[a]
        self._schedule_sector_error(a, d, event.time)
        if array.device_failed[d]:
            return None  # errors on a dead device are moot
        length = 1
        if self.scenario.burst_lengths is not None:
            length = int(self.scenario.burst_lengths.sample(self.rng)[0])
        if length < 1:
            return None
        stripe = int(self.rng.integers(0, array.num_stripes))
        array.add_sector_errors(stripe, d, length)
        return None

    def _on_scrub(self, event: Event) -> str | None:
        a = event.payload["array"]
        array = self.cluster.arrays[a]
        interval = self.scenario.scrub_interval_hours
        assert interval is not None
        self.queue.schedule(event.time + interval, EventType.SCRUB, array=a)
        # The scrub reads every stripe: damage beyond coverage is detected
        # now (normal-mode double damage the Markov model ignores).
        if not array.all_recoverable():
            return "unrecoverable_stripes_found_by_scrub"
        array.scrub()
        return None

    def _on_domain_shock(self, event: Event) -> str | None:
        """A rack/enclosure shock: fail every healthy member at once.

        Each healthy member device fails independently with the group's
        kill probability.  An array left with more than ``m`` devices
        down loses data outright; every other struck array starts (or
        queues) a rebuild immediately -- the simultaneous rebuild storm
        that contention-aware repair stretches.
        """
        group = self._shock_groups[event.payload["group"]]
        self._schedule_shock(event.payload["group"], event.time)
        struck: list[int] = []
        for a, d in group.devices:
            array = self.cluster.arrays[a]
            if array.device_failed[d]:
                continue
            if group.kill_probability < 1.0 \
                    and self.rng.random() >= group.kill_probability:
                continue
            pending = self._pending_failure.pop((a, d), None)
            if pending is not None:
                self.queue.cancel(pending)
            array.fail_device(d)
            if a not in struck:
                struck.append(a)
        for a in struck:
            array = self.cluster.arrays[a]
            if array.num_failed > array.coverage.m:
                return f"{group.level}_shock_exceeds_m"
        for a in struck:
            self._start_or_queue_rebuild(a, event.time)
        return None

    def _on_stripe_write(self, event: Event) -> str | None:
        a = event.payload["array"]
        array = self.cluster.arrays[a]
        self._schedule_write(a, event.time)
        stripe = int(self.rng.integers(0, array.num_stripes))
        if not array.stripe_recoverable(stripe):
            return "write_hit_unrecoverable_stripe"
        # A full-stripe write re-encodes and rewrites every surviving
        # chunk, clearing latent errors in the stripe (Device.write
        # semantics in repro.array.device).
        array.clear_stripe_errors(stripe)
        return None
