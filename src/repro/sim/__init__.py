"""Monte Carlo cluster reliability simulator (§7 cross-validation).

The analytical reliability models of :mod:`repro.reliability` (the
critical-mode Markov chain, ``P_str`` and the system-level MTTDL of
Eq. 7-11) assume exponential lifetimes and a single array.  This package
complements them with simulation:

* :mod:`repro.sim.lifetimes` -- exponential and Weibull device-lifetime
  models, repair-time models and a latent-sector-error arrival process
  parameterised from the same ``P_bit`` as the analysis.
* :mod:`repro.sim.events` -- a binary-heap discrete-event engine driving
  one cluster trajectory in full detail (device failures, rebuild
  completions with bounded repair bandwidth, latent-sector-error bursts,
  periodic scrubs, stripe writes from a workload model).
* :mod:`repro.sim.cluster` -- the simulated fleet: per-stripe damage
  state vectors and a vectorized recoverability predicate for any
  registered stripe code (STAIR, RS/RAID, SD).
* :mod:`repro.sim.montecarlo` -- a numpy-vectorized batch runner that
  simulates thousands of independent array/cluster lifetimes at once and
  reports MTTDL and probability-of-data-loss with confidence intervals.
* :mod:`repro.sim.cli` -- run scenarios from textual code specs such as
  ``stair(n=8,r=16,m=1,e=(1,2))``.

In the exponential case the Monte Carlo MTTDL statistically matches
:func:`repro.reliability.mttdl_array` (asserted by the test suite); the
simulator then generalises to Weibull wear-out, finite scrub intervals
and repair-bandwidth contention, which the closed forms cannot cover.
"""

from repro.sim.cluster import CoverageModel, SimulatedArray, SimulatedCluster
from repro.sim.events import Event, EventQueue, EventType
from repro.sim.lifetimes import (
    DeterministicRepair,
    ExponentialLifetime,
    ExponentialRepair,
    LifetimeModel,
    RepairModel,
    SectorErrorProcess,
    WeibullLifetime,
)
from repro.sim.montecarlo import (
    MonteCarloResult,
    code_reliability_from_code,
    simulate_array_lifetimes,
    simulate_cluster_lifetimes,
)

__all__ = [
    "CoverageModel",
    "SimulatedArray",
    "SimulatedCluster",
    "Event",
    "EventQueue",
    "EventType",
    "LifetimeModel",
    "ExponentialLifetime",
    "WeibullLifetime",
    "RepairModel",
    "ExponentialRepair",
    "DeterministicRepair",
    "SectorErrorProcess",
    "MonteCarloResult",
    "simulate_array_lifetimes",
    "simulate_cluster_lifetimes",
    "code_reliability_from_code",
]
