"""Monte Carlo cluster reliability simulator (§7 cross-validation).

The analytical reliability models of :mod:`repro.reliability` (the
critical-mode Markov chains, ``P_str`` and the system-level MTTDL of
Eq. 7-11) assume exponential lifetimes and a single array.  This package
complements them with simulation:

* :mod:`repro.sim.lifetimes` -- exponential and Weibull device-lifetime
  models, repair-time models (including :class:`BandwidthRepair`, which
  derives the nominal rebuild time from device capacity and per-device
  rebuild rate) and a latent-sector-error arrival process parameterised
  from the same ``P_bit`` as the analysis.
* :mod:`repro.sim.traces` -- empirical lifetimes from failure traces: a
  drive-stats-style CSV loader (daily snapshots -> right-censored
  per-device lifespans), Kaplan-Meier / Nelson-Aalen estimators, the
  piecewise-exponential :class:`EmpiricalLifetime` (full
  ``LifetimeModel`` protocol, so it runs in every engine including the
  rare-event estimator), Kaplan-Meier resampling, verbatim trace
  replay for the event engine, and a seeded synthetic-trace generator.
* :mod:`repro.sim.domains` -- correlated failure domains: a
  :class:`FailureDomains` spec describing racks, enclosures and drive
  batches (per-domain Poisson shock processes that fail every member
  device at once, and batch-lifetime acceleration), consumed by all
  three engines.
* :mod:`repro.sim.events` -- a binary-heap discrete-event engine driving
  one cluster trajectory in full detail (device failures, domain
  shocks, rebuilds under a contention-aware repair model that divides
  shared cluster repair bandwidth across concurrent rebuilds,
  latent-sector-error bursts, periodic scrubs, stripe writes from a
  workload model).
* :mod:`repro.sim.cluster` -- the simulated fleet: per-stripe damage
  state vectors and a vectorized recoverability predicate for any
  registered stripe code (STAIR, RS/RAID, SD, IDR) at any device
  tolerance ``m``.
* :mod:`repro.sim.montecarlo` -- a numpy-vectorized batch runner that
  simulates thousands of independent array/cluster lifetimes at once --
  for any ``m >= 1`` (RAID-5, RAID-6, SD, STAIR, IDR geometries) -- and
  reports MTTDL and probability-of-data-loss with confidence intervals.
* :mod:`repro.sim.rare` -- rare-event MTTDL estimation for
  ultra-reliable configurations direct Monte Carlo cannot touch
  (m >= 2 at the paper's 1/λ = 500,000 h, MTTDL ~ 1e12 h): a
  regenerative-cycle estimator whose busy periods run under balanced
  failure biasing with per-lane likelihood-ratio bookkeeping, unbiased
  for the true failure rate.
* :mod:`repro.sim.cli` -- run scenarios from textual code specs such as
  ``sd(n=8,r=16,m=2,s=2)`` (grammar: ``docs/code-specs.md``).

In the exponential case the Monte Carlo MTTDL statistically matches
:func:`repro.reliability.mttdl_array` at m = 1 and the general
birth-death chain of :func:`repro.reliability.mttdl_arr_m_parity` at
m >= 2 (asserted by the test suite); the simulator then generalises to
Weibull wear-out, finite scrub intervals, repair-bandwidth contention
and correlated rack/enclosure/batch failures, which the closed forms
cannot cover.
"""

from repro.sim.cluster import CoverageModel, SimulatedArray, SimulatedCluster
from repro.sim.domains import FailureDomains, ShockGroup
from repro.sim.events import (
    ClusterSimulation,
    Event,
    EventQueue,
    EventType,
    Scenario,
    TrajectoryResult,
)
from repro.sim.lifetimes import (
    BandwidthRepair,
    BiasedLifetime,
    DeterministicRepair,
    ExponentialLifetime,
    ExponentialRepair,
    LifetimeModel,
    RepairModel,
    SectorErrorProcess,
    WeibullLifetime,
)
from repro.sim.montecarlo import (
    MonteCarloResult,
    code_reliability_from_code,
    simulate_array_lifetimes,
    simulate_cluster_lifetimes,
    simulate_code_mttdl,
)
from repro.sim.rare import (
    RareEventResult,
    balanced_acceleration,
    direct_mc_is_tractable,
    estimate_rare_mttdl,
    rare_event_code_mttdl,
)
from repro.sim.traces import (
    EmpiricalLifetime,
    FailureTrace,
    KaplanMeierLifetime,
    SurvivalEstimate,
    TraceReplayLifetime,
    concatenate_traces,
    generate_trace,
    kaplan_meier,
    load_drive_stats_csv,
    nelson_aalen,
    write_drive_stats_csv,
)

__all__ = [
    "CoverageModel",
    "SimulatedArray",
    "SimulatedCluster",
    "FailureDomains",
    "ShockGroup",
    "ClusterSimulation",
    "Event",
    "EventQueue",
    "EventType",
    "Scenario",
    "TrajectoryResult",
    "LifetimeModel",
    "ExponentialLifetime",
    "WeibullLifetime",
    "BiasedLifetime",
    "RepairModel",
    "ExponentialRepair",
    "DeterministicRepair",
    "BandwidthRepair",
    "SectorErrorProcess",
    "MonteCarloResult",
    "simulate_array_lifetimes",
    "simulate_cluster_lifetimes",
    "simulate_code_mttdl",
    "code_reliability_from_code",
    "RareEventResult",
    "balanced_acceleration",
    "direct_mc_is_tractable",
    "estimate_rare_mttdl",
    "rare_event_code_mttdl",
    "FailureTrace",
    "SurvivalEstimate",
    "EmpiricalLifetime",
    "KaplanMeierLifetime",
    "TraceReplayLifetime",
    "concatenate_traces",
    "generate_trace",
    "kaplan_meier",
    "load_drive_stats_csv",
    "nelson_aalen",
    "write_drive_stats_csv",
]
