"""Correlated failure domains: racks, enclosures and drive batches.

The §7 analysis -- and the simulator engines as originally built --
assume device failures are independent.  Real clusters are not so kind:
a rack loses power and every device in it goes dark, an enclosure
backplane dies and takes its shelf with it, and drives from one
manufacturing batch share a defect that makes all of them age faster.
This module describes that structure once, as a :class:`FailureDomains`
spec, and every engine consumes it:

* the event engine (:mod:`repro.sim.events`) schedules *domain shocks*
  -- Poisson events per rack/enclosure that fail every healthy member
  device at once (each independently with the domain's kill
  probability), creating the rebuild storms that stress
  processor-sharing repair;
* the vectorized runner (:mod:`repro.sim.montecarlo`) gives each lane a
  compound-Poisson shock term over the array's per-rack/-enclosure
  device groups;
* the rare-event estimator (:mod:`repro.sim.rare`) folds the shock
  processes into its regeneration-cycle decomposition (shocks are
  memoryless, so the all-healthy state stays a regeneration point) with
  likelihood weights adapted so biased estimates stay unbiased.

Membership is deterministic so that all three engines -- and a reader
re-running a doc example -- agree exactly on who lives where:

* ``placement="spread"`` stripes device ``d`` of array ``a`` into rack
  ``(a + d) % racks`` (the classic domain-spread layout: a rack shock
  touches at most ``ceil(n / racks)`` devices of any one array);
* ``placement="contiguous"`` puts all of array ``a`` into rack
  ``a % racks`` (the naive layout: one rack shock can erase a whole
  array);
* the *bad batch* is always devices ``0 .. b-1`` of every array with
  ``b = round(batch_fraction * n)`` -- the adversarial assignment where
  one manufacturing batch is concentrated instead of spread.

Usage::

    from repro.sim import FailureDomains

    domains = FailureDomains(racks=8, rack_shock_rate_per_hour=1e-4,
                             batch_fraction=0.25, batch_accel=3.0)
    domains.is_independent      # False: shocks and batch wear are active
    FailureDomains(racks=8).is_independent   # True: topology only

With every rate at zero and ``batch_accel == 1`` a spec is *inert*: the
engines reproduce their independent-failure behaviour exactly (the
vectorized runner bit-for-bit -- asserted in the test suite), which is
the independent-limit cross-validation anchor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_PLACEMENTS = ("spread", "contiguous")


def shock_group_arrays(groups, n: int,
                       ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Unpack per-array :class:`ShockGroup` tuples into numpy form.

    Returns ``(member_mask, rates, kill_probs)`` with ``member_mask``
    of shape ``(len(groups), n)`` -- the single definition both the
    vectorized runner and the rare-event estimator build their shock
    state from, so group semantics cannot drift between engines.
    """
    member = np.zeros((len(groups), n), dtype=bool)
    for i, group in enumerate(groups):
        member[i, list(group.devices)] = True
    rates = np.array([group.rate_per_hour for group in groups])
    kill_probs = np.array([group.kill_probability for group in groups])
    return member, rates, kill_probs


@dataclass(frozen=True)
class ShockGroup:
    """One correlated-failure blast radius: a set of devices sharing a
    Poisson shock process.

    ``level`` names the hierarchy level (``"rack"`` or ``"enclosure"``),
    ``index`` the domain id at that level.  ``devices`` are the member
    devices -- device indices within one array for the per-array view,
    ``(array, device)`` pairs for the cluster view (see
    :meth:`FailureDomains.array_shock_groups` /
    :meth:`FailureDomains.cluster_shock_groups`).  When the shock fires,
    each healthy member fails independently with ``kill_probability``.

    Usage -- groups come from a spec, not by hand::

        domains = FailureDomains(racks=4, rack_shock_rate_per_hour=1e-5)
        group = domains.array_shock_groups(8)[0]
        group.size, group.kill_rate_per_hour   # blast radius, kill rate
    """

    level: str
    index: int
    devices: tuple
    rate_per_hour: float
    kill_probability: float

    @property
    def size(self) -> int:
        return len(self.devices)

    @property
    def kill_rate_per_hour(self) -> float:
        """Rate of shocks that kill at least one (healthy) member.

        ``rate * (1 - (1 - p)^size)`` -- the thinned process the
        rare-event estimator's up-phase decomposition needs.
        """
        return self.rate_per_hour * (
            1.0 - (1.0 - self.kill_probability) ** self.size)


@dataclass(frozen=True)
class FailureDomains:
    """Rack / enclosure / batch structure of a simulated cluster.

    Racks and enclosures are *shock* domains: each carries an
    independent Poisson process at the given rate, and a shock fails
    every healthy member device simultaneously and independently with
    the level's kill probability.  Enclosures subdivide racks
    (``enclosures_per_rack`` shelves per rack, members assigned
    round-robin).  The *batch* is a wear domain: a ``batch_fraction`` of
    every array's devices share a manufacturing defect that accelerates
    their lifetimes by ``batch_accel`` (an accelerated-failure-time
    scaling: sampled lifetimes are divided by the factor, so exponential
    devices simply fail at ``batch_accel * lambda``).
    """

    racks: int = 1
    rack_shock_rate_per_hour: float = 0.0
    rack_kill_probability: float = 1.0
    enclosures_per_rack: int = 1
    enclosure_shock_rate_per_hour: float = 0.0
    enclosure_kill_probability: float = 1.0
    batch_fraction: float = 0.0
    batch_accel: float = 1.0
    placement: str = "spread"

    def __post_init__(self) -> None:
        if self.racks < 1:
            raise ValueError("racks must be >= 1")
        if self.enclosures_per_rack < 1:
            raise ValueError("enclosures_per_rack must be >= 1")
        for name in ("rack_shock_rate_per_hour",
                     "enclosure_shock_rate_per_hour"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        for name in ("rack_kill_probability", "enclosure_kill_probability"):
            if not (0.0 < getattr(self, name) <= 1.0):
                raise ValueError(f"{name} must lie in (0, 1]")
        if not (0.0 <= self.batch_fraction <= 1.0):
            raise ValueError("batch_fraction must lie in [0, 1]")
        if self.batch_accel <= 0:
            raise ValueError("batch_accel must be positive")
        if self.placement not in _PLACEMENTS:
            raise ValueError(
                f"placement must be one of {_PLACEMENTS}, "
                f"got {self.placement!r}")

    # ------------------------------------------------------------------ #
    # Derived structure
    # ------------------------------------------------------------------ #
    @property
    def has_shocks(self) -> bool:
        """Is any shock process active?"""
        return (self.rack_shock_rate_per_hour > 0.0
                or self.enclosure_shock_rate_per_hour > 0.0)

    @property
    def has_batch_wear(self) -> bool:
        """Does a bad batch actually age faster?"""
        return self.batch_fraction > 0.0 and self.batch_accel != 1.0

    @property
    def is_independent(self) -> bool:
        """True when the spec is inert (pure topology, no correlation):
        the engines then reproduce independent-failure behaviour and the
        §7 analytic references still apply."""
        return not (self.has_shocks or self.has_batch_wear)

    def describe(self) -> str:
        """One-line human summary for CLI/benchmark tables.

        Usage::

            FailureDomains(racks=8,
                           rack_shock_rate_per_hour=1e-4).describe()
            # '8 racks (spread), rack shocks 0.0001/h (kill p=1)'
        """
        parts = [f"{self.racks} racks ({self.placement})"]
        if self.rack_shock_rate_per_hour > 0:
            parts.append(
                f"rack shocks {self.rack_shock_rate_per_hour:g}/h "
                f"(kill p={self.rack_kill_probability:g})")
        if self.enclosures_per_rack > 1 \
                or self.enclosure_shock_rate_per_hour > 0:
            parts.append(
                f"{self.enclosures_per_rack} enclosures/rack"
                + (f" @ {self.enclosure_shock_rate_per_hour:g}/h "
                   f"(kill p={self.enclosure_kill_probability:g})"
                   if self.enclosure_shock_rate_per_hour > 0 else ""))
        if self.batch_fraction > 0:
            parts.append(f"batch {self.batch_fraction:.0%} "
                         f"x{self.batch_accel:g} accel")
        return ", ".join(parts)

    # ------------------------------------------------------------------ #
    # Membership
    # ------------------------------------------------------------------ #
    def rack_assignment(self, num_arrays: int, n: int) -> np.ndarray:
        """Rack index of every device: an ``(num_arrays, n)`` int array.

        ``spread`` stripes device ``d`` of array ``a`` into rack
        ``(a + d) % racks``; ``contiguous`` confines array ``a`` to rack
        ``a % racks``.

        Usage::

            FailureDomains(racks=4).rack_assignment(2, 8)
            # array 0 -> racks [0 1 2 3 0 1 2 3], array 1 shifted by 1
        """
        if num_arrays < 1 or n < 1:
            raise ValueError("num_arrays and n must be >= 1")
        arrays = np.arange(num_arrays)[:, None]
        devices = np.arange(n)[None, :]
        if self.placement == "spread":
            return (arrays + devices) % self.racks
        return np.broadcast_to(arrays % self.racks,
                               (num_arrays, n)).copy()

    def enclosure_assignment(self, num_arrays: int, n: int) -> np.ndarray:
        """Global enclosure index of every device (``(num_arrays, n)``).

        Within each rack, member devices (ordered by array then device)
        are dealt round-robin across the rack's
        ``enclosures_per_rack`` shelves; enclosure ids are globally
        unique (``rack * enclosures_per_rack + shelf``).
        """
        racks = self.rack_assignment(num_arrays, n)
        enclosure = np.zeros_like(racks)
        epr = self.enclosures_per_rack
        for rack in range(self.racks):
            members = np.flatnonzero(racks.ravel() == rack)
            enclosure.ravel()[members] = (rack * epr
                                          + np.arange(members.size) % epr)
        return enclosure

    def batch_devices(self, n: int) -> tuple[int, ...]:
        """Device indices of the bad batch (same in every array)."""
        return tuple(range(int(round(self.batch_fraction * n))))

    def rate_multipliers(self, n: int) -> np.ndarray:
        """Per-device hazard multipliers: ``batch_accel`` for bad-batch
        devices, 1 elsewhere.  Dividing sampled lifetimes by these
        multipliers implements the accelerated-failure-time scaling --
        the same :meth:`~repro.sim.lifetimes.LifetimeModel.time_scaled`
        semantics every lifetime model (parametric or trace-fitted)
        supports.

        Usage::

            FailureDomains(racks=1, batch_fraction=0.25,
                           batch_accel=3.0).rate_multipliers(8)
            # array([3., 3., 1., 1., 1., 1., 1., 1.])
        """
        mult = np.ones(n)
        mult[list(self.batch_devices(n))] = self.batch_accel
        return mult

    # ------------------------------------------------------------------ #
    # Shock groups
    # ------------------------------------------------------------------ #
    def cluster_shock_groups(self, num_arrays: int,
                             n: int) -> tuple[ShockGroup, ...]:
        """All active shock groups over the whole cluster.

        Each group's ``devices`` are ``(array, device)`` pairs.  Racks
        are shared across arrays (under ``spread`` placement a rack
        shock hits devices of several arrays at once -- the rebuild
        storm the event engine's processor-sharing repair has to
        absorb).  Groups with zero rate or no members are omitted.
        """
        groups: list[ShockGroup] = []
        if self.rack_shock_rate_per_hour > 0.0:
            racks = self.rack_assignment(num_arrays, n)
            for rack in range(self.racks):
                members = tuple(zip(*np.nonzero(racks == rack)))
                if members:
                    groups.append(ShockGroup(
                        "rack", rack,
                        tuple((int(a), int(d)) for a, d in members),
                        self.rack_shock_rate_per_hour,
                        self.rack_kill_probability))
        if self.enclosure_shock_rate_per_hour > 0.0:
            enclosures = self.enclosure_assignment(num_arrays, n)
            for enc in range(self.racks * self.enclosures_per_rack):
                members = tuple(zip(*np.nonzero(enclosures == enc)))
                if members:
                    groups.append(ShockGroup(
                        "enclosure", enc,
                        tuple((int(a), int(d)) for a, d in members),
                        self.enclosure_shock_rate_per_hour,
                        self.enclosure_kill_probability))
        return tuple(groups)

    def array_shock_groups(self, n: int) -> tuple[ShockGroup, ...]:
        """Shock groups of a single array (the per-lane marginal view).

        ``devices`` are plain device indices.  This is what the
        vectorized runner and the rare-event estimator consume: each
        lane is one array, and the shocks touching *its* devices form a
        compound-Poisson process over these groups.  For a one-array
        cluster this is exact; with several arrays sharing racks
        (``spread`` placement) it keeps each array's marginal failure
        law exact but drops the cross-array shock coupling -- the event
        engine is the ground truth for that.
        """
        return tuple(
            ShockGroup(g.level, g.index,
                       tuple(d for _, d in g.devices),
                       g.rate_per_hour, g.kill_probability)
            for g in self.cluster_shock_groups(1, n))
