"""Numpy-vectorized Monte Carlo batch runner for array/cluster lifetimes.

Instead of replaying one event queue per trial, thousands of independent
lifetimes advance together as numpy lanes.  Each lane is one array of
``n`` devices tolerating up to ``m`` concurrent device failures
(RAID-5/STAIR at m = 1, RAID-6/SD/STAIR/IDR at m >= 2) and carries a
small damage-state machine:

* the absolute failure time of every healthy device,
* the number of currently failed devices,
* the completion time of the in-flight rebuild (devices are rebuilt one
  at a time at the repair model's rate, matching the Markov chains of
  :mod:`repro.reliability.markov`), and
* -- when a :class:`~repro.sim.domains.FailureDomains` spec is attached
  -- the next arrival time of each domain-shock process touching the
  array (a compound-Poisson term: a rack/enclosure shock fails every
  healthy member device at once, each independently with the domain's
  kill probability), with bad-batch devices drawing accelerated
  lifetimes.

Every round, each active lane processes its next event -- a device
failure, a rebuild completion or a domain shock.  A failure (or a shock)
that leaves more than ``m`` devices down loses data; a rebuild that
completes in *critical mode* (exactly ``m`` devices down) trips over
unrecoverable sector damage with probability ``p_arr``, the same
``P_arr`` from :func:`repro.reliability.mttdl.p_array` (Eq. 10-11) that
the analysis layer uses.  Keeping *absolute* failure times makes the
scheme exact for non-memoryless lifetimes too -- Weibull wear-out or a
trace-fitted :class:`~repro.sim.traces.EmpiricalLifetime`: a surviving
device's failure time was fixed when it was installed and simply
carries over across rounds.  (Verbatim trace *replay* is the event
engine's mode; the lanes need a proper distribution and reject
:class:`~repro.sim.traces.TraceReplayLifetime` up front.)

In the exponential case the estimated MTTDL must statistically agree
with the closed form (m = 1, Eq. 10) and with the general-m Markov chain
of :func:`repro.reliability.markov.mttdl_arr_m_parity` -- the
cross-validation asserted in the test suite; with an inert domain spec
(every shock rate zero, no batch wear) the runner is bit-for-bit
identical to the independent-failure path.  Each lane models its own
array's shock processes (the marginal law), which is exact for
single-array clusters; cross-array shock coupling (several arrays
sharing a struck rack) is the event engine's territory, as are
repair-bandwidth contention, scrub intervals and workload effects.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.codes.base import StripeCode
from repro.reliability.mttdl import (
    CodeReliability,
    SystemParameters,
    p_array,
)
from repro.reliability.sector_models import SectorFailureModel
from repro.sim.cluster import CoverageModel
from repro.sim.domains import FailureDomains, shock_group_arrays
from repro.sim.lifetimes import (
    BiasedLifetime,
    ExponentialLifetime,
    ExponentialRepair,
    LifetimeModel,
    RepairModel,
)
from repro.sim.traces import TraceReplayLifetime

#: Safety valve for the vectorized loops (a round is one failure/rebuild
#: cycle across the whole active batch; realistic runs need thousands).
MAX_ROUNDS = 2_000_000


def code_reliability_from_code(code: StripeCode) -> CodeReliability:
    """Map a concrete stripe code to its analytic reliability description."""
    coverage = CoverageModel.from_code(code)
    if coverage.kind == "stair":
        return CodeReliability.stair(coverage.e)
    if coverage.kind == "sd":
        return CodeReliability.sd(coverage.s)
    if coverage.kind == "rs":
        return CodeReliability.reed_solomon()
    raise ValueError(
        f"no analytic P_str model for coverage kind {coverage.kind!r}"
    )


@dataclass
class MonteCarloResult:
    """Batch of simulated times to data loss, with summary statistics.

    ``times`` holds one entry per trial; ``inf`` marks a trial censored
    at the horizon without data loss.  ``log_weights`` (one log
    importance weight per trial) is set when the lifetimes were drawn
    from a :class:`~repro.sim.lifetimes.BiasedLifetime` proposal; all
    statistics then self-normalize so the estimates stay unbiased for
    the target distribution.
    """

    times: np.ndarray
    horizon_hours: float | None = None
    metadata: dict = field(default_factory=dict)
    log_weights: np.ndarray | None = None

    @property
    def trials(self) -> int:
        return int(self.times.size)

    @property
    def losses(self) -> int:
        return int(np.isfinite(self.times).sum())

    @property
    def loss_times(self) -> np.ndarray:
        return self.times[np.isfinite(self.times)]

    # ------------------------------------------------------------------ #
    @property
    def weights(self) -> np.ndarray:
        """Per-trial importance weights, scaled to a maximum of 1.

        Uniform (all ones) for unweighted runs.  Only weight *ratios*
        matter -- every statistic self-normalizes -- so the overflow-safe
        max-shifted scale is as good as the raw likelihood ratios.
        """
        if self.log_weights is None:
            return np.ones(self.trials)
        return np.exp(self.log_weights - self.log_weights.max())

    @property
    def effective_sample_size(self) -> float:
        """Kish effective sample size ``(sum w)^2 / sum w^2``.

        Equals ``trials`` for unweighted runs; a small value relative to
        ``trials`` warns that a few heavy weights dominate the estimate
        and the confidence interval is optimistic.
        """
        w = self.weights
        return float(w.sum() ** 2 / (w ** 2).sum())

    # ------------------------------------------------------------------ #
    @property
    def mttdl_hours(self) -> float:
        """Mean time to data loss (requires uncensored trials).

        The plain sample mean, or the self-normalized weighted mean when
        importance weights are present.
        """
        if self.losses == 0:
            raise ValueError("no data-loss events observed; MTTDL undefined")
        if self.losses < self.trials:
            raise ValueError(
                f"{self.trials - self.losses} trials were censored at the "
                "horizon; the sample mean would be biased -- rerun without "
                "a horizon or use probability_of_loss_by()"
            )
        if self.log_weights is None:
            return float(self.loss_times.mean())
        w = self.weights
        return float((w * self.times).sum() / w.sum())

    @property
    def mttdl_std_error(self) -> float:
        """Standard error of the MTTDL estimate.

        For weighted runs this is the standard self-normalized
        importance-sampling variance estimate
        ``sqrt(sum w_i^2 (t_i - mean)^2) / sum w_i``.
        """
        observed = self.loss_times
        if observed.size < 2:
            raise ValueError("need >= 2 data-loss events for a std error")
        if self.log_weights is None:
            return float(observed.std(ddof=1) / math.sqrt(observed.size))
        w = self.weights
        mean = self.mttdl_hours
        return float(math.sqrt((w ** 2 * (self.times - mean) ** 2).sum())
                     / w.sum())

    def mttdl_confidence(self, z: float = 3.0) -> tuple[float, float]:
        """``z``-sigma confidence interval around the MTTDL estimate.

        Time to data loss is nonnegative, so the lower bound is clamped
        at 0 (small samples can otherwise push ``mean - z * se``
        negative).
        """
        mean = self.mttdl_hours
        half = z * self.mttdl_std_error
        return (max(0.0, mean - half), mean + half)

    def agrees_with(self, analytic_hours: float, z: float = 3.0) -> bool:
        """Does the analytic value fall inside the z-sigma interval?"""
        lo, hi = self.mttdl_confidence(z)
        return lo <= analytic_hours <= hi

    # ------------------------------------------------------------------ #
    def probability_of_loss_by(self, hours: float,
                               z: float = 3.0) -> tuple[float, float, float]:
        """P(data loss by ``hours``) with a Wilson score interval.

        Returns ``(estimate, low, high)``.  Valid also for censored runs
        as long as ``hours`` does not exceed the horizon.  On weighted
        runs the estimate self-normalizes (so it stays unbiased for the
        target distribution, not the biased proposal) and the interval
        uses the effective sample size in place of the trial count --
        the standard Wilson-on-ESS approximation.
        """
        if self.horizon_hours is not None and hours > self.horizon_hours:
            raise ValueError("hours exceeds the simulated horizon")
        w = self.weights
        p = float((w * (self.times <= hours)).sum() / w.sum())
        n = self.effective_sample_size
        denom = 1.0 + z * z / n
        centre = (p + z * z / (2 * n)) / denom
        half = (z / denom) * math.sqrt(p * (1 - p) / n
                                       + z * z / (4 * n * n))
        return p, max(0.0, centre - half), min(1.0, centre + half)

    def summary(self) -> dict:
        out = {"trials": self.trials, "losses": self.losses,
               "horizon_hours": self.horizon_hours}
        if self.losses == self.trials and self.losses >= 2:
            out["mttdl_hours"] = self.mttdl_hours
            out["mttdl_std_error"] = self.mttdl_std_error
        if self.log_weights is not None:
            out["effective_sample_size"] = self.effective_sample_size
        out.update(self.metadata)
        return out


def _as_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


# --------------------------------------------------------------------------- #
# Core vectorized loops
# --------------------------------------------------------------------------- #
def simulate_array_lifetimes(n: int,
                             p_arr: float,
                             trials: int,
                             seed: int | np.random.Generator | None = None,
                             lifetime: LifetimeModel | None = None,
                             repair: RepairModel | None = None,
                             horizon_hours: float | None = None,
                             m: int = 1,
                             domains: FailureDomains | None = None,
                             ) -> MonteCarloResult:
    """Simulate ``trials`` independent single-array lifetimes.

    Each array has ``n`` devices and tolerates up to ``m`` concurrent
    device failures.  An ``(m + 1)``-th concurrent failure loses data
    immediately; a rebuild completing in critical mode (exactly ``m``
    devices down) trips over unrecoverable sector damage with
    probability ``p_arr`` (computed upstream from the code's coverage
    and the sector-failure model, Eq. 11).  Devices are rebuilt one at a
    time, matching the Markov chains of :mod:`repro.reliability.markov`.
    ``domains`` adds correlated rack/enclosure shocks and batch wear
    (see :class:`~repro.sim.domains.FailureDomains`).
    """
    times, log_w = _vectorized_lifetimes(n, p_arr, trials, 1, m,
                                         _as_rng(seed),
                                         lifetime or ExponentialLifetime(),
                                         repair or ExponentialRepair(),
                                         horizon_hours, domains)
    return MonteCarloResult(times, horizon_hours,
                            {"n": n, "m": m, "p_arr": p_arr,
                             "num_arrays": 1}, log_weights=log_w)


def simulate_cluster_lifetimes(n: int,
                               num_arrays: int,
                               p_arr: float,
                               trials: int,
                               seed: int | np.random.Generator | None = None,
                               lifetime: LifetimeModel | None = None,
                               repair: RepairModel | None = None,
                               horizon_hours: float | None = None,
                               m: int = 1,
                               domains: FailureDomains | None = None,
                               ) -> MonteCarloResult:
    """Simulate ``trials`` cluster lifetimes: ``num_arrays`` arrays of
    ``n`` devices each (``m``-fault-tolerant); the cluster loses data
    when its first array does.

    All arrays advance as independent vector lanes; a lane retires as
    soon as its clock passes its trial's best loss time, so work scales
    with the *cluster* lifetime rather than with full per-array
    absorption.  With ``domains``, every lane carries its own array's
    shock processes (the per-array marginal law -- exact for
    ``num_arrays == 1``; for shared racks across arrays the event
    engine is the ground truth).
    """
    times, log_w = _vectorized_lifetimes(n, p_arr, trials, num_arrays, m,
                                         _as_rng(seed),
                                         lifetime or ExponentialLifetime(),
                                         repair or ExponentialRepair(),
                                         horizon_hours, domains)
    return MonteCarloResult(times, horizon_hours,
                            {"n": n, "m": m, "p_arr": p_arr,
                             "num_arrays": num_arrays}, log_weights=log_w)


def _vectorized_lifetimes(n: int, p_arr: float, trials: int,
                          num_arrays: int, m: int,
                          rng: np.random.Generator,
                          lifetime: LifetimeModel, repair: RepairModel,
                          horizon_hours: float | None,
                          domains: FailureDomains | None = None,
                          ) -> tuple[np.ndarray, np.ndarray | None]:
    """Advance every lane one event per round until loss or retirement.

    Per-lane state: ``next_fail`` (absolute failure time per device,
    ``inf`` once a device is down), ``num_failed``, ``rebuild_done``
    (``inf`` while no rebuild is in flight) and -- with active shock
    domains -- ``next_shock`` (absolute next-arrival time of each shock
    group touching the array).  The invariant is that a rebuild is in
    flight iff at least one device is down.

    Returns ``(times, log_weights)``.  When ``lifetime`` is a
    :class:`BiasedLifetime` every draw is scored with its full density
    ratio and the per-trial log-likelihood ratios come back in
    ``log_weights`` (otherwise ``None``).  Full-draw scoring keeps the
    estimator unbiased for the target distribution but its variance
    grows quickly with acceleration -- suitable for *mild* biasing only;
    ultra-reliable configurations belong to :mod:`repro.sim.rare`.
    Shock arrivals and kills are always drawn at their *true* rates, so
    they contribute no weight.  When the domain spec is inert (no
    shocks, no batch wear) this function consumes the identical random
    stream as with ``domains=None`` -- the independent limit is
    bit-for-bit exact.
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    if n < m + 1:
        raise ValueError(f"need n >= m + 1 devices per array (n={n}, m={m})")
    if trials < 1:
        raise ValueError("trials must be >= 1")
    if num_arrays < 1:
        raise ValueError("num_arrays must be >= 1")
    if not (0.0 <= p_arr <= 1.0):
        raise ValueError("p_arr must lie in [0, 1]")
    if isinstance(lifetime, TraceReplayLifetime):
        raise TypeError(
            "verbatim trace replay only runs on the event engine "
            "(repro.sim.events / --mode events); the vectorized lanes "
            "need a proper lifetime distribution -- fit the trace with "
            "EmpiricalLifetime.fit (the CLI's --trace-model piecewise)"
        )

    lanes = trials * num_arrays
    trial_of = np.repeat(np.arange(trials), num_arrays)
    biased = isinstance(lifetime, BiasedLifetime)

    # Failure-domain structure: per-device lifetime accelerations (the
    # bad batch) and the array's shock groups.  ``mult`` stays None when
    # inert so the independent path is untouched.
    mult: np.ndarray | None = None
    groups = ()
    if domains is not None:
        if domains.has_batch_wear:
            if biased:
                raise ValueError(
                    "batch-accelerated lifetimes cannot be combined with "
                    "a BiasedLifetime proposal in the lane machine (the "
                    "full-draw weights would score the wrong density); "
                    "use repro.sim.rare, which supports both"
                )
            mult = domains.rate_multipliers(n)
        if domains.has_shocks:
            # array_shock_groups already omits zero-rate/empty groups.
            groups = domains.array_shock_groups(n)
    if groups:
        member_mask, rates, kill_prob = shock_group_arrays(groups, n)
        shock_scale = 1.0 / rates
        next_shock = rng.exponential(shock_scale, size=(lanes, len(groups)))

    lane_log_w = np.zeros(lanes) if biased else None
    next_fail = lifetime.sample(rng, (lanes, n))
    if biased:
        lane_log_w += lifetime.log_weight(next_fail).sum(axis=1)
    if mult is not None:
        next_fail /= mult
    rebuild_done = np.full(lanes, math.inf)
    num_failed = np.zeros(lanes, dtype=np.int32)
    # Best (earliest) loss time seen per trial; lanes that can no longer
    # beat it retire.  With a horizon, nothing past it matters either.
    cutoff = np.full(trials, math.inf if horizon_hours is None
                     else float(horizon_hours))
    lost = np.zeros(trials, dtype=bool)
    active = np.arange(lanes)

    for _ in range(MAX_ROUNDS):
        if active.size == 0:
            break
        nf = next_fail[active]
        dev = nf.argmin(axis=1)
        t_fail = nf[np.arange(active.size), dev]
        t_rebuild = rebuild_done[active]
        if groups:
            ns = next_shock[active]
            grp = ns.argmin(axis=1)
            t_shock = ns[np.arange(active.size), grp]
            fail_first = (t_fail <= t_rebuild) & (t_fail <= t_shock)
            shock_first = ~fail_first & (t_shock < t_rebuild)
            t = np.minimum(np.minimum(t_fail, t_rebuild), t_shock)
        else:
            fail_first = t_fail <= t_rebuild
            shock_first = np.zeros(active.size, dtype=bool)
            t = np.where(fail_first, t_fail, t_rebuild)

        # Lane times are monotone, so a lane whose next event cannot beat
        # its trial's cutoff never will: retire it before processing.
        alive = t < cutoff[trial_of[active]]
        if not alive.all():
            active = active[alive]
            if active.size == 0:
                break
            dev = dev[alive]
            t = t[alive]
            fail_first = fail_first[alive]
            shock_first = shock_first[alive]
            if groups:
                grp = grp[alive]
        lane_trials = trial_of[active]
        f = num_failed[active]

        # Domain shocks: every healthy member of the struck group fails
        # at once (each independently with the kill probability); losing
        # more than m devices is fatal.  The shock clock always advances.
        shock_lose = np.zeros(active.size, dtype=bool)
        if shock_first.any():
            rows = active[shock_first]
            g = grp[shock_first]
            next_shock[rows, g] = (t[shock_first]
                                   + rng.exponential(shock_scale[g]))
            candidates = member_mask[g] & np.isfinite(next_fail[rows])
            killed = candidates & (rng.random(candidates.shape)
                                   < kill_prob[g][:, None])
            kcount = killed.sum(axis=1).astype(np.int32)
            next_fail[rows] = np.where(killed, math.inf, next_fail[rows])
            num_failed[rows] += kcount
            shock_lose[shock_first] = num_failed[rows] > m

        # A failure with m devices already down is fatal; a rebuild
        # completing in critical mode trips sector damage w.p. p_arr.
        rebuild_now = ~fail_first & ~shock_first
        critical_rebuild = rebuild_now & (f == m)
        trip = np.zeros(active.size, dtype=bool)
        num_critical = int(critical_rebuild.sum())
        if p_arr > 0.0 and num_critical:
            trip[critical_rebuild] = rng.random(num_critical) < p_arr
        loses = (fail_first & (f == m)) | trip | shock_lose
        if loses.any():
            np.minimum.at(cutoff, lane_trials[loses], t[loses])
            lost[lane_trials[loses]] = True
        keep = ~loses

        # Shock survivors with new casualties: start a rebuild if none
        # is in flight (devices rebuild one at a time).
        surv_shock = shock_first & keep
        shock_lanes = active[surv_shock]
        if shock_lanes.size:
            idle = (np.isinf(rebuild_done[shock_lanes])
                    & (num_failed[shock_lanes] > 0))
            started = shock_lanes[idle]
            if started.size:
                rebuild_done[started] = (t[surv_shock][idle]
                                         + repair.sample(rng, started.size))

        # Surviving failures: device goes down; start a rebuild if none
        # is in flight (devices rebuild one at a time).
        surv_fail = fail_first & keep
        fail_lanes = active[surv_fail]
        if fail_lanes.size:
            next_fail[fail_lanes, dev[surv_fail]] = math.inf
            num_failed[fail_lanes] += 1
            idle = np.isinf(rebuild_done[fail_lanes])
            started = fail_lanes[idle]
            if started.size:
                rebuild_done[started] = (t[surv_fail][idle]
                                         + repair.sample(rng, started.size))

        # Surviving rebuild completions: restore one failed device with a
        # fresh lifetime; chain the next rebuild if more are down.
        surv_rebuild = rebuild_now & keep
        rebuild_lanes = active[surv_rebuild]
        if rebuild_lanes.size:
            restored = np.isinf(next_fail[rebuild_lanes]).argmax(axis=1)
            fresh = lifetime.sample(rng, rebuild_lanes.size)
            if biased:
                lane_log_w[rebuild_lanes] += lifetime.log_weight(fresh)
            if mult is not None:
                fresh = fresh / mult[restored]
            next_fail[rebuild_lanes, restored] = t[surv_rebuild] + fresh
            num_failed[rebuild_lanes] -= 1
            rebuild_done[rebuild_lanes] = math.inf
            more = num_failed[rebuild_lanes] > 0
            chained = rebuild_lanes[more]
            if chained.size:
                rebuild_done[chained] = (t[surv_rebuild][more]
                                         + repair.sample(rng, chained.size))

        active = active[keep]
    else:
        raise RuntimeError(
            f"simulation did not converge within {MAX_ROUNDS} rounds; "
            "the configuration is too reliable for direct Monte Carlo "
            "(common for m >= 2 with the paper's 1/lambda = 500,000 h). "
            "Set horizon_hours to bound the run, or use the rare-event "
            "estimator (repro.sim.rare / the CLI's --rare-event mode) "
            "as in docs/simulator.md"
        )

    times = np.where(lost, cutoff, math.inf)
    if not biased:
        return times, None
    return times, np.bincount(trial_of, weights=lane_log_w,
                              minlength=trials)


# --------------------------------------------------------------------------- #
# Bridge to the analysis layer
# --------------------------------------------------------------------------- #
def simulate_code_mttdl(code: StripeCode | CodeReliability,
                        model: SectorFailureModel,
                        params: SystemParameters | None = None,
                        trials: int = 1000,
                        seed: int | np.random.Generator | None = None,
                        num_arrays: int = 1,
                        lifetime: LifetimeModel | None = None,
                        repair: RepairModel | None = None,
                        horizon_hours: float | None = None,
                        domains: FailureDomains | None = None,
                        ) -> MonteCarloResult:
    """Monte Carlo MTTDL of a code under the paper's system parameters.

    ``P_arr`` comes from the analysis layer (Eq. 11) applied to the same
    coverage the simulator's damage predicate uses; lifetimes and repairs
    default to the exponential models with the paper's 1/λ and 1/μ.
    Any ``m >= 1`` is supported: the lane state machine tolerates
    ``params.m`` concurrent device failures, and for a concrete code the
    code's own ``m`` must match ``params.m``.  ``domains`` adds
    correlated rack/enclosure shocks and batch wear; note that the §7
    analytic MTTDL is then only an independent-failure reference, not an
    expected match.
    """
    params = params or SystemParameters()
    if isinstance(code, CodeReliability):
        reliability = code
    else:
        coverage = CoverageModel.from_code(code)
        if coverage.m != params.m:
            raise ValueError(
                f"{type(code).__name__} tolerates m = {coverage.m} device "
                f"failures but SystemParameters has m = {params.m}; the "
                "sector model and cluster simulation would disagree"
            )
        if (code.n, code.r) != (params.n, params.r):
            raise ValueError(
                f"code geometry (n={code.n}, r={code.r}) does not match "
                f"SystemParameters (n={params.n}, r={params.r}); the "
                "sector model and cluster simulation would disagree"
            )
        reliability = code_reliability_from_code(code)
    parr = p_array(reliability, params, model)
    lifetime = lifetime or ExponentialLifetime(
        params.mean_time_to_failure_hours)
    repair = repair or ExponentialRepair(params.mean_time_to_rebuild_hours)
    result = simulate_cluster_lifetimes(
        params.n, num_arrays, parr, trials, seed,
        lifetime=lifetime, repair=repair, horizon_hours=horizon_hours,
        m=params.m, domains=domains)
    result.metadata["code"] = reliability.label()
    return result
