"""Empirical device lifetimes from failure traces (drive-stats style).

Every other lifetime model in :mod:`repro.sim.lifetimes` is parametric:
the analyst picks an exponential rate or a Weibull shape and the
simulator trusts it.  This module closes the loop with *data*: load a
failure trace in the daily-snapshot format popularised by the Backblaze
drive-stats releases (one CSV row per device per day, ``failure = 1``
on the day a device dies), reduce it to per-device lifespans with
right-censoring (a device still alive when the trace ends contributes
its age, not a failure), and drive the simulator from what the fleet
actually did:

* :func:`kaplan_meier` / :func:`nelson_aalen` -- the standard
  nonparametric survival and cumulative-hazard estimators, both
  censoring-aware;
* :class:`EmpiricalLifetime` -- a piecewise-constant-hazard (i.e.
  piecewise-exponential) lifetime model fitted from a trace, with the
  full :class:`~repro.sim.lifetimes.LifetimeModel` protocol (``sample``,
  ``log_pdf``, ``log_survival``, ``time_scaled``) so it plugs into the
  event engine, the vectorized lanes *and* the rare-event estimator's
  biased proposals;
* :class:`KaplanMeierLifetime` -- resampling of the observed failure
  times with Kaplan-Meier weights (a discrete model: good for direct
  simulation, no density for importance sampling);
* :class:`TraceReplayLifetime` -- verbatim replay of the observed
  lifespans for the event engine (no model at all between the data and
  the trajectory);
* :func:`generate_trace` / :func:`write_drive_stats_csv` -- a seeded
  synthetic-trace generator and snapshot writer, so tests, docs and the
  committed ``examples/sample_trace.csv`` run offline.

Times are in hours throughout, matching the rest of :mod:`repro.sim`;
the snapshot loader converts days to hours (one snapshot interval per
day).  Tutorial: ``docs/traces.md``.
"""

from __future__ import annotations

import csv
import datetime
import math
import os
from dataclasses import dataclass

import numpy as np

from repro.sim.lifetimes import LifetimeModel

#: Hours represented by one daily snapshot row.
HOURS_PER_DAY = 24.0

#: Columns a drive-stats-style CSV must carry (extra columns are fine).
REQUIRED_COLUMNS = ("date", "serial_number", "failure")


# --------------------------------------------------------------------------- #
# The trace itself
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class FailureTrace:
    """Per-device lifespans reduced from a failure trace.

    ``durations[i]`` is device ``i``'s observed time in service (hours)
    and ``observed[i]`` says how that observation ended: ``True`` for a
    failure at ``durations[i]``, ``False`` for right-censoring (the
    device was still alive when the trace stopped watching it).

    Usage::

        trace = FailureTrace(durations=np.array([100.0, 250.0, 400.0]),
                             observed=np.array([True, False, True]))
        trace.num_devices, trace.num_failures, trace.num_censored
        trace.failure_times          # sorted observed failure ages
        trace.total_exposure_hours   # sum of all observed time
    """

    durations: np.ndarray
    observed: np.ndarray
    source: str = "<memory>"

    def __post_init__(self) -> None:
        durations = np.asarray(self.durations, dtype=float)
        observed = np.asarray(self.observed, dtype=bool)
        if durations.ndim != 1 or observed.ndim != 1:
            raise ValueError("durations and observed must be 1-D arrays")
        if durations.size != observed.size:
            raise ValueError(
                f"durations ({durations.size}) and observed "
                f"({observed.size}) must have one entry per device")
        if durations.size == 0:
            raise ValueError(
                f"failure trace {self.source} contains no devices")
        if not np.all(np.isfinite(durations)) or np.any(durations <= 0.0):
            raise ValueError(
                f"failure trace {self.source} has non-positive or "
                "non-finite durations; every device needs an observed "
                "time in service > 0")
        object.__setattr__(self, "durations", durations)
        object.__setattr__(self, "observed", observed)

    @property
    def num_devices(self) -> int:
        return int(self.durations.size)

    @property
    def num_failures(self) -> int:
        return int(self.observed.sum())

    @property
    def num_censored(self) -> int:
        return self.num_devices - self.num_failures

    @property
    def failure_times(self) -> np.ndarray:
        """Sorted ages at which failures were observed (hours)."""
        return np.sort(self.durations[self.observed])

    @property
    def total_exposure_hours(self) -> float:
        """Total device-hours under observation (failures + censored)."""
        return float(self.durations.sum())

    def require_failures(self, purpose: str) -> None:
        """Fail fast -- with a message naming the trace -- when every
        device was censored, so downstream fits cannot divide by an
        empty failure set."""
        if self.num_failures == 0:
            raise ValueError(
                f"cannot {purpose}: every device in trace {self.source} "
                f"is right-censored ({self.num_devices} devices, 0 "
                "observed failures); the trace carries exposure but no "
                "failure-time information")

    def describe(self) -> str:
        """One-line human summary for CLI/benchmark tables."""
        return (f"{self.num_devices} devices, {self.num_failures} "
                f"failures, {self.num_censored} censored "
                f"({self.total_exposure_hours:.4g} device-hours)")


def load_drive_stats_csv(path_or_file,
                         hours_per_day: float = HOURS_PER_DAY,
                         ) -> FailureTrace:
    """Reduce a drive-stats-style daily-snapshot CSV to a trace.

    The expected schema is the Backblaze drive-stats one: one row per
    device per day with at least the columns ``date`` (ISO
    ``YYYY-MM-DD``), ``serial_number`` and ``failure`` (``1`` on the
    day the device died, ``0`` otherwise); extra columns (``model``,
    ``capacity_bytes``, SMART attributes, ...) are ignored.  A device's
    lifespan is the span from its first snapshot to its failure day
    (observed) or its last snapshot (right-censored), inclusive --
    ``k + 1`` snapshot days become ``(k + 1) * hours_per_day`` hours,
    so lifespans are quantised to the snapshot interval.  Rows after a
    device's failure day are ignored.

    Usage::

        trace = load_drive_stats_csv("examples/sample_trace.csv")
        trace.num_failures, trace.num_censored

    Raises :class:`ValueError` -- never a bare traceback-worthy
    ``OSError``/``KeyError`` -- for a missing file, an empty file,
    missing columns or malformed rows, so CLI callers can surface the
    message directly.
    """
    if hours_per_day <= 0:
        raise ValueError("hours_per_day must be positive")
    if isinstance(path_or_file, (str, os.PathLike)):
        source = os.fspath(path_or_file)
        if not os.path.isfile(source):
            raise ValueError(f"trace file {source!r} does not exist")
        with open(source, newline="") as handle:
            return _parse_snapshots(handle, source, hours_per_day)
    source = getattr(path_or_file, "name", "<file>")
    return _parse_snapshots(path_or_file, source, hours_per_day)


def _parse_snapshots(handle, source: str,
                     hours_per_day: float) -> FailureTrace:
    reader = csv.reader(handle)
    try:
        header = next(reader)
    except StopIteration:
        raise ValueError(f"trace file {source!r} is empty") from None
    header = [column.strip().lower() for column in header]
    missing = [c for c in REQUIRED_COLUMNS if c not in header]
    if missing:
        raise ValueError(
            f"trace file {source!r} is missing required column(s) "
            f"{missing}; need the drive-stats schema "
            f"{list(REQUIRED_COLUMNS)} (extra columns are ignored)")
    date_col = header.index("date")
    serial_col = header.index("serial_number")
    failure_col = header.index("failure")
    width = max(date_col, serial_col, failure_col) + 1

    first: dict[str, int] = {}
    last: dict[str, int] = {}
    failed_on: dict[str, int] = {}
    date_cache: dict[str, int] = {}
    for line, row in enumerate(reader, start=2):
        if not row or all(not cell.strip() for cell in row):
            continue
        if len(row) < width:
            raise ValueError(
                f"trace file {source!r} line {line}: expected at least "
                f"{width} columns, got {len(row)}")
        raw_date = row[date_col].strip()
        day = date_cache.get(raw_date)
        if day is None:
            try:
                day = datetime.date.fromisoformat(raw_date).toordinal()
            except ValueError:
                raise ValueError(
                    f"trace file {source!r} line {line}: unparsable "
                    f"date {raw_date!r} (expected YYYY-MM-DD)") from None
            date_cache[raw_date] = day
        serial = row[serial_col].strip()
        if not serial:
            raise ValueError(
                f"trace file {source!r} line {line}: empty serial_number")
        raw_failure = row[failure_col].strip()
        if raw_failure not in ("0", "1"):
            raise ValueError(
                f"trace file {source!r} line {line}: failure must be 0 "
                f"or 1, got {raw_failure!r}")
        if serial in failed_on and day >= failed_on[serial]:
            continue  # snapshots after the recorded failure are moot
        if serial not in first:
            first[serial] = day
            last[serial] = day
        else:
            first[serial] = min(first[serial], day)
            last[serial] = max(last[serial], day)
        if raw_failure == "1":
            failed_on[serial] = (day if serial not in failed_on
                                 else min(failed_on[serial], day))
    if not first:
        raise ValueError(f"trace file {source!r} has a header but no "
                         "data rows")
    durations = np.empty(len(first))
    observed = np.zeros(len(first), dtype=bool)
    for i, serial in enumerate(sorted(first)):
        end = failed_on.get(serial, last[serial])
        durations[i] = (end - first[serial] + 1) * hours_per_day
        observed[i] = serial in failed_on
    return FailureTrace(durations, observed, source=source)


# --------------------------------------------------------------------------- #
# Nonparametric survival estimators
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SurvivalEstimate:
    """A right-continuous step function estimated from a trace.

    ``times`` are the distinct observed failure ages (sorted);
    ``values[j]`` is the estimate just *after* ``times[j]`` --
    Kaplan-Meier survival for :func:`kaplan_meier`, Nelson-Aalen
    cumulative hazard for :func:`nelson_aalen`.  ``at_risk[j]`` and
    ``events[j]`` are the risk-set size and failure count at
    ``times[j]``.

    Usage::

        km = kaplan_meier(trace)
        km.at(np.array([0.0, 500.0, 1e9]))   # step evaluation
    """

    times: np.ndarray
    values: np.ndarray
    at_risk: np.ndarray
    events: np.ndarray
    #: Value before the first event (1 for survival, 0 for cumulative
    #: hazard).
    initial: float = 1.0

    def at(self, hours) -> np.ndarray:
        """Evaluate the step function at ``hours`` (vectorized)."""
        idx = np.searchsorted(self.times, np.asarray(hours, dtype=float),
                              side="right")
        padded = np.concatenate(([self.initial], self.values))
        return padded[idx]


def _event_table(trace: FailureTrace,
                 ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(times, events, at_risk)`` over the distinct failure ages.

    The risk set at age ``t`` counts every device with duration >= t
    (a device censored exactly at ``t`` is, by the usual convention,
    still at risk there); tied failures share one table row.
    """
    trace.require_failures("estimate a survival curve")
    times, events = np.unique(trace.failure_times, return_counts=True)
    sorted_durations = np.sort(trace.durations)
    at_risk = trace.num_devices - np.searchsorted(sorted_durations, times,
                                                  side="left")
    return times, events, at_risk


def kaplan_meier(trace: FailureTrace) -> SurvivalEstimate:
    """Kaplan-Meier (product-limit) survival estimate of a trace.

    ``S(t) = prod_{t_j <= t} (1 - d_j / n_j)`` over the distinct
    failure ages ``t_j`` with ``d_j`` failures and ``n_j`` devices at
    risk.  Censored devices leave the risk set without contributing a
    factor -- that is the whole point of the estimator.

    Usage::

        km = kaplan_meier(trace)
        km.at(trace.failure_times)   # survival just after each failure
    """
    times, events, at_risk = _event_table(trace)
    survival = np.cumprod(1.0 - events / at_risk)
    return SurvivalEstimate(times, survival, at_risk, events, initial=1.0)


def nelson_aalen(trace: FailureTrace) -> SurvivalEstimate:
    """Nelson-Aalen cumulative-hazard estimate of a trace.

    ``H(t) = sum_{t_j <= t} d_j / n_j`` -- the additive counterpart of
    :func:`kaplan_meier` (``exp(-H)`` approximates ``S`` and the two
    agree closely whenever the per-step ``d_j / n_j`` are small).  The
    piecewise-exponential fit of :meth:`EmpiricalLifetime.fit` is the
    smoothed, exposure-weighted version of this estimator.

    Usage::

        na = nelson_aalen(trace)
        na.at(1000.0)    # cumulative hazard by 1000 h
    """
    times, events, at_risk = _event_table(trace)
    cumhaz = np.cumsum(events / at_risk)
    return SurvivalEstimate(times, cumhaz, at_risk, events, initial=0.0)


# --------------------------------------------------------------------------- #
# Piecewise-exponential empirical lifetime model
# --------------------------------------------------------------------------- #
class EmpiricalLifetime(LifetimeModel):
    """Piecewise-constant-hazard lifetime model fitted from a trace.

    The hazard is constant within each of ``K`` intervals --
    ``breakpoints`` holds the ``K - 1`` interior boundaries, and the
    last interval extends to infinity -- which makes every quantity the
    :class:`~repro.sim.lifetimes.LifetimeModel` protocol needs available
    in closed form: exact inverse-transform sampling, ``log_pdf`` /
    ``log_survival`` for importance sampling (the rare-event
    estimator's biased proposals), a finite ``mean_hours`` (the final
    hazard must be positive), and :meth:`time_scaled`
    accelerated-failure scaling (batch wear).  With a single interval
    this *is* :class:`~repro.sim.lifetimes.ExponentialLifetime`.

    Usage::

        fitted = EmpiricalLifetime.fit(trace, bins=8)
        fitted.hazards, fitted.breakpoints
        fitted.sample(np.random.default_rng(0), 1000)
        fitted.mean_hours                 # closed-form MTTF
        fitted.mean_minimum_hours(8)      # E[min of 8 fresh lifetimes]
    """

    def __init__(self, breakpoints, hazards) -> None:
        breakpoints = np.asarray(breakpoints, dtype=float)
        hazards = np.asarray(hazards, dtype=float)
        if hazards.ndim != 1 or hazards.size < 1:
            raise ValueError("need at least one hazard interval")
        if breakpoints.ndim != 1 \
                or breakpoints.size != hazards.size - 1:
            raise ValueError(
                f"{hazards.size} hazard intervals need "
                f"{hazards.size - 1} interior breakpoints, got "
                f"{breakpoints.size}")
        if breakpoints.size and (
                breakpoints[0] <= 0.0
                or np.any(np.diff(breakpoints) <= 0.0)
                or not np.all(np.isfinite(breakpoints))):
            raise ValueError(
                "breakpoints must be finite, positive and strictly "
                "increasing")
        if np.any(hazards < 0.0) or not np.all(np.isfinite(hazards)):
            raise ValueError("hazards must be finite and >= 0")
        if hazards[-1] <= 0.0:
            raise ValueError(
                "the final hazard must be positive (it extends to "
                "infinity; a zero tail hazard would make the lifetime "
                "improper)")
        self.breakpoints = breakpoints
        self.hazards = hazards
        # Cumulative hazard at the end of every *bounded* interval.
        widths = np.diff(np.concatenate(([0.0], breakpoints)))
        self._cumhaz_at_breaks = np.cumsum(hazards[:-1] * widths) \
            if breakpoints.size else np.empty(0)

    # -- fitting ------------------------------------------------------- #
    @classmethod
    def fit(cls, trace: FailureTrace, bins: int = 8) -> "EmpiricalLifetime":
        """Piecewise-exponential maximum likelihood fit of a trace.

        Interval boundaries are quantiles of the observed failure ages
        (so every interval sees failures -- up to ``bins`` of them,
        fewer when failure times tie), and each interval's hazard is
        the censoring-aware MLE ``events / exposure``: the number of
        failures in the interval over the total device-hours spent
        alive inside it.  Censored devices contribute exposure all the
        way to their censoring age -- including beyond the last
        failure, which is what pulls the tail hazard *down* when most
        of the fleet outlives the observed failures.

        Raises a clear :class:`ValueError` when the trace has no
        observed failures at all (exposure without failure times fits
        nothing).
        """
        if bins < 1:
            raise ValueError("bins must be >= 1")
        trace.require_failures("fit a piecewise-exponential model")
        failures = trace.failure_times
        k = min(bins, np.unique(failures).size)
        if k > 1:
            quantiles = np.quantile(failures, np.arange(1, k) / k)
            # Interior breakpoints must leave room for the final
            # interval to contain the last failure (tail hazard > 0).
            quantiles = np.unique(quantiles)
            breakpoints = quantiles[(quantiles > 0.0)
                                    & (quantiles < failures[-1])]
        else:
            breakpoints = np.empty(0)
        edges = np.concatenate(([0.0], breakpoints, [math.inf]))
        exposure = np.clip(trace.durations[:, None], edges[:-1],
                           edges[1:]) - edges[:-1][None, :]
        exposure = np.maximum(exposure, 0.0).sum(axis=0)
        # A failure exactly on a breakpoint belongs to the interval it
        # closes (the hazard that produced it acted up to that age).
        events = np.bincount(
            np.searchsorted(breakpoints, failures, side="left"),
            minlength=breakpoints.size + 1)
        return cls(breakpoints, events / exposure)

    # -- protocol ------------------------------------------------------ #
    def cumulative_hazard(self, hours) -> np.ndarray:
        """``H(t)``, vectorized (0 for ``t <= 0``)."""
        t = np.asarray(hours, dtype=float)
        idx = np.searchsorted(self.breakpoints, t, side="right")
        start = np.concatenate(([0.0], self.breakpoints))[idx]
        base = np.concatenate(([0.0], self._cumhaz_at_breaks))[idx]
        return np.where(t > 0.0,
                        base + self.hazards[idx] * np.maximum(t - start,
                                                              0.0),
                        0.0)

    def hazard(self, hours) -> np.ndarray:
        """The fitted hazard rate ``h(t)`` (per hour), vectorized."""
        t = np.asarray(hours, dtype=float)
        return self.hazards[np.searchsorted(self.breakpoints, t,
                                            side="right")]

    def sample(self, rng: np.random.Generator,
               size: int | tuple[int, ...]) -> np.ndarray:
        # Exact inverse transform: draw E ~ Exp(1) and invert the
        # piecewise-linear cumulative hazard.  searchsorted side="left"
        # skips zero-hazard intervals (their H is flat, so no E lands
        # strictly inside them).
        e = rng.standard_exponential(size)
        idx = np.searchsorted(self._cumhaz_at_breaks, e, side="left")
        start = np.concatenate(([0.0], self.breakpoints))[idx]
        base = np.concatenate(([0.0], self._cumhaz_at_breaks))[idx]
        return start + (e - base) / self.hazards[idx]

    def log_pdf(self, hours: np.ndarray | float) -> np.ndarray:
        t = np.asarray(hours, dtype=float)
        with np.errstate(divide="ignore"):
            log_h = np.log(self.hazard(t))
        return np.where(t >= 0.0, log_h - self.cumulative_hazard(t),
                        -math.inf)

    def log_survival(self, hours: np.ndarray | float) -> np.ndarray:
        t = np.asarray(hours, dtype=float)
        return np.where(t >= 0.0, -self.cumulative_hazard(t), 0.0)

    @property
    def mean_hours(self) -> float:
        """Closed-form MTTF: ``integral of exp(-H(t)) dt``."""
        edges = np.concatenate(([0.0], self.breakpoints))
        base = np.concatenate(([0.0], self._cumhaz_at_breaks))
        total = 0.0
        for k, h in enumerate(self.hazards):
            surv = math.exp(-base[k])
            if k == len(self.hazards) - 1:
                total += surv / h     # infinite tail, h > 0 guaranteed
            elif h > 0.0:
                width = (self.breakpoints[k] - edges[k])
                total += surv * (1.0 - math.exp(-h * width)) / h
            else:
                total += surv * (self.breakpoints[k] - edges[k])
        return total

    def hazard_scaled(self, factor: float) -> "EmpiricalLifetime":
        """Proportional-hazards acceleration: same breakpoints, every
        hazard multiplied by ``factor``.

        Unlike :meth:`time_scaled` (which shifts the interval
        boundaries), this keeps zero-hazard regions exactly aligned
        with the original model's, so a proposal built this way stays
        absolutely continuous with respect to the target -- the
        property importance sampling needs.
        :meth:`~repro.sim.lifetimes.BiasedLifetime.accelerated` uses it
        for exactly that reason.
        """
        if factor <= 0:
            raise ValueError("hazard-scaling factor must be positive")
        return EmpiricalLifetime(self.breakpoints, self.hazards * factor)

    def mean_minimum_hours(self, n: int) -> float:
        """``E[min of n]`` fresh lifetimes, in closed form.

        The minimum of ``n`` i.i.d. piecewise-exponential lifetimes is
        piecewise exponential with every hazard multiplied by ``n`` --
        this is the exact mean up-phase length the rare-event
        estimator's quasi-renewal decomposition uses.
        """
        if n < 1:
            raise ValueError("n must be >= 1")
        return self.hazard_scaled(n).mean_hours

    def time_scaled(self, factor: float) -> "EmpiricalLifetime":
        """Accelerated-failure scaling: ages shrink by ``factor``, so
        breakpoints divide and hazards multiply."""
        if factor <= 0:
            raise ValueError("time-scaling factor must be positive")
        return EmpiricalLifetime(self.breakpoints / factor,
                                 self.hazards * factor)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"EmpiricalLifetime({self.hazards.size} hazard "
                f"intervals, mean={self.mean_hours:g}h)")


class KaplanMeierLifetime(LifetimeModel):
    """Discrete resampling of the Kaplan-Meier failure distribution.

    Samples are drawn from the observed failure ages with the
    Kaplan-Meier probability masses; the mass the estimator leaves
    beyond the last failure (when the longest observations are
    censored) is assigned to the last failure age -- Efron's tail
    convention, which makes the distribution proper at the cost of a
    slightly pessimistic tail.  Being discrete, the model has no
    density: it drives direct simulation (event engine, vectorized
    lanes) but cannot serve as an importance-sampling target --
    :meth:`log_pdf` raises, pointing at :class:`EmpiricalLifetime`.

    Usage::

        km_model = KaplanMeierLifetime.fit(trace)
        km_model.sample(np.random.default_rng(0), 100)
        km_model.mean_hours          # KM (Efron-corrected) mean
    """

    def __init__(self, times, probabilities) -> None:
        times = np.asarray(times, dtype=float)
        probabilities = np.asarray(probabilities, dtype=float)
        if times.ndim != 1 or times.size == 0 \
                or times.size != probabilities.size:
            raise ValueError("need matching 1-D times and probabilities")
        if np.any(times <= 0.0) or np.any(np.diff(times) <= 0.0):
            raise ValueError("times must be positive and increasing")
        if np.any(probabilities < 0.0) \
                or not math.isclose(float(probabilities.sum()), 1.0,
                                    rel_tol=1e-9):
            raise ValueError("probabilities must be >= 0 and sum to 1")
        self.times = times
        self.probabilities = probabilities / probabilities.sum()

    @classmethod
    def fit(cls, trace: FailureTrace) -> "KaplanMeierLifetime":
        """Build the resampling model from a trace's KM curve."""
        km = kaplan_meier(trace)
        masses = -np.diff(np.concatenate(([km.initial], km.values)))
        # Efron tail: the unassigned survival mass S(t_max) goes to the
        # last observed failure age.
        masses[-1] += km.values[-1]
        return cls(km.times, masses)

    @property
    def mean_hours(self) -> float:
        return float((self.times * self.probabilities).sum())

    def sample(self, rng: np.random.Generator,
               size: int | tuple[int, ...]) -> np.ndarray:
        return rng.choice(self.times, size=size, p=self.probabilities)

    def log_pdf(self, hours: np.ndarray | float) -> np.ndarray:
        raise TypeError(
            "KaplanMeierLifetime is a discrete distribution and has no "
            "density; use EmpiricalLifetime (the piecewise-exponential "
            "fit) for importance sampling / rare-event estimation")

    def log_survival(self, hours: np.ndarray | float) -> np.ndarray:
        t = np.asarray(hours, dtype=float)
        tail = np.concatenate(
            (np.cumsum(self.probabilities[::-1])[::-1], [0.0]))
        idx = np.searchsorted(self.times, t, side="right")
        with np.errstate(divide="ignore"):
            return np.where(t >= 0.0, np.log(tail[idx]), 0.0)

    def time_scaled(self, factor: float) -> "KaplanMeierLifetime":
        if factor <= 0:
            raise ValueError("time-scaling factor must be positive")
        return KaplanMeierLifetime(self.times / factor,
                                   self.probabilities)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"KaplanMeierLifetime({self.times.size} support points, "
                f"mean={self.mean_hours:g}h)")


class TraceReplayLifetime(LifetimeModel):
    """Verbatim replay of a trace's observed lifespans.

    Instead of fitting any model, each installed device is dealt one of
    the trace's records: an observed failure schedules the device to
    fail exactly that many hours after installation, a censored record
    means the device is never scheduled to fail (``inf`` -- the trace
    only vouches for it surviving its observation window).  Records are
    dealt without replacement from a deck shuffled with the caller's
    generator; when the deck runs out (a long simulation re-installs
    devices), it is reshuffled and dealt again.

    This is an *event-engine* lifetime source: the discrete-event
    engine skips scheduling non-finite lifetimes, while the vectorized
    runner and the rare-event estimator reject the model (they need a
    proper distribution -- fit an :class:`EmpiricalLifetime` instead).

    Usage::

        scenario = Scenario(code=code,
                            lifetime=TraceReplayLifetime(trace),
                            horizon_hours=trace.durations.max())
    """

    def __init__(self, trace: FailureTrace) -> None:
        self.trace = trace
        self._deck = np.where(trace.observed, trace.durations, math.inf)
        self._order: np.ndarray | None = None
        self._cursor = 0

    @property
    def mean_hours(self) -> float:
        """Mean of the *observed* failure ages (censored records carry
        no failure time; for a censoring-corrected mean fit a model)."""
        self.trace.require_failures("compute a mean lifetime")
        return float(self.trace.failure_times.mean())

    def sample(self, rng: np.random.Generator,
               size: int | tuple[int, ...]) -> np.ndarray:
        count = int(np.prod(size))
        out = np.empty(count)
        filled = 0
        while filled < count:
            if self._order is None or self._cursor >= self._order.size:
                self._order = rng.permutation(self._deck.size)
                self._cursor = 0
            take = min(count - filled, self._order.size - self._cursor)
            out[filled:filled + take] = self._deck[
                self._order[self._cursor:self._cursor + take]]
            self._cursor += take
            filled += take
        return out.reshape(size)

    def log_pdf(self, hours: np.ndarray | float) -> np.ndarray:
        raise TypeError(
            "TraceReplayLifetime replays observed lifespans verbatim "
            "and has no density; fit an EmpiricalLifetime for anything "
            "that needs a distribution")

    def log_survival(self, hours: np.ndarray | float) -> np.ndarray:
        raise TypeError(
            "TraceReplayLifetime replays observed lifespans verbatim "
            "and has no survival function; fit an EmpiricalLifetime "
            "for anything that needs a distribution")

    def time_scaled(self, factor: float) -> "TraceReplayLifetime":
        """AFT scaling of the replayed lifespans themselves (batch
        wear: a bad-batch device replays its record ``factor`` times
        faster)."""
        if factor <= 0:
            raise ValueError("time-scaling factor must be positive")
        scaled = FailureTrace(self.trace.durations / factor,
                              self.trace.observed,
                              source=f"{self.trace.source} (x{factor:g})")
        return TraceReplayLifetime(scaled)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TraceReplayLifetime({self.trace.describe()})"


# --------------------------------------------------------------------------- #
# Synthetic traces (tests, docs and the committed sample run offline)
# --------------------------------------------------------------------------- #
def generate_trace(lifetime: LifetimeModel,
                   num_devices: int,
                   observation_hours: float,
                   seed: int | np.random.Generator | None = None,
                   source: str = "<synthetic>") -> FailureTrace:
    """Draw a seeded synthetic trace from any lifetime model.

    Every device is installed at time 0 and watched for
    ``observation_hours``: devices whose sampled lifetime ends inside
    the window are observed failures, the rest are right-censored at
    the window edge -- exactly the censoring structure a real
    fixed-length trace has.

    Usage::

        trace = generate_trace(ExponentialLifetime(1000.0), 500,
                               observation_hours=3000.0, seed=0)
        trace.num_censored      # ~ 500 * exp(-3)
    """
    if num_devices < 1:
        raise ValueError("num_devices must be >= 1")
    if observation_hours <= 0:
        raise ValueError("observation_hours must be positive")
    rng = (seed if isinstance(seed, np.random.Generator)
           else np.random.default_rng(seed))
    sampled = lifetime.sample(rng, num_devices)
    observed = sampled <= observation_hours
    durations = np.where(observed, sampled, observation_hours)
    # Daily-snapshot semantics: a device seen at all is alive > 0 hours.
    durations = np.maximum(durations, 1e-9)
    return FailureTrace(durations, observed, source=source)


def concatenate_traces(*traces: FailureTrace,
                       source: str = "<mixture>") -> FailureTrace:
    """Pool several traces into one (e.g. an infant-mortality cohort
    plus a wear-out cohort makes a bathtub-shaped fleet).

    Usage::

        bathtub = concatenate_traces(infant, wearout)
    """
    if not traces:
        raise ValueError("need at least one trace")
    return FailureTrace(
        np.concatenate([t.durations for t in traces]),
        np.concatenate([t.observed for t in traces]),
        source=source)


def write_drive_stats_csv(trace: FailureTrace, path_or_file,
                          start_date: str = "2024-01-01",
                          hours_per_day: float = HOURS_PER_DAY) -> int:
    """Expand a trace into drive-stats daily snapshots; returns the row
    count.

    Inverse of :func:`load_drive_stats_csv` up to snapshot
    quantisation: a device alive ``d`` hours yields
    ``ceil(d / hours_per_day)`` daily rows, the last one carrying
    ``failure = 1`` when the failure was observed.  Round-tripping a
    trace therefore reproduces durations to within one snapshot
    interval.

    Usage::

        rows = write_drive_stats_csv(trace, "examples/sample_trace.csv")
    """
    if hours_per_day <= 0:
        raise ValueError("hours_per_day must be positive")
    first_day = datetime.date.fromisoformat(start_date).toordinal()

    def _write(handle) -> int:
        writer = csv.writer(handle)
        writer.writerow(["date", "serial_number", "model",
                         "capacity_bytes", "failure"])
        rows = 0
        width = len(str(trace.num_devices))
        for i in range(trace.num_devices):
            serial = f"SYN{i:0{width}d}"
            days = max(1, math.ceil(trace.durations[i] / hours_per_day))
            for day in range(days):
                date = datetime.date.fromordinal(first_day + day)
                failing = bool(trace.observed[i]) and day == days - 1
                writer.writerow([date.isoformat(), serial, "synthetic",
                                 4_000_000_000_000, int(failing)])
                rows += 1
        return rows

    if isinstance(path_or_file, (str, os.PathLike)):
        with open(path_or_file, "w", newline="") as handle:
            return _write(handle)
    return _write(path_or_file)
