"""Command-line entry point for the cluster reliability simulator.

Run scenarios straight from the registry's textual code specs::

    python -m repro.sim.cli --seed 0 --trials 100
    python -m repro.sim.cli --code "sd(n=8,r=16,m=2,s=2)" --rare-event
    python -m repro.sim.cli --mode events --trials 20 \\
        --scrub-interval 168 --rebuild-streams 2 --horizon 87600

The CLI is a thin adapter over :mod:`repro.scenario`: every flag
combination builds one :class:`~repro.scenario.ScenarioSpec`, the spec
runs through :func:`~repro.scenario.run_scenario`, and this module only
renders the returned outcome.  ``--dump-spec`` prints the effective
spec as TOML instead of running it; ``--spec FILE`` loads a committed
spec and applies any explicitly-passed flags as overrides -- a
flag-driven run and its ``--spec`` equivalent produce identical
results (tutorial: ``docs/scenarios.md``).

The default mode runs the vectorized Monte Carlo batch (any ``m >= 1``:
RAID-5, RAID-6, SD, STAIR, IDR geometries) and prints the estimated
MTTDL with a 3σ confidence interval next to the analytical MTTDL of
:mod:`repro.reliability` for the same parameters.  Ultra-reliable
configurations direct simulation cannot absorb (m >= 2 at the paper's
1/λ = 500,000 h) are detected up front and routed to the rare-event
estimator of :mod:`repro.sim.rare` -- importance-sampled regenerative
cycles, forced with ``--rare-event``.  ``--mode events`` plays full
discrete-event trajectories instead (scrubbing, contention-aware repair
bandwidth, bursty latent sector errors).

Correlated failure domains (``--racks``, ``--rack-shock-rate``,
``--batch-fraction``, ``--batch-accel``, ...) work in every mode: rack
and enclosure shocks fail whole groups of devices at once and bad-batch
devices age faster (tutorial: ``docs/failure-domains.md``).  With an
active correlation the §7 analytic MTTDL is printed as the
*independent-failure reference* -- the gap between it and the simulated
value is the cost of the correlation.

``--trace CSV`` swaps the parametric lifetime model for one grounded in
a drive-stats-style failure trace (:mod:`repro.sim.traces`):
``--trace-model piecewise`` (default) fits a piecewise-exponential
hazard that works in every mode including the rare-event estimator,
``--trace-model km`` resamples the Kaplan-Meier failure distribution,
and ``--trace-replay`` (events mode) schedules the observed failure
timestamps verbatim (tutorial: ``docs/traces.md``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.bench.reporting import print_table
from repro.codes.registry import available_codes
from repro.scenario.runner import ScenarioOutcome, run_scenario
from repro.scenario.spec import (
    CodeSection,
    DomainsSection,
    EstimatorSection,
    FleetSection,
    LifetimeSection,
    RepairSection,
    ScenarioSpec,
    ScenarioSpecError,
    SectorSection,
    TraceSection,
)
from repro.sim.montecarlo import MAX_ROUNDS
from repro.sim.rare import projected_direct_rounds

DEFAULT_CODE_SPEC = "rs(n=8,r=16,m=1)"

_EPILOG = """\
code specs:
  --code takes a textual spec: family(key=value, ...) with literal
  values, e.g. 'rs(n=8,r=16,m=1)', 'sd(n=8,r=16,m=2,s=2)',
  'stair(n=8,r=16,m=1,e=(1,2))', or a bare zero-argument family name.
  Families: {families}.
  Full grammar: docs/code-specs.md in the repository.

scenario specs:
  --spec FILE loads a committed scenario spec (TOML or JSON) and runs
  it; any flag passed explicitly alongside --spec overrides the loaded
  value.  --dump-spec prints the effective spec for any flag
  combination instead of running it -- the dumped TOML reloads to an
  identical run.  Grid sweeps over spec fields (with content-addressed
  result caching) live in 'python -m repro.scenario.sweep'.
  Tutorial: docs/scenarios.md.

failure domains:
  --racks/--rack-shock-rate/--batch-fraction/--batch-accel (and the
  enclosure / kill-probability / placement knobs) add correlated rack
  and enclosure shocks plus a shared-defect drive batch, in every mode.
  Tutorial: docs/failure-domains.md; engine guide:
  docs/reliability-models.md.

failure traces:
  --trace loads a drive-stats-style daily-snapshot CSV (date,
  serial_number, failure columns; right-censoring inferred) and
  replaces the parametric lifetime model: --trace-model piecewise
  (default) fits a piecewise-exponential hazard usable in every mode
  (including --rare-event), --trace-model km resamples the
  Kaplan-Meier failure distribution, and --trace-replay (events mode)
  schedules the observed failure timestamps verbatim.  A sample trace
  lives at examples/sample_trace.csv.  Tutorial: docs/traces.md;
  chapter index: docs/index.md.
"""

#: argparse dests of flags that only the event engine reads, mapped to
#: their user-facing spelling (for the silent-no-op rejection).
_EVENTS_ONLY_FLAGS = {
    "stripes": "--stripes",
    "scrub_interval": "--scrub-interval",
    "rebuild_concurrency": "--rebuild-concurrency",
    "rebuild_streams": "--rebuild-streams",
    "rebuild_rate_mbs": "--rebuild-rate-mbs",
    "write_rate": "--write-rate",
}

#: argparse dests of the rare-event tuning flags (no effect under the
#: event engine).
_RARE_TUNING_FLAGS = {
    "rare_target_rel_se": "--rare-target-rel-se",
    "rare_max_cycles": "--rare-max-cycles",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim.cli",
        description="Monte Carlo reliability simulation of erasure-coded "
                    "storage clusters.",
        epilog=_EPILOG.format(families=", ".join(available_codes())),
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--spec", default=None, metavar="FILE",
                        help="load a scenario spec file (TOML/JSON, "
                             "docs/scenarios.md); explicit flags "
                             "override its values")
    parser.add_argument("--dump-spec", action="store_true",
                        help="print the effective scenario spec as TOML "
                             "and exit without running")
    parser.add_argument("--code", default=DEFAULT_CODE_SPEC,
                        help="code spec, e.g. 'stair(n=8,r=16,m=1,e=(1,2))' "
                             f"(default: {DEFAULT_CODE_SPEC})")
    parser.add_argument("--trials", type=int, default=1000,
                        help="independent cluster lifetimes to simulate")
    parser.add_argument("--seed", type=int, default=0,
                        help="PRNG seed (runs are reproducible)")
    parser.add_argument("--arrays", type=int, default=1,
                        help="arrays in the cluster")
    parser.add_argument("--stripes", type=int, default=1024,
                        help="stripes per array (events mode)")
    parser.add_argument("--p-bit", type=float, default=1e-12,
                        help="unrecoverable bit-error probability")
    parser.add_argument("--sector-model", choices=("independent",
                                                   "correlated"),
                        default="independent",
                        help="sector-failure model for P_str")
    parser.add_argument("--mttf", type=float, default=500_000.0,
                        help="device mean time to failure, hours (1/lambda)")
    parser.add_argument("--repair-hours", type=float, default=17.8,
                        help="mean rebuild time, hours (1/mu)")
    parser.add_argument("--weibull-shape", type=float, default=None,
                        help="use Weibull lifetimes with this shape "
                             "(mean stays at --mttf)")
    traces = parser.add_argument_group(
        "failure traces",
        "drive empirical lifetimes from a drive-stats-style CSV "
        "(docs/traces.md); default is the parametric --mttf model")
    traces.add_argument("--trace", default=None, metavar="CSV",
                        help="daily-snapshot failure trace; fits an "
                             "empirical lifetime model (replaces --mttf "
                             "/ --weibull-shape)")
    traces.add_argument("--trace-model", choices=("piecewise", "km"),
                        default=None,
                        help="empirical model fitted from --trace: "
                             "piecewise-exponential hazard (works in "
                             "every mode; the default) or Kaplan-Meier "
                             "resampling (direct simulation only)")
    traces.add_argument("--trace-bins", type=int, default=None,
                        help="hazard intervals for the piecewise fit "
                             "(default: 8)")
    traces.add_argument("--trace-replay", action="store_true",
                        help="events mode: replay the observed failure "
                             "timestamps verbatim instead of fitting "
                             "a model")
    parser.add_argument("--horizon", type=float, default=None,
                        help="censor trials at this many hours")
    parser.add_argument("--mode", choices=("montecarlo", "events"),
                        default="montecarlo",
                        help="vectorized batch runner or full event engine")
    parser.add_argument("--rare-event", action="store_true",
                        help="force the importance-sampled regenerative "
                             "estimator (montecarlo mode; selected "
                             "automatically when direct simulation would "
                             "not converge)")
    parser.add_argument("--rare-target-rel-se", type=float, default=0.02,
                        help="stop the rare-event estimator at this "
                             "relative standard error")
    parser.add_argument("--rare-max-cycles", type=int, default=4_000_000,
                        help="cycle budget for the rare-event estimator")
    parser.add_argument("--scrub-interval", type=float, default=168.0,
                        help="hours between scrubs (events mode)")
    parser.add_argument("--rebuild-concurrency", type=int, default=0,
                        help="hard cap on concurrent rebuilds, 0 = "
                             "unlimited (events mode)")
    parser.add_argument("--rebuild-streams", type=float, default=0.0,
                        help="shared cluster repair bandwidth in units of "
                             "one device's rebuild rate; concurrent "
                             "rebuilds divide it evenly, 0 = no sharing "
                             "(events mode)")
    parser.add_argument("--rebuild-rate-mbs", type=float, default=None,
                        help="per-device rebuild rate in MB/s; derives the "
                             "nominal rebuild time from the device "
                             "capacity instead of --repair-hours "
                             "(events mode)")
    parser.add_argument("--write-rate", type=float, default=0.0,
                        help="stripe writes per array per hour (events mode)")
    domains = parser.add_argument_group(
        "failure domains",
        "correlated rack/enclosure shocks and batch wear "
        "(docs/failure-domains.md); all default to independent failures")
    domains.add_argument("--racks", type=int, default=1,
                         help="racks the devices are spread across")
    domains.add_argument("--rack-shock-rate", type=float, default=0.0,
                         help="Poisson shocks per rack per hour; a shock "
                              "fails every healthy member device at once")
    domains.add_argument("--rack-kill-prob", type=float, default=1.0,
                         help="probability a rack shock kills each member")
    domains.add_argument("--enclosures-per-rack", type=int, default=1,
                         help="enclosures (shelves) within each rack")
    domains.add_argument("--enclosure-shock-rate", type=float, default=0.0,
                         help="Poisson shocks per enclosure per hour")
    domains.add_argument("--enclosure-kill-prob", type=float, default=1.0,
                         help="probability an enclosure shock kills "
                              "each member")
    domains.add_argument("--batch-fraction", type=float, default=0.0,
                         help="fraction of each array's devices from a "
                              "shared-defect manufacturing batch")
    domains.add_argument("--batch-accel", type=float, default=1.0,
                         help="lifetime acceleration of bad-batch devices "
                              "(an AFT scaling: exponential devices fail "
                              "at batch-accel * lambda)")
    domains.add_argument("--placement", choices=("spread", "contiguous"),
                         default="spread",
                         help="how arrays map to racks: 'spread' stripes "
                              "each array across racks, 'contiguous' "
                              "confines it to one")
    return parser


# --------------------------------------------------------------------------- #
# Flags <-> spec
# --------------------------------------------------------------------------- #
def spec_from_args(args: argparse.Namespace,
                   base: ScenarioSpec | None = None) -> ScenarioSpec:
    """The scenario spec one parsed flag set describes.

    ``base`` (the spec loaded via ``--spec``, if any) supplies the
    fields no flag covers -- currently the correlated sector model's
    burst parameters (b1, alpha) and the [store] section (carried
    through so ``run_scenario`` can redirect store workloads to
    ``repro.store`` instead of silently ignoring them).
    """
    mode = "rare" if args.rare_event else args.mode
    trace = None
    if args.trace is not None:
        model = ("replay" if args.trace_replay
                 else (args.trace_model if args.trace_model is not None
                       else "piecewise"))
        trace = TraceSection(path=args.trace, model=model,
                             bins=args.trace_bins)
    sector_extras = {}
    if base is not None:
        sector_extras = {"b1": base.sector.b1, "alpha": base.sector.alpha}
    return ScenarioSpec(
        code=CodeSection(spec=args.code),
        fleet=FleetSection(
            arrays=args.arrays,
            stripes_per_array=args.stripes,
            scrub_interval_hours=max(args.scrub_interval, 0.0),
            write_rate_per_hour=args.write_rate),
        lifetime=LifetimeSection(
            kind=("weibull" if args.weibull_shape is not None
                  else "exponential"),
            mttf_hours=args.mttf,
            weibull_shape=args.weibull_shape),
        trace=trace,
        domains=DomainsSection(
            racks=args.racks,
            rack_shock_rate_per_hour=args.rack_shock_rate,
            rack_kill_probability=args.rack_kill_prob,
            enclosures_per_rack=args.enclosures_per_rack,
            enclosure_shock_rate_per_hour=args.enclosure_shock_rate,
            enclosure_kill_probability=args.enclosure_kill_prob,
            batch_fraction=args.batch_fraction,
            batch_accel=args.batch_accel,
            placement=args.placement),
        repair=RepairSection(
            repair_hours=args.repair_hours,
            rebuild_rate_mbs=args.rebuild_rate_mbs,
            rebuild_concurrency=(args.rebuild_concurrency
                                 if args.rebuild_concurrency > 0 else None),
            rebuild_streams=(args.rebuild_streams
                             if args.rebuild_streams > 0 else None)),
        sector=SectorSection(model=args.sector_model, p_bit=args.p_bit,
                             **sector_extras),
        estimator=EstimatorSection(
            mode=mode,
            trials=args.trials,
            seed=args.seed,
            horizon_hours=args.horizon,
            rare_target_rel_se=args.rare_target_rel_se,
            rare_max_cycles=args.rare_max_cycles),
        store=base.store if base is not None else None,
    )


def namespace_from_spec(spec: ScenarioSpec) -> argparse.Namespace:
    """Pre-populate an argparse namespace from a loaded spec.

    Re-parsing argv over this namespace lets explicitly-passed flags
    override the spec while everything else keeps the loaded values
    (argparse only fills defaults for attributes the namespace lacks).
    """
    ns = argparse.Namespace()
    ns.code = spec.code.spec
    ns.trials = spec.estimator.trials
    ns.seed = spec.estimator.seed
    ns.arrays = spec.fleet.arrays
    ns.stripes = spec.fleet.stripes_per_array
    ns.p_bit = spec.sector.p_bit
    ns.sector_model = spec.sector.model
    ns.mttf = spec.lifetime.mttf_hours
    ns.repair_hours = spec.repair.repair_hours
    ns.weibull_shape = spec.lifetime.weibull_shape
    if spec.trace is not None:
        ns.trace = spec.trace.path
        ns.trace_replay = spec.trace.model == "replay"
        ns.trace_model = (spec.trace.model
                          if spec.trace.model in ("piecewise", "km")
                          else None)
        ns.trace_bins = spec.trace.bins
    else:
        ns.trace = None
        ns.trace_replay = False
        ns.trace_model = None
        ns.trace_bins = None
    ns.horizon = spec.estimator.horizon_hours
    if spec.estimator.mode == "rare":
        ns.mode, ns.rare_event = "montecarlo", True
    else:
        # "analytic" rides through the namespace unvalidated (argparse
        # only checks choices on explicit flags) and is rejected later.
        ns.mode, ns.rare_event = spec.estimator.mode, False
    ns.rare_target_rel_se = spec.estimator.rare_target_rel_se
    ns.rare_max_cycles = spec.estimator.rare_max_cycles
    ns.scrub_interval = spec.fleet.scrub_interval_hours
    ns.rebuild_concurrency = spec.repair.rebuild_concurrency or 0
    ns.rebuild_streams = spec.repair.rebuild_streams or 0.0
    ns.rebuild_rate_mbs = spec.repair.rebuild_rate_mbs
    ns.write_rate = spec.fleet.write_rate_per_hour
    ns.racks = spec.domains.racks
    ns.rack_shock_rate = spec.domains.rack_shock_rate_per_hour
    ns.rack_kill_prob = spec.domains.rack_kill_probability
    ns.enclosures_per_rack = spec.domains.enclosures_per_rack
    ns.enclosure_shock_rate = spec.domains.enclosure_shock_rate_per_hour
    ns.enclosure_kill_prob = spec.domains.enclosure_kill_probability
    ns.batch_fraction = spec.domains.batch_fraction
    ns.batch_accel = spec.domains.batch_accel
    ns.placement = spec.domains.placement
    return ns


def _explicit_flag_dests(argv: Sequence[str] | None) -> set[str]:
    """Dests of the flags actually present on the command line.

    A second parse with every default suppressed leaves only
    explicitly-passed attributes in the namespace -- the basis for
    value-independent footgun checks (a value merely *loaded* from
    --spec is not an explicit flag).
    """
    probe = build_parser()
    for action in probe._actions:
        action.default = argparse.SUPPRESS
    return set(vars(probe.parse_args(argv)))


# --------------------------------------------------------------------------- #
# Rendering
# --------------------------------------------------------------------------- #
def _config_rows(spec: ScenarioSpec, outcome: ScenarioOutcome
                 ) -> list[tuple]:
    rows = [
        ("code", outcome.code.describe()),
        ("m (device tolerance)", outcome.m),
        ("sector model",
         f"{spec.sector.model} (P_bit={spec.sector.p_bit:g})"),
        ("P_arr", f"{outcome.parr:.3e}"),
        ("arrays", spec.fleet.arrays),
        ("devices", outcome.code.n * spec.fleet.arrays),
    ]
    if outcome.trace is not None:
        rows.append(("failure trace",
                     f"{spec.trace.path}: {outcome.trace.describe()}"))
        rows.append(("lifetime model", repr(outcome.lifetime)))
    if outcome.domains is not None:
        rows.append(("failure domains", outcome.domains.describe()))
        # These rows only serve the montecarlo/rare paths, which model
        # each array's shock process independently (marginally exact);
        # only the event engine plays shared racks striking several
        # arrays at once.
        if outcome.domains.has_shocks and spec.fleet.arrays > 1:
            rows.append(("note", "per-array marginal shock law; "
                                 "cross-array shock coupling needs "
                                 "--mode events"))
    return rows


def _render_montecarlo(spec: ScenarioSpec, outcome: ScenarioOutcome) -> int:
    result = outcome.result
    exponential = outcome.analytic is not None
    correlated = outcome.correlated
    horizon = spec.estimator.horizon_hours
    rows = _config_rows(spec, outcome)
    rows.append(("trials", result.trials))
    rows.append(("data losses", result.losses))
    if result.losses == result.trials and result.losses >= 2:
        lo, hi = result.mttdl_confidence(z=3.0)
        rows.append(("MTTDL (sim)", f"{result.mttdl_hours:.4g} h"))
        rows.append(("3-sigma CI", f"[{lo:.4g}, {hi:.4g}] h"))
        if exponential and correlated:
            rows.append(("MTTDL (analytic, independent ref)",
                         f"{outcome.analytic:.4g} h"))
        elif exponential:
            rows.append(("MTTDL (analytic)", f"{outcome.analytic:.4g} h"))
            verdict = ("yes" if result.agrees_with(outcome.analytic, z=3.0)
                       else "NO")
            rows.append(("analytic within 3 sigma", verdict))
    elif horizon is not None:
        p, lo, hi = result.probability_of_loss_by(horizon)
        rows.append(("P(loss by horizon)",
                     f"{p:.4g}  [{lo:.4g}, {hi:.4g}]"))
    elif result.losses >= 1:
        # Too few losses for a confidence interval (e.g. --trials 1):
        # still report the sample estimate instead of nothing.
        rows.append(("MTTDL (sim)",
                     f"{float(result.loss_times.mean()):.4g} h"))
        rows.append(("note", "insufficient losses for a CI; "
                             "increase --trials"))
    print_table(["quantity", "value"], rows,
                title="Monte Carlo cluster reliability")
    return 0


def _render_rare(spec: ScenarioSpec, outcome: ScenarioOutcome) -> int:
    result = outcome.result
    correlated = outcome.correlated
    rows = _config_rows(spec, outcome)
    for caveat in outcome.caveats:
        rows.append(("warning", caveat))
    if outcome.auto_selected:
        ref, mean_hours = outcome.projection
        projected = projected_direct_rounds(ref, outcome.code.n, mean_hours,
                                            spec.estimator.trials)
        rows.append(("estimator", "rare-event (auto: direct MC needs "
                                  f"~{projected:.2g} rounds, valve "
                                  f"{MAX_ROUNDS:.2g})"))
    else:
        rows.append(("estimator", "rare-event (--rare-event)"))
    rows.append(("regeneration cycles", result.cycles))
    rows.append(("loss cycles (biased)", result.loss_cycles))
    rows.append(("P(loss per cycle)", f"{result.loss_probability:.3e}"))
    rows.append(("effective sample size",
                 f"{result.effective_sample_size:.0f} "
                 f"({result.effective_sample_size / result.cycles:.1%} "
                 "of cycles)"))
    rows.append(("failure acceleration", f"{result.acceleration:.3g}x"))
    rows.append(("sector-trip bias", f"{result.trip_bias:.3g}"))
    lo, hi = result.mttdl_confidence(z=3.0)
    rows.append(("MTTDL (rare-event)", f"{result.mttdl_hours:.4g} h"))
    rows.append(("3-sigma CI", f"[{lo:.4g}, {hi:.4g}] h"))
    if outcome.analytic is None:
        # Empirical (trace-fitted) lifetimes have no §7 closed form.
        rows.append(("MTTDL (analytic)", "- (empirical lifetimes)"))
    elif correlated:
        rows.append(("MTTDL (analytic, independent ref)",
                     f"{outcome.analytic:.4g} h"))
    else:
        rows.append(("MTTDL (analytic)", f"{outcome.analytic:.4g} h"))
        verdict = ("yes" if result.agrees_with(outcome.analytic, z=3.0)
                   else "NO")
        rows.append(("analytic within 3 sigma", verdict))
    print_table(["quantity", "value"], rows,
                title="Rare-event cluster reliability "
                      "(importance-sampled regenerative cycles)")
    return 0


def _render_events(spec: ScenarioSpec, outcome: ScenarioOutcome) -> int:
    rows = [(row.trial,
             f"{row.time_to_data_loss:.4g}"
             if row.time_to_data_loss is not None else "-",
             row.cause,
             row.events_processed) for row in outcome.trial_rows]
    print_table(["trial", "t_loss (h)", "outcome", "events"], rows,
                title=f"Event-driven trajectories "
                      f"({outcome.code.describe()}, "
                      f"{spec.fleet.arrays} arrays, horizon "
                      f"{outcome.horizon_hours:g} h)")
    if outcome.trace is not None:
        print(f"\nfailure trace {spec.trace.path}: "
              f"{outcome.trace.describe()}")
        print(f"lifetime model: {outcome.lifetime!r}")
    print(f"\ndata loss in {outcome.losses}/{spec.estimator.trials} trials")
    return 0


_RENDERERS = {
    "montecarlo": _render_montecarlo,
    "rare": _render_rare,
    "events": _render_events,
}


# --------------------------------------------------------------------------- #
# Entry point
# --------------------------------------------------------------------------- #
def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    loaded: ScenarioSpec | None = None
    if args.spec is not None:
        try:
            loaded = ScenarioSpec.load(args.spec)
        except ScenarioSpecError as exc:
            raise SystemExit(f"error: {exc}") from exc
        # Re-parse over the spec-derived namespace: only explicitly
        # passed flags override the loaded values.
        ns = namespace_from_spec(loaded)
        ns.spec, ns.dump_spec = args.spec, False
        args = parser.parse_args(argv, namespace=ns)
    if args.trials < 1:
        raise SystemExit("--trials must be >= 1")
    if args.arrays < 1:
        raise SystemExit("--arrays must be >= 1")
    if args.rare_event and args.mode == "events":
        raise SystemExit("--rare-event applies to montecarlo mode only")
    if args.trace_bins is not None and args.trace_bins < 1:
        raise SystemExit("--trace-bins must be >= 1")
    if args.trace is None and (args.trace_model is not None
                               or args.trace_bins is not None):
        raise SystemExit("--trace-model/--trace-bins configure the model "
                         "fitted from a failure trace; add --trace CSV")
    if args.trace_replay and args.trace is None:
        raise SystemExit("--trace-replay needs --trace (the CSV whose "
                         "failure timestamps should be replayed)")
    if args.trace_replay and args.mode != "events":
        raise SystemExit("--trace-replay plays verbatim trajectories and "
                         "applies to --mode events only; fit a model "
                         "with --trace-model for montecarlo mode")
    if args.trace_replay and (args.trace_model is not None
                              or args.trace_bins is not None):
        raise SystemExit("error: --trace-replay plays the observed "
                         "timestamps verbatim and fits no model; drop "
                         "--trace-model / --trace-bins")
    explicit = _explicit_flag_dests(argv)
    mode = "rare" if args.rare_event else args.mode
    if mode in ("montecarlo", "rare", "analytic"):
        stray = sorted(explicit & set(_EVENTS_ONLY_FLAGS))
        if stray:
            flags = "/".join(_EVENTS_ONLY_FLAGS[dest] for dest in stray)
            raise SystemExit(
                f"{flags} configure the event engine and have no effect "
                f"in {mode} mode; add --mode events or drop the flag")
    if mode == "events":
        stray = sorted(explicit & set(_RARE_TUNING_FLAGS))
        if stray:
            flags = "/".join(_RARE_TUNING_FLAGS[dest] for dest in stray)
            raise SystemExit(
                f"{flags} tune the rare-event estimator and have no "
                "effect in events mode; drop the flag (or drop "
                "--mode events)")
    try:
        spec = spec_from_args(args, base=loaded)
        spec.validate()
        if args.dump_spec:
            sys.stdout.write(spec.dumps_toml())
            return 0
        if spec.estimator.mode == "analytic":
            raise SystemExit(
                "error: the CLI renders simulation tables; run "
                "analytic-mode specs through the sweep orchestrator "
                "(python -m repro.scenario.sweep) or "
                "repro.scenario.run_scenario")
        outcome = run_scenario(spec, check=False)
        return _RENDERERS[outcome.engine](spec, outcome)
    except (ValueError, RuntimeError) as exc:
        # Bad specs / parameters -- and non-convergence of ultra-reliable
        # configurations -- surface as clean CLI errors, not tracebacks.
        raise SystemExit(f"error: {exc}") from exc


if __name__ == "__main__":
    sys.exit(main())
