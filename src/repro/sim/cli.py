"""Command-line entry point for the cluster reliability simulator.

Run scenarios straight from the registry's textual code specs::

    python -m repro.sim.cli --seed 0 --trials 100
    python -m repro.sim.cli --code "sd(n=8,r=16,m=2,s=2)" --rare-event
    python -m repro.sim.cli --mode events --trials 20 \\
        --scrub-interval 168 --rebuild-streams 2 --horizon 87600

The default mode runs the vectorized Monte Carlo batch (any ``m >= 1``:
RAID-5, RAID-6, SD, STAIR, IDR geometries) and prints the estimated
MTTDL with a 3σ confidence interval next to the analytical MTTDL of
:mod:`repro.reliability` for the same parameters.  Ultra-reliable
configurations direct simulation cannot absorb (m >= 2 at the paper's
1/λ = 500,000 h) are detected up front and routed to the rare-event
estimator of :mod:`repro.sim.rare` -- importance-sampled regenerative
cycles, forced with ``--rare-event``.  ``--mode events`` plays full
discrete-event trajectories instead (scrubbing, contention-aware repair
bandwidth, bursty latent sector errors).

Correlated failure domains (``--racks``, ``--rack-shock-rate``,
``--batch-fraction``, ``--batch-accel``, ...) work in every mode: rack
and enclosure shocks fail whole groups of devices at once and bad-batch
devices age faster (tutorial: ``docs/failure-domains.md``).  With an
active correlation the §7 analytic MTTDL is printed as the
*independent-failure reference* -- the gap between it and the simulated
value is the cost of the correlation.

``--trace CSV`` swaps the parametric lifetime model for one grounded in
a drive-stats-style failure trace (:mod:`repro.sim.traces`):
``--trace-model piecewise`` (default) fits a piecewise-exponential
hazard that works in every mode including the rare-event estimator,
``--trace-model km`` resamples the Kaplan-Meier failure distribution,
and ``--trace-replay`` (events mode) schedules the observed failure
timestamps verbatim (tutorial: ``docs/traces.md``).
"""

from __future__ import annotations

import argparse
import math
import sys
import warnings
from typing import Sequence

import numpy as np

from repro.array.failures import BurstLengthDistribution
from repro.bench.reporting import print_table
from repro.codes.registry import available_codes, parse_code_spec
from repro.reliability.markov import mttdl_arr_m_parity
from repro.reliability.mttdl import (
    SystemParameters,
    mttdl_array_general,
    p_array,
)
from repro.reliability.sector_models import (
    CorrelatedSectorModel,
    IndependentSectorModel,
)
from repro.sim.cluster import CoverageModel
from repro.sim.domains import FailureDomains
from repro.sim.events import ClusterSimulation, Scenario
from repro.sim.lifetimes import (
    BandwidthRepair,
    ExponentialLifetime,
    ExponentialRepair,
    SectorErrorProcess,
    WeibullLifetime,
)
from repro.sim.montecarlo import (
    MAX_ROUNDS,
    code_reliability_from_code,
    simulate_cluster_lifetimes,
)
from repro.sim.rare import (
    direct_mc_is_tractable,
    projected_direct_rounds,
    rare_event_code_mttdl,
)
from repro.sim.traces import (
    EmpiricalLifetime,
    FailureTrace,
    KaplanMeierLifetime,
    TraceReplayLifetime,
    load_drive_stats_csv,
)

DEFAULT_CODE_SPEC = "rs(n=8,r=16,m=1)"

_EPILOG = """\
code specs:
  --code takes a textual spec: family(key=value, ...) with literal
  values, e.g. 'rs(n=8,r=16,m=1)', 'sd(n=8,r=16,m=2,s=2)',
  'stair(n=8,r=16,m=1,e=(1,2))', or a bare zero-argument family name.
  Families: {families}.
  Full grammar: docs/code-specs.md in the repository.

failure domains:
  --racks/--rack-shock-rate/--batch-fraction/--batch-accel (and the
  enclosure / kill-probability / placement knobs) add correlated rack
  and enclosure shocks plus a shared-defect drive batch, in every mode.
  Tutorial: docs/failure-domains.md; engine guide:
  docs/reliability-models.md.

failure traces:
  --trace loads a drive-stats-style daily-snapshot CSV (date,
  serial_number, failure columns; right-censoring inferred) and
  replaces the parametric lifetime model: --trace-model piecewise
  (default) fits a piecewise-exponential hazard usable in every mode
  (including --rare-event), --trace-model km resamples the
  Kaplan-Meier failure distribution, and --trace-replay (events mode)
  schedules the observed failure timestamps verbatim.  A sample trace
  lives at examples/sample_trace.csv.  Tutorial: docs/traces.md;
  chapter index: docs/index.md.
"""


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim.cli",
        description="Monte Carlo reliability simulation of erasure-coded "
                    "storage clusters.",
        epilog=_EPILOG.format(families=", ".join(available_codes())),
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--code", default=DEFAULT_CODE_SPEC,
                        help="code spec, e.g. 'stair(n=8,r=16,m=1,e=(1,2))' "
                             f"(default: {DEFAULT_CODE_SPEC})")
    parser.add_argument("--trials", type=int, default=1000,
                        help="independent cluster lifetimes to simulate")
    parser.add_argument("--seed", type=int, default=0,
                        help="PRNG seed (runs are reproducible)")
    parser.add_argument("--arrays", type=int, default=1,
                        help="arrays in the cluster")
    parser.add_argument("--stripes", type=int, default=1024,
                        help="stripes per array (events mode)")
    parser.add_argument("--p-bit", type=float, default=1e-12,
                        help="unrecoverable bit-error probability")
    parser.add_argument("--sector-model", choices=("independent",
                                                   "correlated"),
                        default="independent",
                        help="sector-failure model for P_str")
    parser.add_argument("--mttf", type=float, default=500_000.0,
                        help="device mean time to failure, hours (1/lambda)")
    parser.add_argument("--repair-hours", type=float, default=17.8,
                        help="mean rebuild time, hours (1/mu)")
    parser.add_argument("--weibull-shape", type=float, default=None,
                        help="use Weibull lifetimes with this shape "
                             "(mean stays at --mttf)")
    traces = parser.add_argument_group(
        "failure traces",
        "drive empirical lifetimes from a drive-stats-style CSV "
        "(docs/traces.md); default is the parametric --mttf model")
    traces.add_argument("--trace", default=None, metavar="CSV",
                        help="daily-snapshot failure trace; fits an "
                             "empirical lifetime model (replaces --mttf "
                             "/ --weibull-shape)")
    traces.add_argument("--trace-model", choices=("piecewise", "km"),
                        default=None,
                        help="empirical model fitted from --trace: "
                             "piecewise-exponential hazard (works in "
                             "every mode; the default) or Kaplan-Meier "
                             "resampling (direct simulation only)")
    traces.add_argument("--trace-bins", type=int, default=None,
                        help="hazard intervals for the piecewise fit "
                             "(default: 8)")
    traces.add_argument("--trace-replay", action="store_true",
                        help="events mode: replay the observed failure "
                             "timestamps verbatim instead of fitting "
                             "a model")
    parser.add_argument("--horizon", type=float, default=None,
                        help="censor trials at this many hours")
    parser.add_argument("--mode", choices=("montecarlo", "events"),
                        default="montecarlo",
                        help="vectorized batch runner or full event engine")
    parser.add_argument("--rare-event", action="store_true",
                        help="force the importance-sampled regenerative "
                             "estimator (montecarlo mode; selected "
                             "automatically when direct simulation would "
                             "not converge)")
    parser.add_argument("--rare-target-rel-se", type=float, default=0.02,
                        help="stop the rare-event estimator at this "
                             "relative standard error")
    parser.add_argument("--rare-max-cycles", type=int, default=4_000_000,
                        help="cycle budget for the rare-event estimator")
    parser.add_argument("--scrub-interval", type=float, default=168.0,
                        help="hours between scrubs (events mode)")
    parser.add_argument("--rebuild-concurrency", type=int, default=0,
                        help="hard cap on concurrent rebuilds, 0 = "
                             "unlimited (events mode)")
    parser.add_argument("--rebuild-streams", type=float, default=0.0,
                        help="shared cluster repair bandwidth in units of "
                             "one device's rebuild rate; concurrent "
                             "rebuilds divide it evenly, 0 = no sharing "
                             "(events mode)")
    parser.add_argument("--rebuild-rate-mbs", type=float, default=None,
                        help="per-device rebuild rate in MB/s; derives the "
                             "nominal rebuild time from the device "
                             "capacity instead of --repair-hours "
                             "(events mode)")
    parser.add_argument("--write-rate", type=float, default=0.0,
                        help="stripe writes per array per hour (events mode)")
    domains = parser.add_argument_group(
        "failure domains",
        "correlated rack/enclosure shocks and batch wear "
        "(docs/failure-domains.md); all default to independent failures")
    domains.add_argument("--racks", type=int, default=1,
                         help="racks the devices are spread across")
    domains.add_argument("--rack-shock-rate", type=float, default=0.0,
                         help="Poisson shocks per rack per hour; a shock "
                              "fails every healthy member device at once")
    domains.add_argument("--rack-kill-prob", type=float, default=1.0,
                         help="probability a rack shock kills each member")
    domains.add_argument("--enclosures-per-rack", type=int, default=1,
                         help="enclosures (shelves) within each rack")
    domains.add_argument("--enclosure-shock-rate", type=float, default=0.0,
                         help="Poisson shocks per enclosure per hour")
    domains.add_argument("--enclosure-kill-prob", type=float, default=1.0,
                         help="probability an enclosure shock kills "
                              "each member")
    domains.add_argument("--batch-fraction", type=float, default=0.0,
                         help="fraction of each array's devices from a "
                              "shared-defect manufacturing batch")
    domains.add_argument("--batch-accel", type=float, default=1.0,
                         help="lifetime acceleration of bad-batch devices "
                              "(an AFT scaling: exponential devices fail "
                              "at batch-accel * lambda)")
    domains.add_argument("--placement", choices=("spread", "contiguous"),
                         default="spread",
                         help="how arrays map to racks: 'spread' stripes "
                              "each array across racks, 'contiguous' "
                              "confines it to one")
    return parser


def _domains_from_args(args: argparse.Namespace) -> FailureDomains | None:
    """Build the failure-domain spec; None when every flag is default."""
    if (args.racks == 1 and args.rack_shock_rate == 0.0
            and args.rack_kill_prob == 1.0
            and args.enclosures_per_rack == 1
            and args.enclosure_shock_rate == 0.0
            and args.enclosure_kill_prob == 1.0
            and args.batch_fraction == 0.0 and args.batch_accel == 1.0
            and args.placement == "spread"):
        return None
    return FailureDomains(
        racks=args.racks,
        rack_shock_rate_per_hour=args.rack_shock_rate,
        rack_kill_probability=args.rack_kill_prob,
        enclosures_per_rack=args.enclosures_per_rack,
        enclosure_shock_rate_per_hour=args.enclosure_shock_rate,
        enclosure_kill_probability=args.enclosure_kill_prob,
        batch_fraction=args.batch_fraction,
        batch_accel=args.batch_accel,
        placement=args.placement,
    )


def _load_trace(args: argparse.Namespace) -> FailureTrace | None:
    """Load --trace (clear ValueError for missing/empty/malformed
    files) or None when no trace was requested."""
    if args.trace is None:
        return None
    if args.weibull_shape is not None:
        raise ValueError(
            "--trace and --weibull-shape both specify the lifetime "
            "model; pick one")
    return load_drive_stats_csv(args.trace)


def _lifetime_model(args: argparse.Namespace,
                    trace: FailureTrace | None = None):
    if trace is not None:
        if args.trace_replay:
            if args.trace_model is not None or args.trace_bins is not None:
                raise ValueError(
                    "--trace-replay plays the observed timestamps "
                    "verbatim and fits no model; drop --trace-model / "
                    "--trace-bins")
            return TraceReplayLifetime(trace)
        if args.trace_model == "km":
            if args.trace_bins is not None:
                raise ValueError(
                    "--trace-bins sizes the piecewise-exponential fit; "
                    "Kaplan-Meier resampling has no bins")
            return KaplanMeierLifetime.fit(trace)
        return EmpiricalLifetime.fit(
            trace, bins=args.trace_bins if args.trace_bins is not None
            else 8)
    if args.weibull_shape is None:
        return ExponentialLifetime(args.mttf)
    # Pick the scale so the Weibull mean equals the requested MTTF.
    scale = args.mttf / math.gamma(1.0 + 1.0 / args.weibull_shape)
    return WeibullLifetime(scale, args.weibull_shape)


def _sector_model(args: argparse.Namespace, r: int, sector_bytes: int):
    cls = (IndependentSectorModel if args.sector_model == "independent"
           else CorrelatedSectorModel)
    return cls.from_p_bit(args.p_bit, r, sector_bytes)


def _config_rows(args: argparse.Namespace, code, m: int, parr: float,
                 domains: FailureDomains | None = None,
                 trace: FailureTrace | None = None,
                 lifetime=None) -> list[tuple]:
    rows = [
        ("code", code.describe()),
        ("m (device tolerance)", m),
        ("sector model", f"{args.sector_model} (P_bit={args.p_bit:g})"),
        ("P_arr", f"{parr:.3e}"),
        ("arrays", args.arrays),
        ("devices", code.n * args.arrays),
    ]
    if trace is not None:
        rows.append(("failure trace", f"{args.trace}: {trace.describe()}"))
        rows.append(("lifetime model", repr(lifetime)))
    if domains is not None:
        rows.append(("failure domains", domains.describe()))
        # _config_rows only serves the montecarlo/rare paths, which
        # model each array's shock process independently (marginally
        # exact); only the event engine plays shared racks striking
        # several arrays at once.
        if domains.has_shocks and args.arrays > 1:
            rows.append(("note", "per-array marginal shock law; "
                                 "cross-array shock coupling needs "
                                 "--mode events"))
    return rows


def _run_montecarlo(args: argparse.Namespace) -> int:
    code = parse_code_spec(args.code)
    m = CoverageModel.from_code(code).m
    params = SystemParameters(
        mean_time_to_failure_hours=args.mttf,
        mean_time_to_rebuild_hours=args.repair_hours,
        n=code.n, r=code.r, m=m)
    model = _sector_model(args, code.r, params.sector_bytes)
    reliability = code_reliability_from_code(code)
    parr = p_array(reliability, params, model)
    trace = _load_trace(args)
    lifetime = _lifetime_model(args, trace)
    exponential = args.weibull_shape is None and trace is None
    domains = _domains_from_args(args)
    correlated = domains is not None and not domains.is_independent
    # With an active correlation the §7 chain is only the
    # independent-failure reference: printed for contrast, never
    # checked for 3-sigma agreement.
    analytic = (mttdl_array_general(reliability, params, model) / args.arrays
                if exponential else None)

    # Ultra-reliable configurations would grind into the direct runner's
    # MAX_ROUNDS valve; route them to the rare-event estimator instead
    # of aborting (a horizon bounds the direct run, so it stays direct).
    # The projection uses the independent-failure MTTDL, an upper bound
    # under correlation -- correlated configs may switch early, which is
    # safe: the rare estimator handles domains natively.  A piecewise
    # trace fit projects through the chain at its fitted mean -- an
    # order-of-magnitude stand-in good enough to know direct MC is
    # hopeless (Kaplan-Meier resampling has no rare-event fallback, so
    # it never auto-switches).
    if exponential:
        projection_ref, projection_mean = analytic, args.mttf
    elif isinstance(lifetime, EmpiricalLifetime):
        projection_mean = lifetime.mean_hours
        projection_ref = mttdl_arr_m_parity(
            code.n, 1.0 / projection_mean, 1.0 / args.repair_hours,
            parr, m) / args.arrays
    else:
        projection_ref = projection_mean = None
    use_rare, auto_selected = args.rare_event, False
    if (not use_rare and projection_ref is not None
            and args.horizon is None
            and not direct_mc_is_tractable(projection_ref, code.n,
                                           projection_mean, args.trials)):
        use_rare, auto_selected = True, True
    if use_rare:
        if trace is not None and not isinstance(lifetime,
                                                EmpiricalLifetime):
            raise ValueError(
                "the rare-event estimator needs a lifetime density; the "
                "Kaplan-Meier resampler has none -- use the "
                "piecewise-exponential trace fit (--trace-model "
                "piecewise)"
            )
        if not exponential and trace is None:
            raise ValueError(
                "the rare-event estimator requires exponential lifetimes; "
                "drop --weibull-shape or use --horizon with direct "
                "Monte Carlo"
            )
        if args.horizon is not None:
            raise ValueError(
                "the rare-event estimator computes the MTTDL directly; "
                "--horizon only applies to direct Monte Carlo"
            )
        return _run_rare(args, code, m, params, model, parr, analytic,
                         auto_selected, domains,
                         lifetime=lifetime if trace is not None else None,
                         trace=trace,
                         projection=(projection_ref, projection_mean))

    result = simulate_cluster_lifetimes(
        code.n, args.arrays, parr, args.trials, seed=args.seed,
        lifetime=lifetime,
        repair=ExponentialRepair(args.repair_hours),
        horizon_hours=args.horizon, m=m, domains=domains)

    rows = _config_rows(args, code, m, parr, domains, trace, lifetime)
    rows.append(("trials", result.trials))
    rows.append(("data losses", result.losses))
    if result.losses == result.trials and result.losses >= 2:
        lo, hi = result.mttdl_confidence(z=3.0)
        rows.append(("MTTDL (sim)", f"{result.mttdl_hours:.4g} h"))
        rows.append(("3-sigma CI", f"[{lo:.4g}, {hi:.4g}] h"))
        if exponential and correlated:
            rows.append(("MTTDL (analytic, independent ref)",
                         f"{analytic:.4g} h"))
        elif exponential:
            rows.append(("MTTDL (analytic)", f"{analytic:.4g} h"))
            verdict = "yes" if result.agrees_with(analytic, z=3.0) else "NO"
            rows.append(("analytic within 3 sigma", verdict))
    elif args.horizon is not None:
        p, lo, hi = result.probability_of_loss_by(args.horizon)
        rows.append(("P(loss by horizon)",
                     f"{p:.4g}  [{lo:.4g}, {hi:.4g}]"))
    elif result.losses >= 1:
        # Too few losses for a confidence interval (e.g. --trials 1):
        # still report the sample estimate instead of nothing.
        rows.append(("MTTDL (sim)",
                     f"{float(result.loss_times.mean()):.4g} h"))
        rows.append(("note", "insufficient losses for a CI; "
                             "increase --trials"))
    print_table(["quantity", "value"], rows,
                title="Monte Carlo cluster reliability")
    return 0


def _run_rare(args: argparse.Namespace, code, m: int,
              params: SystemParameters, model, parr: float,
              analytic: float | None, auto_selected: bool,
              domains: FailureDomains | None = None,
              lifetime=None, trace: FailureTrace | None = None,
              projection: tuple | None = None) -> int:
    correlated = domains is not None and not domains.is_independent
    # Estimator caveats (e.g. the quasi-renewal warning for bent
    # empirical hazards) belong in the table, not as raw Python
    # warnings on stderr.
    with warnings.catch_warnings(record=True) as caveats:
        warnings.simplefilter("always")
        result = rare_event_code_mttdl(
            code, model, params, seed=args.seed, num_arrays=args.arrays,
            lifetime=lifetime, target_rel_se=args.rare_target_rel_se,
            max_cycles=args.rare_max_cycles, domains=domains)

    rows = _config_rows(args, code, m, parr, domains, trace, lifetime)
    for caveat in caveats:
        if (issubclass(caveat.category, RuntimeWarning)
                and "quasi-renewal" in str(caveat.message)):
            rows.append(("warning", str(caveat.message)))
        else:
            # Not ours to swallow: unrelated warnings keep their
            # normal route to stderr.
            warnings.warn_explicit(caveat.message, caveat.category,
                                   caveat.filename, caveat.lineno)
    if auto_selected:
        ref, mean_hours = (projection if projection is not None
                           else (analytic, args.mttf))
        projected = projected_direct_rounds(ref, code.n, mean_hours,
                                            args.trials)
        rows.append(("estimator", "rare-event (auto: direct MC needs "
                                  f"~{projected:.2g} rounds, valve "
                                  f"{MAX_ROUNDS:.2g})"))
    else:
        rows.append(("estimator", "rare-event (--rare-event)"))
    rows.append(("regeneration cycles", result.cycles))
    rows.append(("loss cycles (biased)", result.loss_cycles))
    rows.append(("P(loss per cycle)", f"{result.loss_probability:.3e}"))
    rows.append(("effective sample size",
                 f"{result.effective_sample_size:.0f} "
                 f"({result.effective_sample_size / result.cycles:.1%} "
                 "of cycles)"))
    rows.append(("failure acceleration", f"{result.acceleration:.3g}x"))
    rows.append(("sector-trip bias", f"{result.trip_bias:.3g}"))
    lo, hi = result.mttdl_confidence(z=3.0)
    rows.append(("MTTDL (rare-event)", f"{result.mttdl_hours:.4g} h"))
    rows.append(("3-sigma CI", f"[{lo:.4g}, {hi:.4g}] h"))
    if analytic is None:
        # Empirical (trace-fitted) lifetimes have no §7 closed form.
        rows.append(("MTTDL (analytic)", "- (empirical lifetimes)"))
    elif correlated:
        rows.append(("MTTDL (analytic, independent ref)",
                     f"{analytic:.4g} h"))
    else:
        rows.append(("MTTDL (analytic)", f"{analytic:.4g} h"))
        verdict = "yes" if result.agrees_with(analytic, z=3.0) else "NO"
        rows.append(("analytic within 3 sigma", verdict))
    print_table(["quantity", "value"], rows,
                title="Rare-event cluster reliability "
                      "(importance-sampled regenerative cycles)")
    return 0


def _run_events(args: argparse.Namespace) -> int:
    code = parse_code_spec(args.code)
    sector_bytes = SystemParameters().sector_bytes
    scrub = args.scrub_interval if args.scrub_interval > 0 else None
    sector_errors = None
    if args.p_bit > 0:
        if scrub is None:
            raise ValueError(
                "events mode calibrates the sector-error rate from the "
                "scrub interval; set --scrub-interval > 0 or disable "
                "sector errors with --p-bit 0"
            )
        sector_errors = SectorErrorProcess.from_p_bit(
            args.p_bit, args.stripes * code.r, scrub, sector_bytes)
    horizon = args.horizon if args.horizon is not None else 87_600.0
    # Bursty arrivals only under the correlated model; the independent
    # model means single-sector errors (matching the P_sec calibration).
    bursts = (BurstLengthDistribution(max_length=code.r)
              if args.sector_model == "correlated" else None)
    if args.rebuild_rate_mbs is not None:
        repair = BandwidthRepair(SystemParameters().device_capacity_bytes,
                                 args.rebuild_rate_mbs)
    else:
        repair = ExponentialRepair(args.repair_hours)
    trace = _load_trace(args)
    lifetime = _lifetime_model(args, trace)
    scenario = Scenario(
        code=code,
        num_arrays=args.arrays,
        stripes_per_array=args.stripes,
        lifetime=lifetime,
        repair=repair,
        sector_errors=sector_errors,
        burst_lengths=bursts,
        scrub_interval_hours=scrub,
        write_rate_per_hour=args.write_rate,
        rebuild_concurrency=(args.rebuild_concurrency
                             if args.rebuild_concurrency > 0 else None),
        repair_streams=(args.rebuild_streams
                        if args.rebuild_streams > 0 else None),
        domains=_domains_from_args(args),
        horizon_hours=horizon,
    )
    root = np.random.default_rng(args.seed)
    rows = []
    losses = 0
    for trial in range(args.trials):
        result = ClusterSimulation(
            scenario, np.random.default_rng(root.integers(2 ** 63))).run()
        losses += int(result.lost_data)
        rows.append((trial,
                     f"{result.time_to_data_loss:.4g}"
                     if result.lost_data else "-",
                     result.cause or "survived horizon",
                     result.events_processed))
    print_table(["trial", "t_loss (h)", "outcome", "events"], rows,
                title=f"Event-driven trajectories ({code.describe()}, "
                      f"{args.arrays} arrays, horizon {horizon:g} h)")
    if trace is not None:
        print(f"\nfailure trace {args.trace}: {trace.describe()}")
        print(f"lifetime model: {lifetime!r}")
    print(f"\ndata loss in {losses}/{args.trials} trials")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.trials < 1:
        raise SystemExit("--trials must be >= 1")
    if args.arrays < 1:
        raise SystemExit("--arrays must be >= 1")
    if args.rare_event and args.mode == "events":
        raise SystemExit("--rare-event applies to montecarlo mode only")
    if args.trace_bins is not None and args.trace_bins < 1:
        raise SystemExit("--trace-bins must be >= 1")
    if args.trace is None and (args.trace_model is not None
                               or args.trace_bins is not None):
        raise SystemExit("--trace-model/--trace-bins configure the model "
                         "fitted from a failure trace; add --trace CSV")
    if args.trace_replay and args.trace is None:
        raise SystemExit("--trace-replay needs --trace (the CSV whose "
                         "failure timestamps should be replayed)")
    if args.trace_replay and args.mode != "events":
        raise SystemExit("--trace-replay plays verbatim trajectories and "
                         "applies to --mode events only; fit a model "
                         "with --trace-model for montecarlo mode")
    try:
        if args.mode == "events":
            return _run_events(args)
        return _run_montecarlo(args)
    except (ValueError, RuntimeError) as exc:
        # Bad specs / parameters -- and non-convergence of ultra-reliable
        # configurations -- surface as clean CLI errors, not tracebacks.
        raise SystemExit(f"error: {exc}") from exc


if __name__ == "__main__":
    sys.exit(main())
