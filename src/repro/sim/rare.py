"""Rare-event MTTDL estimation: regenerative cycles + failure biasing.

Direct Monte Carlo cannot reach the paper's actual §7 operating point:
with 1/λ = 500,000 h an m >= 2 array has MTTDL ~ 1e12 h, i.e. ~1e7
failure/repair cycles per simulated lifetime, and the batch runner of
:mod:`repro.sim.montecarlo` blows through ``MAX_ROUNDS``.  This module
estimates the same MTTDL in milliseconds, unbiased for the true λ, by
exploiting the regenerative structure of the array process:

**Cycle decomposition.**  With exponential lifetimes the process
regenerates every time the array returns to the all-healthy state.  A
regeneration cycle is an *up phase* (all devices healthy, length
``Exp(n·λ)``, mean known exactly: ``1/(n·λ)``) followed by a *busy
period* (at least one device down) that ends either back in the healthy
state or in data loss.  For i.i.d. cycles the renewal-reward identity

    ``MTTDL = E[cycle length] / P(loss per cycle)``

is exact, so only the short busy periods need simulating -- never the
~1/p cycles a direct run must crawl through.

**Balanced failure biasing.**  ``P(loss per cycle)`` is itself tiny
(~5e-8 at the paper's parameters), so busy periods are simulated under
an importance-sampling proposal: device lifetimes come from a
:class:`~repro.sim.lifetimes.BiasedLifetime` accelerated so the
failure-vs-rebuild race is roughly balanced (``θ ≈ μ / ((n-1)·λ)``),
and the critical-mode sector trip (probability ``P_arr``, often ~1e-9)
is oversampled to a floor of :data:`TRIP_BIAS_FLOOR`.  Every lane
accumulates the log-likelihood ratio of its realized busy-period path:
a density ratio for each observed failure, a survival ratio for each
device still alive when the cycle ends, and a Bernoulli ratio for each
biased sector trip.  Scoring only *observed* information (not full
unused draws) is what keeps the weight variance bounded under strong
acceleration.

**Correlated failure domains.**  A
:class:`~repro.sim.domains.FailureDomains` spec folds rack/enclosure
shocks and batch wear into the same decomposition.  Shock processes are
Poisson and batch-accelerated lifetimes stay exponential (per-device
rates ``λ_i``), so the all-healthy state remains a regeneration point;
the up phase now ends at rate ``Λ + S`` where ``Λ = Σ λ_i`` and ``S``
is the total rate of shocks that kill at least one device, and a busy
period can *start* with several devices down (a multi-kill shock).  The
initial event's type is oversampled toward shocks (a Bernoulli
proposal, reweighted exactly); within the busy period shock *arrivals*
are accelerated by the same θ as the lifetimes and scored with their
interarrival density/survival ratios (otherwise shock-supplied
critical-mode failures would be sampled ~θ-times too rarely and the
finite-sample estimate would lean optimistic), while kill draws use
their true probabilities and carry no weight.  A device killed by a
shock is scored with its *survival* ratio at its age (it was only
observed to have survived that long), never its density.

**Empirical hazards.**  A trace-fitted
:class:`~repro.sim.traces.EmpiricalLifetime` (piecewise-exponential
hazard) is accepted under a *quasi-renewal* reading of the same
decomposition: the all-healthy state is treated as a renewal point with
every device fresh, the up-phase mean is the exact closed-form
``E[min of n]`` of the fitted model
(:meth:`~repro.sim.traces.EmpiricalLifetime.mean_minimum_hours`), and
the biased proposal is the model's own AFT-scaled self (every hazard
multiplied by θ).  The likelihood weights stay exact for the fitted
model; the renewal step itself is exact when the fitted hazard is
constant -- the fitted-on-exponential validation case -- and an
approximation whose error grows with the hazard's variation over one
busy period (hours) relative to the device timescale, i.e. vanishingly
small for realistic traces.  Strongly age-varying hazards belong to the
direct engines.

The estimator is validated against the general birth-death chain of
:func:`repro.reliability.markov.mttdl_arr_m_parity` at the paper's true
parameters -- the cross-check the validation bench
(:mod:`repro.bench.sim_validation`) previously sidestepped with an
accelerated-failure surrogate -- and, for single-device shock groups
(domain-spread placement with ``racks >= n``), against the same chain
at the effective rate ``λ + s``.  Unlike the chain, the busy-period
simulation accepts any :class:`~repro.sim.lifetimes.RepairModel`
(deterministic and bandwidth-derived rebuilds included); memoryless or
piecewise-exponential *lifetimes* are required by the (quasi-)renewal
argument.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.codes.base import StripeCode
from repro.reliability.mttdl import (
    CodeReliability,
    SystemParameters,
    p_array,
)
from repro.reliability.sector_models import SectorFailureModel
from repro.sim.lifetimes import (
    BiasedLifetime,
    ExponentialLifetime,
    ExponentialRepair,
    LifetimeModel,
    RepairModel,
)
from repro.sim.montecarlo import (
    MAX_ROUNDS,
    _as_rng,
    code_reliability_from_code,
)
from repro.sim.cluster import CoverageModel
from repro.sim.domains import FailureDomains, shock_group_arrays
from repro.sim.traces import EmpiricalLifetime

#: Under balanced biasing a busy period is a near-symmetric random walk
#: on m + 1 states -- a few dozen events at most; this valve only trips
#: on pathological proposals.
MAX_CYCLE_ROUNDS = 100_000

#: Minimum proposal probability for the critical-mode sector trip.  Low
#: enough that the ``(1 - P_arr) / (1 - q)`` no-trip weights stay near 1
#: (repeated critical episodes would otherwise compound them), high
#: enough that trip-driven loss paths are sampled even when
#: ``P_arr ~ 1e-9``.
TRIP_BIAS_FLOOR = 0.05

#: Hazard-variation ratio (max over min positive fitted hazard) above
#: which an :class:`~repro.sim.traces.EmpiricalLifetime` triggers a
#: quasi-renewal warning: the "all-healthy state = fresh devices"
#: reading is exact for constant hazards and increasingly biased as the
#: hazard bends (bathtub fits belong to the direct engines).
EMPIRICAL_HAZARD_RATIO_WARN = 2.0

#: Minimum proposal probability that a regeneration cycle *starts* with
#: a domain shock rather than a single device failure.  Real shock
#: rates are often orders of magnitude below the aggregate failure rate
#: while multi-kill shocks dominate the loss probability; oversampling
#: the initial event type (and reweighting the Bernoulli choice
#: exactly) keeps those paths represented without waiting ~1/P(shock)
#: cycles.
SHOCK_INIT_BIAS_FLOOR = 0.2


@dataclass
class RareEventResult:
    """Importance-sampled MTTDL estimate with its weight diagnostics.

    ``mttdl_hours`` is per *cluster* (``num_arrays`` arrays); the
    per-array estimate is ``mttdl_hours * num_arrays``.  Cycle-level
    quantities (``loss_probability``, ``mean_up_hours``,
    ``mean_busy_hours``) describe one array's regeneration cycle.

    Usage -- always read the estimate together with its diagnostics::

        result = estimate_rare_mttdl(8, 4.4e-9, m=2, seed=0)
        low, high = result.mttdl_confidence(z=3.0)
        result.relative_std_error     # met the stopping target?
        result.effective_sample_size  # healthy: double-digit % of cycles
        result.summary()              # everything as one dict
    """

    mttdl_hours: float
    mttdl_std_error: float
    cycles: int
    loss_cycles: int
    loss_probability: float
    mean_up_hours: float
    mean_busy_hours: float
    effective_sample_size: float
    acceleration: float
    trip_bias: float
    num_arrays: int = 1
    metadata: dict = field(default_factory=dict)

    @property
    def relative_std_error(self) -> float:
        return self.mttdl_std_error / self.mttdl_hours

    def mttdl_confidence(self, z: float = 3.0) -> tuple[float, float]:
        """``z``-sigma confidence interval, lower bound clamped at 0."""
        half = z * self.mttdl_std_error
        return (max(0.0, self.mttdl_hours - half), self.mttdl_hours + half)

    def agrees_with(self, analytic_hours: float, z: float = 3.0) -> bool:
        """Does the analytic value fall inside the z-sigma interval?"""
        lo, hi = self.mttdl_confidence(z)
        return lo <= analytic_hours <= hi

    def summary(self) -> dict:
        out = {
            "mttdl_hours": self.mttdl_hours,
            "mttdl_std_error": self.mttdl_std_error,
            "cycles": self.cycles,
            "loss_cycles": self.loss_cycles,
            "loss_probability": self.loss_probability,
            "mean_up_hours": self.mean_up_hours,
            "mean_busy_hours": self.mean_busy_hours,
            "effective_sample_size": self.effective_sample_size,
            "acceleration": self.acceleration,
            "trip_bias": self.trip_bias,
            "num_arrays": self.num_arrays,
        }
        out.update(self.metadata)
        return out


def balanced_acceleration(n: int, lifetime_mean_hours: float,
                          repair_mean_hours: float) -> float:
    """Acceleration θ that balances the busy-period race.

    With ``n - 1`` healthy devices each failing at the biased rate
    ``θ·λ``, choosing ``θ = μ / ((n - 1)·λ)`` makes the next-failure and
    rebuild-completion rates equal, so reaching the loss state costs
    ~``2^-m`` per cycle instead of ``(λ/μ)^m``.  Never decelerates:
    already-fast configurations get ``θ = 1`` (plain sampling).

    Usage::

        theta = balanced_acceleration(8, 500_000.0, 17.8)   # ~4000x
        estimate_rare_mttdl(8, 1e-8, m=2, acceleration=theta)
    """
    theta = lifetime_mean_hours / ((n - 1) * repair_mean_hours)
    return max(1.0, theta)


def _biased_busy_cycles(n: int, m: int, p_arr: float, batch: int,
                        rng: np.random.Generator,
                        biased: BiasedLifetime, repair: RepairModel,
                        trip_bias: float,
                        ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Simulate ``batch`` busy periods under the biased proposal.

    Each lane starts the instant its first device fails (one device
    down, ``n - 1`` healthy with fresh biased lifetimes, one rebuild in
    flight) and ends at regeneration (all devices healthy again) or data
    loss.  Returns ``(loss, duration, log_weight)`` per lane, where the
    log weight is the adapted log-likelihood ratio of the observed path:
    density ratios for failures, survival ratios at cycle end for
    devices still alive, Bernoulli ratios for biased sector trips.
    """
    q = trip_bias
    # Bernoulli log-likelihood ratios, guarded for the boundary
    # schedules the caller may legitimately pick: p_arr = 0 makes the
    # trip impossible under the target (weight 0, i.e. log weight -inf);
    # q = 1 makes *no*-trip impossible under the proposal (the branch is
    # then never selected, but np.where still needs a finite-safe value).
    if q != p_arr:
        log_w_trip = math.log(p_arr / q) if p_arr > 0.0 else -math.inf
        log_w_no_trip = (math.log((1.0 - p_arr) / (1.0 - q))
                         if q < 1.0 else -math.inf)
    next_fail = np.full((batch, n), math.inf)
    install = np.zeros((batch, n))
    next_fail[:, 1:] = biased.sample(rng, (batch, n - 1))
    num_failed = np.ones(batch, dtype=np.int32)
    rebuild_done = np.asarray(repair.sample(rng, batch), dtype=float)
    log_w = np.zeros(batch)
    loss = np.zeros(batch, dtype=bool)
    duration = np.zeros(batch)
    active = np.arange(batch)

    for _ in range(MAX_CYCLE_ROUNDS):
        if active.size == 0:
            break
        nf = next_fail[active]
        dev = nf.argmin(axis=1)
        t_fail = nf[np.arange(active.size), dev]
        t_rebuild = rebuild_done[active]
        fail_first = t_fail <= t_rebuild
        t = np.where(fail_first, t_fail, t_rebuild)
        f = num_failed[active]
        done = np.zeros(active.size, dtype=bool)

        # Device failures: score the observed lifetime, mark the device
        # down (before the survival factors below -- a fatally failing
        # device must not also be scored as a survivor), lose data if m
        # devices were already down.
        if fail_first.any():
            lanes = active[fail_first]
            d = dev[fail_first]
            ages = t[fail_first] - install[lanes, d]
            log_w[lanes] += biased.log_weight(ages)
            next_fail[lanes, d] = math.inf
            fatal = f[fail_first] == m
            if fatal.any():
                fatal_lanes = lanes[fatal]
                loss[fatal_lanes] = True
                duration[fatal_lanes] = t[fail_first][fatal]
                done[np.flatnonzero(fail_first)[fatal]] = True
            grew = lanes[~fatal]
            if grew.size:
                num_failed[grew] += 1

        # Rebuild completions: in critical mode the biased sector trip
        # fires with probability q instead of p_arr and the Bernoulli
        # likelihood ratio joins the weight.  Surviving completions
        # restore one device with a fresh biased lifetime; the cycle
        # regenerates when no device is left down.
        rebuilt = ~fail_first
        if rebuilt.any():
            lanes = active[rebuilt]
            critical = f[rebuilt] == m
            trip = np.zeros(lanes.size, dtype=bool)
            num_critical = int(critical.sum())
            if num_critical and q > 0.0:
                fired = rng.random(num_critical) < q
                trip[critical] = fired
                if q != p_arr:
                    log_w[lanes[critical]] += np.where(
                        fired, log_w_trip, log_w_no_trip)
            if trip.any():
                trip_lanes = lanes[trip]
                loss[trip_lanes] = True
                duration[trip_lanes] = t[rebuilt][trip]
                done[np.flatnonzero(rebuilt)[trip]] = True
            ok = ~trip
            ok_lanes = lanes[ok]
            if ok_lanes.size:
                restored = np.isinf(next_fail[ok_lanes]).argmax(axis=1)
                fresh = biased.sample(rng, ok_lanes.size)
                next_fail[ok_lanes, restored] = t[rebuilt][ok] + fresh
                install[ok_lanes, restored] = t[rebuilt][ok]
                num_failed[ok_lanes] -= 1
                rebuild_done[ok_lanes] = math.inf
                more = num_failed[ok_lanes] > 0
                chained = ok_lanes[more]
                if chained.size:
                    rebuild_done[chained] = (
                        t[rebuilt][ok][more]
                        + repair.sample(rng, chained.size))
                regen = ok_lanes[~more]
                if regen.size:
                    duration[regen] = t[rebuilt][ok][~more]
                    done[np.flatnonzero(rebuilt)[ok][~more]] = True

        # Cycle over: devices still alive are only *observed* to have
        # survived to the cycle end; score that survival, not the full
        # unused draw.
        if done.any():
            ended = active[done]
            alive = np.isfinite(next_fail[ended])
            ages = (duration[ended][:, None] - install[ended]) * alive
            log_w[ended] += (biased.log_weight_survival(ages)
                             * alive).sum(axis=1)
            active = active[~done]
    else:  # pragma: no cover - safety valve
        raise RuntimeError(
            f"busy period did not finish within {MAX_CYCLE_ROUNDS} events; "
            "the biasing proposal is pathological (acceleration too strong "
            "or repair model degenerate)"
        )
    return loss, duration, log_w


def _conditional_kill_patterns(member: np.ndarray, p: np.ndarray,
                               rng: np.random.Generator) -> np.ndarray:
    """Bernoulli kill patterns over group members, conditioned on >= 1.

    ``member`` is a ``(rows, n)`` bool mask of each row's group
    membership and ``p`` the per-row kill probability.  Sampling is by
    vectorized rejection (redrawing only the all-zero rows), exact for
    the conditional distribution; the expected number of rounds is
    ``1 / (1 - (1 - p)^size)`` -- one round for the default kill
    probability of 1.
    """
    pattern = np.zeros_like(member)
    todo = np.arange(member.shape[0])
    for _ in range(100_000):
        if todo.size == 0:
            return pattern
        draws = member[todo] & (
            rng.random((todo.size, member.shape[1])) < p[todo, None])
        ok = draws.any(axis=1)
        pattern[todo[ok]] = draws[ok]
        todo = todo[~ok]
    raise RuntimeError(  # pragma: no cover - needs p ~ 1e-5 on tiny groups
        "conditional kill-pattern sampling did not converge; the domain "
        "kill probability is too small for rejection sampling")


def _domain_busy_cycles(n: int, m: int, p_arr: float, batch: int,
                        rng: np.random.Generator,
                        lam: np.ndarray, theta: float,
                        repair: RepairModel, trip_bias: float,
                        groups: tuple,
                        ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Simulate ``batch`` busy periods with failure domains active.

    The generalisation of :func:`_biased_busy_cycles` to per-device
    exponential rates ``lam`` (batch-accelerated devices simply carry a
    larger rate) and compound-Poisson domain shocks ``groups``
    (:class:`~repro.sim.domains.ShockGroup` instances over device
    indices of one array).  Lifetimes are drawn from the accelerated
    proposal ``Exp(theta * lam_i)`` and scored with exact
    density/survival ratios against ``Exp(lam_i)``.  Busy-period shock
    *arrivals* are accelerated by the same ``theta`` and scored with
    the matching interarrival density/survival ratios -- without this,
    loss paths in which a shock supplies one of the critical-mode
    failures would be sampled ~``theta``-times too rarely, and the
    finite-sample estimate would be biased optimistic whenever shocks
    carry a real share of the hazard.  Kill draws stay at their true
    probabilities (weight 1), as does the busy period's *initial* event
    mixture (reweighted exactly when the shock/failure Bernoulli is
    biased toward shocks).

    A cycle's initial event is a single device failure (device chosen
    ``∝ lam_i``) or a shock killing ``K >= 1`` members of one group
    (group chosen ``∝`` its kill rate, pattern from the conditional
    Bernoulli law); ``K > m`` is an immediate loss at duration 0.
    Returns ``(loss, duration, log_weight)`` per lane.
    """
    q = trip_bias
    if q != p_arr:
        log_w_trip = math.log(p_arr / q) if p_arr > 0.0 else -math.inf
        log_w_no_trip = (math.log((1.0 - p_arr) / (1.0 - q))
                         if q < 1.0 else -math.inf)
    total_rate = float(lam.sum())
    prop_rate = theta * lam
    log_theta = math.log(theta)
    G = len(groups)
    if G:
        member, shock_rate, kill_prob = shock_group_arrays(groups, n)
        prop_shock_scale = 1.0 / (theta * shock_rate)
        kill_rate = np.array([g.kill_rate_per_hour for g in groups])
        total_kill_rate = float(kill_rate.sum())
    else:
        total_kill_rate = 0.0
    true_shock = total_kill_rate / (total_rate + total_kill_rate)
    q_shock = (max(true_shock, SHOCK_INIT_BIAS_FLOOR)
               if total_kill_rate > 0.0 else 0.0)

    log_w = np.zeros(batch)
    install = np.zeros((batch, n))
    next_fail = rng.standard_exponential((batch, n)) / prop_rate
    num_failed = np.zeros(batch, dtype=np.int32)

    # --- the event that ends the up phase and opens the busy period ---
    shock_init = np.zeros(batch, dtype=bool)
    if q_shock > 0.0:
        shock_init = rng.random(batch) < q_shock
        if q_shock != true_shock:
            log_w += np.where(
                shock_init, math.log(true_shock / q_shock),
                math.log((1.0 - true_shock) / (1.0 - q_shock)))
    fail_lanes = np.flatnonzero(~shock_init)
    if fail_lanes.size:
        first = rng.choice(n, fail_lanes.size, p=lam / total_rate)
        next_fail[fail_lanes, first] = math.inf
        num_failed[fail_lanes] = 1
    shock_lanes = np.flatnonzero(shock_init)
    if shock_lanes.size:
        g0 = rng.choice(G, shock_lanes.size, p=kill_rate / total_kill_rate)
        pattern = _conditional_kill_patterns(member[g0], kill_prob[g0], rng)
        next_fail[shock_lanes] = np.where(pattern, math.inf,
                                          next_fail[shock_lanes])
        num_failed[shock_lanes] = pattern.sum(axis=1)

    rebuild_done = np.asarray(repair.sample(rng, batch), dtype=float)
    if G:
        # Accelerated shock clocks; ``last_shock`` tracks each group's
        # previous (biased) arrival so interarrival ratios can be
        # scored, with the busy start as the memoryless epoch.
        next_shock = rng.exponential(prop_shock_scale, size=(batch, G))
        last_shock = np.zeros((batch, G))
    loss = num_failed > m   # a multi-kill shock can lose data outright
    duration = np.zeros(batch)
    active = np.flatnonzero(~loss)

    for _ in range(MAX_CYCLE_ROUNDS):
        if active.size == 0:
            break
        nf = next_fail[active]
        dev = nf.argmin(axis=1)
        t_fail = nf[np.arange(active.size), dev]
        t_rebuild = rebuild_done[active]
        if G:
            ns = next_shock[active]
            grp = ns.argmin(axis=1)
            t_shock = ns[np.arange(active.size), grp]
            fail_first = (t_fail <= t_rebuild) & (t_fail <= t_shock)
            shock_first = ~fail_first & (t_shock < t_rebuild)
            t = np.minimum(np.minimum(t_fail, t_rebuild), t_shock)
        else:
            fail_first = t_fail <= t_rebuild
            shock_first = np.zeros(active.size, dtype=bool)
            t = np.where(fail_first, t_fail, t_rebuild)
        f = num_failed[active]
        done = np.zeros(active.size, dtype=bool)

        # Domain shocks: score the accelerated arrival (interarrival
        # density ratio), advance the group's clock, kill each healthy
        # member w.p. its true kill probability (no weight), score the
        # killed devices' *survival* to the shock time, lose data if
        # more than m devices end up down.
        if shock_first.any():
            rows = active[shock_first]
            g = grp[shock_first]
            gap = t[shock_first] - last_shock[rows, g]
            log_w[rows] += -log_theta + gap * shock_rate[g] * (theta - 1.0)
            last_shock[rows, g] = t[shock_first]
            next_shock[rows, g] = (t[shock_first]
                                   + rng.exponential(prop_shock_scale[g]))
            candidates = member[g] & np.isfinite(next_fail[rows])
            killed = candidates & (rng.random(candidates.shape)
                                   < kill_prob[g][:, None])
            kcount = killed.sum(axis=1).astype(np.int32)
            ages = (t[shock_first][:, None] - install[rows]) * killed
            log_w[rows] += (ages * lam * (theta - 1.0)).sum(axis=1)
            next_fail[rows] = np.where(killed, math.inf, next_fail[rows])
            num_failed[rows] += kcount
            fatal = num_failed[rows] > m
            if fatal.any():
                fatal_lanes = rows[fatal]
                loss[fatal_lanes] = True
                duration[fatal_lanes] = t[shock_first][fatal]
                done[np.flatnonzero(shock_first)[fatal]] = True
            # Surviving struck lanes need no rebuild bookkeeping: a
            # rebuild is always in flight during a busy period (armed
            # at busy start, re-armed on chaining, and a lane with
            # nothing left to rebuild regenerates the same round).

        # Device failures: score the observed lifetime against its own
        # per-device rate, mark the device down, lose data if m devices
        # were already down.
        if fail_first.any():
            lanes = active[fail_first]
            d = dev[fail_first]
            ages = t[fail_first] - install[lanes, d]
            log_w[lanes] += -log_theta + ages * lam[d] * (theta - 1.0)
            next_fail[lanes, d] = math.inf
            fatal = f[fail_first] == m
            if fatal.any():
                fatal_lanes = lanes[fatal]
                loss[fatal_lanes] = True
                duration[fatal_lanes] = t[fail_first][fatal]
                done[np.flatnonzero(fail_first)[fatal]] = True
            grew = lanes[~fatal]
            if grew.size:
                num_failed[grew] += 1

        # Rebuild completions: biased critical-mode sector trip, then
        # restore one device with a fresh (accelerated) lifetime; the
        # cycle regenerates when no device is left down.
        rebuilt = ~fail_first & ~shock_first
        if rebuilt.any():
            lanes = active[rebuilt]
            critical = f[rebuilt] == m
            trip = np.zeros(lanes.size, dtype=bool)
            num_critical = int(critical.sum())
            if num_critical and q > 0.0:
                fired = rng.random(num_critical) < q
                trip[critical] = fired
                if q != p_arr:
                    log_w[lanes[critical]] += np.where(
                        fired, log_w_trip, log_w_no_trip)
            if trip.any():
                trip_lanes = lanes[trip]
                loss[trip_lanes] = True
                duration[trip_lanes] = t[rebuilt][trip]
                done[np.flatnonzero(rebuilt)[trip]] = True
            ok = ~trip
            ok_lanes = lanes[ok]
            if ok_lanes.size:
                restored = np.isinf(next_fail[ok_lanes]).argmax(axis=1)
                fresh = (rng.standard_exponential(ok_lanes.size)
                         / prop_rate[restored])
                next_fail[ok_lanes, restored] = t[rebuilt][ok] + fresh
                install[ok_lanes, restored] = t[rebuilt][ok]
                num_failed[ok_lanes] -= 1
                rebuild_done[ok_lanes] = math.inf
                more = num_failed[ok_lanes] > 0
                chained = ok_lanes[more]
                if chained.size:
                    rebuild_done[chained] = (
                        t[rebuilt][ok][more]
                        + repair.sample(rng, chained.size))
                regen = ok_lanes[~more]
                if regen.size:
                    duration[regen] = t[rebuilt][ok][~more]
                    done[np.flatnonzero(rebuilt)[ok][~more]] = True

        # Cycle over: score the survival of devices still alive, and of
        # every (accelerated) shock clock since its last arrival.
        if done.any():
            ended = active[done]
            alive = np.isfinite(next_fail[ended])
            ages = (duration[ended][:, None] - install[ended]) * alive
            log_w[ended] += ((ages * lam * (theta - 1.0))
                             * alive).sum(axis=1)
            if G:
                quiet = duration[ended][:, None] - last_shock[ended]
                log_w[ended] += (quiet * shock_rate
                                 * (theta - 1.0)).sum(axis=1)
            active = active[~done]
    else:  # pragma: no cover - safety valve
        raise RuntimeError(
            f"busy period did not finish within {MAX_CYCLE_ROUNDS} events; "
            "the biasing proposal is pathological (acceleration too strong, "
            "repair model degenerate, or shock rate overwhelming repair)"
        )
    return loss, duration, log_w


@dataclass
class _Moments:
    """Streaming sums for the ratio estimator and its delta-method SE.

    ``x = w·1{loss}`` drives the loss probability, ``y = w·busy`` the
    busy-length correction; ``w`` totals power the Kish ESS.
    """

    n: int = 0
    x_sum: float = 0.0
    x2_sum: float = 0.0
    y_sum: float = 0.0
    y2_sum: float = 0.0
    xy_sum: float = 0.0
    w_sum: float = 0.0
    w2_sum: float = 0.0
    losses: int = 0

    def add(self, loss: np.ndarray, duration: np.ndarray,
            log_w: np.ndarray) -> None:
        w = np.exp(log_w)
        x = w * loss
        y = w * duration
        self.n += int(loss.size)
        self.x_sum += float(x.sum())
        self.x2_sum += float((x * x).sum())
        self.y_sum += float(y.sum())
        self.y2_sum += float((y * y).sum())
        self.xy_sum += float((x * y).sum())
        self.w_sum += float(w.sum())
        self.w2_sum += float((w * w).sum())
        self.losses += int(loss.sum())

    def estimate(self, mean_up_hours: float) -> tuple[float, float]:
        """``(mttdl, std_error)`` for one array via the delta method.

        ``MTTDL = (E[U] + E[w·B]) / E[w·L]`` with ``E[U]`` exact; the
        variance combines ``Var(x̄)``, ``Var(ȳ)`` and their covariance.
        """
        n = self.n
        p_hat = self.x_sum / n
        busy = self.y_sum / n
        mttdl = (mean_up_hours + busy) / p_hat
        if n < 2:
            return mttdl, math.inf
        var_x = (self.x2_sum - n * p_hat * p_hat) / (n - 1)
        var_y = (self.y2_sum - n * busy * busy) / (n - 1)
        cov_xy = (self.xy_sum - n * p_hat * busy) / (n - 1)
        var = (mttdl * mttdl * var_x - 2.0 * mttdl * cov_xy + var_y) \
            / (p_hat * p_hat * n)
        return mttdl, math.sqrt(max(var, 0.0))

    @property
    def effective_sample_size(self) -> float:
        if self.w2_sum == 0.0:
            return 0.0
        return self.w_sum ** 2 / self.w2_sum


def estimate_rare_mttdl(n: int,
                        p_arr: float,
                        m: int = 1,
                        seed: int | np.random.Generator | None = None,
                        lifetime: LifetimeModel | None = None,
                        repair: RepairModel | None = None,
                        num_arrays: int = 1,
                        acceleration: float | None = None,
                        trip_bias: float | None = None,
                        target_rel_se: float = 0.02,
                        max_cycles: int = 4_000_000,
                        batch_cycles: int = 50_000,
                        domains: FailureDomains | None = None,
                        ) -> RareEventResult:
    """Importance-sampled MTTDL of an ``m``-fault-tolerant array/cluster.

    Simulates regeneration-cycle busy periods in vectorized batches
    under balanced failure biasing until the relative standard error of
    the MTTDL estimate drops below ``target_rel_se`` (or ``max_cycles``
    is exhausted).  ``lifetime`` must be (default)
    :class:`ExponentialLifetime` -- the regeneration argument needs
    memoryless lifetimes -- or a trace-fitted
    :class:`~repro.sim.traces.EmpiricalLifetime`, accepted under the
    quasi-renewal reading described in the module docstring (exact for
    constant fitted hazards); ``repair`` may be any
    :class:`RepairModel`.  ``acceleration`` and ``trip_bias`` override
    the automatic biasing schedule (``θ`` from
    :func:`balanced_acceleration`, trip proposal floored at
    :data:`TRIP_BIAS_FLOOR`); estimates are unbiased for any choice,
    only the variance changes.

    Usage -- the paper's m = 2 operating point, then a correlated
    variant of it::

        from repro.sim import FailureDomains, estimate_rare_mttdl

        result = estimate_rare_mttdl(n=8, p_arr=4.4e-9, m=2, seed=0)
        result.mttdl_hours            # ~1e12 h, in milliseconds
        shocked = estimate_rare_mttdl(
            n=8, p_arr=4.4e-9, m=2, seed=0,
            domains=FailureDomains(racks=4,
                                   rack_shock_rate_per_hour=1e-7))
        shocked.mttdl_hours < result.mttdl_hours   # correlation hurts

    ``domains`` folds rack/enclosure shocks and batch wear into the
    regeneration cycle (see the module docstring for the adapted
    decomposition and weights); shocks stay memoryless, so the
    estimator is still exact-in-expectation.

    For ``num_arrays > 1`` the cluster MTTDL is the per-array value
    divided by the array count -- exact in the regenerative limit where
    busy periods (hours) are negligible against up phases (years), the
    same superposition argument the analytic layer uses (Eq. 9).  With
    shock domains this additionally treats each array's shock process
    as independent (exact for contiguous placement with
    ``racks >= num_arrays``; a marginally-exact approximation when
    arrays share racks -- the event engine captures the coupling).
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    if n < m + 1:
        raise ValueError(f"need n >= m + 1 devices per array (n={n}, m={m})")
    if not (0.0 <= p_arr <= 1.0):
        raise ValueError("p_arr must lie in [0, 1]")
    if num_arrays < 1:
        raise ValueError("num_arrays must be >= 1")
    if target_rel_se <= 0:
        raise ValueError("target_rel_se must be positive")
    if max_cycles < 1 or batch_cycles < 1:
        raise ValueError("max_cycles and batch_cycles must be >= 1")

    lifetime = lifetime or ExponentialLifetime()
    if isinstance(lifetime, BiasedLifetime):
        raise TypeError("pass the target lifetime; the biased proposal is "
                        "constructed internally")
    if not isinstance(lifetime, (ExponentialLifetime, EmpiricalLifetime)):
        raise TypeError(
            "the regenerative-cycle estimator requires exponential or "
            "piecewise-exponential lifetimes (the all-healthy state is "
            "only a (quasi-)regeneration point for those); got "
            f"{type(lifetime).__name__}"
        )
    if isinstance(lifetime, EmpiricalLifetime) and domains is not None:
        if not domains.is_independent:
            raise ValueError(
                "correlated failure domains combined with an empirical "
                "lifetime are not supported by the rare-event estimator "
                "(the per-device-rate busy-cycle machine is exponential-"
                "only); drop the shocks/batch wear or use the event "
                "engine"
            )
        # An inert spec (pure topology) is a statistical no-op: take
        # the plain busy-cycle path, as the other engines do.
        domains = None
    if isinstance(lifetime, EmpiricalLifetime):
        positive = lifetime.hazards[lifetime.hazards > 0.0]
        # A zero interior hazard is an infinite variation, not a
        # benign one -- it must not slip past the ratio filter.
        ratio = (math.inf if positive.size < lifetime.hazards.size
                 else float(positive.max() / positive.min()))
        if ratio > EMPIRICAL_HAZARD_RATIO_WARN:
            warnings.warn(
                f"the fitted hazard varies {ratio:.1f}x across its "
                "intervals; the rare-event estimator's quasi-renewal "
                "decomposition (all-healthy state = fresh devices) is "
                "only exact for near-constant hazards, so this "
                "estimate may be materially biased -- use the "
                "vectorized runner or the event engine for "
                "bathtub-shaped fits", RuntimeWarning, stacklevel=2)
    repair = repair or ExponentialRepair()

    # With failure domains active the per-device rates may differ (the
    # bad batch) and killing shocks shorten the up phase; the balanced
    # acceleration generalises via the aggregate failure rate.
    lam: np.ndarray | None = None
    groups: tuple = ()
    total_kill_rate = 0.0
    if domains is not None:
        lam = domains.rate_multipliers(n) / lifetime.mean_hours
        # array_shock_groups already omits zero-rate/empty groups.
        groups = domains.array_shock_groups(n)
        total_kill_rate = sum(g.kill_rate_per_hour for g in groups)

    if acceleration is None:
        if lam is None:
            acceleration = balanced_acceleration(n, lifetime.mean_hours,
                                                 repair.mean_hours)
        else:
            # Balance the combined (intrinsic + killing-shock) race:
            # shocks are accelerated by the same theta as lifetimes.
            acceleration = max(
                1.0, n / ((n - 1)
                          * (float(lam.sum()) + total_kill_rate)
                          * repair.mean_hours))
    elif acceleration <= 0:
        raise ValueError("acceleration must be positive")
    if trip_bias is None:
        trip_bias = 0.0 if p_arr == 0.0 else max(p_arr, TRIP_BIAS_FLOOR)
    elif not (0.0 <= trip_bias <= 1.0):
        raise ValueError("trip_bias must lie in [0, 1]")
    elif p_arr > 0.0 and trip_bias == 0.0:
        raise ValueError("trip_bias must be positive when p_arr > 0 "
                         "(the trip route would never be sampled)")
    elif trip_bias == 1.0 and p_arr < 1.0:
        raise ValueError(
            "trip_bias = 1 makes surviving a critical rebuild impossible "
            "under the proposal while the target allows it, so those loss "
            "paths would be silently missed; use trip_bias < 1"
        )

    rng = _as_rng(seed)
    if lam is None:
        biased = BiasedLifetime.accelerated(lifetime, acceleration)
        # E[up phase] = E[min of n fresh lifetimes]: 1/(n lambda) in the
        # exponential case, the piecewise closed form for a trace fit.
        mean_up = (lifetime.mean_minimum_hours(n)
                   if isinstance(lifetime, EmpiricalLifetime)
                   else lifetime.mean_hours / n)

        def run_batch(batch: int):
            return _biased_busy_cycles(n, m, p_arr, batch, rng, biased,
                                       repair, trip_bias)
    else:
        mean_up = 1.0 / (float(lam.sum()) + total_kill_rate)

        def run_batch(batch: int):
            return _domain_busy_cycles(n, m, p_arr, batch, rng, lam,
                                       acceleration, repair, trip_bias,
                                       groups)
    moments = _Moments()
    while moments.n < max_cycles:
        batch = min(batch_cycles, max_cycles - moments.n)
        loss, duration, log_w = run_batch(batch)
        moments.add(loss, duration, log_w)
        if moments.x_sum > 0.0 and moments.losses >= 2:
            mttdl, se = moments.estimate(mean_up)
            if se / mttdl <= target_rel_se:
                break
    if moments.x_sum == 0.0:
        raise RuntimeError(
            f"no data-loss cycle sampled in {moments.n} busy periods; "
            "increase max_cycles or strengthen the biasing "
            "(acceleration/trip_bias)"
        )
    mttdl, se = moments.estimate(mean_up)
    return RareEventResult(
        mttdl_hours=mttdl / num_arrays,
        mttdl_std_error=se / num_arrays,
        cycles=moments.n,
        loss_cycles=moments.losses,
        loss_probability=moments.x_sum / moments.n,
        mean_up_hours=mean_up,
        mean_busy_hours=moments.y_sum / moments.n,
        effective_sample_size=moments.effective_sample_size,
        acceleration=acceleration,
        trip_bias=trip_bias,
        num_arrays=num_arrays,
        metadata=({"n": n, "m": m, "p_arr": p_arr}
                  if domains is None else
                  {"n": n, "m": m, "p_arr": p_arr,
                   "domains": domains.describe()}),
    )


def rare_event_code_mttdl(code: StripeCode | CodeReliability,
                          model: SectorFailureModel,
                          params: SystemParameters | None = None,
                          seed: int | np.random.Generator | None = None,
                          num_arrays: int = 1,
                          lifetime: LifetimeModel | None = None,
                          repair: RepairModel | None = None,
                          target_rel_se: float = 0.02,
                          max_cycles: int = 4_000_000,
                          domains: FailureDomains | None = None,
                          ) -> RareEventResult:
    """Rare-event MTTDL of a code under the paper's system parameters.

    The importance-sampled counterpart of
    :func:`repro.sim.montecarlo.simulate_code_mttdl`: ``P_arr`` comes
    from the analysis layer (Eq. 11) applied to the code's coverage, the
    lifetimes default to the paper's exponential model with 1/λ from
    ``params`` -- no accelerated-failure surrogate needed even at the
    true 1/λ = 500,000 h.  Pass ``lifetime`` to override, e.g. with a
    trace-fitted :class:`~repro.sim.traces.EmpiricalLifetime` (the
    CLI's ``--trace --rare-event`` route).

    Usage::

        from repro.codes import parse_code_spec
        from repro.reliability import IndependentSectorModel, \\
            SystemParameters
        from repro.sim import rare_event_code_mttdl

        params = SystemParameters(m=2)
        model = IndependentSectorModel.from_p_bit(1e-10, params.r,
                                                  params.sector_bytes)
        code = parse_code_spec("sd(n=8,r=16,m=2,s=2)")
        result = rare_event_code_mttdl(code, model, params, seed=0)

    ``domains`` threads a correlated failure-domain spec through to
    :func:`estimate_rare_mttdl`; the §7 analytic chain is then only an
    independent-failure reference.
    """
    params = params or SystemParameters()
    if isinstance(code, CodeReliability):
        reliability = code
    else:
        coverage = CoverageModel.from_code(code)
        if coverage.m != params.m:
            raise ValueError(
                f"{type(code).__name__} tolerates m = {coverage.m} device "
                f"failures but SystemParameters has m = {params.m}; the "
                "sector model and cycle simulation would disagree"
            )
        if (code.n, code.r) != (params.n, params.r):
            raise ValueError(
                f"code geometry (n={code.n}, r={code.r}) does not match "
                f"SystemParameters (n={params.n}, r={params.r}); the "
                "sector model and cycle simulation would disagree"
            )
        reliability = code_reliability_from_code(code)
    parr = p_array(reliability, params, model)
    result = estimate_rare_mttdl(
        params.n, parr, m=params.m, seed=seed,
        lifetime=lifetime or ExponentialLifetime(
            params.mean_time_to_failure_hours),
        repair=repair or ExponentialRepair(params.mean_time_to_rebuild_hours),
        num_arrays=num_arrays, target_rel_se=target_rel_se,
        max_cycles=max_cycles, domains=domains)
    result.metadata["code"] = reliability.label()
    return result


def projected_direct_rounds(analytic_mttdl_hours: float, n: int,
                            lifetime_mean_hours: float,
                            trials: int) -> float:
    """Rounds a direct batch run would need for this configuration.

    One round advances every lane one event; the loop runs until the
    *slowest* trial absorbs, i.e. for about ``2·n·λ·max_i T_i`` events
    (a failure and a rebuild per up cycle).  For exponential-ish
    lifetimes the maximum of ``trials`` draws is ~``ln(trials)`` times
    the mean, giving the estimate used by the CLI to decide when direct
    Monte Carlo is hopeless and the rare-event estimator should take
    over.

    Usage::

        projected_direct_rounds(1e12, n=8, lifetime_mean_hours=5e5,
                                trials=1000)   # ~2e8: hopeless
    """
    expected_events = 2.0 * n * analytic_mttdl_hours / lifetime_mean_hours
    return expected_events * (math.log(max(trials, 1)) + 1.0)


def direct_mc_is_tractable(analytic_mttdl_hours: float, n: int,
                           lifetime_mean_hours: float,
                           trials: int) -> bool:
    """Would the direct runner finish inside its ``MAX_ROUNDS`` valve?

    Usage -- the CLI's auto-switchover predicate::

        if not direct_mc_is_tractable(analytic, n, mttf, trials):
            ...  # route to estimate_rare_mttdl instead
    """
    return projected_direct_rounds(analytic_mttdl_hours, n,
                                   lifetime_mean_hours,
                                   trials) <= MAX_ROUNDS
