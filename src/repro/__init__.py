"""Reproduction of "STAIR Codes: A General Family of Erasure Codes for
Tolerating Device and Sector Failures in Practical Storage Systems"
(Mingqiang Li and Patrick P. C. Lee, FAST 2014).

The package is organised as:

* :mod:`repro.gf` -- Galois-field arithmetic (scalar, region, matrix).
* :mod:`repro.rs` -- systematic MDS (Reed-Solomon) building-block codes.
* :mod:`repro.core` -- the STAIR code construction itself.
* :mod:`repro.codes` -- baseline codes (Reed-Solomon stripes, SD codes,
  intra-device redundancy, RAID wrappers).
* :mod:`repro.array` -- a storage-array simulator with failure injection.
* :mod:`repro.reliability` -- the MTTDL / sector-failure models of §7.
* :mod:`repro.analysis` -- space-saving, update-penalty and encoding-cost
  analyses used by the evaluation.
* :mod:`repro.bench` -- the per-figure benchmark harness.

Quickstart
----------
>>> from repro import StairCode, StairConfig
>>> import numpy as np
>>> code = StairCode(StairConfig(n=8, r=4, m=2, e=(1, 1, 2)))
>>> rng = np.random.default_rng(0)
>>> data = [rng.integers(0, 256, 64, dtype=np.uint8)
...         for _ in range(code.config.num_data_symbols)]
>>> stripe = code.encode(data)
>>> damaged = stripe.erase_chunks([0, 1]).erase([(3, 3), (2, 5)])
>>> repaired = code.decode(damaged)
>>> all(np.array_equal(a, b) for a, b in zip(repaired.data_symbols(), data))
True
"""

from repro.core import (
    StairCode,
    StairConfig,
    StairStripe,
    DecodingFailureError,
    ConfigurationError,
    check_coverage,
    enumerate_e_vectors,
)

__version__ = "1.0.0"

__all__ = [
    "StairCode",
    "StairConfig",
    "StairStripe",
    "DecodingFailureError",
    "ConfigurationError",
    "check_coverage",
    "enumerate_e_vectors",
    "__version__",
]
