"""Update-penalty analysis (§6.3, Figures 14 and 15).

The update penalty is the average number of parity symbols that must be
rewritten when one data symbol is updated.  For STAIR codes it follows
from the uneven parity relations (the generator's non-zero structure);
for SD codes from their dense encoding matrix; Reed-Solomon codes always
touch exactly m row parities.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean
from typing import Sequence

from repro.codes.sd import SDCode
from repro.core.config import StairConfig, enumerate_e_vectors
from repro.core.stair import StairCode


def stair_update_penalty(n: int, r: int, m: int, e: Sequence[int]) -> float:
    """Update penalty of the STAIR code with coverage vector e."""
    code = StairCode(StairConfig(n=n, r=r, m=m, e=tuple(e)))
    return code.update_penalty()


def reed_solomon_update_penalty(m: int) -> float:
    """Every data symbol contributes to exactly the m row parities."""
    return float(m)


def sd_update_penalty(n: int, r: int, m: int, s: int) -> float:
    """Update penalty of the SD code with s global parity sectors."""
    return SDCode(n=n, r=r, m=m, s=s).update_penalty()


@dataclass(frozen=True)
class PenaltyStatistics:
    """Min / mean / max update penalty over all e vectors for a given s."""

    s: int
    minimum: float
    average: float
    maximum: float
    per_vector: dict[tuple[int, ...], float]


def stair_penalty_statistics(n: int, r: int, m: int, s: int,
                             m_prime_max: int | None = None,
                             ) -> PenaltyStatistics:
    """Update-penalty statistics over every coverage vector with total s.

    This is the error-bar data of Figure 15 ("the maximum and minimum
    update penalty values among all possible configurations of e").
    """
    m_prime_cap = m_prime_max if m_prime_max is not None else n - m
    per_vector: dict[tuple[int, ...], float] = {}
    for e in enumerate_e_vectors(s, m_prime_max=m_prime_cap, e_max_cap=r):
        per_vector[e] = stair_update_penalty(n, r, m, e)
    if not per_vector:
        raise ValueError(f"no valid e vectors for s={s} with r={r}")
    values = list(per_vector.values())
    return PenaltyStatistics(s=s, minimum=min(values), average=mean(values),
                             maximum=max(values), per_vector=per_vector)


def figure14_data(n: int = 16, s: int = 4, m_values: Sequence[int] = (1, 2, 3),
                  r_values: Sequence[int] = (8, 16, 24, 32),
                  ) -> dict[int, dict[tuple[int, ...], dict[int, float]]]:
    """Data behind Figure 14: update penalty vs e for each r and m.

    Returns ``data[r][e][m] = penalty``.
    """
    vectors = list(enumerate_e_vectors(s))
    data: dict[int, dict[tuple[int, ...], dict[int, float]]] = {}
    for r in r_values:
        data[r] = {}
        for e in vectors:
            if max(e) > r:
                continue
            data[r][e] = {m: stair_update_penalty(n, r, m, e) for m in m_values}
    return data


def figure15_data(n: int = 16, r: int = 16, m_values: Sequence[int] = (1, 2, 3),
                  stair_s_values: Sequence[int] = (1, 2, 3, 4),
                  sd_s_values: Sequence[int] = (1, 2, 3),
                  ) -> dict[int, dict[str, object]]:
    """Data behind Figure 15: RS vs SD vs STAIR update penalties.

    Returns ``data[m]`` containing the RS penalty, SD penalties per s and
    STAIR penalty statistics per s.
    """
    data: dict[int, dict[str, object]] = {}
    for m in m_values:
        data[m] = {
            "rs": reed_solomon_update_penalty(m),
            "sd": {s: sd_update_penalty(n, r, m, s) for s in sd_s_values},
            "stair": {s: stair_penalty_statistics(n, r, m, s)
                      for s in stair_s_values},
        }
    return data
