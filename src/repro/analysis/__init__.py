"""Evaluation analyses: space saving, update penalty, encoding complexity."""

from repro.analysis.encoding_cost import (
    EncodingCostPoint,
    encoding_cost_sweep,
    figure9_data,
    measured_costs,
)
from repro.analysis.space import (
    SpaceComparison,
    compare_space,
    devices_saved_sd,
    devices_saved_stair,
    figure10_grid,
    redundant_sectors_idr,
    redundant_sectors_stair,
    redundant_sectors_traditional,
    storage_efficiency_stair,
    symbols_saved_stair,
)
from repro.analysis.update_penalty import (
    PenaltyStatistics,
    figure14_data,
    figure15_data,
    reed_solomon_update_penalty,
    sd_update_penalty,
    stair_penalty_statistics,
    stair_update_penalty,
)

__all__ = [
    "EncodingCostPoint",
    "encoding_cost_sweep",
    "figure9_data",
    "measured_costs",
    "SpaceComparison",
    "compare_space",
    "devices_saved_stair",
    "devices_saved_sd",
    "symbols_saved_stair",
    "redundant_sectors_stair",
    "redundant_sectors_idr",
    "redundant_sectors_traditional",
    "storage_efficiency_stair",
    "figure10_grid",
    "PenaltyStatistics",
    "stair_update_penalty",
    "sd_update_penalty",
    "reed_solomon_update_penalty",
    "stair_penalty_statistics",
    "figure14_data",
    "figure15_data",
]
