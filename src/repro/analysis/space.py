"""Storage-space analysis (§6.1, Figure 10, and the §2 IDR comparison).

Given a failure scenario (m, e), traditional device-level erasure codes
need ``m + m'`` parity chunks per stripe while STAIR codes need ``m``
chunks plus ``s`` symbols, saving ``r*m' - s`` symbols per stripe, i.e.
``m' - s/r`` devices per array.  SD codes save ``s - s/r`` devices (their
maximum), but only exist for ``s <= 3``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


def devices_saved_stair(s: int, m_prime: int, r: int) -> float:
    """Devices saved by a STAIR code over traditional erasure codes.

    Figure 10 plots this as a function of s, m' and r: ``m' - s / r``.
    """
    if m_prime > s:
        raise ValueError("m' cannot exceed s (each of the m' chunks has >= 1 failure)")
    return m_prime - s / r


def devices_saved_sd(s: int, r: int) -> float:
    """Devices saved by an SD code: ``s - s / r`` (the STAIR maximum)."""
    return s - s / r


def symbols_saved_stair(s: int, m_prime: int, r: int) -> int:
    """Symbols saved per stripe by STAIR over traditional codes: r*m' - s."""
    return r * m_prime - s


def redundant_sectors_stair(e: Sequence[int], m: int, r: int) -> int:
    """Redundant sectors per stripe of a STAIR code: m*r + s."""
    return m * r + sum(e)


def redundant_sectors_idr(beta: int, n: int, m: int, r: int) -> int:
    """Redundant sectors per stripe of the IDR scheme protecting bursts of
    length beta: beta redundant sectors in each of the n-m data chunks plus
    the m parity chunks (the §2 comparison: n=8, m=2, beta=4 -> 24 + 2r)."""
    return beta * (n - m) + m * r


def redundant_sectors_traditional(m: int, m_prime: int, r: int) -> int:
    """Redundant sectors per stripe of traditional codes: (m + m') chunks."""
    return (m + m_prime) * r


def storage_efficiency_stair(n: int, r: int, m: int, s: int) -> float:
    """Eq. 8 for STAIR codes (s = 0 gives Reed-Solomon)."""
    return (r * (n - m) - s) / (r * n)


@dataclass(frozen=True)
class SpaceComparison:
    """Space overhead of the competing schemes for one failure scenario."""

    n: int
    r: int
    m: int
    e: tuple[int, ...]
    stair_redundant_sectors: int
    traditional_redundant_sectors: int
    idr_redundant_sectors: int
    sd_redundant_sectors: int

    @property
    def stair_saving_vs_traditional(self) -> int:
        return self.traditional_redundant_sectors - self.stair_redundant_sectors

    @property
    def stair_saving_vs_idr(self) -> int:
        return self.idr_redundant_sectors - self.stair_redundant_sectors


def compare_space(n: int, r: int, m: int, e: Sequence[int]) -> SpaceComparison:
    """Side-by-side redundancy of STAIR, traditional, IDR and SD codes."""
    e_sorted = tuple(sorted(int(x) for x in e))
    s = sum(e_sorted)
    m_prime = len(e_sorted)
    beta = e_sorted[-1] if e_sorted else 0
    return SpaceComparison(
        n=n, r=r, m=m, e=e_sorted,
        stair_redundant_sectors=redundant_sectors_stair(e_sorted, m, r),
        traditional_redundant_sectors=redundant_sectors_traditional(m, m_prime, r),
        idr_redundant_sectors=redundant_sectors_idr(beta, n, m, r),
        sd_redundant_sectors=m * r + s,
    )


def figure10_grid(s_values: Sequence[int] = (1, 2, 3, 4),
                  r_values: Sequence[int] = tuple(range(1, 33)),
                  ) -> dict[int, dict[int, list[float]]]:
    """Data behind Figure 10: devices saved vs r for each (s, m').

    Returns ``grid[s][m_prime] = [saving for each r in r_values]``.
    """
    grid: dict[int, dict[int, list[float]]] = {}
    for s in s_values:
        grid[s] = {}
        for m_prime in range(1, s + 1):
            grid[s][m_prime] = [devices_saved_stair(s, m_prime, r)
                                for r in r_values if r >= 1]
    return grid
