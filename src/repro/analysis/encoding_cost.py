"""Encoding-complexity analysis (§5.3, Figure 9).

Sweeps the Mult_XOR counts of the three encoding methods over every
coverage vector e for a given total s, both analytically (Eq. 5/6 and the
generator non-zero count) and as measured by the instrumented encoders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.complexity import downstairs_mult_xors, upstairs_mult_xors
from repro.core.config import StairConfig, enumerate_e_vectors
from repro.core.stair import StairCode


@dataclass(frozen=True)
class EncodingCostPoint:
    """Mult_XOR counts of the three methods for one coverage vector."""

    e: tuple[int, ...]
    standard: int
    upstairs: int
    downstairs: int

    def best(self) -> str:
        costs = {"standard": self.standard, "upstairs": self.upstairs,
                 "downstairs": self.downstairs}
        return min(costs, key=costs.get)  # type: ignore[arg-type]


def encoding_cost_sweep(n: int, r: int, m: int, s: int,
                        m_prime_max: int | None = None,
                        ) -> list[EncodingCostPoint]:
    """Mult_XOR counts for every e with total s (the x-axis of Figure 9)."""
    points = []
    cap = m_prime_max if m_prime_max is not None else n - m
    for e in enumerate_e_vectors(s, m_prime_max=cap, e_max_cap=r):
        config = StairConfig(n=n, r=r, m=m, e=e)
        code = StairCode(config)
        points.append(EncodingCostPoint(
            e=e,
            standard=int(np.count_nonzero(code.parity_coefficients())),
            upstairs=upstairs_mult_xors(config),
            downstairs=downstairs_mult_xors(config),
        ))
    return points


def figure9_data(n: int = 8, m: int = 2, s: int = 4,
                 r_values: Sequence[int] = (8, 16, 24, 32),
                 ) -> dict[int, list[EncodingCostPoint]]:
    """Data behind Figure 9: counts per e for each r (n=8, m=2, s=4)."""
    return {r: encoding_cost_sweep(n, r, m, s) for r in r_values}


def measured_costs(n: int, r: int, m: int, e: Sequence[int],
                   symbol_size: int = 16) -> EncodingCostPoint:
    """Measure the three methods with the instrumented encoders.

    Used by tests to confirm the analytical counts; the measured counts can
    be marginally lower when a decode coefficient happens to be zero.
    """
    config = StairConfig(n=n, r=r, m=m, e=tuple(e))
    code = StairCode(config)
    rng = np.random.default_rng(42)
    data = [rng.integers(0, 256, symbol_size, dtype=np.uint8)
            for _ in range(config.num_data_symbols)]
    measured = {}
    for method in ("standard", "upstairs", "downstairs"):
        code.counter.reset()
        code.encode(data, method=method)
        measured[method] = code.counter.total()
    return EncodingCostPoint(e=config.e, standard=measured["standard"],
                             upstairs=measured["upstairs"],
                             downstairs=measured["downstairs"])
