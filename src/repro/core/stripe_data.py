"""The :class:`StairStripe` container: one encoded stripe of symbols.

A thin wrapper over an r x n grid of NumPy symbol buffers that knows the
stripe layout, so callers can address symbols by role (data / row parity /
global parity), extract or replace the user data, and injure the stripe
for recovery experiments.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.core.config import StairConfig
from repro.core.layout import StripeLayout


class StairStripe:
    """An encoded stripe: r rows x n chunks of equal-size symbols."""

    def __init__(self, config: StairConfig, layout: StripeLayout,
                 symbols: Sequence[Sequence[Optional[np.ndarray]]]) -> None:
        if len(symbols) != config.r or any(len(row) != config.n for row in symbols):
            raise ValueError("symbol grid does not match the stripe geometry")
        self.config = config
        self.layout = layout
        self.symbols: list[list[Optional[np.ndarray]]] = [
            [None if cell is None else np.asarray(cell) for cell in row]
            for row in symbols
        ]

    # ------------------------------------------------------------------ #
    # Element access
    # ------------------------------------------------------------------ #
    def get(self, row: int, col: int) -> Optional[np.ndarray]:
        """Return the symbol at (row, col); ``None`` if it is lost."""
        return self.symbols[row][col]

    def set(self, row: int, col: int, symbol: Optional[np.ndarray]) -> None:
        """Replace the symbol at (row, col)."""
        self.symbols[row][col] = None if symbol is None else np.asarray(symbol)

    @property
    def symbol_size(self) -> int:
        """Size (in field elements) of each symbol."""
        for row in self.symbols:
            for cell in row:
                if cell is not None:
                    return len(cell)
        raise ValueError("stripe has no surviving symbols")

    def copy(self) -> "StairStripe":
        """Deep copy of the stripe."""
        return StairStripe(self.config, self.layout,
                           [[None if c is None else np.copy(c) for c in row]
                            for row in self.symbols])

    # ------------------------------------------------------------------ #
    # Role-based views
    # ------------------------------------------------------------------ #
    def data_symbols(self) -> list[np.ndarray]:
        """User data symbols in the layout's linear order."""
        out = []
        for row, col in self.layout.data_positions():
            symbol = self.symbols[row][col]
            if symbol is None:
                raise ValueError(f"data symbol at ({row},{col}) is lost")
            out.append(symbol)
        return out

    def parity_symbols(self) -> list[np.ndarray]:
        """Parity symbols (global parities first, then row parities)."""
        out = []
        for row, col in self.layout.parity_positions():
            symbol = self.symbols[row][col]
            if symbol is None:
                raise ValueError(f"parity symbol at ({row},{col}) is lost")
            out.append(symbol)
        return out

    def chunk(self, col: int) -> list[Optional[np.ndarray]]:
        """All symbols of chunk (device) ``col``, top to bottom."""
        return [self.symbols[i][col] for i in range(self.config.r)]

    # ------------------------------------------------------------------ #
    # Failure injection
    # ------------------------------------------------------------------ #
    def lost_positions(self) -> list[tuple[int, int]]:
        """Stripe positions currently marked lost."""
        return [(i, j) for i in range(self.config.r) for j in range(self.config.n)
                if self.symbols[i][j] is None]

    def erase(self, positions: Iterable[tuple[int, int]]) -> "StairStripe":
        """Return a copy with the given positions marked lost."""
        damaged = self.copy()
        for row, col in positions:
            damaged.symbols[row][col] = None
        return damaged

    def erase_chunks(self, columns: Iterable[int]) -> "StairStripe":
        """Return a copy with entire chunks (device failures) marked lost."""
        damaged = self.copy()
        for col in columns:
            for row in range(self.config.r):
                damaged.symbols[row][col] = None
        return damaged

    # ------------------------------------------------------------------ #
    # Serialisation helpers
    # ------------------------------------------------------------------ #
    def to_bytes(self) -> bytes:
        """Serialise the stripe (row-major) to raw bytes."""
        parts = []
        for row in self.symbols:
            for cell in row:
                if cell is None:
                    raise ValueError("cannot serialise a stripe with lost symbols")
                parts.append(np.asarray(cell, dtype=np.uint8).tobytes())
        return b"".join(parts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StairStripe):
            return NotImplemented
        if self.config != other.config:
            return False
        for i in range(self.config.r):
            for j in range(self.config.n):
                a, b = self.symbols[i][j], other.symbols[i][j]
                if (a is None) != (b is None):
                    return False
                if a is not None and not np.array_equal(a, b):
                    return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        lost = len(self.lost_positions())
        return (f"StairStripe({self.config.r}x{self.config.n}, "
                f"{lost} lost symbols)")
