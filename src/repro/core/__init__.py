"""STAIR codes: the paper's primary contribution.

Public entry points:

* :class:`~repro.core.config.StairConfig` -- validated (n, r, m, e)
  parameters with derived quantities (m', s, storage efficiency, ...).
* :class:`~repro.core.stair.StairCode` -- encode/decode stripes with
  automatic selection between upstairs, downstairs and standard encoding,
  plus the analysis helpers used throughout the evaluation.
* :class:`~repro.core.stripe_data.StairStripe` -- one encoded stripe.
"""

from repro.core.config import StairConfig, enumerate_e_vectors
from repro.core.exceptions import (
    ConfigurationError,
    DecodingFailureError,
    EncodingInputError,
    StairError,
)
from repro.core.layout import StripeLayout, SymbolKind
from repro.core.stair import StairCode
from repro.core.stripe_data import StairStripe
from repro.core.decoder import check_coverage
from repro.core.complexity import (
    EncodingCosts,
    choose_encoding_method,
    downstairs_mult_xors,
    encoding_costs,
    standard_mult_xors,
    upstairs_mult_xors,
)

__all__ = [
    "StairConfig",
    "StairCode",
    "StairStripe",
    "StripeLayout",
    "SymbolKind",
    "StairError",
    "ConfigurationError",
    "DecodingFailureError",
    "EncodingInputError",
    "check_coverage",
    "enumerate_e_vectors",
    "EncodingCosts",
    "encoding_costs",
    "upstairs_mult_xors",
    "downstairs_mult_xors",
    "standard_mult_xors",
    "choose_encoding_method",
]
