"""The canonical (augmented) stripe: the engine behind STAIR encoding/decoding.

Section 4.1 of the paper augments a stripe with ``m'`` intermediate parity
chunks on the right and ``e_max`` augmented rows of virtual parity symbols
at the bottom.  The resulting ``(r + e_max) x (n + m')`` grid is a codeword
of the product code of ``C_row`` and ``C_col``:

* every grid **row** is a codeword of ``C_row`` (the homomorphic property
  proved in Appendix A), and
* every grid **column** is a codeword of ``C_col``.

Both the upstairs decoder (§4.2), the upstairs encoder (§5.1.1) and the
downstairs encoder (§5.1.2) are schedules of two primitive operations on
this grid -- "recover unknown cells of a row via C_row" and "recover
unknown cells of a column via C_col".  :class:`CanonicalStripe` implements
the grid and those primitives, and records every step so the schedules of
Tables 2 and 3 can be asserted in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.config import StairConfig
from repro.core.exceptions import DecodingFailureError
from repro.core.layout import StripeLayout
from repro.gf.regions import RegionOps
from repro.rs.systematic import SystematicMDSCode


@dataclass(frozen=True)
class ScheduleStep:
    """One recorded recovery step of an encoding/decoding schedule.

    ``kind`` is ``"row"`` or ``"col"``, ``index`` is the grid row/column
    operated on, and ``recovered`` lists the grid cells filled in.
    """

    kind: str
    index: int
    recovered: tuple[tuple[int, int], ...]


class CanonicalStripe:
    """Mutable canonical-stripe grid with C_row / C_col recovery primitives.

    Cells hold symbol buffers (NumPy arrays) or ``None`` when unknown.
    Coordinates are *grid* coordinates: rows ``0 .. r-1`` are the stored
    stripe rows, rows ``r .. r+e_max-1`` are augmented rows; columns
    ``0 .. n-1`` are the stored chunks, columns ``n .. n+m'-1`` are the
    intermediate parity chunks.
    """

    def __init__(self, config: StairConfig, layout: StripeLayout,
                 crow: SystematicMDSCode, ccol: SystematicMDSCode | None,
                 ops: RegionOps) -> None:
        self.config = config
        self.layout = layout
        self.crow = crow
        self.ccol = ccol
        self.ops = ops
        self.rows = layout.grid_rows
        self.cols = layout.grid_cols
        self.cells: list[list[Optional[np.ndarray]]] = [
            [None] * self.cols for _ in range(self.rows)
        ]
        self.steps: list[ScheduleStep] = []

    # ------------------------------------------------------------------ #
    # Cell access
    # ------------------------------------------------------------------ #
    def get(self, row: int, col: int) -> Optional[np.ndarray]:
        return self.cells[row][col]

    def set(self, row: int, col: int, symbol: np.ndarray) -> None:
        self.cells[row][col] = symbol

    def is_known(self, row: int, col: int) -> bool:
        return self.cells[row][col] is not None

    def known_in_row(self, row: int) -> int:
        """Number of known cells in a grid row."""
        return sum(1 for cell in self.cells[row] if cell is not None)

    def known_in_col(self, col: int) -> int:
        """Number of known cells in a grid column."""
        return sum(1 for row in range(self.rows) if self.cells[row][col] is not None)

    def unknown_cells_in_row(self, row: int,
                             col_limit: int | None = None) -> list[int]:
        """Columns of unknown cells in a grid row (optionally below a limit)."""
        limit = col_limit if col_limit is not None else self.cols
        return [c for c in range(limit) if self.cells[row][c] is None]

    def unknown_cells_in_col(self, col: int,
                             row_limit: int | None = None) -> list[int]:
        """Rows of unknown cells in a grid column (optionally below a limit)."""
        limit = row_limit if row_limit is not None else self.rows
        return [r for r in range(limit) if self.cells[r][col] is None]

    # ------------------------------------------------------------------ #
    # Initial population
    # ------------------------------------------------------------------ #
    def place_outside_globals(self,
                              values: Sequence[Sequence[np.ndarray]] | None = None,
                              symbol_size: int | None = None) -> None:
        """Fill the outside-global-parity cells of the augmented rows.

        With the extended (inside) construction of §5 these are fixed to
        zero; with the baseline construction of §3 they carry the actual
        outside global parity values, passed as ``values[l][h]``.
        """
        for grid_row, grid_col, l, h in self.layout.outside_global_cells():
            if values is not None:
                self.set(grid_row, grid_col, np.copy(values[l][h]))
            else:
                if symbol_size is None:
                    raise ValueError("symbol_size required to place zero globals")
                self.set(grid_row, grid_col, self.ops.zeros(symbol_size))

    def load_stripe(self, stripe: Sequence[Sequence[Optional[np.ndarray]]]) -> None:
        """Copy an r x n stripe (with ``None`` for unknown symbols) into the grid."""
        r, n = self.config.r, self.config.n
        for i in range(r):
            for j in range(n):
                symbol = stripe[i][j]
                if symbol is not None:
                    self.set(i, j, np.asarray(symbol))

    def extract_stripe(self) -> list[list[np.ndarray]]:
        """Return the stored r x n portion of the grid.

        Raises
        ------
        DecodingFailureError
            If any stored cell is still unknown.
        """
        r, n = self.config.r, self.config.n
        missing = [(i, j) for i in range(r) for j in range(n)
                   if self.cells[i][j] is None]
        if missing:
            raise DecodingFailureError(
                f"{len(missing)} stored symbols remain unknown", unrecovered=missing
            )
        return [[self.cells[i][j] for j in range(n)] for i in range(r)]

    # ------------------------------------------------------------------ #
    # Recovery primitives
    # ------------------------------------------------------------------ #
    def recover_row(self, row: int,
                    targets: Sequence[int] | None = None) -> list[tuple[int, int]]:
        """Recover unknown cells of grid row ``row`` using ``C_row``.

        ``targets`` restricts recovery to specific columns (default: every
        unknown cell in the row).  Requires at least ``n - m`` known cells.
        """
        codeword: list[Optional[np.ndarray]] = list(self.cells[row])
        wanted = list(targets) if targets is not None else None
        recovered = self.crow.recover(codeword, self.ops, wanted=wanted)
        filled = []
        for col, symbol in recovered.items():
            self.set(row, col, symbol)
            filled.append((row, col))
        if filled:
            self.steps.append(ScheduleStep("row", row, tuple(sorted(filled))))
        return filled

    def recover_rows(self, row_targets: dict[int, Sequence[int]],
                     ) -> list[tuple[int, int]]:
        """Batched :meth:`recover_row` over many grid rows at once.

        Rows sharing an erasure pattern and target set are recovered with
        one bulk-kernel batch through ``C_row.recover_many``.  Recovered
        values, recorded schedule steps (ascending row order) and counter
        totals are identical to calling :meth:`recover_row` row by row;
        the rows must be independent (no row's targets feed another's
        sources), which holds for the decoder's deferred-chunk rebuild.
        """
        groups: dict[tuple[tuple[int, ...], tuple[int, ...]], list[int]] = {}
        for row in sorted(row_targets):
            missing = tuple(c for c in range(self.cols)
                            if self.cells[row][c] is None)
            wanted = tuple(sorted(row_targets[row]))
            groups.setdefault((missing, wanted), []).append(row)
        recovered_per_row: dict[int, dict[int, np.ndarray]] = {}
        for (missing, wanted), rows in groups.items():
            batches = self.crow.recover_many(
                [list(self.cells[row]) for row in rows], self.ops,
                wanted=list(wanted))
            for row, recovered in zip(rows, batches):
                recovered_per_row[row] = recovered
        filled_all = []
        for row in sorted(row_targets):
            filled = []
            for col, symbol in recovered_per_row.get(row, {}).items():
                self.set(row, col, symbol)
                filled.append((row, col))
            if filled:
                self.steps.append(ScheduleStep("row", row, tuple(sorted(filled))))
            filled_all.extend(filled)
        return filled_all

    def recover_col(self, col: int,
                    targets: Sequence[int] | None = None) -> list[tuple[int, int]]:
        """Recover unknown cells of grid column ``col`` using ``C_col``.

        ``targets`` restricts recovery to specific rows (default: every
        unknown cell in the column).  Requires at least ``r`` known cells.
        """
        if self.ccol is None:
            raise DecodingFailureError(
                "configuration has no column code (e is empty)"
            )
        codeword: list[Optional[np.ndarray]] = [
            self.cells[row][col] for row in range(self.rows)
        ]
        wanted = list(targets) if targets is not None else None
        recovered = self.ccol.recover(codeword, self.ops, wanted=wanted)
        filled = []
        for row, symbol in recovered.items():
            self.set(row, col, symbol)
            filled.append((row, col))
        if filled:
            self.steps.append(ScheduleStep("col", col, tuple(sorted(filled))))
        return filled

    def can_recover_row(self, row: int) -> bool:
        """True if grid row ``row`` has enough known cells for C_row recovery."""
        return self.known_in_row(row) >= self.crow.dimension

    def can_recover_col(self, col: int) -> bool:
        """True if grid column ``col`` has enough known cells for C_col recovery."""
        return self.ccol is not None and self.known_in_col(col) >= self.ccol.dimension

    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        known = sum(self.known_in_row(i) for i in range(self.rows))
        return (f"CanonicalStripe({self.rows}x{self.cols}, "
                f"{known}/{self.rows * self.cols} known)")
