"""Uneven parity relations (§5.2) and update penalty (§6.3).

After the global parities are relocated inside the stripe, the relation
between data and parity symbols becomes uneven: a parity symbol at stripe
position (i0, j0) depends only on data symbols d_{i,j} with i <= i0 and
j <= j0 (Property 5.1), and within a stair tread/riser it is further
unrelated to the other columns/rows of that tread/riser.

The *update penalty* is the average number of parity symbols that must be
rewritten when one data symbol changes -- Figure 14 and Figure 15 of the
paper.  Both analyses are read off the parity-coefficient matrix derived
in :mod:`repro.core.generator`.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import StairConfig
from repro.core.layout import StripeLayout


def parity_dependencies(layout: StripeLayout,
                        parity_coefficients: np.ndarray) -> list[set[int]]:
    """For each parity symbol, the set of data indices it depends on."""
    deps: list[set[int]] = []
    for p in range(layout.num_parity_symbols):
        deps.append(set(np.nonzero(parity_coefficients[p])[0].tolist()))
    return deps


def data_dependencies(layout: StripeLayout,
                      parity_coefficients: np.ndarray) -> list[set[int]]:
    """For each data symbol, the set of parity indices it contributes to."""
    deps: list[set[int]] = [set() for _ in range(layout.num_data_symbols)]
    for p in range(layout.num_parity_symbols):
        for d in np.nonzero(parity_coefficients[p])[0]:
            deps[int(d)].add(p)
    return deps


def update_penalty(layout: StripeLayout,
                   parity_coefficients: np.ndarray) -> float:
    """Average number of parity symbols affected by a single data update."""
    k = layout.num_data_symbols
    if k == 0:
        return 0.0
    total = int(np.count_nonzero(parity_coefficients))
    return total / k


def update_penalty_per_symbol(layout: StripeLayout,
                              parity_coefficients: np.ndarray) -> list[int]:
    """Number of parity symbols affected by each individual data symbol."""
    return [int(np.count_nonzero(parity_coefficients[:, d]))
            for d in range(layout.num_data_symbols)]


def check_property_5_1(config: StairConfig, layout: StripeLayout,
                       parity_coefficients: np.ndarray) -> list[str]:
    """Verify Property 5.1 structurally; returns a list of violations.

    Three facets are checked:

    1. *Monotonicity*: a parity at stripe position (i0, j0) depends only on
       data symbols at positions (i, j) with i <= i0 and j <= j0.
    2. *Tread independence*: an inside global parity in stair chunk l does
       not depend on data symbols in a different stair chunk l' that shares
       the same tread (i.e. e_{l'} == e_l).
    3. *Riser independence*: a row parity in a row above the whole stair
       (i0 < r - e_max) depends only on data symbols of its own row.
    """
    violations: list[str] = []
    deps = parity_dependencies(layout, parity_coefficients)
    data_pos = layout.data_positions()

    for p, (pi, pj) in enumerate(layout.parity_positions()):
        for d in deps[p]:
            di, dj = data_pos[d]
            if di > pi or dj > pj:
                violations.append(
                    f"parity at ({pi},{pj}) depends on data at ({di},{dj}) "
                    "violating the monotone property"
                )

    # Tread independence among stair chunks with equal e_l.
    for pos in layout.global_parity_positions():
        p = layout.parity_index(pos.row, pos.col)
        for other_l, other_col in enumerate(layout.stair_columns):
            if other_col == pos.col or config.e[other_l] != config.e[pos.l]:
                continue
            for d in deps[p]:
                di, dj = data_pos[d]
                if dj == other_col:
                    violations.append(
                        f"global parity ĝ({pos.h},{pos.l}) depends on data in "
                        f"column {other_col} of the same tread"
                    )
                    break

    # Riser independence for rows above the stair.
    boundary = config.r - config.e_max
    for p, (pi, pj) in enumerate(layout.parity_positions()):
        if not layout.is_row_parity(pi, pj) or pi >= boundary:
            continue
        for d in deps[p]:
            di, _ = data_pos[d]
            if di != pi:
                violations.append(
                    f"row parity at ({pi},{pj}) above the stair depends on "
                    f"data in row {di}"
                )
                break

    return violations
