"""STAIR code configuration.

A STAIR code is parameterised by (n, r, m, e) -- see Table 1 of the
paper:

* ``n``  -- chunks (devices) per stripe,
* ``r``  -- sectors (symbols) per chunk,
* ``m``  -- maximum number of entirely failed chunks (device failures),
* ``e``  -- the sector-failure coverage vector ``(e_0 <= ... <= e_{m'-1})``:
  at most ``m'`` of the surviving chunks may contain sector failures, the
  l-th worst of them having at most ``e_l`` failed sectors.

``m' = len(e)`` and ``s = sum(e)`` are derived.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core.exceptions import ConfigurationError
from repro.gf.field import GField, get_field
from repro.gf.tables import SUPPORTED_WORD_SIZES


@dataclass(frozen=True)
class StairConfig:
    """Validated STAIR code parameters.

    The ``e`` vector is stored sorted in non-decreasing order (the paper's
    convention); callers may pass it in any order.

    Examples
    --------
    >>> cfg = StairConfig(n=8, r=4, m=2, e=(1, 1, 2))
    >>> cfg.m_prime, cfg.s
    (3, 4)
    """

    n: int
    r: int
    m: int
    e: tuple[int, ...] = field(default=())

    def __post_init__(self) -> None:
        object.__setattr__(self, "e", tuple(sorted(int(x) for x in self.e)))
        self._validate()

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def _validate(self) -> None:
        if self.n < 2:
            raise ConfigurationError(f"n must be >= 2, got {self.n}")
        if self.r < 1:
            raise ConfigurationError(f"r must be >= 1, got {self.r}")
        if not (0 <= self.m < self.n):
            raise ConfigurationError(
                f"m must satisfy 0 <= m < n, got m={self.m}, n={self.n}"
            )
        if any(x < 1 for x in self.e):
            raise ConfigurationError("all entries of e must be >= 1")
        if any(x > self.r for x in self.e):
            raise ConfigurationError(
                f"entries of e cannot exceed r={self.r}, got e={self.e}"
            )
        if self.m_prime > self.n - self.m:
            raise ConfigurationError(
                f"m'={self.m_prime} cannot exceed n-m={self.n - self.m}"
            )
        if self.m == 0 and not self.e:
            raise ConfigurationError("code with m=0 and empty e has no parity")
        if self.s >= self.r * (self.n - self.m):
            raise ConfigurationError(
                "s must leave at least one data symbol per stripe "
                f"(s={self.s}, data-chunk symbols={self.r * (self.n - self.m)})"
            )
        # A usable word size must exist.
        self.word_size  # noqa: B018 - property performs the check

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def m_prime(self) -> int:
        """m': number of chunks that may simultaneously have sector failures."""
        return len(self.e)

    @property
    def s(self) -> int:
        """s: total number of tolerable sector failures per stripe."""
        return sum(self.e)

    @property
    def e_max(self) -> int:
        """The largest entry of e (0 when e is empty)."""
        return self.e[-1] if self.e else 0

    @property
    def data_chunks(self) -> int:
        """Number of data chunks per stripe, n - m."""
        return self.n - self.m

    @property
    def num_data_symbols(self) -> int:
        """Data symbols per stripe once global parities live inside the stripe."""
        return self.r * self.data_chunks - self.s

    @property
    def num_parity_symbols(self) -> int:
        """Parity symbols per stripe: m full chunks plus s global parities."""
        return self.m * self.r + self.s

    @property
    def total_symbols(self) -> int:
        """All symbols in a stripe, r * n."""
        return self.r * self.n

    @property
    def storage_efficiency(self) -> float:
        """Fraction of the stripe that stores user data (Eq. 8 of the paper)."""
        return self.num_data_symbols / self.total_symbols

    @property
    def word_size(self) -> int:
        """Smallest usable GF(2^w) word size for this configuration.

        STAIR codes require ``n + m' <= 2^w`` and ``r + e_max <= 2^w``.
        We never go below w = 8 so that symbols are byte-addressable (the
        paper likewise uses w = 8 for every configuration it evaluates and
        falls back to larger words only when the stripe geometry demands it).
        """
        row_len = self.n + self.m_prime
        col_len = self.r + self.e_max
        for w in SUPPORTED_WORD_SIZES:
            if w < 8:
                continue
            if row_len <= (1 << w) and col_len <= (1 << w):
                return w
        raise ConfigurationError(
            f"no supported word size fits n+m'={row_len}, r+e_max={col_len}"
        )

    def field(self) -> GField:
        """Return the GF(2^w) field instance for this configuration."""
        return get_field(self.word_size)

    # ------------------------------------------------------------------ #
    # Interpretation helpers (the special cases discussed in §2)
    # ------------------------------------------------------------------ #
    def is_pmds_equivalent(self) -> bool:
        """True when e = (1): the code is a new PMDS/SD construction with s=1."""
        return self.e == (1,)

    def is_full_chunk_equivalent(self) -> bool:
        """True when e = (r): equivalent to a systematic (n, n-m-1) code."""
        return self.e == (self.r,)

    def is_idr_equivalent(self) -> bool:
        """True when e = (eps,...,eps) with m' = n-m: equivalent to an IDR scheme."""
        return (self.m_prime == self.data_chunks
                and len(set(self.e)) == 1
                and self.e_max < self.r)

    def describe(self) -> str:
        """Human-readable one-line description of the configuration."""
        return (f"STAIR(n={self.n}, r={self.r}, m={self.m}, e={self.e}; "
                f"m'={self.m_prime}, s={self.s}, w={self.word_size})")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


def enumerate_e_vectors(s: int, m_prime_max: int | None = None,
                        e_max_cap: int | None = None) -> Iterator[tuple[int, ...]]:
    """Enumerate all sector-failure coverage vectors with a given total ``s``.

    Each vector is a non-decreasing tuple of positive integers summing to
    ``s`` (a partition of s).  ``m_prime_max`` bounds the number of parts
    (i.e. m') and ``e_max_cap`` bounds the largest part (i.e. must be <= r).

    The paper's evaluation sweeps "all possible configurations of e for a
    given s" (e.g. Figures 9, 14 and 15); this helper provides that sweep.
    """
    if s < 0:
        raise ValueError("s must be non-negative")

    def partitions(total: int, max_part: int) -> Iterator[list[int]]:
        if total == 0:
            yield []
            return
        for part in range(min(total, max_part), 0, -1):
            for rest in partitions(total - part, part):
                yield [part] + rest

    cap = e_max_cap if e_max_cap is not None else s
    for partition in partitions(s, cap):
        if m_prime_max is not None and len(partition) > m_prime_max:
            continue
        yield tuple(sorted(partition))
