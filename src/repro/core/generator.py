"""Symbolic derivation of the full STAIR generator matrix.

Every parity symbol of a STAIR stripe (row parities and inside global
parities) is a fixed GF-linear combination of the stripe's data symbols.
Rather than deriving those coefficients algebraically, we *encode unit
vectors*: run the upstairs encoder with each data symbol set to a
coefficient row (the k-th data symbol is the k-th unit vector of length
``num_data_symbols``).  Region arithmetic on these rows is exactly
coefficient arithmetic, so the "symbols" that come out at the parity
positions are the generator coefficients themselves.

The resulting matrix drives standard encoding (§5.3), the uneven
parity-relation analysis (§5.2 / Property 5.1) and the update-penalty
evaluation (§6.3).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import StairConfig
from repro.core.encoder_upstairs import UpstairsEncoder
from repro.core.layout import StripeLayout
from repro.gf.field import GField
from repro.gf.regions import RegionOps
from repro.rs.systematic import SystematicMDSCode


def derive_parity_coefficients(config: StairConfig, layout: StripeLayout,
                               crow: SystematicMDSCode,
                               ccol: SystematicMDSCode | None,
                               field: GField) -> np.ndarray:
    """Return the parity-coefficient matrix of the STAIR code.

    Shape is ``(num_parity_symbols, num_data_symbols)``; row ``p`` holds
    the coefficients of the data symbols (in layout linear order) whose
    GF-linear combination equals parity symbol ``p`` (in layout parity
    order: inside global parities first, then row parities row-major).
    """
    k = layout.num_data_symbols
    encoder = UpstairsEncoder(config, layout, crow, ccol)
    ops = RegionOps(field)
    unit_symbols = []
    dtype = field.element_dtype
    for index in range(k):
        vec = np.zeros(k, dtype=dtype)
        vec[index] = 1
        unit_symbols.append(vec)
    stripe = encoder.encode(unit_symbols, ops=ops)

    coeffs = np.zeros((layout.num_parity_symbols, k), dtype=np.int64)
    for p, (row, col) in enumerate(layout.parity_positions()):
        coeffs[p] = stripe[row][col].astype(np.int64)
    return coeffs


def full_generator_matrix(config: StairConfig, layout: StripeLayout,
                          parity_coefficients: np.ndarray) -> np.ndarray:
    """Return the full (data -> stripe) generator matrix.

    Shape ``(num_data_symbols, r * n)``: column ``q`` (stripe position in
    row-major order) holds the coefficients mapping data symbols to the
    stripe symbol at that position.  Data positions map to unit columns,
    parity positions to the corresponding parity-coefficient column.
    """
    k = layout.num_data_symbols
    total = config.r * config.n
    gen = np.zeros((k, total), dtype=np.int64)
    for q in range(total):
        row, col = divmod(q, config.n)
        kind_is_parity = not layout.is_data(row, col)
        if kind_is_parity:
            p = layout.parity_index(row, col)
            gen[:, q] = parity_coefficients[p]
        else:
            gen[layout.data_index(row, col), q] = 1
    return gen
