"""The public STAIR code object.

:class:`StairCode` bundles the configuration, the two building-block MDS
codes ``C_row`` and ``C_col``, the three encoders, the decoder, and the
analysis helpers (generator matrix, update penalty, Mult_XOR counts)
behind one façade.  This is the class the examples, the storage-array
simulator, and the benchmarks use.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.complexity import EncodingCosts, choose_encoding_method, encoding_costs
from repro.core.config import StairConfig
from repro.core.decoder import StairDecoder, check_coverage
from repro.core.encoder_downstairs import DownstairsEncoder
from repro.core.encoder_standard import StandardEncoder
from repro.core.encoder_upstairs import UpstairsEncoder
from repro.core.exceptions import ConfigurationError, EncodingInputError
from repro.core.generator import derive_parity_coefficients, full_generator_matrix
from repro.core.layout import StripeLayout
from repro.core.parity_relations import (
    update_penalty,
    update_penalty_per_symbol,
)
from repro.core.stripe_data import StairStripe
from repro.gf.field import GField
from repro.gf.regions import OperationCounter, RegionOps
from repro.rs.cauchy import CauchyRSCode
from repro.rs.systematic import SystematicMDSCode
from repro.rs.vandermonde import VandermondeRSCode

#: Encoding methods accepted by :meth:`StairCode.encode`.
ENCODING_METHODS = ("auto", "upstairs", "downstairs", "standard")


class StairCode:
    """A STAIR erasure code for one (n, r, m, e) configuration.

    Parameters
    ----------
    config:
        The STAIR configuration (or pass n/r/m/e via :meth:`from_params`).
    method:
        Default encoding method.  ``"auto"`` (the paper's behaviour)
        pre-computes the Mult_XOR counts of all methods and picks the
        cheapest.
    mds_construction:
        ``"cauchy"`` (paper default) or ``"vandermonde"``: which systematic
        MDS construction to use for both C_row and C_col.
    """

    def __init__(self, config: StairConfig, method: str = "auto",
                 mds_construction: str = "cauchy") -> None:
        if method not in ENCODING_METHODS:
            raise ConfigurationError(f"unknown encoding method {method!r}")
        self.config = config
        self.default_method = method
        self.field: GField = config.field()
        self.layout = StripeLayout(config)
        self.crow, self.ccol = self._build_component_codes(mds_construction)

        self._upstairs = UpstairsEncoder(config, self.layout, self.crow, self.ccol)
        self._downstairs = DownstairsEncoder(config, self.layout, self.crow, self.ccol)
        self._decoder = StairDecoder(config, self.layout, self.crow, self.ccol)
        self._parity_coefficients: np.ndarray | None = None
        self._standard: StandardEncoder | None = None
        #: Mult_XOR counter shared by every encode/decode done through this
        #: object (reset it via ``code.counter.reset()``).
        self.counter = OperationCounter()
        #: Region-operation backend used by every encode/decode.  The
        #: default routes through the bulk stripe-planar kernels; the
        #: differential tests swap in
        #: :class:`~repro.gf.regions.ReferenceRegionOps` to drive the
        #: scalar reference path with identical counter semantics.
        self.ops_class: type[RegionOps] = RegionOps

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_params(cls, n: int, r: int, m: int, e: Sequence[int],
                    **kwargs) -> "StairCode":
        """Build a STAIR code directly from (n, r, m, e)."""
        return cls(StairConfig(n=n, r=r, m=m, e=tuple(e)), **kwargs)

    def _build_component_codes(self, construction: str,
                               ) -> tuple[SystematicMDSCode, SystematicMDSCode | None]:
        cfg = self.config
        cls: type[SystematicMDSCode]
        if construction == "cauchy":
            cls = CauchyRSCode
        elif construction == "vandermonde":
            cls = VandermondeRSCode
        else:
            raise ConfigurationError(
                f"unknown MDS construction {construction!r}; "
                "use 'cauchy' or 'vandermonde'"
            )
        crow = cls(cfg.n + cfg.m_prime, cfg.data_chunks, self.field)
        ccol = None
        if cfg.e_max > 0:
            ccol = cls(cfg.r + cfg.e_max, cfg.r, self.field)
        return crow, ccol

    def _ops(self) -> RegionOps:
        return self.ops_class(self.field, self.counter)

    # ------------------------------------------------------------------ #
    # Encoding
    # ------------------------------------------------------------------ #
    def encode(self, data: Sequence[np.ndarray],
               method: str | None = None) -> StairStripe:
        """Encode ``config.num_data_symbols`` data symbols into a stripe.

        The global parity symbols are stored *inside* the stripe (§5), so
        the returned stripe is exactly r x n symbols with no side-band.
        """
        method = method or self.default_method
        if method not in ENCODING_METHODS:
            raise EncodingInputError(f"unknown encoding method {method!r}")
        if method == "auto":
            method = self.select_encoding_method()
        ops = self._ops()
        if method == "upstairs":
            grid = self._upstairs.encode(data, ops=ops)
        elif method == "downstairs":
            grid = self._downstairs.encode(data, ops=ops)
        else:
            grid = self.standard_encoder().encode(data, ops=ops)
        return StairStripe(self.config, self.layout, grid)

    def encode_bytes(self, payload: bytes, symbol_size: int) -> StairStripe:
        """Encode a raw byte payload (padded with zeros) into one stripe."""
        if symbol_size <= 0:
            raise EncodingInputError("symbol_size must be positive")
        if self.field.w != 8:
            raise EncodingInputError("encode_bytes requires the GF(2^8) field")
        capacity = self.config.num_data_symbols * symbol_size
        if len(payload) > capacity:
            raise EncodingInputError(
                f"payload of {len(payload)} bytes exceeds stripe capacity {capacity}"
            )
        padded = payload.ljust(capacity, b"\x00")
        data = [np.frombuffer(padded[i * symbol_size:(i + 1) * symbol_size],
                              dtype=np.uint8).copy()
                for i in range(self.config.num_data_symbols)]
        return self.encode(data)

    def decode_bytes(self, stripe: StairStripe, length: int | None = None) -> bytes:
        """Recover the raw byte payload stored in a (possibly damaged) stripe."""
        repaired = self.decode(stripe)
        blob = b"".join(sym.astype(np.uint8).tobytes()
                        for sym in repaired.data_symbols())
        return blob if length is None else blob[:length]

    def select_encoding_method(self) -> str:
        """Choose the cheapest encoding method for this configuration.

        Standard encoding is only considered once its generator matrix has
        been derived (deriving it costs one symbolic encode); upstairs and
        downstairs are compared analytically via Eq. (5) and Eq. (6).
        """
        return choose_encoding_method(self.config, self._parity_coefficients)

    # ------------------------------------------------------------------ #
    # Decoding
    # ------------------------------------------------------------------ #
    def decode(self, stripe: StairStripe | Sequence[Sequence[Optional[np.ndarray]]],
               practical: bool = True) -> StairStripe:
        """Recover every lost symbol of a damaged stripe.

        Raises :class:`~repro.core.exceptions.DecodingFailureError` when the
        failure pattern exceeds the coverage defined by ``m`` and ``e``.
        """
        grid = stripe.symbols if isinstance(stripe, StairStripe) else stripe
        repaired = self._decoder.decode(grid, ops=self._ops(), practical=practical)
        return StairStripe(self.config, self.layout, repaired)

    def check_coverage(self, lost_positions: Sequence[tuple[int, int]]) -> bool:
        """True if a failure pattern lies within the code's coverage."""
        return check_coverage(self.config, lost_positions)

    # ------------------------------------------------------------------ #
    # Baseline (§3) construction with outside global parities
    # ------------------------------------------------------------------ #
    def encode_baseline(self, data: Sequence[np.ndarray],
                        ) -> tuple[StairStripe, list[list[np.ndarray]]]:
        """Encode with the baseline construction of §3.

        All ``r * (n - m)`` symbols of the data chunks are user data; the
        ``s`` global parity symbols are returned separately (they are
        assumed to be stored outside the stripe and always available).

        Returns ``(stripe, globals)`` where ``globals[l][h]`` is g_{h,l}.
        """
        cfg = self.config
        expected = cfg.r * cfg.data_chunks
        if len(data) != expected:
            raise EncodingInputError(
                f"baseline encoding expects {expected} data symbols, got {len(data)}"
            )
        ops = self._ops()
        grid: list[list[np.ndarray]] = [[None] * cfg.n for _ in range(cfg.r)]  # type: ignore[list-item]
        intermediates: list[list[np.ndarray]] = []
        for i in range(cfg.r):
            row_data = [np.asarray(data[i * cfg.data_chunks + j])
                        for j in range(cfg.data_chunks)]
            parities = self.crow.encode(row_data, ops)
            for j in range(cfg.data_chunks):
                grid[i][j] = row_data[j]
            for k in range(cfg.m):
                grid[i][cfg.data_chunks + k] = parities[k]
            intermediates.append(parities[cfg.m:])
        globals_out: list[list[np.ndarray]] = []
        for l in range(cfg.m_prime):
            column = [intermediates[i][l] for i in range(cfg.r)]
            parities = self.ccol.encode(column, ops) if self.ccol else []
            globals_out.append(parities[: cfg.e[l]])
        stripe = StairStripe(cfg, self.layout, grid)
        return stripe, globals_out

    def decode_baseline(self, stripe: StairStripe | Sequence[Sequence[Optional[np.ndarray]]],
                        outside_globals: Sequence[Sequence[np.ndarray]],
                        practical: bool = True) -> StairStripe:
        """Decode a stripe encoded with :meth:`encode_baseline`."""
        grid = stripe.symbols if isinstance(stripe, StairStripe) else stripe
        repaired = self._decoder.decode(grid, ops=self._ops(),
                                        outside_globals=outside_globals,
                                        practical=practical)
        return StairStripe(self.config, self.layout, repaired)

    # ------------------------------------------------------------------ #
    # Analysis
    # ------------------------------------------------------------------ #
    def parity_coefficients(self) -> np.ndarray:
        """The (num_parities x num_data) generator coefficient matrix (cached)."""
        if self._parity_coefficients is None:
            self._parity_coefficients = derive_parity_coefficients(
                self.config, self.layout, self.crow, self.ccol, self.field
            )
        return self._parity_coefficients

    def generator_matrix(self) -> np.ndarray:
        """The full (num_data x r*n) generator matrix of the stripe."""
        return full_generator_matrix(self.config, self.layout,
                                     self.parity_coefficients())

    def standard_encoder(self) -> StandardEncoder:
        """The standard (direct generator-matrix) encoder, built lazily."""
        if self._standard is None:
            self._standard = StandardEncoder(self.config, self.layout,
                                             self.parity_coefficients())
        return self._standard

    def mult_xor_counts(self) -> EncodingCosts:
        """Analytical Mult_XOR counts of the three encoding methods (Fig. 9)."""
        return encoding_costs(self.config, self.parity_coefficients())

    def update_penalty(self) -> float:
        """Average parity symbols rewritten per data-symbol update (Figs. 14-15)."""
        return update_penalty(self.layout, self.parity_coefficients())

    def update_penalty_per_symbol(self) -> list[int]:
        """Per-data-symbol update penalties."""
        return update_penalty_per_symbol(self.layout, self.parity_coefficients())

    @property
    def storage_efficiency(self) -> float:
        """Fraction of the stripe storing user data (Eq. 8)."""
        return self.config.storage_efficiency

    @property
    def last_decode_schedule(self):
        """Schedule steps of the most recent global decode (Table 2)."""
        return self._decoder.last_schedule

    @property
    def last_downstairs_schedule(self):
        """Schedule steps of the most recent downstairs encode (Table 3)."""
        return self._downstairs.last_schedule

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StairCode({self.config.describe()})"
