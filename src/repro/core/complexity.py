"""Encoding-complexity model (§5.3): Mult_XOR counts of the three methods.

These analytical counts reproduce Eq. (5) and Eq. (6) of the paper and the
standard-encoding count derived from the uneven parity relations.  The
encoder auto-selection of :class:`~repro.core.stair.StairCode` uses them,
and Figure 9 of the paper is regenerated from them
(``benchmarks/bench_fig09_encoding_complexity.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import StairConfig


def upstairs_mult_xors(config: StairConfig) -> int:
    """X_up, Eq. (5): (n-m)(m*r + s) + r*(n-m)*e_max."""
    n, r, m = config.n, config.r, config.m
    s, e_max = config.s, config.e_max
    return (n - m) * (m * r + s) + r * (n - m) * e_max


def downstairs_mult_xors(config: StairConfig) -> int:
    """X_down, Eq. (6): (n-m)(m + m')*r + r*s."""
    n, r, m = config.n, config.r, config.m
    s, m_prime = config.s, config.m_prime
    return (n - m) * (m + m_prime) * r + r * s


def standard_mult_xors(config: StairConfig,
                       parity_coefficients: np.ndarray | None = None) -> int:
    """Mult_XORs of standard encoding.

    Exact value is the number of non-zero generator coefficients (one
    Mult_XOR per contributing data symbol per parity symbol).  When the
    generator is not supplied, an upper bound is returned that assumes
    every parity depends on all data symbols at or above/left of it --
    tests use the exact form.
    """
    if parity_coefficients is not None:
        return int(np.count_nonzero(parity_coefficients))
    # Upper bound: every one of the (m*r + s) parities touches all data.
    return config.num_parity_symbols * config.num_data_symbols


@dataclass(frozen=True)
class EncodingCosts:
    """Mult_XOR counts of the three encoding methods for one configuration."""

    upstairs: int
    downstairs: int
    standard: int

    def best_method(self) -> str:
        """Name of the cheapest method (ties go to the earlier name)."""
        costs = {"upstairs": self.upstairs, "downstairs": self.downstairs,
                 "standard": self.standard}
        return min(costs, key=costs.get)  # type: ignore[arg-type]


def encoding_costs(config: StairConfig,
                   parity_coefficients: np.ndarray | None = None) -> EncodingCosts:
    """Compute the Mult_XOR counts of all three encoding methods."""
    return EncodingCosts(
        upstairs=upstairs_mult_xors(config),
        downstairs=downstairs_mult_xors(config),
        standard=standard_mult_xors(config, parity_coefficients),
    )


def choose_encoding_method(config: StairConfig,
                           parity_coefficients: np.ndarray | None = None,
                           allow_standard: bool = True) -> str:
    """Pick the cheapest encoding method for a configuration.

    Mirrors the paper's implementation note: "we always pre-compute the
    number of Mult_XORs for each of the encoding methods, and then choose
    the one with the fewest Mult_XORs".  When ``allow_standard`` is False
    only upstairs/downstairs are considered (useful when the generator
    matrix has not been derived yet).
    """
    costs = encoding_costs(config, parity_coefficients)
    if not allow_standard or parity_coefficients is None:
        return "upstairs" if costs.upstairs <= costs.downstairs else "downstairs"
    return costs.best_method()
