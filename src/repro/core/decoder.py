"""Upstairs decoding (§4.2) and practical decoding (§4.3) for STAIR codes.

The decoder recovers a damaged stripe in two phases:

1. **Row-local repair** -- any stripe row with at most ``m`` lost symbols
   is repaired with its row parity symbols alone, because such decoding
   only touches the symbols of that row.
2. **Global (upstairs) repair** -- the remaining failure pattern is mapped
   onto the canonical stripe.  The ``m`` chunks with the most remaining
   losses are deferred (they will be rebuilt row-by-row at the very end,
   like entirely failed devices); the other damaged chunks must fit the
   sector-failure coverage ``e``.  The upstairs schedule then alternates
   between recovering chunk columns bottom-up (via ``C_col``) and
   augmented rows (via ``C_row``), exactly as in Figure 4 / Table 2 of
   the paper, until every stored symbol is known.

The same upstairs schedule doubles as the *upstairs encoder* (§5.1.1):
encoding is decoding with the parity positions treated as lost and the
outside global parities pinned to zero.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.canonical import CanonicalStripe
from repro.core.config import StairConfig
from repro.core.exceptions import DecodingFailureError
from repro.core.layout import StripeLayout
from repro.gf.regions import RegionOps
from repro.rs.systematic import SystematicMDSCode, UnrecoverableErasureError

Grid = Sequence[Sequence[Optional[np.ndarray]]]


def check_coverage(config: StairConfig,
                   lost_positions: Sequence[tuple[int, int]]) -> bool:
    """Check whether a failure pattern lies within the coverage of (m, e).

    The pattern is covered when at most ``m`` chunks have to be treated as
    entirely failed and the remaining damaged chunks, sorted by number of
    lost symbols, fit under the (sorted) ``e`` vector.
    """
    losses_per_chunk: dict[int, int] = {}
    for row, col in lost_positions:
        if not (0 <= row < config.r and 0 <= col < config.n):
            raise ValueError(f"position ({row}, {col}) outside the stripe")
        losses_per_chunk[col] = losses_per_chunk.get(col, 0) + 1

    counts = sorted(losses_per_chunk.values(), reverse=True)
    # The m most-damaged chunks are absorbed by device-failure tolerance.
    remaining = counts[config.m:]
    if len(remaining) > config.m_prime:
        return False
    # remaining is sorted descending; compare against e sorted descending.
    e_desc = sorted(config.e, reverse=True)
    return all(count <= e_desc[i] for i, count in enumerate(remaining))


class StairDecoder:
    """Recovers lost symbols of a STAIR stripe."""

    def __init__(self, config: StairConfig, layout: StripeLayout,
                 crow: SystematicMDSCode, ccol: SystematicMDSCode | None) -> None:
        self.config = config
        self.layout = layout
        self.crow = crow
        self.ccol = ccol
        self._last_steps: list = []

    @property
    def last_schedule(self):
        """Schedule steps recorded during the most recent global repair.

        Each element is a :class:`~repro.core.canonical.ScheduleStep`; the
        sequence reproduces Table 2 of the paper for the worst-case example.
        """
        return list(self._last_steps)

    # ------------------------------------------------------------------ #
    # Public entry point
    # ------------------------------------------------------------------ #
    def decode(self, stripe: Grid, ops: RegionOps | None = None,
               outside_globals: Sequence[Sequence[np.ndarray]] | None = None,
               practical: bool = True) -> list[list[np.ndarray]]:
        """Recover every lost symbol of ``stripe``.

        Parameters
        ----------
        stripe:
            r x n grid with ``None`` marking lost symbols.
        ops:
            Region-operation context (supplies the Mult_XOR counter).
        outside_globals:
            ``values[l][h]`` of the outside global parities for the
            baseline (§3) construction.  ``None`` selects the extended
            (§5) construction in which they are identically zero.
        practical:
            When True, perform the cheap row-local repair pass before
            falling back to global upstairs decoding (§4.3).

        Returns
        -------
        The fully recovered r x n stripe.

        Raises
        ------
        DecodingFailureError
            If the failure pattern is outside the code's coverage.
        """
        ops = ops or RegionOps(self.config.field())
        working: list[list[Optional[np.ndarray]]] = [
            [None if cell is None else np.asarray(cell) for cell in row]
            for row in stripe
        ]
        symbol_size = self._infer_symbol_size(working)

        if practical:
            self._row_local_repair(working, ops)

        lost = [(i, j) for i in range(self.config.r) for j in range(self.config.n)
                if working[i][j] is None]
        if not lost:
            return [[np.asarray(cell) for cell in row] for row in working]

        return self._global_repair(working, lost, ops, symbol_size, outside_globals)

    # ------------------------------------------------------------------ #
    # Phase 1: row-local repair via row parities only
    # ------------------------------------------------------------------ #
    def _row_local_repair(self, working: list[list[Optional[np.ndarray]]],
                          ops: RegionOps) -> None:
        """Repair every row with at most m lost symbols using C_row alone.

        Rows sharing the same erasure pattern (the common case when whole
        devices fail) are stacked and repaired with one batched bulk-kernel
        call, bit- and counter-identical to repairing them one by one.
        """
        n, m = self.config.n, self.config.m
        by_pattern: dict[tuple[int, ...], list[int]] = {}
        for i in range(self.config.r):
            missing = tuple(j for j in range(n) if working[i][j] is None)
            if missing and len(missing) <= m:
                by_pattern.setdefault(missing, []).append(i)
        for missing, row_indices in by_pattern.items():
            # Build the C_row codewords: the m' intermediate parity positions
            # are never stored, so they are always unknown here.
            codewords: list[list[Optional[np.ndarray]]] = [
                list(working[i]) + [None] * self.config.m_prime
                for i in row_indices
            ]
            try:
                recovered = self.crow.recover_many(codewords, ops,
                                                   wanted=list(missing))
            except UnrecoverableErasureError:  # pragma: no cover - guarded above
                continue
            for i, row_recovered in zip(row_indices, recovered):
                for j, symbol in row_recovered.items():
                    working[i][j] = symbol

    # ------------------------------------------------------------------ #
    # Phase 2: global upstairs repair
    # ------------------------------------------------------------------ #
    def _global_repair(self, working: list[list[Optional[np.ndarray]]],
                       lost: list[tuple[int, int]], ops: RegionOps,
                       symbol_size: int,
                       outside_globals: Sequence[Sequence[np.ndarray]] | None,
                       ) -> list[list[np.ndarray]]:
        losses_per_chunk: dict[int, int] = {}
        for _, col in lost:
            losses_per_chunk[col] = losses_per_chunk.get(col, 0) + 1

        # Defer the m chunks with the most losses: they are rebuilt row by
        # row at the end, exactly like entirely failed devices.
        by_damage = sorted(losses_per_chunk, key=lambda c: losses_per_chunk[c],
                           reverse=True)
        deferred = set(by_damage[: self.config.m])
        sector_chunks = [c for c in by_damage[self.config.m:]]

        # The non-deferred damage must fit the e coverage.
        remaining_counts = sorted((losses_per_chunk[c] for c in sector_chunks),
                                  reverse=True)
        e_desc = sorted(self.config.e, reverse=True)
        if len(remaining_counts) > len(e_desc) or any(
                count > e_desc[i] for i, count in enumerate(remaining_counts)):
            raise DecodingFailureError(
                "failure pattern exceeds the sector-failure coverage e="
                f"{self.config.e}: per-chunk losses {losses_per_chunk}",
                unrecovered=lost,
            )
        if sector_chunks and self.ccol is None:
            raise DecodingFailureError(
                "sector failures present but the configuration has no "
                "global parities (e is empty)", unrecovered=lost)

        grid = CanonicalStripe(self.config, self.layout, self.crow, self.ccol, ops)
        grid.load_stripe(working)
        if self.config.e_max > 0:
            grid.place_outside_globals(values=outside_globals,
                                       symbol_size=symbol_size)

        self._upstairs_schedule(grid, deferred)

        # Finally rebuild the deferred chunks row by row via C_row.  Rows
        # sharing an erasure pattern (whole failed devices) go through one
        # batched bulk-kernel recovery.
        row_targets: dict[int, Sequence[int]] = {}
        for i in range(self.config.r):
            targets = [j for j in deferred if not grid.is_known(i, j)]
            if not targets:
                continue
            if not grid.can_recover_row(i):
                raise DecodingFailureError(
                    f"row {i} cannot be rebuilt: insufficient known symbols",
                    unrecovered=[(i, j) for j in targets],
                )
            row_targets[i] = targets
        if row_targets:
            grid.recover_rows(row_targets)

        stripe = grid.extract_stripe()
        self._last_steps = grid.steps
        return stripe

    def _upstairs_schedule(self, grid: CanonicalStripe,
                           deferred: set[int]) -> None:
        """Alternate column and augmented-row recovery until sector-failed
        chunks are whole (the upstairs schedule of §4.2.2)."""
        n, m, r = self.config.n, self.config.m, self.config.r
        if self.config.e_max == 0:
            return
        considered_cols = [j for j in range(n) if j not in deferred]

        def chunk_incomplete(col: int) -> bool:
            return any(not grid.is_known(i, col) for i in range(r))

        max_passes = self.config.e_max * (n + 2) + 2
        for _ in range(max_passes):
            progress = False

            # Column direction: recover every recoverable non-deferred chunk,
            # filling both its lost stored symbols and all of its virtual
            # parity symbols (they feed subsequent augmented-row steps).
            for col in considered_cols:
                unknowns = grid.unknown_cells_in_col(col)
                if not unknowns:
                    continue
                if grid.can_recover_col(col):
                    grid.recover_col(col)
                    progress = True

            # Row direction: recover unknown virtual symbols of augmented rows
            # at non-deferred real columns (the stepping stones for chunks
            # that still have sector failures).
            for h in range(self.config.e_max):
                grid_row = r + h
                targets = [col for col in considered_cols
                           if not grid.is_known(grid_row, col)
                           and chunk_incomplete(col)]
                if not targets:
                    continue
                if grid.can_recover_row(grid_row):
                    grid.recover_row(grid_row, targets=targets)
                    progress = True

            if all(not chunk_incomplete(col) for col in considered_cols):
                return
            if not progress:
                break

        unrecovered = [(i, j) for j in considered_cols for i in range(r)
                       if not grid.is_known(i, j)]
        if unrecovered:
            raise DecodingFailureError(
                "upstairs decoding stalled; failure pattern outside coverage",
                unrecovered=unrecovered,
            )

    # ------------------------------------------------------------------ #
    @staticmethod
    def _infer_symbol_size(working: Grid) -> int:
        for row in working:
            for cell in row:
                if cell is not None:
                    return len(cell)
        raise DecodingFailureError("stripe contains no surviving symbols")
