"""Exception types raised by the STAIR code implementation."""

from __future__ import annotations


class StairError(Exception):
    """Base class for all STAIR-code errors."""


class ConfigurationError(StairError, ValueError):
    """Raised when (n, r, m, e) parameters are invalid or inconsistent."""


class DecodingFailureError(StairError, RuntimeError):
    """Raised when a failure pattern cannot be recovered.

    This happens when the pattern exceeds the coverage defined by ``m``
    and ``e`` (or, equivalently, when the upstairs-decoding peel stalls
    before all stored symbols are known).
    """

    def __init__(self, message: str,
                 unrecovered: list[tuple[int, int]] | None = None) -> None:
        super().__init__(message)
        #: Stripe positions (row, col) that could not be recovered.
        self.unrecovered = unrecovered or []


class EncodingInputError(StairError, ValueError):
    """Raised when the data passed to an encoder has the wrong shape."""
