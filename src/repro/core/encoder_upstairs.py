"""Upstairs encoding (§5.1.1): recovery-based encoding.

The inside global parity symbols and the row parity chunks are treated as
lost, the outside global parity symbols are pinned to zero, and the
upstairs decoder reconstructs them.  Because the outside globals are
identically zero they never need to be stored, and the homomorphic
property (hence fault tolerance) is untouched.

Its Mult_XOR cost is Eq. (5) of the paper:

    X_up = (n - m) * (m*r + s)  +  r * (n - m) * e_max
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.config import StairConfig
from repro.core.decoder import StairDecoder
from repro.core.exceptions import EncodingInputError
from repro.core.layout import StripeLayout
from repro.gf.regions import RegionOps
from repro.rs.systematic import SystematicMDSCode


class UpstairsEncoder:
    """Encodes a stripe with the upstairs (recovery-based) method."""

    def __init__(self, config: StairConfig, layout: StripeLayout,
                 crow: SystematicMDSCode, ccol: SystematicMDSCode | None) -> None:
        self.config = config
        self.layout = layout
        self.decoder = StairDecoder(config, layout, crow, ccol)

    def encode(self, data: Sequence[np.ndarray],
               ops: RegionOps | None = None) -> list[list[np.ndarray]]:
        """Encode the data symbols into a full r x n stripe.

        ``data`` must contain exactly ``config.num_data_symbols`` symbols in
        the layout's linear order (row-major over data positions, skipping
        the inside-global-parity cells).
        """
        ops = ops or RegionOps(self.config.field())
        stripe = build_data_grid(self.config, self.layout, data)
        # Parity positions (row parity chunks and inside global parities)
        # are left as None: encoding is recovering them, without the
        # row-local shortcut (which would turn this into downstairs-style
        # row encoding and change the operation count).
        return self.decoder.decode(stripe, ops=ops, practical=False)

    @property
    def last_schedule(self):
        """Schedule of the most recent encode (see Table 2 / Figure 5)."""
        return self.decoder.last_schedule


def build_data_grid(config: StairConfig, layout: StripeLayout,
                    data: Sequence[np.ndarray]) -> list[list[np.ndarray | None]]:
    """Place linear data symbols into an r x n grid, parity cells left None."""
    if len(data) != layout.num_data_symbols:
        raise EncodingInputError(
            f"expected {layout.num_data_symbols} data symbols, got {len(data)}"
        )
    sizes = {len(d) for d in data}
    if len(sizes) > 1:
        raise EncodingInputError("all data symbols must have the same size")
    grid: list[list[np.ndarray | None]] = [
        [None] * config.n for _ in range(config.r)
    ]
    for index, (row, col) in enumerate(layout.data_positions()):
        grid[row][col] = np.asarray(data[index])
    return grid
