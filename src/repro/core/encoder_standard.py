"""Standard encoding (§5.3): each parity directly from the data symbols.

This is the classical Reed-Solomon-style approach -- every parity symbol
is computed as one long linear combination of the data symbols it depends
on, with no reuse of previously computed parities.  Its Mult_XOR count is
the number of non-zero generator coefficients, which the paper derives
from the uneven parity relations of §5.2.  Upstairs/downstairs encoding
beat it in most configurations (Figure 9); it is retained both as the
third contender for automatic method selection and as a correctness
cross-check for the other two encoders.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.config import StairConfig
from repro.core.encoder_upstairs import build_data_grid
from repro.core.layout import StripeLayout
from repro.gf.regions import RegionOps


class StandardEncoder:
    """Encodes a stripe by direct application of the generator matrix."""

    def __init__(self, config: StairConfig, layout: StripeLayout,
                 parity_coefficients: np.ndarray) -> None:
        self.config = config
        self.layout = layout
        if parity_coefficients.shape != (layout.num_parity_symbols,
                                         layout.num_data_symbols):
            raise ValueError(
                "parity coefficient matrix has wrong shape "
                f"{parity_coefficients.shape}"
            )
        self.parity_coefficients = parity_coefficients

    def encode(self, data: Sequence[np.ndarray],
               ops: RegionOps | None = None) -> list[list[np.ndarray]]:
        """Encode the data symbols into a full r x n stripe."""
        ops = ops or RegionOps(self.config.field())
        grid = build_data_grid(self.config, self.layout, data)
        data_list = [np.asarray(d) for d in data]
        # One bulk kernel call: every parity row of the generator matrix is
        # applied to the stacked data plane in a single pass.
        parities = ops.matrix_vector(self.parity_coefficients, data_list)
        for parity, (row, col) in zip(parities, self.layout.parity_positions()):
            grid[row][col] = parity
        return grid  # type: ignore[return-value]

    def mult_xor_count(self) -> int:
        """Mult_XORs per stripe: the number of non-zero generator coefficients."""
        return int(np.count_nonzero(self.parity_coefficients))
