"""Symbol layout of a STAIR stripe and of its canonical (augmented) stripe.

A stripe is an r x n array of symbols (Figure 1 of the paper):

* columns ``0 .. n-m-1`` are *data chunks*,
* columns ``n-m .. n-1`` are *row parity chunks*.

With the extended encoding of §5 the ``s`` global parity symbols live
*inside* the stripe, at the bottom of the ``m'`` rightmost data chunks in
the stair pattern: chunk ``n-m-m'+l`` holds ``e_l`` global parities in its
last ``e_l`` rows.

The *canonical stripe* of §4.1 augments this to a grid of
``(r + e_max) x (n + m')`` cells: ``m'`` extra columns of intermediate
parity symbols on the right, and ``e_max`` extra rows of virtual parity
symbols at the bottom.  Every row of the grid is a ``C_row`` codeword and
every column is a ``C_col`` codeword (the homomorphic property).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator

from repro.core.config import StairConfig


class SymbolKind(Enum):
    """Classification of a position inside the stored r x n stripe."""

    DATA = "data"
    ROW_PARITY = "row_parity"
    GLOBAL_PARITY = "global_parity"


@dataclass(frozen=True)
class GlobalParityPosition:
    """Location of one inside global parity symbol ``ĝ_{h,l}``."""

    row: int
    col: int
    l: int   # which stair chunk (0 .. m'-1)
    h: int   # index within that chunk (0 .. e_l - 1)


class StripeLayout:
    """Maps between symbol roles, stripe coordinates and linear data indices."""

    def __init__(self, config: StairConfig) -> None:
        self.config = config
        n, r, m = config.n, config.r, config.m
        m_prime = config.m_prime

        #: Columns (devices) holding data chunks.
        self.data_columns = tuple(range(n - m))
        #: Columns (devices) holding row parity chunks.
        self.parity_columns = tuple(range(n - m, n))
        #: Columns that carry inside global parity symbols (the "stair" chunks),
        #: ordered by l = 0 .. m'-1 (leftmost stair chunk first).
        self.stair_columns = tuple(range(n - m - m_prime, n - m))

        self._global_positions: list[GlobalParityPosition] = []
        self._global_lookup: dict[tuple[int, int], GlobalParityPosition] = {}
        for l, col in enumerate(self.stair_columns):
            e_l = config.e[l]
            for h in range(e_l):
                pos = GlobalParityPosition(row=r - e_l + h, col=col, l=l, h=h)
                self._global_positions.append(pos)
                self._global_lookup[(pos.row, pos.col)] = pos

        # Linear ordering of data symbols: row-major over data columns,
        # skipping inside-global-parity positions.
        self._data_order: list[tuple[int, int]] = []
        self._data_index: dict[tuple[int, int], int] = {}
        for i in range(r):
            for j in self.data_columns:
                if (i, j) in self._global_lookup:
                    continue
                self._data_index[(i, j)] = len(self._data_order)
                self._data_order.append((i, j))

        # Linear ordering of parity symbols: global parities first (by l, h),
        # then row parities row-major.  Used by the generator-matrix view.
        self._parity_order: list[tuple[int, int]] = []
        for pos in self._global_positions:
            self._parity_order.append((pos.row, pos.col))
        for i in range(r):
            for j in self.parity_columns:
                self._parity_order.append((i, j))
        self._parity_index = {pos: k for k, pos in enumerate(self._parity_order)}

    # ------------------------------------------------------------------ #
    # Role queries (stored stripe, r x n)
    # ------------------------------------------------------------------ #
    def kind(self, row: int, col: int) -> SymbolKind:
        """Classify the stripe position ``(row, col)``."""
        self._check_bounds(row, col)
        if col >= self.config.n - self.config.m:
            return SymbolKind.ROW_PARITY
        if (row, col) in self._global_lookup:
            return SymbolKind.GLOBAL_PARITY
        return SymbolKind.DATA

    def is_data(self, row: int, col: int) -> bool:
        return self.kind(row, col) is SymbolKind.DATA

    def is_row_parity(self, row: int, col: int) -> bool:
        return self.kind(row, col) is SymbolKind.ROW_PARITY

    def is_global_parity(self, row: int, col: int) -> bool:
        return self.kind(row, col) is SymbolKind.GLOBAL_PARITY

    def global_parity_positions(self) -> tuple[GlobalParityPosition, ...]:
        """All inside global parity positions in (l, h) order."""
        return tuple(self._global_positions)

    def global_parity_at(self, row: int, col: int) -> GlobalParityPosition | None:
        """Return the global-parity descriptor at a position, if any."""
        return self._global_lookup.get((row, col))

    # ------------------------------------------------------------------ #
    # Linear data / parity indexing
    # ------------------------------------------------------------------ #
    def data_positions(self) -> tuple[tuple[int, int], ...]:
        """Stripe coordinates of all data symbols, in linear-index order."""
        return tuple(self._data_order)

    def parity_positions(self) -> tuple[tuple[int, int], ...]:
        """Stripe coordinates of all parity symbols (globals then row parities)."""
        return tuple(self._parity_order)

    def data_index(self, row: int, col: int) -> int:
        """Linear index of the data symbol at ``(row, col)``."""
        try:
            return self._data_index[(row, col)]
        except KeyError:
            raise ValueError(f"({row}, {col}) is not a data position") from None

    def data_position(self, index: int) -> tuple[int, int]:
        """Stripe coordinates of the ``index``-th data symbol."""
        return self._data_order[index]

    def parity_index(self, row: int, col: int) -> int:
        """Linear index of the parity symbol at ``(row, col)``."""
        try:
            return self._parity_index[(row, col)]
        except KeyError:
            raise ValueError(f"({row}, {col}) is not a parity position") from None

    def parity_position(self, index: int) -> tuple[int, int]:
        """Stripe coordinates of the ``index``-th parity symbol."""
        return self._parity_order[index]

    @property
    def num_data_symbols(self) -> int:
        return len(self._data_order)

    @property
    def num_parity_symbols(self) -> int:
        return len(self._parity_order)

    # ------------------------------------------------------------------ #
    # Canonical (augmented) stripe geometry
    # ------------------------------------------------------------------ #
    @property
    def grid_rows(self) -> int:
        """Rows of the canonical stripe: r stored + e_max augmented."""
        return self.config.r + self.config.e_max

    @property
    def grid_cols(self) -> int:
        """Columns of the canonical stripe: n real + m' intermediate parity."""
        return self.config.n + self.config.m_prime

    def is_stored_cell(self, grid_row: int, grid_col: int) -> bool:
        """True for cells of the canonical grid that exist in the real stripe."""
        return grid_row < self.config.r and grid_col < self.config.n

    def is_augmented_row(self, grid_row: int) -> bool:
        return grid_row >= self.config.r

    def is_intermediate_column(self, grid_col: int) -> bool:
        return grid_col >= self.config.n

    def outside_global_cells(self) -> Iterator[tuple[int, int, int, int]]:
        """Canonical-grid cells holding outside global parities ``g_{h,l}``.

        Yields ``(grid_row, grid_col, l, h)`` for every *real* (non-dummy)
        outside global parity: intermediate column ``l``, augmented row
        ``h`` with ``h < e_l``.
        """
        r, n = self.config.r, self.config.n
        for l, e_l in enumerate(self.config.e):
            for h in range(e_l):
                yield r + h, n + l, l, h

    def chunk_cells(self, col: int) -> list[tuple[int, int]]:
        """All stored cells of chunk ``col`` (top to bottom)."""
        return [(i, col) for i in range(self.config.r)]

    def row_cells(self, row: int) -> list[tuple[int, int]]:
        """All stored cells of stripe row ``row`` (left to right)."""
        return [(row, j) for j in range(self.config.n)]

    # ------------------------------------------------------------------ #
    def _check_bounds(self, row: int, col: int) -> None:
        if not (0 <= row < self.config.r and 0 <= col < self.config.n):
            raise IndexError(
                f"position ({row}, {col}) outside stripe "
                f"{self.config.r}x{self.config.n}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StripeLayout({self.config.describe()})"
