"""Downstairs encoding (§5.1.2): top-to-bottom, right-to-left parity generation.

The outside global parity symbols are pinned to zero.  Rows are encoded
via ``C_row`` from top to bottom; whenever a row cannot yet be encoded
because some of its inputs are inside-global-parity cells, the schedule
recovers intermediate parity symbols column-by-column from right to left
via ``C_col`` (their codewords end in the zeroed outside globals) until
the row becomes encodable.  Parity values are identical to upstairs
encoding; only the operation count differs.

Its Mult_XOR cost is Eq. (6) of the paper:

    X_down = (n - m) * (m + m') * r  +  r * s
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.canonical import CanonicalStripe
from repro.core.config import StairConfig
from repro.core.encoder_upstairs import build_data_grid
from repro.core.exceptions import EncodingInputError
from repro.core.layout import StripeLayout
from repro.gf.regions import RegionOps
from repro.rs.systematic import SystematicMDSCode


class DownstairsEncoder:
    """Encodes a stripe with the downstairs method."""

    def __init__(self, config: StairConfig, layout: StripeLayout,
                 crow: SystematicMDSCode, ccol: SystematicMDSCode | None) -> None:
        self.config = config
        self.layout = layout
        self.crow = crow
        self.ccol = ccol
        self._last_steps: list = []

    @property
    def last_schedule(self):
        """Schedule of the most recent encode (reproduces Table 3)."""
        return list(self._last_steps)

    def encode(self, data: Sequence[np.ndarray],
               ops: RegionOps | None = None) -> list[list[np.ndarray]]:
        """Encode the data symbols into a full r x n stripe."""
        ops = ops or RegionOps(self.config.field())
        cfg = self.config
        stripe = build_data_grid(cfg, self.layout, data)
        if cfg.e_max == 0:
            return self._encode_rows_only(stripe, ops)

        symbol_size = len(data[0]) if data else 0
        if not data:
            raise EncodingInputError("cannot encode an empty stripe")

        grid = CanonicalStripe(cfg, self.layout, self.crow, self.ccol, ops)
        grid.load_stripe(stripe)
        grid.place_outside_globals(symbol_size=symbol_size)

        n, m, r, m_prime = cfg.n, cfg.m, cfg.r, cfg.m_prime
        for i in range(r):
            # Recover intermediate parity columns (right to left) until row i
            # has enough known symbols to be encoded via C_row.
            guard = m_prime + 1
            while grid.known_in_row(i) < self.crow.dimension and guard:
                guard -= 1
                recovered = False
                for l in range(m_prime - 1, -1, -1):
                    col = n + l
                    unknown_stored = grid.unknown_cells_in_col(col, row_limit=r)
                    if unknown_stored and grid.can_recover_col(col):
                        grid.recover_col(col, targets=unknown_stored)
                        recovered = True
                        break
                if not recovered:  # pragma: no cover - schedule always progresses
                    raise EncodingInputError(
                        f"downstairs schedule stalled at row {i}"
                    )
            # Encode the row: fill every unknown cell of stored row i
            # (row parities, inside global parities, intermediate parities).
            targets = grid.unknown_cells_in_row(i)
            if targets:
                grid.recover_row(i, targets=targets)

        self._last_steps = grid.steps
        return grid.extract_stripe()

    # ------------------------------------------------------------------ #
    def _encode_rows_only(self, stripe: list[list[np.ndarray | None]],
                          ops: RegionOps) -> list[list[np.ndarray]]:
        """Degenerate case e = (): plain per-row MDS encoding."""
        cfg = self.config
        out: list[list[np.ndarray]] = []
        for i in range(cfg.r):
            data_row = [stripe[i][j] for j in range(cfg.data_chunks)]
            parities = self.crow.encode(data_row, ops)[: cfg.m]
            out.append([np.copy(sym) for sym in data_row] + parities)
        return out
