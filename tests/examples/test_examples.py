"""Smoke tests: every example script must run to completion successfully."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
SRC_DIR = pathlib.Path(__file__).resolve().parents[2] / "src"


@pytest.mark.parametrize("script", sorted(EXAMPLES_DIR.glob("*.py")),
                         ids=lambda path: path.name)
def test_example_runs(script):
    env = {"PYTHONPATH": str(SRC_DIR)}
    result = subprocess.run([sys.executable, str(script)], env=env,
                            capture_output=True, text=True, timeout=600)
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "examples must print a report"


def test_quickstart_reports_success():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        env={"PYTHONPATH": str(SRC_DIR)}, capture_output=True, text=True,
        timeout=600)
    assert "Recovery successful: True" in result.stdout
    assert "Byte API roundtrip : True" in result.stdout


def test_raid6_example_shows_stair_advantage():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "raid6_sector_recovery.py")],
        env={"PYTHONPATH": str(SRC_DIR)}, capture_output=True, text=True,
        timeout=600)
    assert "DATA LOSS" in result.stdout        # RAID-5 loses data
    assert result.stdout.count("recovered, data intact") >= 2
