"""Unit tests for polynomials over GF(2^w)."""

import pytest

from repro.gf.field import get_field
from repro.gf.polynomial import GFPolynomial


@pytest.fixture
def field():
    return get_field(8)


class TestBasics:
    def test_normalisation_strips_leading_zeros(self, field):
        p = GFPolynomial([1, 2, 0, 0], field)
        assert p.coefficients == [1, 2]
        assert p.degree == 1

    def test_zero_polynomial(self, field):
        z = GFPolynomial([0, 0], field)
        assert z.is_zero() and z.degree == 0

    def test_evaluate_constant_and_linear(self, field):
        assert GFPolynomial([7], field).evaluate(100) == 7
        p = GFPolynomial([3, 1], field)  # x + 3
        assert p.evaluate(5) == field.add(5, 3)

    def test_evaluate_horner_matches_direct(self, field):
        p = GFPolynomial([1, 2, 3, 4], field)
        x = 17
        direct = 0
        for i, c in enumerate(p.coefficients):
            direct ^= field.mul(c, field.pow(x, i))
        assert p.evaluate(x) == direct


class TestArithmetic:
    def test_addition_is_coefficientwise_xor(self, field):
        a = GFPolynomial([1, 2, 3], field)
        b = GFPolynomial([4, 5], field)
        assert a.add(b).coefficients == [5, 7, 3]

    def test_addition_cancels(self, field):
        a = GFPolynomial([1, 2, 3], field)
        assert a.add(a).is_zero()

    def test_multiplication_degree(self, field):
        a = GFPolynomial([1, 1], field)
        b = GFPolynomial([2, 0, 1], field)
        assert a.mul(b).degree == 3

    def test_multiplication_agrees_with_evaluation(self, field):
        a = GFPolynomial([3, 5, 7], field)
        b = GFPolynomial([2, 9], field)
        product = a.mul(b)
        for x in (0, 1, 2, 50, 200):
            assert product.evaluate(x) == field.mul(a.evaluate(x), b.evaluate(x))

    def test_scale(self, field):
        p = GFPolynomial([1, 2, 3], field)
        scaled = p.scale(4)
        for x in (0, 3, 77):
            assert scaled.evaluate(x) == field.mul(4, p.evaluate(x))

    def test_divmod_roundtrip(self, field):
        dividend = GFPolynomial([7, 3, 0, 1, 9], field)
        divisor = GFPolynomial([1, 0, 5], field)
        quotient, remainder = dividend.divmod(divisor)
        reconstructed = quotient.mul(divisor).add(remainder)
        assert reconstructed == dividend
        assert remainder.degree < divisor.degree

    def test_divmod_by_zero_raises(self, field):
        with pytest.raises(ZeroDivisionError):
            GFPolynomial([1], field).divmod(GFPolynomial([0], field))

    def test_divmod_smaller_dividend(self, field):
        q, r = GFPolynomial([5], field).divmod(GFPolynomial([1, 1], field))
        assert q.is_zero() and r.coefficients == [5]


class TestInterpolation:
    def test_roundtrip(self, field):
        original = GFPolynomial([9, 4, 7, 1], field)
        points = [(x, original.evaluate(x)) for x in (1, 2, 3, 4)]
        assert GFPolynomial.interpolate(points, field) == original

    def test_interpolation_matches_points(self, field):
        points = [(0, 13), (1, 200), (5, 7), (9, 0)]
        poly = GFPolynomial.interpolate(points, field)
        for x, y in points:
            assert poly.evaluate(x) == y

    def test_duplicate_x_rejected(self, field):
        with pytest.raises(ValueError):
            GFPolynomial.interpolate([(1, 2), (1, 3)], field)
