"""Unit tests for scalar Galois-field arithmetic."""

import numpy as np
import pytest

from repro.gf.field import GField, default_field, get_field
from repro.gf.tables import PRIMITIVE_POLYNOMIALS, SUPPORTED_WORD_SIZES, get_tables


@pytest.fixture(params=[4, 8, 16])
def field(request):
    return get_field(request.param)


class TestFieldBasics:
    def test_supported_word_sizes(self):
        assert set(SUPPORTED_WORD_SIZES) == set(PRIMITIVE_POLYNOMIALS) == {4, 8, 16}

    def test_default_field_is_gf256(self):
        assert default_field().w == 8
        assert default_field().order == 256

    def test_get_field_is_cached(self):
        assert get_field(8) is get_field(8)

    def test_get_field_rejects_unknown_word_size(self):
        with pytest.raises(ValueError):
            get_field(12)

    def test_equality_and_hash(self):
        assert get_field(8) == GField(8)
        assert hash(get_field(8)) == hash(GField(8))
        assert get_field(8) != get_field(16)

    def test_order(self, field):
        assert field.order == 1 << field.w

    def test_element_dtype(self):
        assert get_field(8).element_dtype == np.dtype(np.uint8)
        assert get_field(4).element_dtype == np.dtype(np.uint8)
        assert get_field(16).element_dtype == np.dtype(np.uint16)


class TestArithmetic:
    def test_addition_is_xor(self, field):
        assert field.add(0b1010 % field.order, 0b0110 % field.order) == (
            (0b1010 % field.order) ^ (0b0110 % field.order))

    def test_add_sub_identical(self, field):
        for a, b in [(1, 2), (7, 7), (0, 5)]:
            assert field.add(a, b) == field.sub(a, b)

    def test_multiplication_by_zero_and_one(self, field):
        for a in range(min(field.order, 64)):
            assert field.mul(a, 0) == 0
            assert field.mul(0, a) == 0
            assert field.mul(a, 1) == a
            assert field.mul(1, a) == a

    def test_multiplication_commutative(self, field):
        rng = np.random.default_rng(0)
        for _ in range(50):
            a, b = rng.integers(0, field.order, 2)
            assert field.mul(int(a), int(b)) == field.mul(int(b), int(a))

    def test_multiplication_associative(self, field):
        rng = np.random.default_rng(1)
        for _ in range(30):
            a, b, c = (int(x) for x in rng.integers(0, field.order, 3))
            assert field.mul(field.mul(a, b), c) == field.mul(a, field.mul(b, c))

    def test_distributivity(self, field):
        rng = np.random.default_rng(2)
        for _ in range(30):
            a, b, c = (int(x) for x in rng.integers(0, field.order, 3))
            assert field.mul(a, field.add(b, c)) == field.add(
                field.mul(a, b), field.mul(a, c))

    def test_division_inverts_multiplication(self, field):
        rng = np.random.default_rng(3)
        for _ in range(50):
            a = int(rng.integers(0, field.order))
            b = int(rng.integers(1, field.order))
            assert field.div(field.mul(a, b), b) == a

    def test_division_by_zero_raises(self, field):
        with pytest.raises(ZeroDivisionError):
            field.div(1, 0)

    def test_inverse(self, field):
        upper = min(field.order, 300)
        for a in range(1, upper):
            assert field.mul(a, field.inv(a)) == 1

    def test_inverse_of_zero_raises(self, field):
        with pytest.raises(ZeroDivisionError):
            field.inv(0)

    def test_pow_matches_repeated_multiplication(self, field):
        for a in (1, 2, 3, 5):
            acc = 1
            for e in range(6):
                assert field.pow(a, e) == acc
                acc = field.mul(acc, a)

    def test_pow_negative_exponent(self, field):
        a = 3
        assert field.mul(field.pow(a, -1), a) == 1

    def test_pow_zero_cases(self, field):
        assert field.pow(0, 0) == 1
        assert field.pow(0, 5) == 0
        with pytest.raises(ZeroDivisionError):
            field.pow(0, -1)

    def test_exp_log_roundtrip(self, field):
        upper = min(field.order, 300)
        for a in range(1, upper):
            assert field.exp(field.log(a)) == a

    def test_log_of_zero_raises(self, field):
        with pytest.raises(ValueError):
            field.log(0)

    def test_primitive_element_generates_field(self, field):
        seen = set()
        x = 1
        for _ in range(field.order - 1):
            seen.add(x)
            x = field.mul(x, 2)
        assert len(seen) == field.order - 1


class TestVectorOperations:
    def test_mul_vector_matches_scalar(self, field):
        rng = np.random.default_rng(4)
        vec = rng.integers(0, field.order, 32).astype(field.element_dtype)
        for c in (0, 1, 2, 7, field.order - 1):
            expected = np.array([field.mul(c, int(v)) for v in vec],
                                dtype=field.element_dtype)
            assert np.array_equal(field.mul_vector(c, vec), expected)

    def test_mul_table_row_matches_mul(self):
        field = get_field(8)
        row = field.mul_table_row(37)
        for b in range(256):
            assert row[b] == field.mul(37, b)

    def test_mul_table_row_unavailable_for_w16(self):
        with pytest.raises(NotImplementedError):
            get_field(16).mul_table_row(3)

    def test_dot(self, field):
        rng = np.random.default_rng(5)
        vectors = [rng.integers(0, field.order, 16).astype(field.element_dtype)
                   for _ in range(3)]
        coeffs = [2, 0, 5]
        result = field.dot(coeffs, vectors)
        expected = np.zeros(16, dtype=field.element_dtype)
        for c, v in zip(coeffs, vectors):
            expected ^= field.mul_vector(c, v)
        assert np.array_equal(result, expected)

    def test_dot_all_zero_coefficients(self, field):
        vectors = [np.ones(8, dtype=field.element_dtype)] * 2
        assert not field.dot([0, 0], vectors).any()


class TestTables:
    def test_inverse_table_consistency(self):
        tables = get_tables(8)
        field = get_field(8)
        for a in range(1, 256):
            assert int(tables.inv[a]) == field.inv(a)

    def test_full_tables_only_for_small_fields(self):
        assert get_tables(8).mul_table is not None
        assert get_tables(16).mul_table is None

    def test_division_table(self):
        tables = get_tables(8)
        field = get_field(8)
        for a in (0, 1, 5, 100, 255):
            for b in (1, 2, 37, 255):
                assert int(tables.div_table[a, b]) == field.div(a, b)

    def test_unsupported_word_size(self):
        with pytest.raises(ValueError):
            get_tables(5)
