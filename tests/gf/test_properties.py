"""Property-based tests (hypothesis) for the Galois-field substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf.field import get_field
from repro.gf.matrix import GFMatrix, SingularMatrixError
from repro.gf.regions import RegionOps

FIELD = get_field(8)
elements = st.integers(min_value=0, max_value=255)
nonzero_elements = st.integers(min_value=1, max_value=255)


@given(elements, elements, elements)
def test_field_axioms(a, b, c):
    f = FIELD
    # Commutativity and associativity of both operations.
    assert f.add(a, b) == f.add(b, a)
    assert f.mul(a, b) == f.mul(b, a)
    assert f.add(f.add(a, b), c) == f.add(a, f.add(b, c))
    assert f.mul(f.mul(a, b), c) == f.mul(a, f.mul(b, c))
    # Distributivity.
    assert f.mul(a, f.add(b, c)) == f.add(f.mul(a, b), f.mul(a, c))
    # Identities.
    assert f.add(a, 0) == a
    assert f.mul(a, 1) == a
    # Additive inverse is the element itself (characteristic 2).
    assert f.add(a, a) == 0


@given(nonzero_elements)
def test_multiplicative_inverse(a):
    assert FIELD.mul(a, FIELD.inv(a)) == 1


@given(nonzero_elements, nonzero_elements)
def test_log_homomorphism(a, b):
    f = FIELD
    product = f.mul(a, b)
    assert product != 0
    assert f.log(product) == (f.log(a) + f.log(b)) % 255


@given(st.lists(elements, min_size=1, max_size=6),
       st.lists(st.lists(elements, min_size=1, max_size=32), min_size=1,
                max_size=6))
@settings(max_examples=50)
def test_linear_combination_matches_scalar_model(coeffs, symbol_rows):
    size = len(symbol_rows[0])
    symbols = [np.array((row * ((size // len(row)) + 1))[:size], dtype=np.uint8)
               for row in symbol_rows]
    count = min(len(coeffs), len(symbols))
    coeffs, symbols = coeffs[:count], symbols[:count]
    ops = RegionOps(FIELD)
    result = ops.linear_combination(coeffs, symbols)
    for position in range(size):
        expected = 0
        for c, sym in zip(coeffs, symbols):
            expected ^= FIELD.mul(c, int(sym[position]))
        assert int(result[position]) == expected


@given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=2 ** 31))
@settings(max_examples=40)
def test_matrix_inverse_roundtrip(size, seed):
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, (size, size))
    matrix = GFMatrix(data, FIELD)
    try:
        inverse = matrix.inverse()
    except SingularMatrixError:
        assert matrix.rank() < size
        return
    assert matrix.matmul(inverse) == GFMatrix.identity(size, FIELD)
    assert matrix.rank() == size


@given(st.integers(min_value=1, max_value=5), st.integers(min_value=1, max_value=5),
       st.integers(min_value=0, max_value=2 ** 31))
@settings(max_examples=40)
def test_cauchy_matrices_have_full_rank(rows, cols, seed):
    rng = np.random.default_rng(seed)
    points = rng.choice(256, size=rows + cols, replace=False)
    cauchy = GFMatrix.cauchy(points[:rows].tolist(), points[rows:].tolist(), FIELD)
    assert cauchy.rank() == min(rows, cols)
