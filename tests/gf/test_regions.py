"""Unit tests for vectorised region operations and the Mult_XOR counter."""

import numpy as np
import pytest

from repro.gf.field import get_field
from repro.gf.regions import OperationCounter, RegionOps


@pytest.fixture
def ops():
    return RegionOps(get_field(8))


class TestOperationCounter:
    def test_total_and_reset(self):
        counter = OperationCounter(mult_xors=3, xors=2, bytes_processed=100)
        assert counter.total() == 5
        counter.reset()
        assert counter.total() == 0
        assert counter.bytes_processed == 0

    def test_merge(self):
        a = OperationCounter(mult_xors=1, xors=2, bytes_processed=10)
        b = OperationCounter(mult_xors=3, xors=4, bytes_processed=20)
        a.merge(b)
        assert (a.mult_xors, a.xors, a.bytes_processed) == (4, 6, 30)


class TestMultXor:
    def test_matches_scalar_arithmetic(self, ops):
        field = ops.field
        rng = np.random.default_rng(0)
        src = rng.integers(0, 256, 64, dtype=np.uint8)
        dst = rng.integers(0, 256, 64, dtype=np.uint8)
        expected = dst ^ field.mul_vector(19, src)
        ops.mult_xor(src, dst, 19)
        assert np.array_equal(dst, expected)

    def test_constant_zero_is_noop(self, ops):
        src = np.ones(16, dtype=np.uint8)
        dst = np.full(16, 7, dtype=np.uint8)
        ops.mult_xor(src, dst, 0)
        assert np.all(dst == 7)
        assert ops.counter.total() == 0

    def test_constant_one_counts_as_xor(self, ops):
        src = np.full(16, 3, dtype=np.uint8)
        dst = np.full(16, 5, dtype=np.uint8)
        ops.mult_xor(src, dst, 1)
        assert np.all(dst == 6)
        assert ops.counter.xors == 1
        assert ops.counter.mult_xors == 0

    def test_general_constant_counts_as_mult_xor(self, ops):
        src = np.ones(16, dtype=np.uint8)
        dst = np.zeros(16, dtype=np.uint8)
        ops.mult_xor(src, dst, 5)
        assert ops.counter.mult_xors == 1
        assert ops.counter.bytes_processed == 16

    def test_xor_into(self, ops):
        src = np.full(8, 0xF0, dtype=np.uint8)
        dst = np.full(8, 0x0F, dtype=np.uint8)
        ops.xor_into(src, dst)
        assert np.all(dst == 0xFF)
        assert ops.counter.xors == 1

    def test_mult_returns_new_array(self, ops):
        src = np.arange(8, dtype=np.uint8)
        out = ops.mult(src, 3)
        assert out is not src
        assert np.array_equal(out, ops.field.mul_vector(3, src))


class TestLinearCombination:
    def test_matches_manual_sum(self, ops):
        rng = np.random.default_rng(1)
        symbols = [rng.integers(0, 256, 32, dtype=np.uint8) for _ in range(4)]
        coeffs = [3, 0, 1, 200]
        result = ops.linear_combination(coeffs, symbols)
        expected = np.zeros(32, dtype=np.uint8)
        for c, sym in zip(coeffs, symbols):
            expected ^= ops.field.mul_vector(c, sym)
        assert np.array_equal(result, expected)

    def test_counts_only_nonzero_coefficients(self, ops):
        symbols = [np.ones(8, dtype=np.uint8) for _ in range(4)]
        ops.linear_combination([0, 1, 2, 0], symbols)
        assert ops.counter.total() == 2

    def test_length_mismatch_raises(self, ops):
        with pytest.raises(ValueError):
            ops.linear_combination([1, 2], [np.zeros(4, dtype=np.uint8)])

    def test_empty_input_requires_size(self, ops):
        with pytest.raises(ValueError):
            ops.linear_combination([], [])
        assert np.array_equal(ops.linear_combination([], [], size=4),
                              np.zeros(4, dtype=np.uint8))

    def test_matrix_vector(self, ops):
        rng = np.random.default_rng(2)
        symbols = [rng.integers(0, 256, 16, dtype=np.uint8) for _ in range(3)]
        matrix = np.array([[1, 2, 3], [0, 0, 0]], dtype=np.int64)
        out = ops.matrix_vector(matrix, symbols)
        assert len(out) == 2
        assert np.array_equal(out[0], ops.linear_combination([1, 2, 3], symbols))
        assert not out[1].any()

    def test_matrix_vector_shape_mismatch(self, ops):
        with pytest.raises(ValueError):
            ops.matrix_vector(np.eye(2, dtype=np.int64),
                              [np.zeros(4, dtype=np.uint8)])


class TestSymbolHelpers:
    def test_zeros(self, ops):
        z = ops.zeros(10)
        assert z.dtype == np.uint8 and len(z) == 10 and not z.any()

    def test_bytes_roundtrip(self, ops):
        payload = bytes(range(32))
        symbol = ops.from_bytes(payload)
        assert ops.to_bytes(symbol) == payload

    def test_bytes_roundtrip_w16(self):
        ops = RegionOps(get_field(16))
        payload = bytes(range(64))
        assert ops.to_bytes(ops.from_bytes(payload)) == payload

    def test_from_bytes_w16_odd_length_raises(self):
        ops = RegionOps(get_field(16))
        with pytest.raises(ValueError):
            ops.from_bytes(b"abc")

    def test_random_respects_field_order(self, ops):
        sym = ops.random(1000, np.random.default_rng(3))
        assert sym.max() < ops.field.order


class TestW16Regions:
    def test_mult_xor_w16(self):
        field = get_field(16)
        ops = RegionOps(field)
        rng = np.random.default_rng(4)
        src = rng.integers(0, field.order, 16, dtype=np.uint16)
        dst = np.zeros(16, dtype=np.uint16)
        ops.mult_xor(src, dst, 1234)
        expected = np.array([field.mul(1234, int(v)) for v in src],
                            dtype=np.uint16)
        assert np.array_equal(dst, expected)
