"""Unit tests for GF matrices (inverse, rank, constructions)."""

import numpy as np
import pytest

from repro.gf.field import get_field
from repro.gf.matrix import GFMatrix, SingularMatrixError


@pytest.fixture
def field():
    return get_field(8)


def random_invertible(n, field, seed=0):
    rng = np.random.default_rng(seed)
    while True:
        data = rng.integers(0, field.order, (n, n))
        matrix = GFMatrix(data, field)
        if matrix.is_invertible():
            return matrix


class TestConstruction:
    def test_identity(self, field):
        ident = GFMatrix.identity(4, field)
        assert ident.shape == (4, 4)
        assert np.array_equal(ident.data, np.eye(4, dtype=np.int64))

    def test_zeros(self, field):
        assert not GFMatrix.zeros(2, 3, field).data.any()

    def test_rejects_out_of_range_entries(self, field):
        with pytest.raises(ValueError):
            GFMatrix([[300]], field)
        with pytest.raises(ValueError):
            GFMatrix([[-1]], field)

    def test_one_dimensional_input_promoted(self, field):
        m = GFMatrix([1, 2, 3], field)
        assert m.shape == (1, 3)

    def test_rejects_3d(self, field):
        with pytest.raises(ValueError):
            GFMatrix(np.zeros((2, 2, 2), dtype=np.int64), field)

    def test_cauchy_every_submatrix_invertible(self, field):
        cauchy = GFMatrix.cauchy(range(4), range(4, 8), field)
        for rows in [(0, 1), (1, 3), (0, 2, 3)]:
            for cols in [(0, 1), (1, 2), (0, 1, 3)]:
                if len(rows) != len(cols):
                    continue
                assert cauchy.submatrix(rows, cols).is_invertible()

    def test_cauchy_overlapping_points_rejected(self, field):
        with pytest.raises(ValueError):
            GFMatrix.cauchy([0, 1], [1, 2], field)

    def test_vandermonde_rows_independent(self, field):
        vand = GFMatrix.vandermonde(6, 3, field)
        for rows in [(0, 1, 2), (1, 3, 5), (2, 3, 4)]:
            assert vand.submatrix(rows, range(3)).is_invertible()


class TestArithmetic:
    def test_matmul_with_identity(self, field):
        m = random_invertible(4, field, seed=1)
        ident = GFMatrix.identity(4, field)
        assert m.matmul(ident) == m
        assert ident @ m == m

    def test_matmul_shape_mismatch(self, field):
        with pytest.raises(ValueError):
            GFMatrix.zeros(2, 3, field).matmul(GFMatrix.zeros(2, 3, field))

    def test_add_is_xor(self, field):
        a = GFMatrix([[1, 2], [3, 4]], field)
        b = GFMatrix([[5, 6], [7, 8]], field)
        assert np.array_equal(a.add(b).data, a.data ^ b.data)

    def test_add_shape_mismatch(self, field):
        with pytest.raises(ValueError):
            GFMatrix.zeros(2, 2, field).add(GFMatrix.zeros(3, 3, field))

    def test_mul_vector_matches_matmul(self, field):
        m = random_invertible(3, field, seed=2)
        vec = [5, 9, 200]
        column = GFMatrix(np.array(vec).reshape(3, 1), field)
        assert np.array_equal(m.mul_vector(vec), m.matmul(column).data.ravel())

    def test_mul_vector_length_mismatch(self, field):
        with pytest.raises(ValueError):
            GFMatrix.identity(3, field).mul_vector([1, 2])


class TestInverseAndRank:
    @pytest.mark.parametrize("size", [1, 2, 4, 8, 16])
    def test_inverse_roundtrip(self, field, size):
        m = random_invertible(size, field, seed=size)
        product = m.matmul(m.inverse())
        assert product == GFMatrix.identity(size, field)

    def test_inverse_of_singular_raises(self, field):
        singular = GFMatrix([[1, 2], [1, 2]], field)
        with pytest.raises(SingularMatrixError):
            singular.inverse()

    def test_inverse_of_non_square_raises(self, field):
        with pytest.raises(SingularMatrixError):
            GFMatrix.zeros(2, 3, field).inverse()

    def test_rank_full_and_deficient(self, field):
        assert GFMatrix.identity(5, field).rank() == 5
        assert GFMatrix([[1, 2], [2, 4]], field).rank() < 2
        assert GFMatrix.zeros(3, 3, field).rank() == 0

    def test_rank_of_rectangular(self, field):
        cauchy = GFMatrix.cauchy(range(3), range(3, 8), field)
        assert cauchy.rank() == 3

    def test_solve(self, field):
        m = random_invertible(5, field, seed=7)
        x = [1, 2, 3, 4, 5]
        rhs = m.mul_vector(x)
        assert np.array_equal(m.solve(rhs), np.array(x))

    def test_inverse_w16(self):
        field = get_field(16)
        m = random_invertible(6, field, seed=11)
        assert m.matmul(m.inverse()) == GFMatrix.identity(6, field)


class TestRrefAndEdgeCases:
    """Edge cases of the vectorised elimination kernel: rref, tiny and
    empty matrices, and non-byte word sizes."""

    def test_rref_of_full_rank_square_is_identity(self, field):
        m = random_invertible(4, field, seed=3)
        reduced, pivots = m.rref()
        assert reduced == GFMatrix.identity(4, field)
        assert pivots == (0, 1, 2, 3)

    def test_rref_rank_deficient(self, field):
        # Row 2 = row 0 XOR row 1, so the rank is 2 and the third row of
        # the reduced form must vanish.
        m = GFMatrix([[1, 0, 3], [0, 1, 5], [1, 1, 6]], field)
        reduced, pivots = m.rref()
        assert pivots == (0, 1)
        assert not reduced.data[2].any()
        assert m.rank() == 2

    def test_rref_rectangular_wide(self, field):
        m = GFMatrix([[0, 0, 2, 4], [0, 0, 1, 7]], field)
        reduced, pivots = m.rref()
        # First two columns are identically zero: pivots must skip them.
        assert pivots == (2, 3)
        assert reduced.data[0, 2] == 1 and reduced.data[1, 3] == 1

    def test_rref_does_not_mutate_original(self, field):
        m = GFMatrix([[2, 4], [6, 8]], field)
        before = m.data.copy()
        m.rref()
        assert np.array_equal(m.data, before)

    def test_one_by_one(self, field):
        m = GFMatrix([[7]], field)
        assert m.rank() == 1
        inv = m.inverse()
        assert field.mul(int(inv.data[0, 0]), 7) == 1
        with pytest.raises(SingularMatrixError):
            GFMatrix([[0]], field).inverse()

    def test_empty_matrix(self, field):
        empty = GFMatrix.zeros(0, 0, field)
        assert empty.rank() == 0
        assert empty.inverse().shape == (0, 0)
        reduced, pivots = empty.rref()
        assert reduced.shape == (0, 0) and pivots == ()

    def test_zero_rows_nonzero_cols(self, field):
        m = GFMatrix.zeros(0, 3, field)
        assert m.rank() == 0
        assert m.rref()[1] == ()

    @pytest.mark.parametrize("w", [4, 16])
    def test_inverse_and_rref_other_word_sizes(self, w):
        field = get_field(w)
        m = random_invertible(3, field, seed=w)
        assert m.matmul(m.inverse()) == GFMatrix.identity(3, field)
        reduced, pivots = m.rref()
        assert reduced == GFMatrix.identity(3, field)
        assert pivots == (0, 1, 2)

    @pytest.mark.parametrize("w", [4, 16])
    def test_singular_raises_other_word_sizes(self, w):
        field = get_field(w)
        with pytest.raises(SingularMatrixError):
            GFMatrix([[3, 3], [3, 3]], field).inverse()

    def test_mul_vector_empty(self, field):
        m = GFMatrix.zeros(0, 0, field)
        assert m.mul_vector([]).shape == (0,)


class TestSlicing:
    def test_submatrix_row_and_col(self, field):
        m = GFMatrix(np.arange(12).reshape(3, 4) % 256, field)
        sub = m.submatrix([0, 2], [1, 3])
        assert np.array_equal(sub.data, np.array([[1, 3], [9, 11]]))

    def test_row_col_copies(self, field):
        m = GFMatrix(np.arange(4).reshape(2, 2), field)
        row = m.row(0)
        row[0] = 99
        assert m.data[0, 0] == 0
        col = m.col(1)
        col[0] = 99
        assert m.data[0, 1] == 1

    def test_hstack_vstack_transpose(self, field):
        a = GFMatrix.identity(2, field)
        b = GFMatrix.zeros(2, 2, field)
        assert a.hstack(b).shape == (2, 4)
        assert a.vstack(b).shape == (4, 2)
        assert a.transpose() == a

    def test_copy_is_independent(self, field):
        a = GFMatrix.identity(2, field)
        b = a.copy()
        b.data[0, 0] = 0
        assert a.data[0, 0] == 1
