"""Differential fuzz harness: bulk stripe-planar kernels vs the scalar path.

The bulk kernels in :mod:`repro.gf.regions` (`mult_xor_plane`,
`xor_accumulate_plane`, `matrix_vector_plane`, `matrix_vector_planes`) are
the fast path every coding layer routes through.  Their ground truth is
:class:`~repro.gf.regions.ReferenceRegionOps`: element-at-a-time field
multiplication through ``GField.mul``, deliberately too simple to be
wrong.  Every fuzz case here asserts two things at once:

* **bit-exactness** -- the bulk output equals the scalar output, and
* **counter-exactness** -- ``OperationCounter.snapshot()`` is identical
  between the two paths (zero coefficients count nothing, coefficient 1
  counts an XOR, everything else a Mult_XOR; see the regions module
  docstring for the contract).

Each kernel sees >= 200 randomized cases across GF(2^4), GF(2^8) and
GF(2^16), with coefficient distributions deliberately biased toward 0 and
1 to exercise the skip/XOR special cases.  On top of the kernel-level
fuzz, full encode -> erase -> decode round-trips drive the STAIR, RS, SD
and IDR engines end-to-end on both backends and require identical
recovered stripes and identical counters -- which pins the paper's
Eq. (5) / Eq. (6) Mult_XOR counts to the bulk path as well.
"""

import numpy as np
import pytest

from repro.codes import IDRScheme, ReedSolomonStripeCode, SDCode
from repro.core.stair import StairCode
from repro.gf.field import get_field
from repro.gf.regions import OperationCounter, ReferenceRegionOps, RegionOps

WORD_SIZES = (4, 8, 16)
#: Cases per word size; 3 word sizes x 70 >= 200 cases per kernel.
CASES_PER_W = 70


def make_pair(w):
    """A (bulk, reference) ops pair over the same field, fresh counters."""
    field = get_field(w)
    return (RegionOps(field, OperationCounter()),
            ReferenceRegionOps(field, OperationCounter()))


def biased_constants(rng, field, size):
    """Random coefficients biased toward the 0 and 1 special cases."""
    kind = rng.integers(0, 4, size=size)
    values = rng.integers(0, field.order, size=size, dtype=np.int64)
    values[kind == 0] = 0
    values[kind == 1] = 1
    return values


def random_plane(rng, field, num_symbols, length):
    return rng.integers(0, field.order, size=(num_symbols, length),
                        dtype=field.element_dtype)


@pytest.mark.parametrize("w", WORD_SIZES)
class TestKernelFuzz:
    """>= 200 randomized bulk-vs-reference cases per kernel."""

    def test_mult_xor_plane(self, w):
        bulk, ref = make_pair(w)
        rng = np.random.default_rng(1000 + w)
        for _ in range(CASES_PER_W):
            s = int(rng.integers(1, 9))
            length = int(rng.integers(1, 33))
            src = random_plane(rng, bulk.field, s, length)
            dst = random_plane(rng, bulk.field, s, length)
            constants = biased_constants(rng, bulk.field, s)

            dst_bulk = dst.copy()
            bulk.mult_xor_plane(src, dst_bulk, constants)

            dst_ref = dst.copy()
            for i in range(s):
                ref.mult_xor(src[i], dst_ref[i], int(constants[i]))

            assert np.array_equal(dst_bulk, dst_ref)
            assert bulk.counter.snapshot() == ref.counter.snapshot()

    def test_xor_accumulate_plane(self, w):
        bulk, ref = make_pair(w)
        rng = np.random.default_rng(2000 + w)
        for _ in range(CASES_PER_W):
            s = int(rng.integers(1, 9))
            length = int(rng.integers(1, 33))
            src = random_plane(rng, bulk.field, s, length)
            dst = random_plane(rng, bulk.field, 1, length)[0]

            dst_bulk = dst.copy()
            bulk.xor_accumulate_plane(src, dst_bulk)

            dst_ref = dst.copy()
            for i in range(s):
                ref.xor_into(src[i], dst_ref)

            assert np.array_equal(dst_bulk, dst_ref)
            assert bulk.counter.snapshot() == ref.counter.snapshot()

    def test_matrix_vector_plane(self, w):
        bulk, ref = make_pair(w)
        rng = np.random.default_rng(3000 + w)
        for _ in range(CASES_PER_W):
            s = int(rng.integers(1, 9))
            p = int(rng.integers(1, 7))
            length = int(rng.integers(1, 33))
            matrix = biased_constants(rng, bulk.field, (p, s))
            plane = random_plane(rng, bulk.field, s, length)

            out_bulk = bulk.matrix_vector_plane(matrix, plane)
            out_ref = ref.matrix_vector(matrix, list(plane))

            assert np.array_equal(out_bulk, np.stack(out_ref))
            assert bulk.counter.snapshot() == ref.counter.snapshot()

    def test_matrix_vector_planes(self, w):
        bulk, ref = make_pair(w)
        rng = np.random.default_rng(4000 + w)
        for _ in range(CASES_PER_W):
            batch = int(rng.integers(1, 5))
            s = int(rng.integers(1, 7))
            p = int(rng.integers(1, 6))
            length = int(rng.integers(1, 17))
            matrix = biased_constants(rng, bulk.field, (p, s))
            planes = rng.integers(0, bulk.field.order, size=(batch, s, length),
                                  dtype=bulk.field.element_dtype)

            out_bulk = bulk.matrix_vector_planes(matrix, planes)
            out_ref = ref.matrix_vector_batch(
                matrix, [list(plane) for plane in planes])

            for b in range(batch):
                assert np.array_equal(out_bulk[b], np.stack(out_ref[b]))
            assert bulk.counter.snapshot() == ref.counter.snapshot()

    def test_linear_combination_matches(self, w):
        """The list-level API the coding layers call: bulk vs scalar."""
        bulk, ref = make_pair(w)
        rng = np.random.default_rng(5000 + w)
        for _ in range(CASES_PER_W):
            s = int(rng.integers(1, 9))
            length = int(rng.integers(1, 33))
            symbols = list(random_plane(rng, bulk.field, s, length))
            coeffs = [int(c) for c in biased_constants(rng, bulk.field, s)]

            out_bulk = bulk.linear_combination(coeffs, symbols)
            out_ref = ref.linear_combination(coeffs, symbols)

            assert np.array_equal(out_bulk, out_ref)
            assert bulk.counter.snapshot() == ref.counter.snapshot()


# --------------------------------------------------------------------- #
# Engine round-trips: encode -> erase -> decode on both backends
# --------------------------------------------------------------------- #
SYMBOL_SIZE = 4  # small regions keep the scalar reference path affordable


def random_symbols(field, count, rng):
    return [rng.integers(0, field.order, SYMBOL_SIZE,
                         dtype=field.element_dtype) for _ in range(count)]


def random_covered_erasures(rng, r, n, covered, max_losses):
    """A random non-empty loss pattern accepted by ``covered``."""
    while True:
        count = int(rng.integers(1, max_losses + 1))
        cells = [(i, j) for i in range(r) for j in range(n)]
        idx = rng.choice(len(cells), size=count, replace=False)
        pattern = [cells[k] for k in idx]
        if covered(pattern):
            return pattern


def erase(grid, pattern):
    damaged = [list(row) for row in grid]
    for i, j in pattern:
        damaged[i][j] = None
    return damaged


class TestEngineRoundTrips:
    """Both backends must produce identical stripes *and* counters."""

    def _run_stripe_code(self, make_code, trials, seed):
        for trial in range(trials):
            rng = np.random.default_rng(seed + trial)
            bulk_code, ref_code = make_code(), make_code()
            ref_code.ops_class = ReferenceRegionOps
            data = random_symbols(bulk_code.field,
                                 bulk_code.num_data_symbols, rng)

            grid_bulk = bulk_code.encode(data)
            grid_ref = ref_code.encode(data)
            for row_b, row_r in zip(grid_bulk, grid_ref):
                for cell_b, cell_r in zip(row_b, row_r):
                    assert np.array_equal(cell_b, cell_r)
            assert bulk_code.counter.snapshot() == ref_code.counter.snapshot()

            pattern = random_covered_erasures(
                rng, bulk_code.r, bulk_code.n, bulk_code.tolerates,
                max_losses=bulk_code.n)
            bulk_code.counter.reset()
            ref_code.counter.reset()
            dec_bulk = bulk_code.decode(erase(grid_bulk, pattern))
            dec_ref = ref_code.decode(erase(grid_ref, pattern))
            for row_b, row_r in zip(dec_bulk, dec_ref):
                for cell_b, cell_r in zip(row_b, row_r):
                    assert np.array_equal(cell_b, cell_r)
            assert bulk_code.counter.snapshot() == ref_code.counter.snapshot()

    def test_rs_round_trips(self):
        self._run_stripe_code(lambda: ReedSolomonStripeCode(n=6, r=4, m=2),
                              trials=6, seed=10)

    def test_sd_round_trips(self):
        self._run_stripe_code(lambda: SDCode(n=6, r=4, m=1, s=2),
                              trials=6, seed=20)

    def test_idr_round_trips(self):
        self._run_stripe_code(lambda: IDRScheme(n=6, r=4, m=2, epsilon=1),
                              trials=6, seed=30)

    @pytest.mark.parametrize("method", ["upstairs", "downstairs", "standard"])
    def test_stair_round_trips(self, method):
        for trial in range(4):
            rng = np.random.default_rng(40 + trial)
            bulk_code = StairCode.from_params(n=6, r=4, m=1, e=(1, 1),
                                              method=method)
            ref_code = StairCode.from_params(n=6, r=4, m=1, e=(1, 1),
                                             method=method)
            ref_code.ops_class = ReferenceRegionOps
            data = random_symbols(bulk_code.field,
                                  bulk_code.config.num_data_symbols, rng)

            stripe_bulk = bulk_code.encode(data)
            stripe_ref = ref_code.encode(data)
            for pos_b, pos_r in zip(stripe_bulk.symbols, stripe_ref.symbols):
                for cell_b, cell_r in zip(pos_b, pos_r):
                    assert np.array_equal(cell_b, cell_r)
            assert bulk_code.counter.snapshot() == ref_code.counter.snapshot()

            pattern = random_covered_erasures(
                rng, bulk_code.config.r, bulk_code.config.n,
                bulk_code.check_coverage, max_losses=bulk_code.config.r)
            bulk_code.counter.reset()
            ref_code.counter.reset()
            dec_bulk = bulk_code.decode(erase(stripe_bulk.symbols, pattern))
            dec_ref = ref_code.decode(erase(stripe_ref.symbols, pattern))
            for pos_b, pos_r in zip(dec_bulk.symbols, dec_ref.symbols):
                for cell_b, cell_r in zip(pos_b, pos_r):
                    assert np.array_equal(cell_b, cell_r)
            assert bulk_code.counter.snapshot() == ref_code.counter.snapshot()

    def test_stair_eq5_eq6_counts_unchanged_by_bulk_path(self):
        """The analytical Eq. (5)/(6) Mult_XOR totals still hold exactly."""
        code = StairCode.from_params(n=8, r=6, m=2, e=(2, 1))
        costs = code.mult_xor_counts()
        rng = np.random.default_rng(99)
        data = random_symbols(code.field, code.config.num_data_symbols, rng)
        for method, expected in (("upstairs", costs.upstairs),
                                 ("downstairs", costs.downstairs)):
            code.counter.reset()
            code.encode(data, method=method)
            assert code.counter.total() == expected


# --------------------------------------------------------------------- #
# Satellite regressions: counter contract and w=16 wire format
# --------------------------------------------------------------------- #
class TestCounterContract:
    def test_zero_constant_counts_nothing(self):
        """``constant == 0`` is an early return: no ops, no bytes."""
        for ops_cls in (RegionOps, ReferenceRegionOps):
            ops = ops_cls(get_field(8), OperationCounter())
            src = np.arange(16, dtype=np.uint8)
            dst = np.zeros(16, dtype=np.uint8)
            ops.mult_xor(src, dst, 0)
            assert ops.counter.snapshot() == (0, 0, 0)
            assert not dst.any()

    def test_zero_rows_of_plane_count_nothing(self):
        ops = RegionOps(get_field(8), OperationCounter())
        src = np.ones((3, 8), dtype=np.uint8)
        dst = np.zeros((3, 8), dtype=np.uint8)
        ops.mult_xor_plane(src, dst, [0, 0, 0])
        assert ops.counter.snapshot() == (0, 0, 0)
        assert not dst.any()

    def test_one_and_other_constants_split_correctly(self):
        ops = RegionOps(get_field(8), OperationCounter())
        src = np.ones((3, 8), dtype=np.uint8)
        dst = np.zeros((3, 8), dtype=np.uint8)
        ops.mult_xor_plane(src, dst, [0, 1, 5])
        # one XOR (constant 1), one Mult_XOR (constant 5), bytes for both.
        assert ops.counter.snapshot() == (1, 1, 16)


class TestWireFormatW16:
    def test_from_bytes_is_little_endian(self):
        ops = RegionOps(get_field(16))
        symbol = ops.from_bytes(b"\x01\x02\xff\x00")
        assert symbol.dtype == np.uint16
        assert list(symbol) == [0x0201, 0x00FF]

    def test_round_trip(self):
        ops = RegionOps(get_field(16))
        blob = bytes(range(16))
        assert ops.to_bytes(ops.from_bytes(blob)) == blob

    def test_odd_length_rejected(self):
        with pytest.raises(ValueError):
            RegionOps(get_field(16)).from_bytes(b"\x01\x02\x03")
