"""Unit tests for the canonical-stripe grid engine."""

import numpy as np
import pytest

from repro.core import DecodingFailureError, StairConfig
from repro.core.canonical import CanonicalStripe, ScheduleStep
from repro.core.layout import StripeLayout
from repro.gf.regions import RegionOps
from repro.rs.cauchy import CauchyRSCode

CONFIG = StairConfig(n=8, r=4, m=2, e=(1, 1, 2))


@pytest.fixture
def grid():
    layout = StripeLayout(CONFIG)
    field = CONFIG.field()
    crow = CauchyRSCode(CONFIG.n + CONFIG.m_prime, CONFIG.data_chunks, field)
    ccol = CauchyRSCode(CONFIG.r + CONFIG.e_max, CONFIG.r, field)
    return CanonicalStripe(CONFIG, layout, crow, ccol, RegionOps(field))


def symbol(value, size=8):
    return np.full(size, value, dtype=np.uint8)


class TestCellBookkeeping:
    def test_dimensions(self, grid):
        assert grid.rows == 6 and grid.cols == 11

    def test_set_get_known(self, grid):
        assert not grid.is_known(0, 0)
        grid.set(0, 0, symbol(1))
        assert grid.is_known(0, 0)
        assert np.array_equal(grid.get(0, 0), symbol(1))

    def test_counts_and_unknown_lists(self, grid):
        grid.set(1, 2, symbol(1))
        grid.set(1, 4, symbol(2))
        assert grid.known_in_row(1) == 2
        assert grid.known_in_col(2) == 1
        assert grid.unknown_cells_in_row(1, col_limit=5) == [0, 1, 3]
        assert 1 not in grid.unknown_cells_in_col(2, row_limit=4)

    def test_load_and_extract_stripe(self, grid):
        stripe = [[symbol(i * 8 + j) for j in range(8)] for i in range(4)]
        grid.load_stripe(stripe)
        out = grid.extract_stripe()
        assert np.array_equal(out[2][5], stripe[2][5])

    def test_extract_with_missing_cells_raises(self, grid):
        with pytest.raises(DecodingFailureError) as excinfo:
            grid.extract_stripe()
        assert len(excinfo.value.unrecovered) == 32

    def test_place_outside_globals_requires_size(self, grid):
        with pytest.raises(ValueError):
            grid.place_outside_globals()
        grid.place_outside_globals(symbol_size=8)
        # g0,0 / g0,1 / g0,2 / g1,2 occupy the augmented rows.
        assert grid.is_known(4, 8) and grid.is_known(5, 10)
        assert not grid.is_known(5, 8)
        assert not grid.get(4, 8).any()


class TestRecoveryPrimitives:
    def test_recover_row_and_recording(self, grid):
        row_data = [symbol(j + 1) for j in range(6)]
        for j, sym in enumerate(row_data):
            grid.set(0, j, sym)
        assert grid.can_recover_row(0)
        filled = grid.recover_row(0, targets=[6, 7])
        assert sorted(filled) == [(0, 6), (0, 7)]
        assert grid.steps == [ScheduleStep("row", 0, ((0, 6), (0, 7)))]

    def test_recover_col(self, grid):
        for i in range(4):
            grid.set(i, 0, symbol(i + 1))
        assert grid.can_recover_col(0)
        filled = grid.recover_col(0)
        assert sorted(filled) == [(4, 0), (5, 0)]

    def test_recover_without_enough_symbols_raises(self, grid):
        grid.set(0, 0, symbol(1))
        assert not grid.can_recover_row(0)
        with pytest.raises(Exception):
            grid.recover_row(0)

    def test_recover_col_without_column_code(self):
        config = StairConfig(n=6, r=4, m=2, e=())
        layout = StripeLayout(config)
        field = config.field()
        crow = CauchyRSCode(config.n, config.data_chunks, field)
        grid = CanonicalStripe(config, layout, crow, None, RegionOps(field))
        with pytest.raises(DecodingFailureError):
            grid.recover_col(0)
        assert not grid.can_recover_col(0)

    def test_row_recovery_is_consistent_with_encoding(self, grid):
        """Recovering the parity cells of a full data row must equal C_row
        encoding of that row."""
        row_data = [symbol(j + 3) for j in range(6)]
        for j, sym in enumerate(row_data):
            grid.set(2, j, sym)
        grid.recover_row(2)
        expected = grid.crow.encode(row_data)
        for k in range(5):
            assert np.array_equal(grid.get(2, 6 + k), expected[k])
