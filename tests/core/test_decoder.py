"""Tests for upstairs / practical decoding and failure coverage."""

from itertools import combinations

import numpy as np
import pytest

from repro.core import (
    DecodingFailureError,
    StairCode,
    StairConfig,
    check_coverage,
)

EXAMPLE = StairConfig(n=8, r=4, m=2, e=(1, 1, 2))


def make_code_and_stripe(config=EXAMPLE, symbol_size=16, seed=0):
    code = StairCode(config)
    rng = np.random.default_rng(seed)
    data = [rng.integers(0, 256, symbol_size, dtype=np.uint8)
            for _ in range(config.num_data_symbols)]
    return code, code.encode(data), data


class TestWorstCaseRecovery:
    def test_paper_worst_case(self):
        """Two failed devices plus the e = (1,1,2) sector-failure pattern."""
        code, stripe, data = make_code_and_stripe()
        damaged = stripe.erase_chunks([6, 7]).erase(
            [(3, 3), (3, 4), (2, 5), (3, 5)])
        repaired = code.decode(damaged)
        assert repaired == stripe
        assert all(np.array_equal(a, b)
                   for a, b in zip(repaired.data_symbols(), data))

    def test_failed_devices_can_be_data_devices(self):
        code, stripe, _ = make_code_and_stripe(seed=1)
        damaged = stripe.erase_chunks([0, 1]).erase(
            [(0, 3), (1, 4), (2, 5), (3, 5)])
        assert code.decode(damaged) == stripe

    def test_sector_failures_anywhere_in_chunk(self):
        code, stripe, _ = make_code_and_stripe(seed=2)
        damaged = stripe.erase_chunks([2, 6]).erase(
            [(0, 0), (1, 3), (0, 5), (2, 5)])
        assert code.decode(damaged) == stripe

    def test_all_device_failure_patterns(self):
        code, stripe, _ = make_code_and_stripe(seed=3)
        for chunks in combinations(range(8), 2):
            damaged = stripe.erase_chunks(chunks)
            assert code.decode(damaged) == stripe

    def test_row_local_patterns(self):
        """At most m losses per row are repaired by row parities alone."""
        code, stripe, _ = make_code_and_stripe(seed=4)
        damaged = stripe.erase([(0, 0), (0, 5), (1, 2), (2, 7), (3, 3), (3, 6)])
        assert code.decode(damaged) == stripe

    def test_decode_with_no_losses(self):
        code, stripe, _ = make_code_and_stripe(seed=5)
        assert code.decode(stripe) == stripe

    def test_decode_without_practical_shortcut(self):
        code, stripe, _ = make_code_and_stripe(seed=6)
        damaged = stripe.erase_chunks([6, 7]).erase([(3, 5), (2, 5)])
        assert code.decode(damaged, practical=False) == stripe

    def test_decode_accepts_plain_grids(self):
        code, stripe, _ = make_code_and_stripe(seed=7)
        grid = [[None if j == 6 else stripe.get(i, j) for j in range(8)]
                for i in range(4)]
        assert code.decode(grid) == stripe


class TestBeyondCoverage:
    def test_too_many_device_failures(self):
        code, stripe, _ = make_code_and_stripe(seed=8)
        with pytest.raises(DecodingFailureError):
            code.decode(stripe.erase_chunks([0, 1, 2]))

    def test_too_many_sector_failures_in_one_chunk(self):
        code, stripe, _ = make_code_and_stripe(seed=9)
        damaged = stripe.erase_chunks([6, 7]).erase(
            [(0, 5), (1, 5), (2, 5)])  # three failures but e_max = 2
        with pytest.raises(DecodingFailureError):
            code.decode(damaged)

    def test_too_many_chunks_with_sector_failures(self):
        code, stripe, _ = make_code_and_stripe(seed=10)
        damaged = stripe.erase_chunks([6, 7]).erase(
            [(3, 0), (3, 1), (3, 2), (3, 3)])  # four chunks but m' = 3
        with pytest.raises(DecodingFailureError):
            code.decode(damaged)

    def test_error_reports_unrecovered_positions(self):
        code, stripe, _ = make_code_and_stripe(seed=11)
        with pytest.raises(DecodingFailureError) as excinfo:
            code.decode(stripe.erase_chunks([0, 1, 2]))
        assert excinfo.value.unrecovered

    def test_empty_stripe_rejected(self):
        code, stripe, _ = make_code_and_stripe(seed=12)
        empty = [[None] * 8 for _ in range(4)]
        with pytest.raises(DecodingFailureError):
            code.decode(empty)

    def test_sector_failures_without_global_parity(self):
        config = StairConfig(n=6, r=4, m=1, e=())
        code = StairCode(config)
        rng = np.random.default_rng(13)
        data = [rng.integers(0, 256, 8, dtype=np.uint8)
                for _ in range(config.num_data_symbols)]
        stripe = code.encode(data)
        damaged = stripe.erase([(0, 0), (0, 1)])  # two losses in one row, m=1
        with pytest.raises(DecodingFailureError):
            code.decode(damaged)


class TestCoveragePredicate:
    def test_within_coverage(self):
        losses = ([(i, 6) for i in range(4)] + [(i, 7) for i in range(4)]
                  + [(3, 3), (3, 4), (2, 5), (3, 5)])
        assert check_coverage(EXAMPLE, losses)

    def test_beyond_coverage_extra_chunk(self):
        losses = ([(i, 6) for i in range(4)] + [(i, 7) for i in range(4)]
                  + [(3, 0), (3, 1), (3, 2), (3, 3)])
        assert not check_coverage(EXAMPLE, losses)

    def test_beyond_coverage_deep_chunk(self):
        losses = [(0, 0), (1, 0), (2, 0)]
        # Without a device failure the 3-deep chunk is absorbed by m; adding
        # two failed devices leaves it to the e coverage, which allows only 2.
        assert check_coverage(EXAMPLE, losses)
        losses += [(i, 6) for i in range(4)] + [(i, 7) for i in range(4)]
        assert not check_coverage(EXAMPLE, losses)

    def test_out_of_range_position_rejected(self):
        with pytest.raises(ValueError):
            check_coverage(EXAMPLE, [(4, 0)])

    def test_code_level_wrapper(self):
        code = StairCode(EXAMPLE)
        assert code.check_coverage([(0, 0)])
        assert not code.check_coverage([(i, j) for i in range(4)
                                        for j in range(3)])


class TestMultipleConfigurations:
    @pytest.mark.parametrize("config", [
        StairConfig(n=6, r=4, m=1, e=(2,)),
        StairConfig(n=6, r=6, m=2, e=(1, 3)),
        StairConfig(n=5, r=3, m=1, e=(1, 1, 1)),
        StairConfig(n=9, r=5, m=3, e=(2, 2)),
        StairConfig(n=4, r=4, m=0, e=(1, 2)),
        StairConfig(n=5, r=4, m=1, e=(1, 1, 2, 2)),
    ], ids=lambda c: c.describe())
    def test_worst_case_pattern_recovers(self, config):
        code, stripe, _ = make_code_and_stripe(config, seed=20)
        # Worst case: the m rightmost chunks fail entirely, and the stair
        # chunks additionally lose e_l sectors each at the bottom.
        damaged = stripe.erase_chunks(range(config.n - config.m, config.n))
        losses = []
        for l, col in enumerate(code.layout.stair_columns):
            losses.extend((config.r - 1 - h, col) for h in range(config.e[l]))
        damaged = damaged.erase(losses)
        assert code.decode(damaged) == stripe
