"""Tests for the StairStripe container."""

import numpy as np
import pytest

from repro.core import StairCode, StairConfig
from repro.core.layout import StripeLayout
from repro.core.stripe_data import StairStripe

CONFIG = StairConfig(n=8, r=4, m=2, e=(1, 1, 2))


@pytest.fixture
def stripe():
    code = StairCode(CONFIG)
    rng = np.random.default_rng(0)
    data = [rng.integers(0, 256, 16, dtype=np.uint8)
            for _ in range(CONFIG.num_data_symbols)]
    return code.encode(data)


class TestBasics:
    def test_geometry_validation(self):
        layout = StripeLayout(CONFIG)
        with pytest.raises(ValueError):
            StairStripe(CONFIG, layout, [[None] * 8] * 3)
        with pytest.raises(ValueError):
            StairStripe(CONFIG, layout, [[None] * 7] * 4)

    def test_get_set(self, stripe):
        symbol = np.arange(16, dtype=np.uint8)
        stripe.set(0, 0, symbol)
        assert np.array_equal(stripe.get(0, 0), symbol)
        stripe.set(0, 0, None)
        assert stripe.get(0, 0) is None

    def test_symbol_size(self, stripe):
        assert stripe.symbol_size == 16

    def test_symbol_size_requires_survivors(self):
        layout = StripeLayout(CONFIG)
        empty = StairStripe(CONFIG, layout, [[None] * 8 for _ in range(4)])
        with pytest.raises(ValueError):
            empty.symbol_size

    def test_copy_is_deep(self, stripe):
        clone = stripe.copy()
        clone.get(0, 0)[0] ^= 0xFF
        assert not np.array_equal(clone.get(0, 0), stripe.get(0, 0))

    def test_equality(self, stripe):
        assert stripe == stripe.copy()
        other = stripe.copy()
        other.set(1, 1, np.zeros(16, dtype=np.uint8))
        assert stripe != other
        assert stripe != object()  # NotImplemented path falls back to False

    def test_chunk_view(self, stripe):
        chunk = stripe.chunk(3)
        assert len(chunk) == 4
        assert np.array_equal(chunk[0], stripe.get(0, 3))


class TestRoleViews:
    def test_data_symbols_count(self, stripe):
        assert len(stripe.data_symbols()) == CONFIG.num_data_symbols

    def test_parity_symbols_count(self, stripe):
        assert len(stripe.parity_symbols()) == CONFIG.num_parity_symbols

    def test_views_raise_when_lost(self, stripe):
        damaged = stripe.erase([(0, 0)])
        with pytest.raises(ValueError):
            damaged.data_symbols()
        damaged = stripe.erase([(0, 7)])
        with pytest.raises(ValueError):
            damaged.parity_symbols()


class TestFailureInjection:
    def test_erase_returns_new_stripe(self, stripe):
        damaged = stripe.erase([(0, 0), (1, 1)])
        assert stripe.get(0, 0) is not None
        assert damaged.get(0, 0) is None
        assert damaged.lost_positions() == [(0, 0), (1, 1)]

    def test_erase_chunks(self, stripe):
        damaged = stripe.erase_chunks([6, 7])
        assert len(damaged.lost_positions()) == 8
        assert all(col in (6, 7) for _, col in damaged.lost_positions())

    def test_to_bytes_roundtrip_length(self, stripe):
        blob = stripe.to_bytes()
        assert len(blob) == CONFIG.total_symbols * 16

    def test_to_bytes_rejects_damaged(self, stripe):
        with pytest.raises(ValueError):
            stripe.erase([(2, 2)]).to_bytes()
