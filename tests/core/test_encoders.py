"""Tests for the three STAIR encoding methods and the byte-level API."""

import numpy as np
import pytest

from repro.core import EncodingInputError, StairCode, StairConfig
from repro.core.stripe_data import StairStripe

CONFIGS = [
    StairConfig(n=8, r=4, m=2, e=(1, 1, 2)),   # the paper's running example
    StairConfig(n=6, r=4, m=1, e=(2,)),
    StairConfig(n=6, r=6, m=2, e=(1, 3)),
    StairConfig(n=5, r=3, m=1, e=(1, 1, 1)),
    StairConfig(n=9, r=5, m=3, e=(2, 2)),
    StairConfig(n=6, r=4, m=2, e=()),           # no sector-failure parity
    StairConfig(n=4, r=4, m=0, e=(1, 2)),       # no device-failure parity
]


def make_data(config, symbol_size=24, seed=11):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, 256, symbol_size, dtype=np.uint8)
            for _ in range(config.num_data_symbols)]


@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.describe())
class TestMethodEquivalence:
    def test_all_methods_produce_identical_stripes(self, config):
        code = StairCode(config)
        data = make_data(config)
        stripes = [code.encode(data, method=method)
                   for method in ("upstairs", "downstairs", "standard")]
        assert stripes[0] == stripes[1] == stripes[2]

    def test_encoding_is_systematic(self, config):
        code = StairCode(config)
        data = make_data(config, seed=13)
        stripe = code.encode(data)
        for index, symbol in enumerate(stripe.data_symbols()):
            assert np.array_equal(symbol, data[index])

    def test_auto_method_matches_explicit(self, config):
        code = StairCode(config)
        data = make_data(config, seed=17)
        assert code.encode(data) == code.encode(data, method="upstairs")


class TestEncodingValidation:
    def test_wrong_symbol_count(self):
        code = StairCode(CONFIGS[0])
        data = make_data(CONFIGS[0])[:-1]
        with pytest.raises(EncodingInputError):
            code.encode(data)

    def test_inconsistent_symbol_sizes(self):
        code = StairCode(CONFIGS[0])
        data = make_data(CONFIGS[0])
        data[3] = data[3][:8]
        with pytest.raises(EncodingInputError):
            code.encode(data)

    def test_unknown_method(self):
        code = StairCode(CONFIGS[0])
        with pytest.raises(EncodingInputError):
            code.encode(make_data(CONFIGS[0]), method="sideways")

    def test_unknown_default_method_rejected(self):
        with pytest.raises(Exception):
            StairCode(CONFIGS[0], method="sideways")

    def test_unknown_mds_construction_rejected(self):
        with pytest.raises(Exception):
            StairCode(CONFIGS[0], mds_construction="magic")

    def test_vandermonde_construction_works(self):
        config = CONFIGS[0]
        code = StairCode(config, mds_construction="vandermonde")
        data = make_data(config)
        stripe = code.encode(data)
        repaired = code.decode(stripe.erase_chunks([6, 7]))
        assert repaired == stripe


class TestByteInterface:
    def test_encode_decode_bytes_roundtrip(self):
        config = CONFIGS[0]
        code = StairCode(config)
        payload = bytes(range(256)) * 3
        stripe = code.encode_bytes(payload, symbol_size=64)
        damaged = stripe.erase_chunks([0]).erase([(3, 3), (1, 5)])
        assert code.decode_bytes(damaged, length=len(payload)) == payload

    def test_payload_too_large(self):
        code = StairCode(CONFIGS[0])
        with pytest.raises(EncodingInputError):
            code.encode_bytes(b"x" * (code.config.num_data_symbols * 8 + 1),
                              symbol_size=8)

    def test_symbol_size_must_be_positive(self):
        code = StairCode(CONFIGS[0])
        with pytest.raises(EncodingInputError):
            code.encode_bytes(b"hello", symbol_size=0)

    def test_payload_is_zero_padded(self):
        code = StairCode(CONFIGS[0])
        stripe = code.encode_bytes(b"abc", symbol_size=16)
        blob = code.decode_bytes(stripe)
        assert blob.startswith(b"abc")
        assert set(blob[3:]) == {0}


class TestBaselineConstruction:
    """The §3 construction with outside global parity symbols."""

    def test_baseline_roundtrip_with_failures(self):
        config = StairConfig(n=8, r=4, m=2, e=(1, 1, 2))
        code = StairCode(config)
        rng = np.random.default_rng(3)
        data = [rng.integers(0, 256, 16, dtype=np.uint8)
                for _ in range(config.r * config.data_chunks)]
        stripe, outside = code.encode_baseline(data)
        assert [len(group) for group in outside] == [1, 1, 2]

        damaged = stripe.erase_chunks([6, 7]).erase(
            [(3, 3), (3, 4), (2, 5), (3, 5)])
        repaired = code.decode_baseline(damaged, outside)
        assert repaired == stripe

    def test_baseline_data_capacity_is_larger(self):
        config = StairConfig(n=8, r=4, m=2, e=(1, 1, 2))
        code = StairCode(config)
        with pytest.raises(EncodingInputError):
            code.encode_baseline(make_data(config))  # too few symbols

    def test_baseline_row_parities_match_inside_construction(self):
        """With zeroed stair cells, inside and outside constructions agree on
        the row parity chunks of the rows above the stair."""
        config = StairConfig(n=8, r=4, m=2, e=(1, 1, 2))
        code = StairCode(config)
        rng = np.random.default_rng(5)
        inside_data = make_data(config, seed=5)
        inside = code.encode(inside_data)

        baseline_data = []
        for i in range(config.r):
            for j in range(config.data_chunks):
                if code.layout.is_global_parity(i, j):
                    baseline_data.append(inside.get(i, j))
                else:
                    baseline_data.append(
                        inside_data[code.layout.data_index(i, j)])
        baseline, _ = code.encode_baseline(baseline_data)
        for i in range(config.r):
            for j in code.layout.parity_columns:
                assert np.array_equal(baseline.get(i, j), inside.get(i, j))
