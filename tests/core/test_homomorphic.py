"""Tests of the homomorphic property (Theorem A.1).

Encoding each chunk of a stripe in the column direction must preserve the
row-code structure: every augmented row of the canonical stripe is itself
a codeword of C_row.  This is what makes upstairs decoding (and hence the
fault-tolerance proof) work.
"""

import numpy as np
import pytest

from repro.core import StairCode, StairConfig
from repro.gf.regions import RegionOps

CONFIGS = [
    StairConfig(n=8, r=4, m=2, e=(1, 1, 2)),
    StairConfig(n=6, r=4, m=1, e=(2,)),
    StairConfig(n=6, r=6, m=2, e=(1, 3)),
    StairConfig(n=5, r=3, m=1, e=(1, 1, 1)),
]


def build_canonical_rows(code, stripe, outside_globals=None):
    """Column-encode every real chunk and return the augmented rows."""
    config = code.config
    ops = RegionOps(code.field)
    e_max = config.e_max
    augmented = [[None] * (config.n + config.m_prime) for _ in range(e_max)]

    # Virtual parity symbols of the data and row parity chunks.
    for col in range(config.n):
        column = [stripe.get(i, col) for i in range(config.r)]
        parities = code.ccol.encode(column, ops)
        for h in range(e_max):
            augmented[h][col] = parities[h]

    # Outside global parities: zero for the inside construction.
    for l, e_l in enumerate(config.e):
        for h in range(e_max):
            if h < e_l:
                if outside_globals is None:
                    augmented[h][config.n + l] = ops.zeros(len(stripe.get(0, 0)))
                else:
                    augmented[h][config.n + l] = outside_globals[l][h]
    return augmented


def row_is_crow_codeword(code, row_symbols):
    """Check that the known symbols of a row are consistent with C_row."""
    known = [i for i, sym in enumerate(row_symbols) if sym is not None]
    data_positions = list(range(code.config.data_chunks))
    # Reconstruct the full codeword from the first n-m known positions and
    # compare every other known symbol.
    basis = known[: code.config.data_chunks]
    coeffs = code.crow.decode_matrix(basis, [i for i in known if i not in basis])
    ops = RegionOps(code.field)
    basis_symbols = [row_symbols[i] for i in basis]
    for row, target in zip(coeffs, [i for i in known if i not in basis]):
        predicted = ops.linear_combination(row, basis_symbols)
        if not np.array_equal(predicted, row_symbols[target]):
            return False
    assert len(data_positions) <= len(known)
    return True


@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.describe())
def test_augmented_rows_are_crow_codewords(config):
    code = StairCode(config)
    rng = np.random.default_rng(0)
    data = [rng.integers(0, 256, 16, dtype=np.uint8)
            for _ in range(config.num_data_symbols)]
    stripe = code.encode(data)
    augmented = build_canonical_rows(code, stripe)
    for row_symbols in augmented:
        assert row_is_crow_codeword(code, row_symbols)


@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.describe())
def test_augmented_rows_with_outside_globals(config):
    """The homomorphic property also holds for the §3 baseline construction."""
    code = StairCode(config)
    rng = np.random.default_rng(1)
    data = [rng.integers(0, 256, 16, dtype=np.uint8)
            for _ in range(config.r * config.data_chunks)]
    stripe, outside = code.encode_baseline(data)
    augmented = build_canonical_rows(code, stripe, outside_globals=outside)
    for row_symbols in augmented:
        assert row_is_crow_codeword(code, row_symbols)


def test_stored_rows_are_crow_codewords():
    """Each stored row extended with intermediate parities is a C_row codeword:
    equivalently, the stored row parities match a direct C_row encode."""
    config = CONFIGS[0]
    code = StairCode(config)
    rng = np.random.default_rng(2)
    data = [rng.integers(0, 256, 16, dtype=np.uint8)
            for _ in range(config.num_data_symbols)]
    stripe = code.encode(data)
    ops = RegionOps(code.field)
    for i in range(config.r):
        row_inputs = [stripe.get(i, j) for j in range(config.data_chunks)]
        parities = code.crow.encode(row_inputs, ops)
        for k in range(config.m):
            assert np.array_equal(parities[k],
                                  stripe.get(i, config.data_chunks + k))
