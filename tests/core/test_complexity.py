"""Tests for the Mult_XOR complexity model (Eq. 5, Eq. 6, §5.3)."""

import numpy as np
import pytest

from repro.analysis.encoding_cost import measured_costs
from repro.core import (
    StairCode,
    StairConfig,
    choose_encoding_method,
    downstairs_mult_xors,
    encoding_costs,
    standard_mult_xors,
    upstairs_mult_xors,
)

EXAMPLE = StairConfig(n=8, r=4, m=2, e=(1, 1, 2))


class TestAnalyticalCounts:
    def test_example_equation_5(self):
        # (n-m)(m*r + s) + r(n-m)e_max = 6*(8+4) + 4*6*2 = 120.
        assert upstairs_mult_xors(EXAMPLE) == 120

    def test_example_equation_6(self):
        # (n-m)(m+m')r + r*s = 6*5*4 + 4*4 = 136.
        assert downstairs_mult_xors(EXAMPLE) == 136

    def test_standard_upper_bound_without_generator(self):
        assert standard_mult_xors(EXAMPLE) == EXAMPLE.num_parity_symbols * \
            EXAMPLE.num_data_symbols

    def test_standard_exact_with_generator(self):
        code = StairCode(EXAMPLE)
        exact = standard_mult_xors(EXAMPLE, code.parity_coefficients())
        assert 0 < exact <= standard_mult_xors(EXAMPLE)

    def test_costs_dataclass(self):
        costs = encoding_costs(EXAMPLE)
        assert costs.upstairs == 120 and costs.downstairs == 136
        assert costs.best_method() == "upstairs"

    @pytest.mark.parametrize("e,expected_winner", [
        ((4,), "downstairs"),       # m' = 1: downstairs wins
        ((1, 1, 1, 1), "upstairs"),  # m' = 4: upstairs wins
    ])
    def test_m_prime_determines_winner(self, e, expected_winner):
        config = StairConfig(n=8, r=16, m=2, e=e)
        costs = encoding_costs(config)
        winner = ("upstairs" if costs.upstairs <= costs.downstairs
                  else "downstairs")
        assert winner == expected_winner

    def test_choose_encoding_method_without_generator(self):
        assert choose_encoding_method(EXAMPLE) in ("upstairs", "downstairs")
        assert choose_encoding_method(
            StairConfig(n=8, r=16, m=2, e=(4,))) == "downstairs"

    def test_choose_encoding_method_with_generator(self):
        code = StairCode(EXAMPLE)
        method = choose_encoding_method(EXAMPLE, code.parity_coefficients())
        costs = encoding_costs(EXAMPLE, code.parity_coefficients())
        assert method == costs.best_method()


class TestMeasuredCounts:
    def test_measured_matches_equation_5_and_6_for_example(self):
        point = measured_costs(8, 4, 2, (1, 1, 2))
        assert point.upstairs == upstairs_mult_xors(EXAMPLE)
        assert point.downstairs == downstairs_mult_xors(EXAMPLE)

    def test_measured_standard_equals_nonzero_generator_entries(self):
        code = StairCode(EXAMPLE)
        point = measured_costs(8, 4, 2, (1, 1, 2))
        assert point.standard == int(
            np.count_nonzero(code.parity_coefficients()))

    @pytest.mark.parametrize("params", [
        (6, 4, 1, (2,)),
        (6, 6, 2, (1, 3)),
        (9, 5, 3, (2, 2)),
    ])
    def test_measured_close_to_analytic_for_other_configs(self, params):
        n, r, m, e = params
        config = StairConfig(n=n, r=r, m=m, e=e)
        point = measured_costs(n, r, m, e)
        # A decode coefficient can occasionally be zero, so the measured count
        # may be marginally below the analytical value, never above it.
        assert point.upstairs <= upstairs_mult_xors(config)
        assert point.upstairs >= 0.9 * upstairs_mult_xors(config)
        assert point.downstairs <= downstairs_mult_xors(config)
        assert point.downstairs >= 0.9 * downstairs_mult_xors(config)

    def test_code_level_wrapper(self):
        code = StairCode(EXAMPLE)
        costs = code.mult_xor_counts()
        assert costs.upstairs == 120
        assert costs.downstairs == 136
        assert costs.standard > 0
