"""Schedule tests: Tables 2 and 3 of the paper.

The paper walks through the exact sequence of C_row / C_col operations
that upstairs decoding (Table 2) and downstairs encoding (Table 3)
perform on the running example (n=8, r=4, m=2, e=(1,1,2)).  These tests
assert that our schedulers perform the same steps in the same order.
"""

import numpy as np
import pytest

from repro.core import StairCode, StairConfig
from repro.core.canonical import ScheduleStep

EXAMPLE = StairConfig(n=8, r=4, m=2, e=(1, 1, 2))


@pytest.fixture(scope="module")
def code_and_stripe():
    code = StairCode(EXAMPLE)
    rng = np.random.default_rng(0)
    data = [rng.integers(0, 256, 8, dtype=np.uint8)
            for _ in range(EXAMPLE.num_data_symbols)]
    return code, code.encode(data)


def test_upstairs_decoding_schedule_matches_table_2(code_and_stripe):
    code, stripe = code_and_stripe
    damaged = stripe.erase_chunks([6, 7]).erase([(3, 3), (3, 4), (2, 5), (3, 5)])
    code.decode(damaged, practical=False)
    steps = code.last_decode_schedule

    # Steps 1-3: good chunks 0-2 produce their virtual symbols d*_{0,j}, d*_{1,j}.
    assert steps[0] == ScheduleStep("col", 0, ((4, 0), (5, 0)))
    assert steps[1] == ScheduleStep("col", 1, ((4, 1), (5, 1)))
    assert steps[2] == ScheduleStep("col", 2, ((4, 2), (5, 2)))
    # Step 4: augmented row 0 (grid row 4) recovers d*_{0,3..5}.
    assert steps[3] == ScheduleStep("row", 4, ((4, 3), (4, 4), (4, 5)))
    # Steps 5-6: chunks 3 and 4 recover their lost symbol and next virtual.
    assert steps[4] == ScheduleStep("col", 3, ((3, 3), (5, 3)))
    assert steps[5] == ScheduleStep("col", 4, ((3, 4), (5, 4)))
    # Step 7: augmented row 1 (grid row 5) recovers d*_{1,5}.
    assert steps[6] == ScheduleStep("row", 5, ((5, 5),))
    # Step 8: chunk 5 recovers its two lost symbols.
    assert steps[7] == ScheduleStep("col", 5, ((2, 5), (3, 5)))
    # Steps 9-12: the failed chunks 6-7 are rebuilt row by row.
    for offset, row in enumerate(range(4)):
        assert steps[8 + offset] == ScheduleStep("row", row, ((row, 6), (row, 7)))
    assert len(steps) == 12


def test_upstairs_encoding_uses_the_same_schedule(code_and_stripe):
    code, _ = code_and_stripe
    rng = np.random.default_rng(1)
    data = [rng.integers(0, 256, 8, dtype=np.uint8)
            for _ in range(EXAMPLE.num_data_symbols)]
    code.encode(data, method="upstairs")
    steps = code._upstairs.last_schedule
    kinds = [(step.kind, step.index) for step in steps]
    assert kinds == [("col", 0), ("col", 1), ("col", 2), ("row", 4),
                     ("col", 3), ("col", 4), ("row", 5), ("col", 5),
                     ("row", 0), ("row", 1), ("row", 2), ("row", 3)]


def test_downstairs_encoding_schedule_matches_table_3(code_and_stripe):
    code, _ = code_and_stripe
    rng = np.random.default_rng(2)
    data = [rng.integers(0, 256, 8, dtype=np.uint8)
            for _ in range(EXAMPLE.num_data_symbols)]
    code.encode(data, method="downstairs")
    steps = code.last_downstairs_schedule

    # Step 1-2: rows 0 and 1 generate row parities and intermediate parities.
    assert steps[0] == ScheduleStep("row", 0, ((0, 6), (0, 7), (0, 8), (0, 9), (0, 10)))
    assert steps[1] == ScheduleStep("row", 1, ((1, 6), (1, 7), (1, 8), (1, 9), (1, 10)))
    # Step 3: intermediate chunk 2 (grid column 10) recovers p'_{2,2}, p'_{3,2}.
    assert steps[2] == ScheduleStep("col", 10, ((2, 10), (3, 10)))
    # Step 4: row 2 generates ĝ0,2 and its parities.
    assert steps[3] == ScheduleStep("row", 2, ((2, 5), (2, 6), (2, 7), (2, 8), (2, 9)))
    # Steps 5-6: intermediate chunks 1 and 0 (columns 9 and 8).
    assert steps[4] == ScheduleStep("col", 9, ((3, 9),))
    assert steps[5] == ScheduleStep("col", 8, ((3, 8),))
    # Step 7: row 3 generates the remaining global and row parities.
    assert steps[6] == ScheduleStep("row", 3, ((3, 3), (3, 4), (3, 5), (3, 6), (3, 7)))
    assert len(steps) == 7


def test_downstairs_outputs_per_row_equal_m_plus_m_prime(code_and_stripe):
    """Every C_row step of downstairs encoding produces m + m' symbols."""
    code, _ = code_and_stripe
    rng = np.random.default_rng(3)
    data = [rng.integers(0, 256, 8, dtype=np.uint8)
            for _ in range(EXAMPLE.num_data_symbols)]
    code.encode(data, method="downstairs")
    row_steps = [s for s in code.last_downstairs_schedule if s.kind == "row"]
    assert all(len(s.recovered) == EXAMPLE.m + EXAMPLE.m_prime for s in row_steps)
    col_steps = [s for s in code.last_downstairs_schedule if s.kind == "col"]
    assert sum(len(s.recovered) for s in col_steps) == EXAMPLE.s
