"""Unit tests for StairConfig validation and derived quantities."""

import pytest

from repro.core import ConfigurationError, StairConfig, enumerate_e_vectors
from repro.gf.field import get_field


class TestValidation:
    def test_example_configuration(self):
        cfg = StairConfig(n=8, r=4, m=2, e=(1, 1, 2))
        assert cfg.m_prime == 3
        assert cfg.s == 4
        assert cfg.e_max == 2
        assert cfg.data_chunks == 6
        assert cfg.num_data_symbols == 20
        assert cfg.num_parity_symbols == 12
        assert cfg.total_symbols == 32

    def test_e_is_sorted(self):
        cfg = StairConfig(n=8, r=4, m=1, e=(2, 1, 1))
        assert cfg.e == (1, 1, 2)

    def test_m_must_be_less_than_n(self):
        with pytest.raises(ConfigurationError):
            StairConfig(n=4, r=4, m=4, e=(1,))

    def test_negative_or_zero_entries_rejected(self):
        with pytest.raises(ConfigurationError):
            StairConfig(n=8, r=4, m=1, e=(0, 1))
        with pytest.raises(ConfigurationError):
            StairConfig(n=8, r=4, m=1, e=(-1,))

    def test_e_entry_larger_than_r_rejected(self):
        with pytest.raises(ConfigurationError):
            StairConfig(n=8, r=4, m=1, e=(5,))

    def test_too_many_chunks_with_sector_failures_rejected(self):
        with pytest.raises(ConfigurationError):
            StairConfig(n=4, r=4, m=2, e=(1, 1, 1))

    def test_n_and_r_minimums(self):
        with pytest.raises(ConfigurationError):
            StairConfig(n=1, r=4, m=0, e=(1,))
        with pytest.raises(ConfigurationError):
            StairConfig(n=4, r=0, m=1, e=())

    def test_code_without_any_parity_rejected(self):
        with pytest.raises(ConfigurationError):
            StairConfig(n=4, r=4, m=0, e=())

    def test_empty_e_with_parity_devices_allowed(self):
        cfg = StairConfig(n=6, r=4, m=2, e=())
        assert cfg.s == 0 and cfg.m_prime == 0 and cfg.e_max == 0

    def test_m_zero_with_sector_parity_allowed(self):
        cfg = StairConfig(n=4, r=4, m=0, e=(1, 1))
        assert cfg.num_parity_symbols == 2


class TestDerivedQuantities:
    def test_storage_efficiency_matches_equation_8(self):
        cfg = StairConfig(n=8, r=16, m=1, e=(1, 2))
        expected = (16 * 7 - 3) / (16 * 8)
        assert cfg.storage_efficiency == pytest.approx(expected)

    def test_word_size_defaults_to_8(self):
        assert StairConfig(n=8, r=4, m=2, e=(1, 1, 2)).word_size == 8
        assert StairConfig(n=32, r=32, m=3, e=(1, 1, 4)).word_size == 8

    def test_word_size_grows_for_wide_stripes(self):
        cfg = StairConfig(n=250, r=8, m=2, e=(1,) * 10)
        assert cfg.word_size == 16

    def test_field_matches_word_size(self):
        cfg = StairConfig(n=8, r=4, m=2, e=(1, 1, 2))
        assert cfg.field() is get_field(8)

    def test_describe_mentions_parameters(self):
        text = StairConfig(n=8, r=4, m=2, e=(1, 1, 2)).describe()
        assert "n=8" in text and "e=(1, 1, 2)" in text

    def test_special_case_predicates(self):
        assert StairConfig(n=8, r=4, m=2, e=(1,)).is_pmds_equivalent()
        assert StairConfig(n=8, r=4, m=2, e=(4,)).is_full_chunk_equivalent()
        assert StairConfig(n=6, r=4, m=2, e=(2, 2, 2, 2)).is_idr_equivalent()
        assert not StairConfig(n=8, r=4, m=2, e=(1, 2)).is_idr_equivalent()

    def test_configs_are_hashable_and_comparable(self):
        a = StairConfig(n=8, r=4, m=2, e=(2, 1, 1))
        b = StairConfig(n=8, r=4, m=2, e=(1, 1, 2))
        assert a == b
        assert hash(a) == hash(b)


class TestEnumerateEVectors:
    def test_partitions_of_four(self):
        vectors = set(enumerate_e_vectors(4))
        assert vectors == {(4,), (1, 3), (2, 2), (1, 1, 2), (1, 1, 1, 1)}

    def test_m_prime_cap(self):
        vectors = set(enumerate_e_vectors(4, m_prime_max=2))
        assert vectors == {(4,), (1, 3), (2, 2)}

    def test_e_max_cap(self):
        vectors = set(enumerate_e_vectors(4, e_max_cap=2))
        assert vectors == {(2, 2), (1, 1, 2), (1, 1, 1, 1)}

    def test_zero_budget(self):
        assert list(enumerate_e_vectors(0)) == [()]

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            list(enumerate_e_vectors(-1))

    def test_all_vectors_sum_to_s(self):
        for s in range(1, 8):
            for e in enumerate_e_vectors(s):
                assert sum(e) == s
                assert e == tuple(sorted(e))
