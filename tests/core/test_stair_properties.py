"""Property-based tests of STAIR fault tolerance (the §4.2 theorem).

Hypothesis draws random configurations (n, r, m, e) and random failure
patterns within the declared coverage; the decoder must always recover
the stripe exactly.  A complementary test checks that the three encoding
methods always agree, and that patterns just beyond coverage are
rejected rather than silently mis-decoded.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DecodingFailureError, StairCode, StairConfig

_CODE_CACHE: dict[StairConfig, StairCode] = {}


def get_code(config: StairConfig) -> StairCode:
    if config not in _CODE_CACHE:
        _CODE_CACHE[config] = StairCode(config)
    return _CODE_CACHE[config]


@st.composite
def stair_configurations(draw):
    n = draw(st.integers(min_value=4, max_value=9))
    r = draw(st.integers(min_value=2, max_value=6))
    m = draw(st.integers(min_value=0, max_value=min(3, n - 2)))
    m_prime = draw(st.integers(min_value=1, max_value=min(3, n - m)))
    e = tuple(sorted(draw(st.lists(st.integers(min_value=1, max_value=min(3, r)),
                                   min_size=m_prime, max_size=m_prime))))
    if m == 0 and not e:
        e = (1,)
    # Keep at least one data symbol in the stripe (required by StairConfig).
    while sum(e) >= r * (n - m) and len(e) > 1:
        e = e[:-1]
    if sum(e) >= r * (n - m):
        e = (1,)
    return StairConfig(n=n, r=r, m=m, e=e)


@st.composite
def covered_failure_pattern(draw, config):
    """A random failure pattern within the coverage defined by (m, e)."""
    columns = list(range(config.n))
    num_failed_devices = draw(st.integers(min_value=0, max_value=config.m))
    failed_devices = draw(st.permutations(columns)) [:num_failed_devices]
    remaining = [c for c in columns if c not in failed_devices]

    losses = [(i, j) for j in failed_devices for i in range(config.r)]
    num_sector_chunks = draw(st.integers(min_value=0,
                                         max_value=min(config.m_prime,
                                                       len(remaining))))
    sector_chunks = draw(st.permutations(remaining))[:num_sector_chunks]
    e_desc = sorted(config.e, reverse=True)
    for index, chunk in enumerate(sector_chunks):
        budget = e_desc[index]
        count = draw(st.integers(min_value=1, max_value=budget))
        rows = draw(st.permutations(range(config.r)))[:count]
        losses.extend((row, chunk) for row in rows)
    return losses


@given(stair_configurations(), st.data(), st.integers(min_value=0, max_value=2 ** 31))
@settings(max_examples=60, deadline=None)
def test_any_covered_failure_pattern_is_recovered(config, data_strategy, seed):
    code = get_code(config)
    rng = np.random.default_rng(seed)
    data = [rng.integers(0, 256, 8, dtype=np.uint8)
            for _ in range(config.num_data_symbols)]
    stripe = code.encode(data)
    losses = data_strategy.draw(covered_failure_pattern(config))
    assert code.check_coverage(losses)
    repaired = code.decode(stripe.erase(losses))
    assert repaired == stripe


@given(stair_configurations(), st.integers(min_value=0, max_value=2 ** 31))
@settings(max_examples=25, deadline=None)
def test_encoding_methods_always_agree(config, seed):
    code = get_code(config)
    rng = np.random.default_rng(seed)
    data = [rng.integers(0, 256, 8, dtype=np.uint8)
            for _ in range(config.num_data_symbols)]
    upstairs = code.encode(data, method="upstairs")
    downstairs = code.encode(data, method="downstairs")
    assert upstairs == downstairs


@given(stair_configurations(), st.integers(min_value=0, max_value=2 ** 31))
@settings(max_examples=25, deadline=None)
def test_patterns_beyond_coverage_raise_not_corrupt(config, seed):
    """One more failed chunk than the coverage allows must raise (never return
    a wrong stripe)."""
    code = get_code(config)
    rng = np.random.default_rng(seed)
    data = [rng.integers(0, 256, 8, dtype=np.uint8)
            for _ in range(config.num_data_symbols)]
    stripe = code.encode(data)
    # Fail m devices entirely plus one extra chunk entirely: recoverable only
    # when e covers a whole chunk (e_max == r), in which case skip.
    if config.e_max == config.r or config.m + 1 >= config.n:
        return
    damaged = stripe.erase_chunks(range(config.m + 1))
    try:
        repaired = code.decode(damaged)
    except DecodingFailureError:
        return
    # If it decoded anyway (pattern happened to be within coverage due to
    # absorbing the extra chunk into e), the result must be correct.
    assert repaired == stripe


@given(stair_configurations())
@settings(max_examples=40, deadline=None)
def test_storage_efficiency_bounds(config):
    efficiency = config.storage_efficiency
    assert 0.0 < efficiency < 1.0
    rs_efficiency = (config.n - config.m) / config.n
    assert efficiency <= rs_efficiency
