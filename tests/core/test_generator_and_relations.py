"""Tests for the generator-matrix derivation, Property 5.1 and update penalty."""

import numpy as np
import pytest

from repro.core import StairCode, StairConfig
from repro.core.generator import full_generator_matrix
from repro.core.parity_relations import (
    check_property_5_1,
    data_dependencies,
    parity_dependencies,
    update_penalty,
    update_penalty_per_symbol,
)

EXAMPLE = StairConfig(n=8, r=4, m=2, e=(1, 1, 2))


@pytest.fixture(scope="module")
def example_code():
    return StairCode(EXAMPLE)


class TestGeneratorMatrix:
    def test_shape(self, example_code):
        coeffs = example_code.parity_coefficients()
        assert coeffs.shape == (EXAMPLE.num_parity_symbols,
                                EXAMPLE.num_data_symbols)

    def test_cached(self, example_code):
        assert example_code.parity_coefficients() is \
            example_code.parity_coefficients()

    def test_standard_encoding_from_generator_matches_upstairs(self, example_code):
        rng = np.random.default_rng(0)
        data = [rng.integers(0, 256, 16, dtype=np.uint8)
                for _ in range(EXAMPLE.num_data_symbols)]
        assert example_code.encode(data, method="standard") == \
            example_code.encode(data, method="upstairs")

    def test_full_generator_has_identity_on_data_positions(self, example_code):
        gen = example_code.generator_matrix()
        layout = example_code.layout
        assert gen.shape == (EXAMPLE.num_data_symbols,
                             EXAMPLE.r * EXAMPLE.n)
        for index, (row, col) in enumerate(layout.data_positions()):
            column = gen[:, row * EXAMPLE.n + col]
            expected = np.zeros(EXAMPLE.num_data_symbols, dtype=np.int64)
            expected[index] = 1
            assert np.array_equal(column, expected)

    def test_full_generator_parity_columns_match_coefficients(self, example_code):
        gen = full_generator_matrix(EXAMPLE, example_code.layout,
                                    example_code.parity_coefficients())
        layout = example_code.layout
        for p, (row, col) in enumerate(layout.parity_positions()):
            assert np.array_equal(gen[:, row * EXAMPLE.n + col],
                                  example_code.parity_coefficients()[p])

    def test_generator_rows_nonzero(self, example_code):
        """Every parity symbol depends on at least one data symbol."""
        coeffs = example_code.parity_coefficients()
        assert all(np.count_nonzero(coeffs[p]) > 0
                   for p in range(coeffs.shape[0]))


class TestProperty51:
    @pytest.mark.parametrize("config", [
        EXAMPLE,
        StairConfig(n=6, r=4, m=1, e=(2,)),
        StairConfig(n=6, r=6, m=2, e=(1, 3)),
        StairConfig(n=16, r=8, m=2, e=(1, 1, 2)),
    ], ids=lambda c: c.describe())
    def test_no_violations(self, config):
        code = StairCode(config)
        violations = check_property_5_1(config, code.layout,
                                        code.parity_coefficients())
        assert violations == []

    def test_example_specific_relations_from_figure_8(self, example_code):
        """p_{1,1} (row 1 parity) depends only on row 1's data; ĝ_{0,1} does
        not depend on column 3 (same tread); p_{2,0} sees rows 0-2 only."""
        layout = example_code.layout
        deps = parity_dependencies(layout, example_code.parity_coefficients())
        data_pos = layout.data_positions()

        p11 = layout.parity_index(1, 7)
        assert {data_pos[d][0] for d in deps[p11]} == {1}

        g01 = layout.parity_index(3, 4)
        assert all(data_pos[d][1] != 3 for d in deps[g01])

        p20 = layout.parity_index(2, 6)
        assert {data_pos[d][0] for d in deps[p20]} <= {0, 1, 2}

    def test_global_parities_depend_on_many_symbols(self, example_code):
        """The bottom-right global parity is encoded from almost all data."""
        layout = example_code.layout
        deps = parity_dependencies(layout, example_code.parity_coefficients())
        bottom_right = layout.parity_index(3, 5)
        assert len(deps[bottom_right]) >= EXAMPLE.num_data_symbols * 0.75


class TestUpdatePenalty:
    def test_matches_dependency_counts(self, example_code):
        layout = example_code.layout
        coeffs = example_code.parity_coefficients()
        per_symbol = update_penalty_per_symbol(layout, coeffs)
        assert update_penalty(layout, coeffs) == pytest.approx(
            sum(per_symbol) / len(per_symbol))
        data_deps = data_dependencies(layout, coeffs)
        assert per_symbol == [len(deps) for deps in data_deps]

    def test_every_data_symbol_is_protected(self, example_code):
        """Each data symbol must contribute to at least m + 1 parities."""
        per_symbol = example_code.update_penalty_per_symbol()
        assert min(per_symbol) >= EXAMPLE.m + 1

    def test_penalty_increases_with_m(self):
        penalties = [StairCode(StairConfig(n=8, r=8, m=m, e=(1, 2))).update_penalty()
                     for m in (1, 2, 3)]
        assert penalties[0] < penalties[1] < penalties[2]

    def test_rs_lower_bound(self, example_code):
        assert example_code.update_penalty() > EXAMPLE.m
