"""Tests for the special cases of the coverage vector e discussed in §2."""

import numpy as np
import pytest

from repro.core import DecodingFailureError, StairCode, StairConfig


def encode_random(config, seed=0, symbol_size=16):
    code = StairCode(config)
    rng = np.random.default_rng(seed)
    data = [rng.integers(0, 256, symbol_size, dtype=np.uint8)
            for _ in range(config.num_data_symbols)]
    return code, code.encode(data)


class TestPMDSEquivalent:
    """e = (1): a new construction of a PMDS/SD code with s = 1."""

    def test_one_extra_sector_failure_anywhere(self):
        config = StairConfig(n=6, r=4, m=2, e=(1,))
        code, stripe = encode_random(config)
        for position in [(0, 0), (2, 3), (3, 5)]:
            damaged = stripe.erase_chunks([4, 5]).erase([position])
            assert code.decode(damaged) == stripe

    def test_two_sector_failures_in_one_chunk_fail(self):
        config = StairConfig(n=6, r=4, m=2, e=(1,))
        code, stripe = encode_random(config)
        damaged = stripe.erase_chunks([4, 5]).erase([(0, 0), (1, 0)])
        with pytest.raises(DecodingFailureError):
            code.decode(damaged)


class TestFullChunkEquivalent:
    """e = (r): same function as a systematic (n, n-m-1) code."""

    def test_tolerates_m_plus_one_device_failures(self):
        config = StairConfig(n=6, r=3, m=2, e=(3,))
        code, stripe = encode_random(config)
        # m = 2 device failures plus one further chunk entirely lost.
        damaged = stripe.erase_chunks([1, 4, 5])
        assert code.decode(damaged) == stripe

    def test_does_not_tolerate_m_plus_two(self):
        config = StairConfig(n=6, r=3, m=2, e=(3,))
        code, stripe = encode_random(config)
        with pytest.raises(DecodingFailureError):
            code.decode(stripe.erase_chunks([0, 1, 4, 5]))


class TestIDREquivalent:
    """e = (eps, ..., eps) with m' = n - m behaves like intra-device redundancy."""

    def test_every_data_chunk_may_lose_eps_sectors(self):
        config = StairConfig(n=5, r=4, m=1, e=(1, 1, 1, 1))
        code, stripe = encode_random(config)
        damaged = stripe.erase_chunks([4]).erase(
            [(0, 0), (3, 1), (2, 2), (1, 3)])
        assert code.decode(damaged) == stripe

    def test_space_advantage_over_idr(self):
        """§2: n=8, m=2, beta=4 -> IDR needs 24 redundant sectors, STAIR with
        e = (1, 4) only five."""
        from repro.analysis.space import compare_space
        comparison = compare_space(n=8, r=16, m=2, e=(1, 4))
        idr_extra = comparison.idr_redundant_sectors - 2 * 16
        stair_extra = comparison.stair_redundant_sectors - 2 * 16
        assert idr_extra == 24
        assert stair_extra == 5


class TestBurstCoverage:
    """§2: e = (1, 4) tolerates a burst of four sector failures plus one more."""

    def test_long_burst_plus_single_failure(self):
        config = StairConfig(n=8, r=8, m=2, e=(1, 4))
        code, stripe = encode_random(config)
        burst = [(3, 2), (4, 2), (5, 2), (6, 2)]  # four contiguous sectors
        damaged = stripe.erase_chunks([6, 7]).erase(burst + [(0, 4)])
        assert code.decode(damaged) == stripe

    def test_burst_longer_than_coverage_fails(self):
        config = StairConfig(n=8, r=8, m=2, e=(1, 4))
        code, stripe = encode_random(config)
        burst = [(i, 2) for i in range(5)]  # five contiguous sectors
        damaged = stripe.erase_chunks([6, 7]).erase(burst)
        with pytest.raises(DecodingFailureError):
            code.decode(damaged)


class TestDegenerateConfigurations:
    def test_pure_reed_solomon(self):
        """e = (): STAIR degenerates to device-level RS."""
        config = StairConfig(n=6, r=4, m=2, e=())
        code, stripe = encode_random(config)
        assert code.decode(stripe.erase_chunks([0, 3])) == stripe

    def test_sector_only_code(self):
        """m = 0: the code only protects against sector failures."""
        config = StairConfig(n=4, r=4, m=0, e=(1, 2))
        code, stripe = encode_random(config)
        damaged = stripe.erase([(0, 0), (2, 3), (3, 3)])
        assert code.decode(damaged) == stripe
        with pytest.raises(DecodingFailureError):
            code.decode(stripe.erase_chunks([0]))
