"""Unit tests for the stripe layout and canonical-stripe geometry."""

import pytest

from repro.core import StairConfig
from repro.core.layout import StripeLayout, SymbolKind


@pytest.fixture
def example():
    """The paper's running example: n=8, r=4, m=2, e=(1,1,2)."""
    config = StairConfig(n=8, r=4, m=2, e=(1, 1, 2))
    return config, StripeLayout(config)


class TestRoles:
    def test_column_partition(self, example):
        _, layout = example
        assert layout.data_columns == (0, 1, 2, 3, 4, 5)
        assert layout.parity_columns == (6, 7)
        assert layout.stair_columns == (3, 4, 5)

    def test_global_parity_positions_match_figure_5(self, example):
        _, layout = example
        positions = {(p.row, p.col): (p.l, p.h)
                     for p in layout.global_parity_positions()}
        # ĝ0,0 at (3,3), ĝ0,1 at (3,4), ĝ0,2 at (2,5), ĝ1,2 at (3,5).
        assert positions == {(3, 3): (0, 0), (3, 4): (1, 0),
                             (2, 5): (2, 0), (3, 5): (2, 1)}

    def test_kind_classification(self, example):
        _, layout = example
        assert layout.kind(0, 0) is SymbolKind.DATA
        assert layout.kind(3, 3) is SymbolKind.GLOBAL_PARITY
        assert layout.kind(1, 6) is SymbolKind.ROW_PARITY
        assert layout.is_data(2, 2)
        assert layout.is_global_parity(2, 5)
        assert layout.is_row_parity(0, 7)

    def test_kind_out_of_bounds(self, example):
        _, layout = example
        with pytest.raises(IndexError):
            layout.kind(4, 0)
        with pytest.raises(IndexError):
            layout.kind(0, 8)

    def test_global_parity_at(self, example):
        _, layout = example
        assert layout.global_parity_at(3, 5).h == 1
        assert layout.global_parity_at(0, 0) is None


class TestLinearIndexing:
    def test_counts(self, example):
        config, layout = example
        assert layout.num_data_symbols == config.num_data_symbols == 20
        assert layout.num_parity_symbols == config.num_parity_symbols == 12

    def test_data_index_roundtrip(self, example):
        _, layout = example
        for index, position in enumerate(layout.data_positions()):
            assert layout.data_index(*position) == index
            assert layout.data_position(index) == position

    def test_parity_index_roundtrip(self, example):
        _, layout = example
        for index, position in enumerate(layout.parity_positions()):
            assert layout.parity_index(*position) == index
            assert layout.parity_position(index) == position

    def test_parity_order_globals_first(self, example):
        _, layout = example
        first_four = layout.parity_positions()[:4]
        assert first_four == ((3, 3), (3, 4), (2, 5), (3, 5))

    def test_data_positions_skip_global_cells(self, example):
        _, layout = example
        data_cells = set(layout.data_positions())
        assert (3, 3) not in data_cells
        assert (2, 5) not in data_cells
        assert (0, 0) in data_cells

    def test_wrong_role_lookup_raises(self, example):
        _, layout = example
        with pytest.raises(ValueError):
            layout.data_index(3, 3)
        with pytest.raises(ValueError):
            layout.parity_index(0, 0)


class TestCanonicalGeometry:
    def test_grid_dimensions(self, example):
        _, layout = example
        assert layout.grid_rows == 6   # r + e_max = 4 + 2
        assert layout.grid_cols == 11  # n + m' = 8 + 3

    def test_cell_classification(self, example):
        _, layout = example
        assert layout.is_stored_cell(3, 7)
        assert not layout.is_stored_cell(4, 0)
        assert not layout.is_stored_cell(0, 8)
        assert layout.is_augmented_row(4)
        assert not layout.is_augmented_row(3)
        assert layout.is_intermediate_column(8)
        assert not layout.is_intermediate_column(7)

    def test_outside_global_cells_match_figure_3(self, example):
        _, layout = example
        cells = list(layout.outside_global_cells())
        # g0,0 at (4,8), g0,1 at (4,9), g0,2 at (4,10), g1,2 at (5,10).
        assert [(row, col) for row, col, _, _ in cells] == [
            (4, 8), (4, 9), (4, 10), (5, 10)]

    def test_chunk_and_row_cells(self, example):
        _, layout = example
        assert layout.chunk_cells(2) == [(0, 2), (1, 2), (2, 2), (3, 2)]
        assert layout.row_cells(1) == [(1, j) for j in range(8)]


class TestDegenerateLayouts:
    def test_no_global_parities(self):
        config = StairConfig(n=6, r=4, m=2, e=())
        layout = StripeLayout(config)
        assert layout.global_parity_positions() == ()
        assert layout.num_data_symbols == 16
        assert layout.grid_rows == 4 and layout.grid_cols == 6

    def test_full_chunk_of_global_parities(self):
        config = StairConfig(n=5, r=3, m=1, e=(3,))
        layout = StripeLayout(config)
        rows = [p.row for p in layout.global_parity_positions()]
        cols = {p.col for p in layout.global_parity_positions()}
        assert rows == [0, 1, 2] and cols == {3}

    def test_stair_spans_all_data_chunks(self):
        config = StairConfig(n=5, r=4, m=1, e=(1, 1, 2, 2))
        layout = StripeLayout(config)
        assert layout.stair_columns == (0, 1, 2, 3)
        assert layout.num_data_symbols == 4 * 4 - 6
