"""Tests for the IDR baseline, the STAIR adapter and the code registry."""

import numpy as np
import pytest

from repro.codes import (
    IDRScheme,
    ReedSolomonStripeCode,
    StairStripeCode,
    available_codes,
    build_code,
    register_code,
)
from repro.core.exceptions import DecodingFailureError, EncodingInputError


def random_data(code, size=16, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, 256, size, dtype=np.uint8)
            for _ in range(code.num_data_symbols)]


class TestIDRScheme:
    def test_geometry(self):
        idr = IDRScheme(n=6, r=4, m=1, epsilon=1)
        assert idr.num_data_symbols == 15
        assert idr.redundant_sectors() == 1 * 5 + 1 * 4
        assert len(idr.data_positions()) == 15

    def test_parameter_validation(self):
        with pytest.raises(EncodingInputError):
            IDRScheme(n=6, r=4, m=0, epsilon=1)
        with pytest.raises(EncodingInputError):
            IDRScheme(n=6, r=4, m=1, epsilon=4)

    def test_encode_systematic(self):
        idr = IDRScheme(n=6, r=4, m=1, epsilon=1)
        data = random_data(idr)
        grid = idr.encode(data)
        for symbol, original in zip(idr.extract_data(grid), data):
            assert np.array_equal(symbol, original)

    def test_recovers_device_plus_per_chunk_sector_failures(self):
        idr = IDRScheme(n=6, r=4, m=1, epsilon=1)
        grid = idr.encode(random_data(idr, seed=1))
        damaged = [[None if j == 5 else grid[i][j] for j in range(6)]
                   for i in range(4)]
        damaged[0][0] = None   # one sector failure per data chunk is covered
        damaged[3][2] = None
        repaired = idr.decode(damaged)
        assert all(np.array_equal(repaired[i][j], grid[i][j])
                   for i in range(4) for j in range(6))

    def test_two_failures_in_one_chunk_with_device_failure_fails(self):
        idr = IDRScheme(n=6, r=4, m=1, epsilon=1)
        grid = idr.encode(random_data(idr, seed=2))
        damaged = [[None if j == 5 else grid[i][j] for j in range(6)]
                   for i in range(4)]
        damaged[0][0] = None
        damaged[1][0] = None
        with pytest.raises(DecodingFailureError):
            idr.decode(damaged)

    def test_wrong_data_count(self):
        idr = IDRScheme(n=6, r=4, m=1, epsilon=1)
        with pytest.raises(EncodingInputError):
            idr.encode(random_data(idr)[:-1])


class TestStairAdapter:
    def test_roundtrip_through_generic_interface(self):
        code = StairStripeCode(n=8, r=4, m=2, e=(1, 1, 2))
        data = random_data(code, seed=3)
        grid = code.encode(data)
        damaged = [[None if j in (6, 7) else grid[i][j] for j in range(8)]
                   for i in range(4)]
        repaired = code.decode(damaged)
        assert all(np.array_equal(repaired[i][j], grid[i][j])
                   for i in range(4) for j in range(8))

    def test_exposes_config_quantities(self):
        code = StairStripeCode(n=8, r=4, m=2, e=(1, 1, 2))
        assert code.n == 8 and code.r == 4
        assert code.num_data_symbols == 20
        assert code.update_penalty() > 2
        assert code.field.w == 8
        assert code.tolerates([(0, 0)])

    def test_requires_parameters(self):
        with pytest.raises(ValueError):
            StairStripeCode()

    def test_describe_mentions_family(self):
        assert "STAIR" in StairStripeCode(n=8, r=4, m=2, e=(1,)).describe()


class TestRegistry:
    def test_available_codes(self):
        names = available_codes()
        for expected in ("stair", "rs", "sd", "idr", "raid5", "raid6"):
            assert expected in names

    def test_build_each_family(self):
        assert build_code("stair", n=8, r=4, m=2, e=(1, 1, 2)).name == "STAIR"
        assert build_code("rs", n=8, r=4, m=2).name == "RS"
        assert build_code("sd", n=8, r=4, m=2, s=2).name == "SD"
        assert build_code("idr", n=8, r=4, m=2, epsilon=1).name == "IDR"
        assert build_code("raid5", n=5, r=4).name == "RAID-5"
        assert build_code("raid6", n=6, r=4).name == "RAID-6"

    def test_unknown_family(self):
        with pytest.raises(ValueError):
            build_code("fountain", n=8, r=4)

    def test_register_custom_family(self):
        register_code("my-rs", ReedSolomonStripeCode)
        assert build_code("my-rs", n=6, r=4, m=1).name == "RS"
