"""Tests for the device-level Reed-Solomon baseline and RAID wrappers."""

import numpy as np
import pytest

from repro.codes import RAID5Code, RAID6Code, ReedSolomonStripeCode
from repro.core.exceptions import DecodingFailureError, EncodingInputError


def random_data(code, size=16, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, 256, size, dtype=np.uint8)
            for _ in range(code.num_data_symbols)]


class TestReedSolomonStripe:
    def test_geometry(self):
        code = ReedSolomonStripeCode(n=8, r=4, m=2)
        assert code.n == 8 and code.r == 4
        assert code.num_data_symbols == 24
        assert code.num_parity_symbols == 8
        assert code.storage_efficiency == pytest.approx(0.75)
        assert len(code.data_positions()) == 24

    def test_parameter_validation(self):
        with pytest.raises(EncodingInputError):
            ReedSolomonStripeCode(n=4, r=4, m=0)
        with pytest.raises(EncodingInputError):
            ReedSolomonStripeCode(n=4, r=0, m=1)
        with pytest.raises(EncodingInputError):
            ReedSolomonStripeCode(n=4, r=4, m=4)

    def test_encode_shape_and_systematic(self):
        code = ReedSolomonStripeCode(n=6, r=3, m=2)
        data = random_data(code)
        grid = code.encode(data)
        assert len(grid) == 3 and len(grid[0]) == 6
        assert all(np.array_equal(sym, data[i])
                   for i, sym in enumerate(code.extract_data(grid)))

    def test_wrong_data_count(self):
        code = ReedSolomonStripeCode(n=6, r=3, m=2)
        with pytest.raises(EncodingInputError):
            code.encode(random_data(code)[:-1])

    def test_device_failures_recovered(self):
        code = ReedSolomonStripeCode(n=6, r=3, m=2)
        data = random_data(code, seed=1)
        grid = code.encode(data)
        damaged = [[None if j in (0, 4) else grid[i][j] for j in range(6)]
                   for i in range(3)]
        repaired = code.decode(damaged)
        assert all(np.array_equal(repaired[i][j], grid[i][j])
                   for i in range(3) for j in range(6))

    def test_sector_failures_beyond_m_per_row_fail(self):
        code = ReedSolomonStripeCode(n=6, r=3, m=2)
        grid = code.encode(random_data(code, seed=2))
        damaged = [list(row) for row in grid]
        damaged[1][0] = damaged[1][1] = damaged[1][2] = None
        with pytest.raises(DecodingFailureError):
            code.decode(damaged)

    def test_tolerates_predicate(self):
        code = ReedSolomonStripeCode(n=6, r=3, m=2)
        assert code.tolerates([(0, 0), (0, 1), (1, 3)])
        assert not code.tolerates([(0, 0), (0, 1), (0, 2)])

    def test_update_penalty_is_m(self):
        assert ReedSolomonStripeCode(n=8, r=4, m=3).update_penalty() == 3.0

    def test_counter_accumulates(self):
        code = ReedSolomonStripeCode(n=6, r=3, m=2)
        code.encode(random_data(code, seed=3))
        assert code.counter.total() > 0


class TestRAIDWrappers:
    def test_raid5_is_single_parity(self):
        code = RAID5Code(n=5, r=4)
        assert code.m == 1 and code.name == "RAID-5"
        grid = code.encode(random_data(code, seed=4))
        damaged = [[None if j == 2 else grid[i][j] for j in range(5)]
                   for i in range(4)]
        repaired = code.decode(damaged)
        assert np.array_equal(repaired[0][2], grid[0][2])

    def test_raid6_is_double_parity(self):
        code = RAID6Code(n=6, r=2)
        assert code.m == 2 and code.name == "RAID-6"
        assert code.num_data_symbols == 8
