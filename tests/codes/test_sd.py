"""Tests for the SD-code baseline."""

import numpy as np
import pytest

from repro.codes import SDCode, SDConstructionError
from repro.core.exceptions import DecodingFailureError, EncodingInputError
from repro.gf.field import get_field


def random_data(code, size=16, seed=0):
    rng = np.random.default_rng(seed)
    high = code.field.order
    return [rng.integers(0, high, size, dtype=code.field.element_dtype)
            for _ in range(code.num_data_symbols)]


class TestLayout:
    def test_parity_positions(self):
        code = SDCode(n=6, r=4, m=1, s=2)
        positions = code.parity_positions()
        # One parity device (column 5) plus two sectors in the last row.
        assert [(i, 5) for i in range(4)] == positions[:4]
        assert positions[4:] == [(3, 3), (3, 4)]
        assert code.num_data_symbols == 6 * 4 - 6

    def test_parameter_validation(self):
        with pytest.raises(EncodingInputError):
            SDCode(n=4, r=4, m=4, s=1)
        with pytest.raises(EncodingInputError):
            SDCode(n=4, r=4, m=1, s=4)   # more sectors than data devices
        with pytest.raises(EncodingInputError):
            SDCode(n=4, r=0, m=1, s=1)

    def test_word_size_selection(self):
        assert SDCode(n=8, r=8, m=1, s=1).field is get_field(8)
        assert SDCode(n=32, r=16, m=1, s=1).field is get_field(16)

    def test_global_rows_shape_validated(self):
        with pytest.raises(EncodingInputError):
            SDCode(n=6, r=4, m=1, s=2, global_rows=np.zeros((1, 24)))


class TestEncodeDecode:
    def test_encode_is_systematic(self):
        code = SDCode(n=6, r=4, m=1, s=2)
        data = random_data(code)
        grid = code.encode(data)
        for symbol, original in zip(code.extract_data(grid), data):
            assert np.array_equal(symbol, original)

    def test_wrong_data_count(self):
        code = SDCode(n=6, r=4, m=1, s=2)
        with pytest.raises(EncodingInputError):
            code.encode(random_data(code)[:-1])

    def test_parity_check_equations_hold(self):
        """Every check equation evaluates to zero on an encoded stripe."""
        code = SDCode(n=6, r=4, m=1, s=2)
        grid = code.encode(random_data(code, seed=1))
        field = code.field
        h = code._check_matrix
        for eq in range(h.shape[0]):
            acc = np.zeros(16, dtype=np.uint8)
            for i in range(4):
                for j in range(6):
                    c = int(h[eq, i * 6 + j])
                    if c:
                        acc ^= field.mul_vector(c, grid[i][j])
            assert not acc.any()

    def test_device_plus_sector_failures_recovered(self):
        code = SDCode(n=6, r=4, m=1, s=2)
        data = random_data(code, seed=2)
        grid = code.encode(data)
        damaged = [[None if j == 1 else grid[i][j] for j in range(6)]
                   for i in range(4)]
        damaged[0][0] = None
        damaged[2][4] = None
        repaired = code.decode(damaged)
        assert all(np.array_equal(repaired[i][j], grid[i][j])
                   for i in range(4) for j in range(6))

    def test_decode_with_no_losses(self):
        code = SDCode(n=6, r=4, m=1, s=1)
        grid = code.encode(random_data(code, seed=3))
        repaired = code.decode([list(row) for row in grid])
        assert all(np.array_equal(repaired[i][j], grid[i][j])
                   for i in range(4) for j in range(6))

    def test_too_many_losses_raise(self):
        code = SDCode(n=6, r=4, m=1, s=1)
        grid = code.encode(random_data(code, seed=4))
        damaged = [[None if j in (0, 1) else grid[i][j] for j in range(6)]
                   for i in range(4)]
        with pytest.raises(DecodingFailureError):
            code.decode(damaged)

    def test_uncovered_pattern_raises(self):
        code = SDCode(n=6, r=4, m=1, s=1)
        grid = code.encode(random_data(code, seed=5))
        damaged = [list(row) for row in grid]
        # Three losses in a single row: only the row's own check equation and
        # the one global equation involve them, so no SD code can solve it.
        damaged[0][0] = None
        damaged[0][1] = None
        damaged[0][2] = None
        with pytest.raises(DecodingFailureError):
            code.decode(damaged)


class TestSDProperty:
    def test_verified_construction_small(self):
        code = SDCode.construct(6, 4, 1, 1, max_patterns=400)
        assert code.verify_sd_property(max_patterns=400)

    def test_verified_construction_s2(self):
        code = SDCode.construct(6, 4, 1, 2, max_patterns=400)
        assert code.verify_sd_property(max_patterns=200)

    def test_tolerates_predicate(self):
        code = SDCode.construct(6, 4, 1, 1, max_patterns=400)
        device = [(i, 2) for i in range(4)]
        assert code.tolerates(device + [(0, 0)])
        assert not code.tolerates(device + [(0, 0), (1, 0)])

    def test_construct_reports_failure(self):
        with pytest.raises(SDConstructionError):
            SDCode.construct(8, 4, 1, 3, bases=(2,), random_trials=0,
                             max_patterns=50)


class TestAnalysis:
    def test_update_penalty_at_least_m_plus_sometimes_more(self):
        code = SDCode(n=8, r=4, m=2, s=2)
        assert code.update_penalty() >= 2.0

    def test_mult_xor_count_matches_encoding_matrix(self):
        code = SDCode(n=8, r=4, m=2, s=2)
        assert code.mult_xor_count() == int(
            np.count_nonzero(code.encoding_matrix()))

    def test_encoding_matrix_cached(self):
        code = SDCode(n=8, r=4, m=2, s=2)
        assert code.encoding_matrix() is code.encoding_matrix()

    def test_row_parities_of_upper_rows_are_row_local(self):
        """Rows other than the last depend only on their own row's data, so
        the encoding matrix must be sparse there (no global coupling)."""
        code = SDCode(n=8, r=4, m=1, s=1)
        matrix = code.encoding_matrix()
        data_positions = code.data_positions()
        for k, (row, col) in enumerate(code.parity_positions()):
            if row == code.r - 1:
                continue
            deps = {data_positions[d][0] for d in np.nonzero(matrix[k])[0]}
            assert deps == {row}
