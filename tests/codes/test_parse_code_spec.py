"""Textual code specs: the registry's promised ``stair(n=8, ...)`` form."""

import pytest

from repro.codes.raid import RAID5Code
from repro.codes.registry import build_code, parse_code_spec, register_code
from repro.codes.sd import SDCode
from repro.codes.stair_adapter import StairStripeCode


def test_parse_stair_spec_with_tuple():
    code = parse_code_spec("stair(n=8,r=16,m=1,e=(1,2))")
    assert isinstance(code, StairStripeCode)
    assert (code.n, code.r, code.config.m, code.config.e) == (8, 16, 1, (1, 2))


def test_parse_is_equivalent_to_build_code():
    parsed = parse_code_spec("sd(n=8, r=4, m=1, s=2)")
    built = build_code("sd", n=8, r=4, m=1, s=2)
    assert isinstance(parsed, SDCode)
    assert parsed.describe() == built.describe()


def test_whitespace_and_case_are_tolerated():
    code = parse_code_spec("  RAID5( n = 5 , r = 4 )  ")
    assert isinstance(code, RAID5Code)
    assert (code.n, code.r) == (5, 4)


def test_bare_name_spec_uses_factory_defaults():
    register_code("fixed-demo", lambda: RAID5Code(n=4, r=2))
    try:
        code = parse_code_spec("fixed-demo")
        assert isinstance(code, RAID5Code)
        assert code.n == 4
    finally:
        from repro.codes import registry
        registry._FACTORIES.pop("fixed-demo")


def test_unknown_family_lists_alternatives():
    with pytest.raises(ValueError, match="available"):
        parse_code_spec("turbo(n=8)")


@pytest.mark.parametrize("bad", [
    "",
    "stair(n=8",            # unbalanced parens
    "stair(8, 16)",         # positional args
    "stair(n=8, **extra)",  # ** expansion
    "stair(n=open('x'))",   # non-literal value
    "rs(n=8; r=4)",         # syntax error
    "123(n=8)",             # family must be an identifier
    "rs(n=8, r=4, q=1)",    # unknown keyword -> ValueError, not TypeError
])
def test_malformed_specs_raise_value_error(bad):
    with pytest.raises(ValueError):
        parse_code_spec(bad)
