"""Execute every python code block in docs/*.md so tutorials can't rot.

Each markdown file runs as one script: its fenced ``python`` blocks are
concatenated (with blank-line padding so tracebacks point at the real
markdown line) and executed in a single shared namespace, mirroring a
reader stepping through the page top to bottom.  Shell blocks and other
languages are ignored.
"""

import pathlib
import re

import pytest

DOCS_DIR = pathlib.Path(__file__).resolve().parent.parent / "docs"

_FENCE_RE = re.compile(
    r"^```python[ \t]*\n(?P<body>.*?)^```[ \t]*$",
    re.DOTALL | re.MULTILINE,
)


def _python_blocks(text: str) -> list[tuple[int, str]]:
    """Return ``(starting_line, source)`` for each fenced python block."""
    blocks = []
    for match in _FENCE_RE.finditer(text):
        line = text.count("\n", 0, match.start("body")) + 1
        blocks.append((line, match.group("body")))
    return blocks


def _doc_pages() -> list[pathlib.Path]:
    assert DOCS_DIR.is_dir(), "docs/ tree is missing"
    pages = sorted(DOCS_DIR.glob("*.md"))
    assert pages, "docs/ contains no markdown pages"
    return pages


@pytest.mark.parametrize("page", _doc_pages(), ids=lambda p: p.name)
def test_docs_code_blocks_execute(page):
    blocks = _python_blocks(page.read_text())
    if not blocks:
        pytest.skip(f"{page.name} has no python blocks")
    namespace: dict = {"__name__": f"docs_{page.stem}"}
    for line, body in blocks:
        # Pad so SyntaxError/assert tracebacks carry the markdown line.
        source = "\n" * (line - 1) + body
        code = compile(source, str(page), "exec")
        exec(code, namespace)  # noqa: S102 - the whole point of the test


def test_docs_pages_are_cross_linked():
    """The pages the README and CLI promise actually exist."""
    names = {page.name for page in _doc_pages()}
    assert {"architecture.md", "simulator.md", "code-specs.md"} <= names
