"""Execute every python code block in docs/*.md so tutorials can't rot.

Each markdown file runs as one script: its fenced ``python`` blocks are
concatenated (with blank-line padding so tracebacks point at the real
markdown line) and executed in a single shared namespace, mirroring a
reader stepping through the page top to bottom.  Shell blocks and other
languages are ignored.

Beyond execution, this module enforces docs hygiene (shared with the
standalone CI gate ``tools/check_docs.py``): every docs page must carry
at least one executable python block, relative links must resolve, and
no ``[[...]]`` wiki-link placeholders may survive outside code fences.
"""

import pathlib
import re
import sys

import pytest

DOCS_DIR = pathlib.Path(__file__).resolve().parent.parent / "docs"
REPO_ROOT = DOCS_DIR.parent

sys.path.insert(0, str(REPO_ROOT / "tools"))
import check_docs  # noqa: E402  (tools/ is not a package)

_FENCE_RE = re.compile(
    r"^```python[ \t]*\n(?P<body>.*?)^```[ \t]*$",
    re.DOTALL | re.MULTILINE,
)


def _python_blocks(text: str) -> list[tuple[int, str]]:
    """Return ``(starting_line, source)`` for each fenced python block."""
    blocks = []
    for match in _FENCE_RE.finditer(text):
        line = text.count("\n", 0, match.start("body")) + 1
        blocks.append((line, match.group("body")))
    return blocks


def _doc_pages() -> list[pathlib.Path]:
    assert DOCS_DIR.is_dir(), "docs/ tree is missing"
    pages = sorted(DOCS_DIR.glob("*.md"))
    assert pages, "docs/ contains no markdown pages"
    return pages


@pytest.mark.parametrize("page", _doc_pages(), ids=lambda p: p.name)
def test_docs_code_blocks_execute(page):
    blocks = _python_blocks(page.read_text())
    # A docs page without executable examples is a tutorial that can
    # silently rot -- hard failure, not a skip (also enforced by
    # tools/check_docs.py in CI).
    assert blocks, f"{page.name} has no executable ```python block"
    namespace: dict = {"__name__": f"docs_{page.stem}"}
    for line, body in blocks:
        # Pad so SyntaxError/assert tracebacks carry the markdown line.
        source = "\n" * (line - 1) + body
        code = compile(source, str(page), "exec")
        exec(code, namespace)  # noqa: S102 - the whole point of the test


def test_docs_pages_are_cross_linked():
    """The pages the README and CLI promise actually exist."""
    names = {page.name for page in _doc_pages()}
    assert {"architecture.md", "simulator.md", "code-specs.md",
            "failure-domains.md", "reliability-models.md",
            "traces.md", "index.md"} <= names


def test_every_docs_page_has_a_python_block():
    """>= 1 executable block per page, via the shared checker."""
    for page in _doc_pages():
        assert check_docs._PYTHON_FENCE_RE.search(page.read_text()), (
            f"{page.name} has no executable ```python block")


def test_docs_hygiene_checker_passes():
    """Relative links resolve, no [[...]] placeholders remain, and
    every chapter is reachable from docs/index.md, on the README and
    every docs page (same gate CI runs standalone)."""
    problems = []
    for page in check_docs.markdown_pages(REPO_ROOT):
        problems.extend(check_docs.check_page(page, REPO_ROOT))
    problems.extend(check_docs.check_index(REPO_ROOT))
    assert not problems, "\n".join(problems)


def test_index_reachability_checker_catches_orphans(tmp_path):
    """A docs page the index does not link -- or a missing index --
    must be flagged; a fully linked tree must pass."""
    docs = tmp_path / "docs"
    docs.mkdir()
    (docs / "chapter.md").write_text("```python\nx = 1\n```\n")
    problems = check_docs.check_index(tmp_path)
    assert any("index.md is missing" in p for p in problems)
    (docs / "index.md").write_text("An index with no links.\n"
                                   "```python\nx = 1\n```\n")
    problems = check_docs.check_index(tmp_path)
    assert any("chapter.md" in p and "not linked" in p
               for p in problems)
    (docs / "index.md").write_text("[chapter](chapter.md)\n"
                                   "```python\nx = 1\n```\n")
    assert check_docs.check_index(tmp_path) == []


def test_docs_hygiene_checker_catches_rot(tmp_path):
    """The checker itself must flag dead links, wiki placeholders and
    example-free docs pages -- otherwise the CI gate is decorative."""
    docs = tmp_path / "docs"
    docs.mkdir()
    page = docs / "broken.md"
    page.write_text("A [dead link](missing.md), a [[placeholder]],\n"
                    "and not a single python block.\n")
    problems = check_docs.check_page(page, tmp_path)
    assert len(problems) == 3
    assert any("dead relative link" in p for p in problems)
    assert any("placeholder" in p for p in problems)
    assert any("python block" in p for p in problems)
    # Fenced code is exempt from the link/placeholder rules.
    good = docs / "good.md"
    good.write_text("See [arch](good.md).\n\n```python\nx = [[1]]\n```\n")
    assert check_docs.check_page(good, tmp_path) == []
