"""Edge paths of the symbol-level StorageArray.

Covers the paths the integration suite leaves out: DataLossError on
over-budget failure patterns via every repair entry point, the ordering
of scrub vs. rebuild under combined damage, and degraded reads at the
exact coverage boundary.
"""

import pytest

from repro.array import DataLossError, StorageArray, random_payload
from repro.codes import RAID5Code, ReedSolomonStripeCode, StairStripeCode


def _stair_array(num_stripes=2, symbol_size=32):
    code = StairStripeCode(n=6, r=4, m=1, e=(1, 2))
    array = StorageArray(code, num_stripes=num_stripes,
                         symbol_size=symbol_size)
    payload = random_payload(array.capacity, seed=0)
    array.write(payload)
    return array, payload


# --------------------------------------------------------------------------- #
# DataLossError on over-budget failures
# --------------------------------------------------------------------------- #
class TestOverBudgetFailures:
    def test_rebuild_raises_when_too_many_devices_fail(self):
        array, _ = _stair_array()
        array.fail_device(0)
        array.fail_device(1)  # m = 1: a second failed device is fatal
        with pytest.raises(DataLossError, match="rebuild failed"):
            array.rebuild()

    def test_rebuild_raises_when_sector_damage_exceeds_e(self):
        array, _ = _stair_array()
        array.fail_device(0)
        # e = (1, 2) allows (2, 1); three bad sectors in one chunk do not.
        for row in range(3):
            array.fail_sector(0, row, device=3)
        with pytest.raises(DataLossError, match="unrecoverable"):
            array.rebuild()

    def test_scrub_raises_on_unrecoverable_stripe(self):
        code = RAID5Code(n=5, r=4)
        array = StorageArray(code, num_stripes=1, symbol_size=32)
        array.write(random_payload(array.capacity, seed=1))
        # Two damaged chunks in one row exceed RAID-5's single erasure.
        array.fail_sector(0, 0, device=0)
        array.fail_sector(0, 0, device=1)
        with pytest.raises(DataLossError, match="scrub cannot repair"):
            array.scrub()

    def test_update_symbol_raises_data_loss_on_unrecoverable_stripe(self):
        import numpy as np
        array, _ = _stair_array()
        array.fail_device(0)
        array.fail_device(1)  # beyond m = 1
        with pytest.raises(DataLossError, match="cannot update"):
            array.update_symbol(0, 0, np.zeros(32, dtype=np.uint8))

    def test_read_stripe_raises_after_over_budget_damage(self):
        array, _ = _stair_array()
        array.fail_device(0)
        array.fail_device(1)
        with pytest.raises(DataLossError, match="unrecoverable"):
            array.read_stripe(0)

    def test_damage_beyond_coverage_only_hurts_affected_stripe(self):
        array, payload = _stair_array(num_stripes=2)
        for row in range(4):
            array.fail_sector(0, row, device=0)
            array.fail_sector(0, row, device=1)
        with pytest.raises(DataLossError):
            array.read_stripe(0)
        # Stripe 1 is untouched and still reads cleanly.
        capacity = array.stripe_capacity
        assert array.read_stripe(1) == payload[capacity:2 * capacity]


# --------------------------------------------------------------------------- #
# Scrub-then-rebuild ordering
# --------------------------------------------------------------------------- #
class TestScrubRebuildOrdering:
    def _damaged(self):
        """One failed device plus in-coverage latent errors elsewhere."""
        array, payload = _stair_array()
        array.fail_device(2)
        array.fail_sector(0, 0, device=4)   # e covers (1,) alongside m=1
        array.fail_sector(1, 3, device=5)
        return array, payload

    def test_scrub_then_rebuild_restores_health(self):
        array, payload = self._damaged()
        # Degraded scrub: sector repair happens while the device is down.
        assert array.scrub() == 2
        assert array.status().bad_sectors == 0
        assert array.rebuild() == [2]
        assert array.status().healthy
        assert array.read(len(payload)) == payload

    def test_rebuild_then_scrub_is_equivalent(self):
        array, payload = self._damaged()
        assert array.rebuild() == [2]
        assert array.status().bad_sectors == 2
        assert array.scrub() == 2
        assert array.status().healthy
        assert array.read(len(payload)) == payload

    def test_scrub_skips_sectors_on_failed_devices(self):
        array, _ = self._damaged()
        # Latent error on the failed device itself: not scrubbable, and
        # subsumed by the device failure.
        array.fail_sector(0, 1, device=2)
        assert array.scrub() == 2
        status = array.status()
        assert status.failed_devices == [2]
        # rebuild() rewrites the whole device, clearing its bad sector.
        array.rebuild()
        assert array.status().healthy

    def test_scrub_before_second_failure_saves_the_array(self):
        """The operational point of scrubbing: clearing latent errors
        before the next device failure keeps the array inside coverage."""
        code = ReedSolomonStripeCode(n=6, r=4, m=1)
        scrubbed = StorageArray(code, num_stripes=1, symbol_size=32)
        payload = random_payload(scrubbed.capacity, seed=2)
        scrubbed.write(payload)
        scrubbed.fail_sector(0, 2, device=3)
        scrubbed.scrub()
        scrubbed.fail_device(0)
        assert scrubbed.read(len(payload)) == payload

        unscrubbed = StorageArray(code, num_stripes=1, symbol_size=32)
        unscrubbed.write(payload)
        unscrubbed.fail_sector(0, 2, device=3)
        unscrubbed.fail_device(0)
        with pytest.raises(DataLossError):
            unscrubbed.read_stripe(0)


# --------------------------------------------------------------------------- #
# Degraded reads with simultaneous device + sector failures
# --------------------------------------------------------------------------- #
class TestDegradedReadsAtCoverageBoundary:
    def test_worst_case_e_pattern_is_still_readable(self):
        array, payload = _stair_array()
        array.fail_device(5)             # consumes the m = 1 budget
        array.fail_sector(0, 3, device=3)  # chunk with 1 error
        array.fail_sector(0, 2, device=4)  # chunk with 2 errors
        array.fail_sector(0, 3, device=4)
        assert array.read(len(payload)) == payload

    def test_one_sector_past_the_boundary_raises(self):
        array, _ = _stair_array()
        array.fail_device(5)
        array.fail_sector(0, 3, device=3)
        array.fail_sector(0, 2, device=4)
        array.fail_sector(0, 3, device=4)
        array.fail_sector(0, 1, device=1)  # third damaged chunk: beyond e
        with pytest.raises(DataLossError):
            array.read_stripe(0)

    def test_update_symbol_on_degraded_stripe(self):
        """update_symbol decodes, patches and re-encodes even while the
        stripe carries simultaneous device and sector damage; the failed
        device is skipped and reconstructed consistently by rebuild()."""
        import numpy as np
        array, _ = _stair_array()
        array.fail_device(1)
        array.fail_sector(0, 0, device=0)
        rewritten = array.update_symbol(0, 2, np.zeros(32, dtype=np.uint8))
        assert rewritten >= 1
        blob = array.read_stripe(0)
        assert blob[2 * 32:3 * 32] == b"\x00" * 32
        # After rebuilding the failed device the updated stripe is fully
        # consistent again (no degraded decode needed).
        array.rebuild()
        assert array.status().healthy
        clean = array.read_stripe(0, degraded_ok=False)
        assert clean[2 * 32:3 * 32] == b"\x00" * 32
